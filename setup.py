"""Legacy setuptools entry point.

Exists so ``pip install -e .`` works in offline environments without
the ``wheel`` package (PEP 660 editable builds need it; the legacy
``setup.py develop`` path does not). All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
