"""Extension — the title's claim as one curve: overhead vs grid size.

"Scalable and Fast": the checksum global array's overhead is flat from
64 to 131,072 thread blocks while the hash tables deteriorate and the
lock-based variants collapse — the whole paper in one sweep.
"""

from _common import run_experiment


def test_scaling_sweep(benchmark):
    result = run_experiment(benchmark, "scaling")
    rows = result.rows
    # Flat for the global array across three orders of magnitude.
    ga = [r["global_array"] for r in rows]
    assert max(ga) < 2 * max(min(ga), 0.005)
    # Monotone-or-plateauing deterioration for quad; catastrophe for locks.
    assert rows[-1]["quad"] > 0.2
    assert rows[-1]["quad_lock"] > 100
