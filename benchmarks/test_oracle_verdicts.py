"""Tier-2 gate: the static/dynamic verdict table must not drift.

``oracle_verdicts.json`` pins, for every builtin kernel plus two
synthetic known-dirty kernels, (a) whether lplint's static analysis
certifies idempotence and (b) whether the dynamic re-execution oracle
agrees. Any drift — a workload turning non-idempotent, the analyzer
losing a hazard, the oracle going blind — fails this gate.

Regenerate after an intentional change with:

    PYTHONPATH=src python benchmarks/test_oracle_verdicts.py
"""

import json
from pathlib import Path

import numpy as np
import pytest

VERDICTS_PATH = Path(__file__).parent / "oracle_verdicts.json"


def _synthetic_accumulate():
    import repro
    from repro.compiler.pydsl import kernel_from_function

    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",),
                          name="synthetic-accumulate")
    def accumulate(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        v = ctx.ld("out", idx)
        ctx.st("out", idx, v + 1.0)

    device = repro.Device()
    device.alloc("out", (32,), np.float32, persistent=True)
    return device, accumulate


def _synthetic_atomic():
    import repro
    from repro.compiler.pydsl import kernel_from_function

    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",),
                          name="synthetic-atomic")
    def atomic(ctx):
        ctx.atomic_add("out", ctx.block_id, 1.0)

    device = repro.Device()
    device.alloc("out", (32,), np.float32, persistent=True)
    return device, atomic


def all_cases():
    """Builtin cases plus the synthetic known-dirty controls."""
    from repro.analysis.runner import BuiltinCase, builtin_cases

    return builtin_cases() + [
        BuiltinCase("synthetic-accumulate", _synthetic_accumulate),
        BuiltinCase("synthetic-atomic", _synthetic_atomic),
    ]


def compute_verdicts() -> dict:
    from repro.analysis.oracle import dynamic_oracle
    from repro.analysis.runner import static_hazards

    table = {}
    for case in all_cases():
        _device, kernel = case.make_case()
        hazards = static_hazards(kernel)
        verdict = dynamic_oracle(case.make_case, sample=4)
        table[case.name] = {
            "static_idempotent": not hazards,
            "dynamic_idempotent": verdict.idempotent,
        }
    return table


@pytest.mark.tier2
def test_verdict_table_matches_committed_fixture():
    expected = json.loads(VERDICTS_PATH.read_text())["cases"]
    actual = compute_verdicts()
    assert actual == expected


@pytest.mark.tier2
def test_committed_table_never_trusts_static_over_dynamic():
    # The analyzer's invariant, pinned on the fixture itself: wherever
    # the static analysis certifies idempotence, the oracle agreed.
    cases = json.loads(VERDICTS_PATH.read_text())["cases"]
    for name, verdict in cases.items():
        if verdict["static_idempotent"]:
            assert verdict["dynamic_idempotent"], name
    # And the dirty controls prove the oracle can actually fail.
    assert not cases["synthetic-accumulate"]["dynamic_idempotent"]
    assert not cases["synthetic-atomic"]["dynamic_idempotent"]


if __name__ == "__main__":
    VERDICTS_PATH.write_text(
        json.dumps({"cases": compute_verdicts()}, indent=2) + "\n"
    )
    print(f"wrote {VERDICTS_PATH}")
