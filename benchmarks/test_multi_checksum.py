"""§VII-2 — one vs two simultaneous checksums (TMM + quadratic).

The paper: parity alone 7.6 %, modular alone 7.7 %, both together
8.1 % — the second checksum is nearly free, and drives the combined
false-negative bound below one in a trillion.
"""

from _common import run_experiment


def test_multi_checksum_costs(benchmark):
    result = run_experiment(benchmark, "multi_checksum")
    by = {r["variant"]: r["overhead"] for r in result.rows}

    assert by["both"] > by["parity"]
    assert by["both"] > by["modular"]
    # "Only adds minor additional overheads": under 1.5x of one lane.
    assert by["both"] < 1.5 * max(by["parity"], by["modular"])
    # All three stay in the single-digit-percent band (paper 7.6-8.1%).
    for v in by.values():
        assert v < 0.12
