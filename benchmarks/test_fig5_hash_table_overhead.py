"""Figure 5 — naive LP overhead: quadratic probing vs cuckoo hashing.

Reproduces the paper's first characterization result: with a hash-table
checksum store (lock-free, shuffle reduction), LP costs ~30 % geomean,
dominated by the two huge-grid benchmarks (MRI-GRIDDING, SAD) whose
insertion bursts saturate the table's atomic units.
"""

from _common import run_experiment


def test_fig5_hash_table_overheads(benchmark):
    result = run_experiment(benchmark, "fig5")
    rows = {r["bench"]: r for r in result.rows}

    # Paper shape: MRI-GRIDDING (quad) and SAD are the catastrophic
    # cases; small-grid benchmarks stay under 10 %.
    assert rows["mri-gridding"]["quad"] > 1.0
    assert rows["sad"]["quad"] > 0.25
    assert rows["histo"]["quad"] < 0.10
    assert rows["tpacf"]["quad"] < 0.10
    # Geomeans land in the paper's ~30 % band.
    assert 0.10 <= rows["geomean"]["quad"] <= 0.60
