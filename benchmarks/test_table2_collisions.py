"""Table II — hash-table collision counts at paper-scale grids.

The collision counts come from actually inserting the paper-scale key
sets (up to SAD's 128 640 block ids) into the two hash tables. The
reproduced shape: collisions concentrate overwhelmingly on the
huge-grid benchmarks (TMM, MRI-GRIDDING, SAD), the paper's explanation
for Figure 5's overheads.
"""

from _common import run_experiment


def test_table2_collision_counts(benchmark):
    result = run_experiment(benchmark, "table2")
    rows = {r["bench"]: r for r in result.rows}

    big = ("tmm", "mri-gridding", "sad")
    small = ("tpacf", "spmv", "histo", "cutcp", "mri-q")
    for b in big:
        for s in small:
            assert rows[b]["quad"] > rows[s]["quad"]
    # SAD has the most keys, hence the most collisions in our sizing.
    assert rows["sad"]["quad"] == max(r["quad"] for r in result.rows)
