"""Table IV — parallel (shuffle) vs sequential (through-memory) reduction.

Without ``shfl_down``, per-thread checksums stage through shared and
global memory; the added traffic punishes the bandwidth-bound
benchmarks (SPMV, SAD, HISTO) far more than the instruction-bound ones
— the paper's geomean rises from 29.4 % to 63.3 % (quad).
"""

import numpy as np

from _common import run_experiment


def test_table4_reduction_ablation(benchmark):
    result = run_experiment(benchmark, "table4")
    rows = {r["bench"]: r for r in result.rows}

    # No-shuffle is never cheaper, for either table.
    for r in result.rows:
        assert r["quad_no"] >= r["quad_shfl"] - 1e-9
        assert r["cuckoo_no"] >= r["cuckoo_shfl"] - 1e-9

    # Bandwidth-bound benchmarks pay the larger absolute penalty.
    bw_penalty = np.mean([
        rows[b]["quad_no"] - rows[b]["quad_shfl"]
        for b in ("spmv", "sad", "histo")
    ])
    inst_penalty = np.mean([
        rows[b]["quad_no"] - rows[b]["quad_shfl"]
        for b in ("tpacf", "cutcp", "mri-q")
    ])
    assert bw_penalty > 3 * inst_penalty
