"""Null-sink observability overhead gate: serial SPMV blocks/sec.

The flight recorder's contract (``docs/observability.md``) is that
instrumentation is free when no recorder is installed: every hot site
does one ``current()`` call plus one ``.active``/``.enabled`` flag
check and nothing else. This benchmark holds the contract to a number.

It measures the serial engine on the same LP-instrumented 1024-block
SPMV that ``perf_smoke.py`` times — with the default ``NULL_RECORDER``
installed, exactly as any un-instrumented caller runs — and compares
blocks/sec against the committed ``BENCH_sim.json`` serial baseline.
``--check`` fails if throughput lands more than ``TOLERANCE`` (default
5 %) below baseline, i.e. if the disabled instrumentation costs more
than the acceptance budget.

As a sanity cross-check it also times one run with a live recorder
(MemorySink + metrics) and reports the enabled-path cost; that number
is informational, not gated — tracing is allowed to cost something.

The telemetry sampler gets its own gate: a metrics-recorded run with a
background :class:`~repro.obs.telemetry.TelemetrySampler` attached
(50 ms period) must stay within ``TOLERANCE`` of the same run without
the sampler — periodic snapshotting may not tax the lock-free hot
path.

Set ``OBS_OVERHEAD_TOLERANCE`` (a float, e.g. ``0.15``) to widen both
gates on noisy shared CI runners.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py            # report
    PYTHONPATH=src python benchmarks/obs_overhead.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_smoke import BASELINE_PATH, setup_spmv  # noqa: E402

import repro  # noqa: E402
from repro import obs  # noqa: E402

#: Overhead budget for ``--check``: fail below 95 % of baseline.
TOLERANCE = float(os.environ.get("OBS_OVERHEAD_TOLERANCE", "0.05"))

REPEATS = 5


def measure_serial(recorder: "obs.Recorder | None") -> dict:
    """Best-of-N serial SPMV blocks/sec under the given recorder."""
    previous = obs.install(recorder or obs.NULL_RECORDER)
    try:
        best = float("inf")
        n_blocks = 0
        for _ in range(REPEATS):
            device, lp_kernel, _ = setup_spmv(repro.make_engine("serial"))
            start = time.perf_counter()
            result = device.launch(lp_kernel)
            best = min(best, time.perf_counter() - start)
            n_blocks = result.n_completed
    finally:
        obs.install(previous)
    return {
        "n_blocks": n_blocks,
        "seconds": round(best, 6),
        "blocks_per_sec": round(n_blocks / best, 2),
    }


def measure_with_sampler() -> dict:
    """Metrics-recorded SPMV with a live background sampler attached."""
    recorder = obs.Recorder(metrics=obs.MetricsRegistry())
    sampler = obs.TelemetrySampler(recorder.metrics, interval=0.05)
    recorder.sampler = sampler
    sampler.start()
    try:
        return measure_serial(recorder)
    finally:
        sampler.stop(final_sample=False)
        sampler.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_sim.json "
                             "serial baseline")
    args = parser.parse_args(argv)

    disabled = measure_serial(None)
    enabled = measure_serial(obs.Recorder(
        tracer=obs.Tracer(obs.MemorySink()),
        metrics=obs.MetricsRegistry(),
    ))
    metrics_only = measure_serial(obs.Recorder(
        metrics=obs.MetricsRegistry(),
    ))
    sampled = measure_with_sampler()
    ratio = enabled["blocks_per_sec"] / disabled["blocks_per_sec"]
    sampler_ratio = (metrics_only["blocks_per_sec"]
                     / sampled["blocks_per_sec"])
    print(f"spmv serial, recorder off:      "
          f"{disabled['blocks_per_sec']:12,.1f} blocks/sec")
    print(f"spmv serial, recorder on:       "
          f"{enabled['blocks_per_sec']:12,.1f} blocks/sec "
          f"({ratio:.2f}x, informational)")
    print(f"spmv serial, metrics only:      "
          f"{metrics_only['blocks_per_sec']:12,.1f} blocks/sec")
    print(f"spmv serial, metrics + sampler: "
          f"{sampled['blocks_per_sec']:12,.1f} blocks/sec "
          f"({sampler_ratio:.2f}x of metrics-only)")

    if not args.check:
        return 0
    sampler_floor = metrics_only["blocks_per_sec"] * (1.0 - TOLERANCE)
    if sampled["blocks_per_sec"] < sampler_floor:
        print(f"TELEMETRY OVERHEAD REGRESSION: sampler-attached serial "
              f"spmv {sampled['blocks_per_sec']:,.1f} blocks/sec < "
              f"{sampler_floor:,.1f} (metrics-only "
              f"{metrics_only['blocks_per_sec']:,.1f} - {TOLERANCE:.0%})",
              file=sys.stderr)
        return 1
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; "
              "run benchmarks/perf_smoke.py first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    base = baseline["workloads"]["spmv"]["serial"]["blocks_per_sec"]
    floor = base * (1.0 - TOLERANCE)
    if disabled["blocks_per_sec"] < floor:
        print(f"OBS OVERHEAD REGRESSION: null-sink serial spmv "
              f"{disabled['blocks_per_sec']:,.1f} blocks/sec < "
              f"{floor:,.1f} (baseline {base:,.1f} - {TOLERANCE:.0%})",
              file=sys.stderr)
        return 1
    print(f"obs overhead check OK: {disabled['blocks_per_sec']:,.1f} >= "
          f"{floor:,.1f} blocks/sec "
          f"(baseline {base:,.1f} - {TOLERANCE:.0%}); sampler "
          f"{sampled['blocks_per_sec']:,.1f} >= {sampler_floor:,.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
