"""Table V — the paper's final design: checksum global array + shuffle.

The hash-table-less design indexes checksums by thread-block id:
collision-free, race-free, 100 % load factor. The paper measures 2.1 %
geomean execution-time overhead and 1.63 % space overhead; the
per-benchmark time column anchors this reproduction's calibration
(DESIGN.md §2), the space column and every comparison against the hash
tables are predictions.
"""

from _common import run_experiment
from repro.bench.harness import geomean_overhead


def test_table5_global_array(benchmark):
    result = run_experiment(benchmark, "table5")
    rows = {r["bench"]: r for r in result.rows}

    gm_time = geomean_overhead(r["time"] for r in result.rows)
    assert 0.01 <= gm_time <= 0.04  # paper: 2.1 %

    # Space: SAD is the outlier (tiny per-block output), paper 12.27 %.
    assert rows["sad"]["space"] == max(r["space"] for r in result.rows)
    assert rows["sad"]["space"] > 0.05
    gm_space = geomean_overhead(r["space"] for r in result.rows)
    assert gm_space < 0.06  # paper: 1.63 %

    # Per-benchmark times track the paper's Table V closely (anchored).
    for r in result.rows:
        assert abs(r["time"] - r["time_paper"]) < 0.01
