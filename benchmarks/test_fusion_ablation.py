"""Extension — thread-block fusion of LP regions (Section IV-A).

"[Regions] can be enlarged if needed, e.g. through thread block
fusion": fusing F blocks divides checksum-table pressure by F at the
price of F-times-coarser recovery. This ablation quantifies the
trade-off the paper only names.
"""

from _common import run_experiment


def test_fusion_tradeoff(benchmark):
    result = run_experiment(benchmark, "fusion")
    rows = result.rows
    # Normal-execution overhead falls monotonically as regions grow,
    # from warp granularity through fused blocks...
    overheads = [r["modeled_overhead"] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))
    # ...warp-sized regions are dramatically worse than blocks...
    by_factor = {r["factor"]: r for r in rows}
    assert by_factor[1 / 32]["modeled_overhead"] > (
        5 * by_factor[1]["modeled_overhead"]
    )
    # ...while the recovery bill grows with fusion.
    recovery = [r["recovery_cycles"] for r in rows
                if r["recovery_cycles"] is not None]
    assert recovery[-1] > recovery[0]
