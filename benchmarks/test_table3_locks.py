"""Table III — lock-based vs lock-free checksum insertion.

The paper's scalability headline: lock-based insertion convoys at high
thread-block counts, reaching thousands-fold slowdowns on SAD
(128 640 blocks) and MRI-GRIDDING (65 536) while the 42-block HISTO is
barely affected. Lock-free insertion is crucial on GPUs.
"""

from _common import run_experiment


def test_table3_lock_slowdowns(benchmark):
    result = run_experiment(benchmark, "table3")
    rows = {r["bench"]: r for r in result.rows}

    # Lock-based is always worse than lock-free.
    for r in result.rows:
        assert r["quad_lock"] > r["quad_free"]
        assert r["cuckoo_lock"] > r["cuckoo_free"]

    # The big grids are catastrophic (1000x-class, as in the paper).
    assert rows["sad"]["quad_lock"] > 500
    assert rows["mri-gridding"]["quad_lock"] > 500

    # The small grid barely notices the lock.
    assert rows["histo"]["quad_lock"] < 2.0

    # The two 60K+-block grids dwarf every other benchmark's slowdown
    # (slowdown is not monotone in block count alone — baselines differ
    # wildly — but the catastrophic cases are exactly the paper's).
    worst_two = sorted(result.rows, key=lambda r: r["quad_lock"])[-2:]
    assert {r["bench"] for r in worst_two} == {"mri-gridding", "sad"}
    # MRI-GRIDDING's slowdown exceeds SAD's despite half the blocks —
    # its baseline kernel is shorter — matching the paper's 6,332x vs
    # 4,491x inversion.
    assert rows["mri-gridding"]["quad_lock"] > rows["sad"]["quad_lock"]
