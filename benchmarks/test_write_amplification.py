"""§VII-3 — NVM write amplification (functional persistence domain).

The paper measures 0.5 % (SPMV) to 2.2 % (MM) more main-memory writes
with LP, on GPGPU-sim with NVM timings — the increase is purely the
checksum stores (no flushes, no logs). Here the runs are functional:
every NVM line write is counted by the simulated persistence domain.
"""

from _common import run_experiment


def test_write_amplification(benchmark):
    result = run_experiment(benchmark, "write_amp")
    for row in result.rows:
        # LP always writes more (the checksums), but only a little.
        assert row["lp_lines"] > row["baseline_lines"]
        assert row["measured"] < 0.25
        # At paper-scale block sizes the analytic ratio sits in or near
        # the paper's 0.5-2.2 % band (SAD's tiny blocks are the outlier,
        # matching its 12 % space overhead in Table V).
        assert row["paper_scale_analytic"] < 0.15
