"""§IV-D-2 — MRI-GRIDDING with collisions surgically removed.

The paper modifies the code so "the entry lookup for the first time
during insertion is always empty" and sees the overhead collapse from
218.6 % / 45.7 % to 0.8 % / 0.1 % — proving collisions are the cost.
The ``perfect_hash`` table variant reproduces the same collapse.
"""

from _common import run_experiment


def test_collision_ablation_mri_gridding(benchmark):
    result = run_experiment(benchmark, "collision_ablation")
    for row in result.rows:
        # Collision-free insertion erases the hash tables' overhead
        # down to the no-table floor.
        assert row["collision_free"] < 0.06
        if row["with_collisions"] > 0.2:
            assert row["collision_free"] < 0.2 * row["with_collisions"]
