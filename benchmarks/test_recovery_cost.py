"""Extension — LP's recovery bill, characterized.

"As a trade off, crash recovery is slower in LP" (Section I): eager
recovery always pays a validation sweep over the grid plus
re-execution of the lost regions; the write-back cache capacity bounds
what a crash can strand. This quantifies the trade LP makes.
"""

from _common import run_experiment


def test_recovery_cost_profile(benchmark):
    result = run_experiment(benchmark, "recovery_cost")
    sweep = result.rows[:5]
    # Monotone: the later the crash, the less re-execution.
    reexec = [r["reexecution_cycles"] for r in sweep]
    assert all(a >= b for a, b in zip(reexec, reexec[1:]))
    # Validation cost is flat — it is grid-shaped, not loss-shaped.
    validations = {r["validation_cycles"] for r in sweep}
    assert len(validations) == 1
