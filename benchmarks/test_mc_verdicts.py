"""Tier-2 gate: static race verdicts vs. the crash model checker.

``mc_verdicts.json`` pins, for every builtin workload plus the three
seeded race offenders, (a) which persistency race rules (LP002/LP003/
LP008/LP009/LP010) the static analyzer fires and (b) whether the
bounded crash-state enumeration found a counterexample. The invariant
under test is the one lplint promises: the static verdict is **never
less conservative** than the model checker — wherever enumeration
found a non-converging crash state, at least one race rule fired.

Regenerate after an intentional change with:

    PYTHONPATH=src python benchmarks/test_mc_verdicts.py
"""

import importlib.util
import json
from pathlib import Path

import pytest

VERDICTS_PATH = Path(__file__).parent / "mc_verdicts.json"
FIXTURES = Path(__file__).parent.parent / "tests" / "fixtures" / "lint"

#: Small bounded runs: tiny/cache=1 maximizes eviction events for the
#: workloads; the offenders need cache=2 (their hazards live in torn
#: multi-line write-backs).
WORKLOAD_BUDGET = 400
OFFENDER_BUDGET = 400


def _offenders_module():
    spec = importlib.util.spec_from_file_location(
        "lp_offenders", FIXTURES / "lp_offenders.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def compute_verdicts() -> dict:
    from repro.analysis.crashmc import (
        MCOptions,
        RACE_RULES,
        check_case,
        check_workload,
    )
    from repro.analysis.py_rules import lint_kernel_object
    from repro.workloads import WORKLOADS

    table = {}
    options = MCOptions(scale="tiny", cache_lines=1, budget=WORKLOAD_BUDGET)
    for name in sorted(WORKLOADS):
        from repro.compiler.pydsl import lazy_persistent
        from repro.gpu.device import Device
        from repro.workloads import make_workload

        device = Device()
        kernel = make_workload(name, scale="tiny", seed=0).setup(device)
        findings = lint_kernel_object(lazy_persistent(device, kernel),
                                      device=device)
        report = check_workload(name, options)
        table[name] = {
            "static_race_rules": sorted(
                {f.rule for f in findings if f.rule in RACE_RULES
                 and not f.suppressed}
            ),
            "mc_counterexample": not report.converged,
            "mc_states_explored": report.states_explored,
        }

    module = _offenders_module()
    for name in module.OFFENDERS:
        device, lp_kernel = module.make_offender_case(name)
        findings = lint_kernel_object(lp_kernel, device=device)
        report = check_case(
            lambda shadow, _n=name: module.make_offender_case(
                _n, shadow=shadow, cache_lines=2
            ),
            name,
            MCOptions(cache_lines=2, budget=OFFENDER_BUDGET),
        )
        table[name] = {
            "static_race_rules": sorted(
                {f.rule for f in findings if f.rule in RACE_RULES
                 and not f.suppressed}
            ),
            "mc_counterexample": not report.converged,
            "mc_states_explored": report.states_explored,
        }
    return table


@pytest.mark.tier2
def test_verdict_table_matches_committed_fixture():
    expected = json.loads(VERDICTS_PATH.read_text())["cases"]
    actual = compute_verdicts()
    assert actual == expected


@pytest.mark.tier2
def test_committed_table_is_never_less_conservative_than_mc():
    # The LP007 invariant, pinned on the fixture itself: wherever the
    # model checker reached a non-converging crash state, the static
    # analyzer flagged a race rule.
    cases = json.loads(VERDICTS_PATH.read_text())["cases"]
    for name, verdict in cases.items():
        if verdict["mc_counterexample"]:
            assert verdict["static_race_rules"], name
    # The clean workloads stay clean on both sides...
    from repro.workloads import WORKLOADS

    for name in WORKLOADS:
        assert not cases[name]["mc_counterexample"], name
        assert not cases[name]["static_race_rules"], name
    # ...and the seeded offenders prove each side can actually fail.
    assert cases["lp008-wrap"]["mc_counterexample"]
    assert "LP008" in cases["lp008-wrap"]["static_race_rules"]
    assert cases["lp009-feedback"]["mc_counterexample"]
    assert "LP009" in cases["lp009-feedback"]["static_race_rules"]
    # LP010 is the conservative case: statically flagged, dynamically
    # unreproducible under the uniform simulator.
    assert not cases["lp010-shared-escape"]["mc_counterexample"]
    assert "LP010" in cases["lp010-shared-escape"]["static_race_rules"]


if __name__ == "__main__":
    VERDICTS_PATH.write_text(
        json.dumps({"cases": compute_verdicts()}, indent=2) + "\n"
    )
    print(f"wrote {VERDICTS_PATH}")
