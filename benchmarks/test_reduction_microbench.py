"""Figure 1 — the warp-level shuffle reduction microbenchmark.

``__shfl_down_sync`` reduces a warp in log2(32) = 5 register-to-
register steps (vs 31 sequential combines), bit-exactly equal to the
sequential fold for the commutative checksum lanes.
"""

from _common import run_experiment


def test_shuffle_reduction_microbench(benchmark):
    result = run_experiment(benchmark, "fig1")
    row = result.rows[0]
    assert row["shuffle_steps"] == 5
    assert row["sequential_steps"] == 31
    assert row["parallel_equals_sequential"]
