"""Shared plumbing for the per-table/figure benchmark suite.

Each benchmark runs one experiment from
:mod:`repro.bench.experiments`, times it with pytest-benchmark, prints
the paper-style table (paper-vs-measured columns), and asserts the
experiment's fidelity checks — the shape claims of the paper that the
reproduction must preserve.
"""

from __future__ import annotations

from repro.bench.experiments import EXPERIMENTS, ExperimentResult


def run_experiment(benchmark, exp_id: str, **kwargs) -> ExperimentResult:
    """Execute one registered experiment under the benchmark fixture."""
    fn = EXPERIMENTS[exp_id]
    result = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    failing = [name for name, ok in result.fidelity.items() if not ok]
    assert not failing, (
        f"{exp_id}: fidelity checks failed: {failing}\n{result.rendered}"
    )
    return result
