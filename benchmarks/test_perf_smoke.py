"""Tier-2 gate: launch-engine throughput vs the committed baseline.

Re-measures :mod:`perf_smoke` and fails on a >30 % blocks/sec
regression against ``BENCH_sim.json``. Also pins the headline claims of
the engine work: the batched engine is at least 3x faster than serial
on the reference workloads, the shared-memory parallel engine is at
least 2x faster than serial on spmv and tmm (and within tolerance of
the batched engine it composes with), and post-crash *validation* is
at least 5x (batched) / 1x (parallel) faster than serial on the
recovery scenario — all with bit-identical results; parity is asserted
inside the measurements themselves.
"""

import pytest

import perf_smoke


@pytest.fixture(scope="module")
def suite():
    if not perf_smoke.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {perf_smoke.BASELINE_PATH}")
    return perf_smoke.run_suite()


@pytest.fixture(scope="module")
def recovery_suite():
    if not perf_smoke.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {perf_smoke.BASELINE_PATH}")
    return perf_smoke.run_recovery_suite()


@pytest.fixture(scope="module")
def mapped_suite():
    if not perf_smoke.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {perf_smoke.BASELINE_PATH}")
    return perf_smoke.run_mapped_suite()


@pytest.fixture(scope="module")
def telemetry_suite():
    if not perf_smoke.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {perf_smoke.BASELINE_PATH}")
    return perf_smoke.run_telemetry_suite()


@pytest.fixture(scope="module")
def sharded_suite():
    if not perf_smoke.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {perf_smoke.BASELINE_PATH}")
    return perf_smoke.run_sharded_suite()


@pytest.mark.tier2
def test_no_regression_vs_baseline(suite, recovery_suite, mapped_suite,
                                   telemetry_suite, sharded_suite):
    assert perf_smoke.check_against_baseline(
        suite, recovery_suite, mapped_suite, telemetry_suite,
        sharded_suite
    ) == 0


@pytest.mark.tier2
@pytest.mark.parametrize("workload", list(perf_smoke.WORKLOADS))
def test_batched_engine_speedup(suite, workload):
    speedup = suite[workload]["batched"]["speedup_vs_serial"]
    assert speedup >= 3.0, (
        f"{workload}: batched engine only {speedup:.2f}x vs serial"
    )


@pytest.mark.tier2
def test_batched_validation_speedup(recovery_suite):
    speedup = recovery_suite["batched"]["validate_speedup_vs_serial"]
    assert speedup >= 5.0, (
        f"recovery: batched validation only {speedup:.2f}x vs serial"
    )


@pytest.mark.tier2
@pytest.mark.parametrize("workload", perf_smoke.PARALLEL_SPEEDUP_WORKLOADS)
def test_parallel_engine_speedup(suite, workload):
    speedup = suite[workload]["parallel"]["speedup_vs_serial"]
    assert speedup >= perf_smoke.PARALLEL_SPEEDUP_FLOOR, (
        f"{workload}: parallel engine only {speedup:.2f}x vs serial "
        f"(floor {perf_smoke.PARALLEL_SPEEDUP_FLOOR:.1f}x)"
    )


@pytest.mark.tier2
@pytest.mark.parametrize("workload", perf_smoke.PARALLEL_SPEEDUP_WORKLOADS)
def test_parallel_of_batched_tracks_batched(suite, workload):
    ratio = (suite[workload]["parallel"]["blocks_per_sec"]
             / suite[workload]["batched"]["blocks_per_sec"])
    assert ratio >= perf_smoke.PARALLEL_VS_BATCHED_FLOOR, (
        f"{workload}: parallel(batched) at {ratio:.2f}x of batched "
        f"(floor {perf_smoke.PARALLEL_VS_BATCHED_FLOOR:.1f}x)"
    )


@pytest.mark.tier2
def test_parallel_validation_not_slower_than_serial(recovery_suite):
    speedup = recovery_suite["parallel"]["validate_speedup_vs_serial"]
    assert speedup >= 1.0, (
        f"recovery: parallel validation {speedup:.2f}x vs serial — "
        "the parallel pipeline must never lose to serial"
    )


@pytest.mark.tier2
def test_mapped_writeback_overhead(mapped_suite):
    ratio = mapped_suite["overhead_ratio"]
    assert ratio <= perf_smoke.MAPPED_OVERHEAD_LIMIT, (
        f"mapped heap write-back costs {ratio:.2f}x the in-memory "
        f"shadow (limit {perf_smoke.MAPPED_OVERHEAD_LIMIT:.1f}x)"
    )


@pytest.mark.tier2
def test_telemetry_sampler_overhead(telemetry_suite):
    ratio = telemetry_suite["overhead_ratio"]
    assert ratio <= perf_smoke.TELEMETRY_OVERHEAD_LIMIT, (
        f"sampler-enabled launch costs {ratio:.2f}x the sampler-off "
        f"launch (limit {perf_smoke.TELEMETRY_OVERHEAD_LIMIT:.2f}x)"
    )
    assert telemetry_suite["samples_taken"] > 0, (
        "the sampler thread never sampled during the measured launch"
    )


@pytest.mark.tier2
def test_sharded_recovery_speedup(sharded_suite):
    row = sharded_suite["recovery"]
    assert row["speedup_vs_single"] >= \
        perf_smoke.SHARDED_RECOVERY_SPEEDUP_FLOOR, (
            f"{row['n_shards']}-shard cold recovery only "
            f"{row['speedup_vs_single']:.2f}x the single heap "
            f"(floor {perf_smoke.SHARDED_RECOVERY_SPEEDUP_FLOOR:.1f}x)"
        )
    assert row["n_failed"] > 0, (
        "sharded_recovery measured an empty failed-block set — the "
        "crash plan lost nothing, the speedup is meaningless"
    )


@pytest.mark.tier2
def test_sharded_writeback_overhead(sharded_suite):
    row = sharded_suite["writeback"]
    assert row["overhead_ratio"] <= perf_smoke.SHARDED_WRITEBACK_LIMIT, (
        f"{row['n_shards']}-shard write-back fan-out costs "
        f"{row['overhead_ratio']:.2f}x the single mapped heap "
        f"(limit {perf_smoke.SHARDED_WRITEBACK_LIMIT:.1f}x)"
    )
