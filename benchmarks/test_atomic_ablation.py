"""§IV-D-3 — hardware atomics vs plain load/store emulation.

The paper replaces ``atomicExch`` with a temporary-variable swap and
``atomicCAS`` with an if-compare-swap, and finds overheads *increase*
to 41.9 % (cuckoo) and >16x (quadratic): atomics improve performance.
"""

from _common import run_experiment
from repro.bench.harness import geomean_overhead, geomean_slowdown


def test_atomic_ablation(benchmark):
    result = run_experiment(benchmark, "atomic_ablation")
    rows = result.rows

    gm_quad = geomean_slowdown(r["quad_emulated"] for r in rows)
    gm_cuckoo = geomean_overhead(r["cuckoo_emulated"] for r in rows)
    # Paper bands: quad >16x, cuckoo ~41.9%.
    assert gm_quad > 8.0
    assert 0.10 < gm_cuckoo < 1.0
    # Removing atomics never helps, anywhere.
    for r in rows:
        assert r["quad_emulated"] >= 1.0 + r["quad_hw"] - 1e-9
        assert r["cuckoo_emulated"] >= r["cuckoo_hw"] - 1e-9
