"""Launch-engine throughput smoke: blocks/sec per engine, per workload.

Times the three launch engines (serial, parallel, batched) on the
reference hot paths the engines were built for:

* LP-instrumented SPMV at 1024 blocks (the paper-shape streaming
  kernel: disjoint row ranges, pure store traffic),
* LP-instrumented tiled matmul at 1024 blocks (the paper's running
  example: shared-memory staging, barrier-heavy), and
* an LP-instrumented MEGA-KV search batch (hash probes, dedup'd bucket
  reads, host-side stat accounting).

A third scenario times the *post-crash pipeline* per engine: SPMV at
1024 blocks is crashed mid-kernel, then the crash → validate → recover
sequence is measured (validation wall time separately — that's where
the vectorized fast path lives — and the full eager-recovery cycle).

Every engine run gets a fresh device and buffers; only the launch is
timed. Results are asserted bit-identical across engines before any
number is reported — a fast wrong engine is worthless. The measurements
land in ``BENCH_sim.json`` at the repo root; ``--check`` re-measures
and fails if any engine regressed more than 30 % in blocks/sec against
that committed baseline (the tier-2 CI gate).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # write baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.megakv.kernels import KVInsertKernel, KVSearchKernel, alloc_results
from repro.megakv.store import MegaKVStore
from repro.workloads.generators import small_ints, sparse_csr, unit_floats
from repro.workloads.spmv import SPMVKernel
from repro.workloads.tmm import TiledMatMulKernel

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Regression tolerance for ``--check``: fail below 70 % of baseline.
TOLERANCE = 0.30

#: jobs=None — the container-aware CPU budget, so the parallel engine
#: sizes its pool to what the runner actually grants.
ENGINES = {
    "serial": lambda: repro.make_engine("serial"),
    "parallel": lambda: repro.make_engine("parallel"),
    "batched": lambda: repro.make_engine("batched"),
}


def setup_spmv(engine, shadow=None, cache_lines=None):
    """LP-instrumented SPMV, 1024 blocks x 64 threads, 8 nnz/row."""
    n_blocks, threads, nnz = 1024, 64, 8
    n_rows = n_blocks * threads
    rng = np.random.default_rng(3)
    _, cols, vals = sparse_csr(rng, n_rows, n_rows, nnz)
    x = unit_floats(rng, n_rows)

    device = repro.Device(engine=engine, shadow=shadow,
                          cache_capacity_lines=cache_lines)
    device.alloc("spmv_vals", (vals.size,), np.float32,
                 persistent=True, init=vals)
    device.alloc("spmv_cols", (cols.size,), np.int32,
                 persistent=True, init=cols)
    device.alloc("spmv_x", (n_rows,), np.float32, persistent=True, init=x)
    device.alloc("spmv_y", (n_rows,), np.float32, persistent=True)
    kernel = SPMVKernel(n_rows, nnz, threads)
    lp_kernel = repro.LPRuntime(
        device, repro.LPConfig.paper_best()
    ).instrument(kernel)
    return device, lp_kernel, ("spmv_y",)


def setup_tmm(engine):
    """LP-instrumented tiled matmul, 1024 blocks (512x512, tile 16)."""
    n, tile = 512, 16
    rng = np.random.default_rng(5)
    a = small_ints(rng, (n, n))
    b = small_ints(rng, (n, n))
    device = repro.Device(engine=engine)
    device.alloc("tmm_A", (n, n), np.int32, persistent=True, init=a)
    device.alloc("tmm_B", (n, n), np.int32, persistent=True, init=b)
    device.alloc("tmm_C", (n, n), np.int32, persistent=True)
    kernel = TiledMatMulKernel(n, tile)
    lp_kernel = repro.LPRuntime(
        device, repro.LPConfig.paper_best()
    ).instrument(kernel)
    return device, lp_kernel, ("tmm_C",)


def setup_megakv(engine):
    """LP-instrumented MEGA-KV search batch, 128 blocks x 64 threads."""
    n_blocks, threads = 128, 64
    device = repro.Device(engine=engine)
    store = MegaKVStore(device, capacity=16384)
    rng = np.random.default_rng(11)
    keys = np.unique(
        rng.integers(1, 2 ** 40, size=8000, dtype=np.uint64)
    )
    values = rng.integers(1, 2 ** 40, size=keys.size, dtype=np.uint64)
    device.launch(KVInsertKernel(store, keys, values))

    n_requests = n_blocks * threads
    hits = rng.choice(keys, size=n_requests // 2)
    misses = rng.integers(2 ** 41, 2 ** 42, size=n_requests - hits.size,
                          dtype=np.uint64)
    queries = rng.permutation(np.concatenate([hits, misses]))
    alloc_results(device, "results", queries.size)
    search = KVSearchKernel(store, queries, "results",
                            threads_per_block=threads)
    lp_kernel = repro.LPRuntime(
        device, repro.LPConfig.paper_best()
    ).instrument(search)
    return device, lp_kernel, ("results",)


WORKLOADS = {"spmv": setup_spmv, "tmm": setup_tmm, "megakv": setup_megakv}


def measure_recovery(engine_name: str) -> dict:
    """Post-crash pipeline wall time of one engine (fresh crash, best of 3).

    SPMV at 1024 blocks is crashed halfway through; ``validate_seconds``
    times the standalone validation launch (the fast path under test),
    ``recover_seconds`` the full eager-recovery cycle that follows
    (initial validation + re-execution + re-validation rounds).
    """
    best_validate = float("inf")
    best_recover = float("inf")
    n_blocks = n_failed = 0
    failed: list[int] = []
    outputs = None
    for _ in range(3):
        device, lp_kernel, check_buffers = setup_spmv(
            ENGINES[engine_name]()
        )
        grid = lp_kernel.launch_config().n_blocks
        device.launch(lp_kernel, crash_plan=repro.CrashPlan(
            after_blocks=grid // 2, persist_fraction=0.4, seed=5))
        device.restart()
        manager = repro.RecoveryManager(device, lp_kernel)
        start = time.perf_counter()
        report = manager.validate()
        best_validate = min(best_validate, time.perf_counter() - start)
        start = time.perf_counter()
        recovery = manager.recover()
        best_recover = min(best_recover, time.perf_counter() - start)
        assert recovery.recovered, f"{engine_name}: recovery did not converge"
        n_blocks = report.n_blocks
        n_failed = report.n_failed
        failed = report.failed_blocks
        outputs = {name: device.memory[name].array.copy()
                   for name in check_buffers}
    return {
        "n_blocks": n_blocks,
        "n_failed": n_failed,
        "validate_seconds": round(best_validate, 6),
        "recover_seconds": round(best_recover, 6),
        "validate_blocks_per_sec": round(n_blocks / best_validate, 2),
        "_outputs": outputs,
        "_failed": failed,
    }


def run_recovery_suite() -> dict:
    """Crash → validate → recover per engine, with cross-engine parity."""
    rows = {}
    ref_outputs = ref_failed = None
    for engine_name in ENGINES:
        row = measure_recovery(engine_name)
        outputs = row.pop("_outputs")
        failed = row.pop("_failed")
        if ref_outputs is None:
            ref_outputs, ref_failed = outputs, failed
        else:
            assert failed == ref_failed, (
                f"recovery/{engine_name}: failed-block set diverged "
                "from the serial engine"
            )
            for name, array in outputs.items():
                assert np.array_equal(ref_outputs[name], array), (
                    f"recovery/{engine_name}: buffer {name!r} diverged "
                    "from the serial engine after recovery"
                )
        rows[engine_name] = row
        print(f"recovery {engine_name:9s} "
              f"{row['validate_blocks_per_sec']:12,.1f} blocks/sec "
              f"validate ({row['validate_seconds'] * 1e3:8.1f} ms; "
              f"recover {row['recover_seconds'] * 1e3:8.1f} ms)")
    serial = rows["serial"]["validate_seconds"]
    for row in rows.values():
        row["validate_speedup_vs_serial"] = round(
            serial / row["validate_seconds"], 3
        )
    return rows


#: Absolute ceiling on mapped-shadow write-back overhead: the durable
#: heap must cost at most 2x the in-memory shadow on the eviction-heavy
#: SPMV path (launch + drain, small cache).
MAPPED_OVERHEAD_LIMIT = 2.0

#: Cache capacity for the mapped-writeback scenario: small enough that
#: most lines reach the shadow via the eviction trickle (the worst case
#: for the per-write-back journal arm/commit), not one bulk drain.
MAPPED_CACHE_LINES = 64


def measure_mapped_writeback() -> dict:
    """Launch+drain wall time: in-memory shadow vs the mapped heap.

    Same SPMV instance, serial engine, small write-back cache; the NVM
    images are asserted bit-identical between backends before the ratio
    is reported.
    """
    import tempfile

    best = {"memory": float("inf"), "mapped": float("inf")}
    images: dict[str, bytes] = {}
    lines_written = 0
    for _ in range(3):
        for backend in ("memory", "mapped"):
            tmp = None
            heap = None
            if backend == "mapped":
                tmp = tempfile.TemporaryDirectory(prefix="lp-bench-")
                heap = repro.MappedShadow.create(
                    Path(tmp.name) / "heap.lpnv"
                )
            device, lp_kernel, check_buffers = setup_spmv(
                ENGINES["serial"](), shadow=heap,
                cache_lines=MAPPED_CACHE_LINES,
            )
            start = time.perf_counter()
            device.launch(lp_kernel)
            device.drain()
            best[backend] = min(best[backend],
                                time.perf_counter() - start)
            image = b"".join(
                device.memory[name].shadow.tobytes()
                for name in check_buffers
            )
            if backend in images:
                assert images[backend] == image, (
                    f"mapped_writeback: {backend} NVM image not "
                    "deterministic across repetitions"
                )
            images[backend] = image
            if heap is not None:
                lines_written = heap.lines_written
                heap.close()
                tmp.cleanup()
    assert images["memory"] == images["mapped"], (
        "mapped_writeback: mapped NVM image diverged from the "
        "in-memory shadow"
    )
    ratio = best["mapped"] / best["memory"]
    return {
        "memory_seconds": round(best["memory"], 6),
        "mapped_seconds": round(best["mapped"], 6),
        "overhead_ratio": round(ratio, 3),
        "lines_written": lines_written,
        "cache_lines": MAPPED_CACHE_LINES,
    }


def run_mapped_suite() -> dict:
    row = measure_mapped_writeback()
    print(f"mapped   writeback {row['overhead_ratio']:10.2f}x overhead "
          f"(memory {row['memory_seconds'] * 1e3:8.1f} ms, "
          f"mapped {row['mapped_seconds'] * 1e3:8.1f} ms, "
          f"{row['lines_written']} lines)")
    return row


#: Shard count for the sharded-heap scenarios (matches the CI
#: ``crash-test --shards 4`` smoke).
SHARD_COUNT = 4

#: Floor on the headline sharded-recovery claim: cold-open recovery of
#: a 4-shard heap (concurrent shard reopen + the parallel per-shard
#: validate/recover pipeline) must beat the single mapped heap's
#: serial recovery by at least this factor, at equal failed-block
#: counts.
SHARDED_RECOVERY_SPEEDUP_FLOOR = 2.0

#: Ceiling on the shard fan-out's write-back cost: launch + drain on a
#: 4-shard heap may cost at most 1.3x the single mapped heap.
SHARDED_WRITEBACK_LIMIT = 1.3


def _crash_onto_heap(heap) -> None:
    """Run SPMV halfway into a crash against ``heap`` and close it cold.

    Same crash plan as :func:`measure_recovery`, so the failed-block
    set is identical across backends (cache behavior is
    backend-independent) — the two recovery arms compare equal work.
    """
    device, lp_kernel, _ = setup_spmv(ENGINES["serial"](), shadow=heap,
                                      cache_lines=MAPPED_CACHE_LINES)
    grid = lp_kernel.launch_config().n_blocks
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(
        after_blocks=grid // 2, persist_fraction=0.4, seed=5))
    heap.close()


def measure_sharded_recovery() -> dict:
    """Cold-open recovery wall time: single mapped heap vs 4 shards.

    Both arms crash the same SPMV instance onto a durable heap, close
    it, and then time the full cold recovery: reopen (concurrent
    per-shard for the sharded arm), adopt into a rebuilt device, and
    the eager validate → re-execute → re-validate cycle. The single
    heap recovers on the serial engine (the pre-sharding pipeline);
    the sharded heap recovers on the parallel engine with shard-affine
    chunk dispatch. Failed-block sets are asserted equal and the
    recovered NVM images bit-identical before the speedup is reported.
    """
    import tempfile

    from repro.nvm.sharded import ShardedShadow

    best = {"single": float("inf"), "sharded": float("inf")}
    failed_sets: dict[str, list[int]] = {}
    images: dict[str, bytes] = {}
    n_failed = 0
    for _ in range(3):
        for arm in ("single", "sharded"):
            with tempfile.TemporaryDirectory(prefix="lp-bench-") as tmp:
                path = Path(tmp) / "heap.lpnv"
                if arm == "single":
                    heap = repro.MappedShadow.create(path)
                    engine_name = "serial"
                else:
                    heap = ShardedShadow.create(path,
                                                n_shards=SHARD_COUNT)
                    engine_name = "parallel"
                _crash_onto_heap(heap)

                # Rebuild the device deterministically (not timed —
                # identical cost in both arms), then time the cold
                # recovery end to end.
                device, lp_kernel, check_buffers = setup_spmv(
                    ENGINES[engine_name]())
                opener = (ShardedShadow.open if arm == "sharded"
                          else repro.MappedShadow.open)
                start = time.perf_counter()
                reopened = opener(path)
                reopened.adopt(device.memory)
                report = repro.RecoveryManager(device,
                                               lp_kernel).recover()
                best[arm] = min(best[arm], time.perf_counter() - start)
                assert report.recovered, (
                    f"sharded_recovery/{arm}: recovery did not converge"
                )
                failed_sets[arm] = report.initial.failed_blocks
                n_failed = report.initial.n_failed
                images[arm] = b"".join(
                    device.memory[name].shadow.tobytes()
                    for name in check_buffers
                )
                reopened.close()
    assert failed_sets["single"] == failed_sets["sharded"], (
        "sharded_recovery: failed-block sets diverged between the "
        "single heap and the sharded heap"
    )
    assert images["single"] == images["sharded"], (
        "sharded_recovery: recovered NVM image diverged between the "
        "single heap and the sharded heap"
    )
    return {
        "n_shards": SHARD_COUNT,
        "n_failed": n_failed,
        "single_seconds": round(best["single"], 6),
        "sharded_seconds": round(best["sharded"], 6),
        "speedup_vs_single": round(best["single"] / best["sharded"], 3),
    }


def measure_sharded_writeback() -> dict:
    """Launch+drain wall time: single mapped heap vs the 4-shard heap.

    Same eviction-heavy SPMV path as :func:`measure_mapped_writeback`,
    serial engine; NVM images are asserted bit-identical between the
    two durable backends before the fan-out overhead is reported.
    """
    import tempfile

    from repro.nvm.sharded import ShardedShadow

    best = {"mapped": float("inf"), "sharded": float("inf")}
    images: dict[str, bytes] = {}
    for _ in range(3):
        for backend in ("mapped", "sharded"):
            with tempfile.TemporaryDirectory(prefix="lp-bench-") as tmp:
                path = Path(tmp) / "heap.lpnv"
                heap = (repro.MappedShadow.create(path)
                        if backend == "mapped"
                        else ShardedShadow.create(path,
                                                  n_shards=SHARD_COUNT))
                device, lp_kernel, check_buffers = setup_spmv(
                    ENGINES["serial"](), shadow=heap,
                    cache_lines=MAPPED_CACHE_LINES,
                )
                start = time.perf_counter()
                device.launch(lp_kernel)
                device.drain()
                best[backend] = min(best[backend],
                                    time.perf_counter() - start)
                images[backend] = b"".join(
                    device.memory[name].shadow.tobytes()
                    for name in check_buffers
                )
                heap.close()
    assert images["mapped"] == images["sharded"], (
        "sharded_writeback: sharded NVM image diverged from the "
        "single mapped heap"
    )
    return {
        "n_shards": SHARD_COUNT,
        "mapped_seconds": round(best["mapped"], 6),
        "sharded_seconds": round(best["sharded"], 6),
        "overhead_ratio": round(best["sharded"] / best["mapped"], 3),
        "cache_lines": MAPPED_CACHE_LINES,
    }


def run_sharded_suite() -> dict:
    recovery = measure_sharded_recovery()
    print(f"sharded  recovery  {recovery['speedup_vs_single']:10.2f}x "
          f"vs single heap "
          f"(single {recovery['single_seconds'] * 1e3:8.1f} ms, "
          f"{recovery['n_shards']} shards "
          f"{recovery['sharded_seconds'] * 1e3:8.1f} ms, "
          f"{recovery['n_failed']} failed blocks)")
    writeback = measure_sharded_writeback()
    print(f"sharded  writeback {writeback['overhead_ratio']:10.2f}x "
          f"overhead "
          f"(mapped {writeback['mapped_seconds'] * 1e3:8.1f} ms, "
          f"sharded {writeback['sharded_seconds'] * 1e3:8.1f} ms)")
    return {"recovery": recovery, "writeback": writeback}


#: Ceiling on the telemetry sampler's cost: with a background sampler
#: attached the same metrics-recorded launch may be at most 5 % slower.
#: Override with the ``TELEMETRY_OVERHEAD_LIMIT`` env var (a ratio,
#: e.g. ``1.15``) on noisy shared runners.
TELEMETRY_OVERHEAD_LIMIT = float(
    os.environ.get("TELEMETRY_OVERHEAD_LIMIT", "1.05")
)

#: Sampling period for the overhead scenario: aggressive (50 ms) so a
#: sub-second launch still sees several snapshot cycles.
TELEMETRY_INTERVAL = 0.05


def measure_telemetry_overhead() -> dict:
    """Serial SPMV launch wall time: metrics on, sampler off vs. on.

    Both arms run with a live :class:`MetricsRegistry` (the registry
    itself is priced by ``obs_overhead.py``); the delta isolated here
    is the background :class:`TelemetrySampler` thread snapshotting the
    registry every ``TELEMETRY_INTERVAL`` seconds while the launch's
    hot path increments lock-free.
    """
    from repro import obs

    best = {"off": float("inf"), "on": float("inf")}
    samples_taken = 0
    for _ in range(5):
        for mode in ("off", "on"):
            recorder = obs.Recorder(metrics=obs.MetricsRegistry())
            sampler = None
            if mode == "on":
                sampler = obs.TelemetrySampler(
                    recorder.metrics, interval=TELEMETRY_INTERVAL)
                recorder.sampler = sampler
                sampler.start()
            previous = obs.install(recorder)
            try:
                device, lp_kernel, _ = setup_spmv(ENGINES["serial"]())
                start = time.perf_counter()
                device.launch(lp_kernel)
                best[mode] = min(best[mode],
                                 time.perf_counter() - start)
            finally:
                obs.install(previous)
                if sampler is not None:
                    sampler.stop()
                    samples_taken = max(samples_taken,
                                        len(sampler.samples))
                    sampler.close()
    ratio = best["on"] / best["off"]
    return {
        "off_seconds": round(best["off"], 6),
        "on_seconds": round(best["on"], 6),
        "overhead_ratio": round(ratio, 3),
        "sampler_interval": TELEMETRY_INTERVAL,
        "samples_taken": samples_taken,
    }


def run_telemetry_suite() -> dict:
    row = measure_telemetry_overhead()
    print(f"telemetry sampler  {row['overhead_ratio']:10.2f}x overhead "
          f"(off {row['off_seconds'] * 1e3:8.1f} ms, "
          f"on {row['on_seconds'] * 1e3:8.1f} ms, "
          f"{row['samples_taken']} samples)")
    return row


def measure(setup_fn, engine_name: str) -> dict:
    """Blocks/sec of one engine on one workload (fresh state, best of 3)."""
    best = float("inf")
    n_blocks = 0
    outputs = None
    for _ in range(3):
        device, lp_kernel, check_buffers = setup_fn(ENGINES[engine_name]())
        start = time.perf_counter()
        result = device.launch(lp_kernel)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        n_blocks = result.n_completed
        outputs = {name: device.memory[name].array.copy()
                   for name in check_buffers}
    return {
        "n_blocks": n_blocks,
        "seconds": round(best, 6),
        "blocks_per_sec": round(n_blocks / best, 2),
        "_outputs": outputs,
    }


def run_suite() -> dict:
    suite = {}
    for workload, setup_fn in WORKLOADS.items():
        rows = {}
        reference = None
        for engine_name in ENGINES:
            row = measure(setup_fn, engine_name)
            outputs = row.pop("_outputs")
            if reference is None:
                reference = outputs
            else:
                for name, array in outputs.items():
                    assert np.array_equal(reference[name], array), (
                        f"{workload}/{engine_name}: buffer {name!r} "
                        "diverged from the serial engine"
                    )
            rows[engine_name] = row
            print(f"{workload:8s} {engine_name:9s} "
                  f"{row['blocks_per_sec']:12,.1f} blocks/sec "
                  f"({row['seconds'] * 1e3:8.1f} ms)")
        serial = rows["serial"]["blocks_per_sec"]
        for engine_name, row in rows.items():
            row["speedup_vs_serial"] = round(
                row["blocks_per_sec"] / serial, 3
            )
        suite[workload] = rows
    return suite


#: Workloads whose parallel-vs-serial speedup is a gated headline claim.
PARALLEL_SPEEDUP_WORKLOADS = ("spmv", "tmm")

#: Floor on the gated parallel speedups: the shared-memory engine must
#: beat serial by at least this factor on the workloads above.
PARALLEL_SPEEDUP_FLOOR = 2.0

#: Floor on parallel(batched chunks) vs the batched engine alone. The
#: composed mode ships the same vectorized groups through the pool, so
#: it may trail batched only by chunking + slot overhead — generous
#: here because single-core runners get no fan-out to amortize it.
PARALLEL_VS_BATCHED_FLOOR = 0.5


def derive_parallel_speedup(suite: dict, recovery: dict) -> dict:
    """The ``parallel_speedup`` scenario: headline ratios, no re-timing.

    Derived from the suite's parity-checked measurements: parallel vs
    serial and parallel vs batched per gated workload, plus the
    post-crash validation speedup.
    """
    rows: dict = {}
    for workload in PARALLEL_SPEEDUP_WORKLOADS:
        par = suite[workload]["parallel"]
        bat = suite[workload]["batched"]
        rows[workload] = {
            "speedup_vs_serial": par["speedup_vs_serial"],
            "vs_batched": round(
                par["blocks_per_sec"] / bat["blocks_per_sec"], 3
            ),
        }
        print(f"parallel_speedup {workload:8s} "
              f"{rows[workload]['speedup_vs_serial']:6.2f}x vs serial, "
              f"{rows[workload]['vs_batched']:6.2f}x vs batched")
    rows["validate_speedup_vs_serial"] = \
        recovery["parallel"]["validate_speedup_vs_serial"]
    return rows


def check_against_baseline(suite: dict, recovery: dict | None = None,
                           mapped: dict | None = None,
                           telemetry: dict | None = None,
                           sharded: dict | None = None) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run without --check first",
              file=sys.stderr)
        return 2
    document = json.loads(BASELINE_PATH.read_text())
    baseline = document["workloads"]
    failures = []
    for workload, rows in suite.items():
        for engine_name, row in rows.items():
            base = baseline.get(workload, {}).get(engine_name)
            if base is None:
                continue
            floor = base["blocks_per_sec"] * (1.0 - TOLERANCE)
            if row["blocks_per_sec"] < floor:
                failures.append(
                    f"{workload}/{engine_name}: "
                    f"{row['blocks_per_sec']:,.1f} blocks/sec < "
                    f"{floor:,.1f} (baseline "
                    f"{base['blocks_per_sec']:,.1f} - {TOLERANCE:.0%})"
                )
    for engine_name, row in (recovery or {}).items():
        base = document.get("recovery", {}).get(engine_name)
        if base is None:
            continue
        floor = base["validate_blocks_per_sec"] * (1.0 - TOLERANCE)
        if row["validate_blocks_per_sec"] < floor:
            failures.append(
                f"recovery/{engine_name}: "
                f"{row['validate_blocks_per_sec']:,.1f} validate "
                f"blocks/sec < {floor:,.1f} (baseline "
                f"{base['validate_blocks_per_sec']:,.1f} - {TOLERANCE:.0%})"
            )
    if mapped is not None \
            and mapped["overhead_ratio"] > MAPPED_OVERHEAD_LIMIT:
        failures.append(
            f"mapped_writeback: {mapped['overhead_ratio']:.2f}x "
            f"overhead > {MAPPED_OVERHEAD_LIMIT:.1f}x limit "
            f"(memory {mapped['memory_seconds'] * 1e3:.1f} ms, "
            f"mapped {mapped['mapped_seconds'] * 1e3:.1f} ms)"
        )
    if telemetry is not None \
            and telemetry["overhead_ratio"] > TELEMETRY_OVERHEAD_LIMIT:
        failures.append(
            f"telemetry_overhead: sampler-on launch costs "
            f"{telemetry['overhead_ratio']:.2f}x the sampler-off "
            f"launch > {TELEMETRY_OVERHEAD_LIMIT:.2f}x limit "
            f"(off {telemetry['off_seconds'] * 1e3:.1f} ms, "
            f"on {telemetry['on_seconds'] * 1e3:.1f} ms)"
        )
    if sharded is not None:
        srec, swb = sharded["recovery"], sharded["writeback"]
        if srec["speedup_vs_single"] < SHARDED_RECOVERY_SPEEDUP_FLOOR:
            failures.append(
                f"sharded_recovery: {srec['n_shards']}-shard cold "
                f"recovery is only {srec['speedup_vs_single']:.2f}x "
                f"the single heap < "
                f"{SHARDED_RECOVERY_SPEEDUP_FLOOR:.1f}x floor "
                f"(single {srec['single_seconds'] * 1e3:.1f} ms, "
                f"sharded {srec['sharded_seconds'] * 1e3:.1f} ms)"
            )
        if swb["overhead_ratio"] > SHARDED_WRITEBACK_LIMIT:
            failures.append(
                f"sharded_writeback: {swb['n_shards']}-shard fan-out "
                f"costs {swb['overhead_ratio']:.2f}x the single mapped "
                f"heap > {SHARDED_WRITEBACK_LIMIT:.1f}x limit "
                f"(mapped {swb['mapped_seconds'] * 1e3:.1f} ms, "
                f"sharded {swb['sharded_seconds'] * 1e3:.1f} ms)"
            )
    if failures:
        print("PERF REGRESSION:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    print(f"perf check OK (within {TOLERANCE:.0%} of baseline)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "instead of rewriting it")
    args = parser.parse_args(argv)

    suite = run_suite()
    recovery = run_recovery_suite()
    mapped = run_mapped_suite()
    telemetry = run_telemetry_suite()
    sharded = run_sharded_suite()
    speedup = derive_parallel_speedup(suite, recovery)
    if args.check:
        return check_against_baseline(suite, recovery, mapped,
                                      telemetry, sharded)

    BASELINE_PATH.write_text(json.dumps({
        "benchmark": "launch-engine throughput smoke",
        "command": "PYTHONPATH=src python benchmarks/perf_smoke.py",
        "tolerance": TOLERANCE,
        "mapped_overhead_limit": MAPPED_OVERHEAD_LIMIT,
        "telemetry_overhead_limit": TELEMETRY_OVERHEAD_LIMIT,
        "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        "sharded_recovery_speedup_floor": SHARDED_RECOVERY_SPEEDUP_FLOOR,
        "sharded_writeback_limit": SHARDED_WRITEBACK_LIMIT,
        "workloads": suite,
        "recovery": recovery,
        "mapped_writeback": mapped,
        "telemetry_overhead": telemetry,
        "sharded_recovery": sharded,
        "parallel_speedup": speedup,
    }, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
