"""Extension — Lazy vs Eager Persistency, measured.

The paper's motivating comparison (Sections I-II): EP's logging,
flushing and barriers cost heavily during normal execution and multiply
NVM writes; LP replaces all of it with checksums. The simulator
implements both, so the claim is measured rather than cited.
"""

from _common import run_experiment


def test_ep_vs_lp(benchmark):
    result = run_experiment(benchmark, "ep_vs_lp")
    for row in result.rows:
        assert row["ep_overhead"] > row["lp_overhead"]
        # EP's write amplification dwarfs LP's checksum-only writes.
        assert row["ep_write_amp"] > 5 * max(row["lp_write_amp"], 1e-6)
        assert row["lp_write_amp"] < 0.25
