"""§VII-4 — MEGA-KV: LP overhead of insert / search / delete batches.

The paper's real-world application: 16K-record batches against the
GPU-resident key-value store. Paper overheads: search 3.4 %, delete
5.2 %, insert 2.1 %. The reproduction runs the store functionally and
compares modeled kernel cycles with and without LP instrumentation.
"""

from _common import run_experiment


def test_megakv_operation_overheads(benchmark):
    result = run_experiment(benchmark, "megakv", n_records=16384)
    by = {r["op"]: r["overhead"] for r in result.rows}

    for op, overhead in by.items():
        assert 0.0 < overhead < 0.25, (op, overhead)
    # Insert amortizes LP best (matching the paper's ordering where
    # insert is the cheapest of the three).
    assert by["insert"] <= by["search"] + 1e-9
