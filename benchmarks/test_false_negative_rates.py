"""§IV-B — checksum false negatives under error injection.

Random error injection in the paper put modular/Adler-32 false-negative
rates under 2e-9 each and the modular+parity pair under 1e-12. Here the
injection is deterministic and additionally probes each lane's
*structured* blind spot — the constructive argument for running both
checksums simultaneously.
"""

from _common import run_experiment


def test_false_negative_rates(benchmark):
    result = run_experiment(benchmark, "fnr", n_trials=300)
    by = {(r["scenario"], r["checksums"]): r["rate"] for r in result.rows}

    # Random single-bit flips: always detected, by every lane choice.
    assert by[("random_flip", "modular")] == 1.0
    assert by[("random_flip", "parity")] == 1.0
    assert by[("random_flip", "both")] == 1.0

    # Each lane's blind spot is covered by the other.
    assert by[("paired_flip", "parity")] == 0.0
    assert by[("paired_flip", "both")] == 1.0
    assert by[("sum_preserving", "modular")] == 0.0
    assert by[("sum_preserving", "both")] > 0.9
