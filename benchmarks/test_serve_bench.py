"""Tier-2 gate: KV-service throughput/latency vs BENCH_serve.json.

Re-measures the ``bench-serve`` scenarios (quick shape) and enforces
the two service gates: the batching window buys >= 3x the throughput
of a one-request-per-launch daemon on the same mapped heap, and
serving durably costs at most 2x the in-memory p50. Also sanity-checks
the committed baseline itself — the gates must hold for the numbers we
ship, not just the machine re-running them.
"""

import json

import pytest

from repro.service import bench


@pytest.fixture(scope="module")
def suite():
    if not bench.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {bench.BASELINE_PATH}")
    return bench.run_suite(quick=True)


@pytest.mark.tier2
def test_committed_baseline_passes_its_own_gates():
    if not bench.BASELINE_PATH.exists():
        pytest.skip(f"no baseline at {bench.BASELINE_PATH}")
    doc = json.loads(bench.BASELINE_PATH.read_text())
    assert doc["benchmark"] == "serve_smoke"
    assert bench.check_gates(doc) == []


@pytest.mark.tier2
def test_batched_speedup_floor(suite):
    assert bench.check_gates(suite) == []


@pytest.mark.tier2
def test_no_requests_lost_or_shed(suite):
    for name, sc in suite["scenarios"].items():
        assert sc["errors"] == 0, name
        assert sc["shed"] == 0, name
        assert sc["reconnects"] == 0, name


@pytest.mark.tier2
def test_batching_actually_batches(suite):
    assert suite["scenarios"]["one_per_launch"]["server"][
        "batch_occupancy"]["max"] == 1
    assert suite["scenarios"]["batched_mapped"]["server"][
        "batch_occupancy"]["max"] > 4
