#!/usr/bin/env python3
"""Tour of the paper's LP design space (Section IV).

Walks every valid corner of (checksum table x locks x reduction x
atomics), runs each functionally on a small workload to show they all
produce correct, recoverable results, and then prints the paper-scale
modeled overheads that reproduce Figure 5 / Tables III-V — showing why
the paper lands on the hash-table-less global array.

Run:  python examples/design_space_tour.py
"""

import repro
from repro.bench.harness import estimate, geomean_overhead
from repro.bench.profiles import PROFILES
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime


def functional_sweep() -> None:
    """Every design corner survives a crash on a real workload."""
    print("functional sweep: crash + recovery under every design corner")
    print("-" * 64)
    for config in repro.LPConfig.design_space():
        device = repro.Device(cache_capacity_lines=16)
        work = repro.workloads.SPMVWorkload(scale="tiny")
        kernel = work.setup(device)
        lp_kernel = LPRuntime(device, config).instrument(kernel)
        n_blocks = kernel.launch_config().n_blocks
        device.launch(
            lp_kernel,
            crash_plan=repro.CrashPlan(after_blocks=n_blocks // 2,
                                       persist_fraction=0.4, seed=7),
        )
        report = RecoveryManager(device, lp_kernel).recover()
        work.verify(device)
        print(f"  {config.describe():38s} recovered "
              f"{len(report.recovered_blocks)} regions  OK")
    print()


def modeled_overheads() -> None:
    """Paper-scale overheads for the main design points."""
    points = {
        "quadratic (lock-free, shfl)": repro.LPConfig.naive_quadratic(),
        "cuckoo (lock-free, shfl)": repro.LPConfig.naive_cuckoo(),
        "quadratic + LOCKS": repro.LPConfig.naive_quadratic().with_(
            locks=repro.LockMode.LOCK_BASED
        ),
        "quadratic, NO shuffle": repro.LPConfig.naive_quadratic().with_(
            reduction=repro.ReductionMode.SEQUENTIAL_MEMORY
        ),
        "GLOBAL ARRAY (paper's design)": repro.LPConfig.paper_best(),
    }
    print("paper-scale modeled overheads (geomean over the 8 benchmarks)")
    print("-" * 64)
    for label, config in points.items():
        overheads = [
            estimate(profile, config).overhead
            for profile in PROFILES.values()
        ]
        gm = geomean_overhead(overheads)
        worst = max(overheads)
        print(f"  {label:32s} geomean {gm * 100:8.1f}%   "
              f"worst {worst * 100:10.1f}%")
    print()
    print("the global array wins everywhere: no collisions, no races,")
    print("minimum space — the paper's 2.1% geomean result (Table V).")


def main() -> None:
    functional_sweep()
    modeled_overheads()


if __name__ == "__main__":
    main()
