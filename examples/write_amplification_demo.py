#!/usr/bin/env python3
"""Write amplification on the NVM-timed device (Section VII-3).

NVM wears out: write endurance is limited, so persistency schemes that
flush cache lines and keep logs (Eager Persistency) multiply the write
traffic. Lazy Persistency writes nothing extra except the checksums —
this demo counts every line the simulated persistence domain writes,
with and without LP, on the paper's NVM timings (326.4 GB/s, 160/480 ns).

Run:  python examples/write_amplification_demo.py
"""

import repro
from repro.core.runtime import LPRuntime
from repro.nvm.model import write_amplification
from repro.workloads import make_workload


def run(name: str, with_lp: bool) -> repro.Device:
    device = repro.Device(nvm=repro.NVMSpec.paper_nvm())
    work = make_workload(name, scale="medium")
    kernel = work.setup(device)
    if with_lp:
        kernel = LPRuntime(device, repro.LPConfig.paper_best()).instrument(
            kernel
        )
    device.launch(kernel)
    device.drain()
    if with_lp:
        work.verify(device)
    return device


def main() -> None:
    print("NVM line writes (128 B lines), baseline vs Lazy Persistency")
    print("paper (GPGPU-sim, Titan V + NVM): +0.5% (SPMV) ... +2.2% (MM)")
    print("-" * 66)
    print(f"{'bench':14s} {'baseline':>10s} {'with LP':>10s} "
          f"{'checksum':>9s} {'amplification':>14s}")
    for name in ("spmv", "tmm", "sad"):
        base = run(name, with_lp=False)
        lp = run(name, with_lp=True)
        b = base.memory.write_stats.total_lines
        l = lp.memory.write_stats.total_lines
        cs = lp.memory.write_stats.lines_for_buffers("__lp_")
        amp = write_amplification(lp.memory.write_stats,
                                  base.memory.write_stats)
        print(f"{name:14s} {b:10,d} {l:10,d} {cs:9,d} {amp:13.2%}")
    print("-" * 66)
    print("every extra line is a checksum store — LP flushes nothing,")
    print("logs nothing; data persists by natural cache eviction.")
    print("(functional scale uses smaller blocks than the paper's, so")
    print("the checksum/data ratio — and thus amplification — is a few")
    print("percent here vs 0.5-2.2% at paper scale.)")


if __name__ == "__main__":
    main()
