#!/usr/bin/env python3
"""Quickstart: Lazy Persistency on a simulated NVM-backed GPU.

Runs the paper's running example — tiled matrix multiplication — with
the final LP design (checksum global array + shuffle reduction +
modular & parity checksums), then pulls the plug mid-kernel and
recovers:

1. launch the LP-instrumented kernel;
2. crash the device while half the grid has run and most stores are
   still sitting un-persisted in the write-back cache;
3. validate every LP region (thread block) against the checksum table;
4. re-execute exactly the failed regions;
5. verify the output matches the crash-free reference.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core.recovery import RecoveryManager


def main() -> None:
    # A V100-like device whose global memory sits in an NVM persistence
    # domain; the small cache makes the crash lose plenty.
    device = repro.Device(cache_capacity_lines=16)

    work = repro.workloads.TMMWorkload(scale="small")  # 64x64 int32
    kernel = work.setup(device)
    n_blocks = kernel.launch_config().n_blocks
    print(f"TMM: {work.n}x{work.n}, {n_blocks} thread blocks "
          f"of {kernel.launch_config().threads_per_block} threads")

    # Attach Lazy Persistency: one directive-equivalent call. The
    # checksum table is sized from the grid (one entry per block).
    lp = repro.LPRuntime(device, repro.LPConfig.paper_best())
    lp_kernel = lp.instrument(kernel)
    print(f"LP design: {lp_kernel.config.describe()} "
          f"({lp_kernel.table.space_bytes} B checksum table, "
          f"{lp_kernel.space_overhead() * 100:.2f}% space overhead)")

    # Power fails after half the blocks; a random 30% of dirty cache
    # lines happened to be written back just in time, the rest are lost.
    crash = repro.CrashPlan(after_blocks=n_blocks // 2,
                            persist_fraction=0.3, seed=42)
    result = device.launch(lp_kernel, crash_plan=crash)
    print(f"\nCRASH after {result.n_completed}/{n_blocks} blocks: "
          f"{result.crash_report.n_lost} cache lines lost")

    wrong = np.count_nonzero(
        device.memory["tmm_C"].array != work.reference()["tmm_C"]
    )
    print(f"post-crash state: {wrong} of {work.n * work.n} output "
          "elements stale")

    # Eager recovery: validate each region's checksum against the data
    # found in memory; re-execute the regions that fail.
    manager = RecoveryManager(device, lp_kernel)
    report = manager.recover()
    print(f"\nvalidation flagged {report.initial.n_failed} regions "
          f"({len(report.initial.missing_checksums)} with missing "
          "checksums); re-executed them")

    work.verify(device)
    print("output now matches the crash-free reference — recovered.")
    print(f"recovery cost: {report.total_recovery_cycles:,.0f} modeled "
          "cycles (validation + re-execution)")


if __name__ == "__main__":
    main()
