#!/usr/bin/env python3
"""MEGA-KV: a crash-recoverable GPU key-value store (Section VII-4).

Drives the batched key-value store the way MEGA-KV's host side does —
insert / search / delete batches against a GPU-resident index — with
every batch protected by Lazy Persistency. A power failure strikes in
the middle of an insert batch and again during a delete batch; the
session recovers each batch before admitting the next, and the store's
contents end up exactly as if no crash had happened.

Run:  python examples/megakv_server.py
"""

import numpy as np

import repro
from repro.megakv import KVBatchSession, MegaKVStore
from repro.workloads.generators import key_value_records


def main() -> None:
    device = repro.Device(cache_capacity_lines=32)
    store = MegaKVStore(device, capacity=4096)
    session = KVBatchSession(device, store, repro.LPConfig.paper_best())
    rng = np.random.default_rng(0)

    keys, vals = key_value_records(rng, 2000)
    print(f"store: {store.n_buckets} buckets x 8 slots "
          f"({store.n_slots} total)")

    # --- SET batch, interrupted by a crash --------------------------------
    out = session.insert(
        keys, vals,
        crash_plan=repro.CrashPlan(after_blocks=12,
                                   persist_fraction=0.35, seed=3),
    )
    print(f"\ninsert batch of {keys.size}: CRASHED after "
          f"{out.launch.n_completed} blocks, "
          f"recovered {len(out.recovery.recovered_blocks)} regions")
    assert store.contents() == dict(zip(map(int, keys), map(int, vals)))
    print(f"store holds all {len(store.contents())} records "
          f"(load factor {store.load_factor:.1%})")

    # --- GET batch ----------------------------------------------------------
    res = session.search(keys[:500])
    assert np.array_equal(res.results, vals[:500])
    print(f"\nsearch batch of 500: all hits correct "
          f"(modeled {res.launch.total_cycles:,.0f} cycles)")

    # --- DELETE batch, also interrupted -------------------------------------
    out = session.delete(
        keys[:800],
        crash_plan=repro.CrashPlan(after_blocks=5,
                                   persist_fraction=0.5, seed=9),
    )
    print(f"\ndelete batch of 800: CRASHED after "
          f"{out.launch.n_completed} blocks, recovered")
    remaining = store.contents()
    assert remaining == dict(zip(map(int, keys[800:]), map(int, vals[800:])))
    print(f"store holds exactly the surviving {len(remaining)} records")

    # --- misses come back as 0 ------------------------------------------------
    res = session.search(keys[:10])
    assert np.all(res.results == 0)
    print("\ndeleted keys now miss — the store is consistent.")
    print(f"\nop stats: {store.stats.inserts} inserts, "
          f"{store.stats.searches} searches, "
          f"{store.stats.removed} removals")


if __name__ == "__main__":
    main()
