#!/usr/bin/env python3
"""Lazy vs Eager Persistency, head to head (extension).

The paper's opening argument: Eager Persistency pays during *normal
execution* — undo logs, cache-line flushes, persist barriers, 2x+
NVM writes — while Lazy Persistency pays only at *recovery time* (the
rare case) and writes nothing extra but checksums. GPUs do not even
have EP's instructions; the simulator does, so the argument can be
measured.

Both schemes run the same kernel, crash, and recover — by opposite
mechanisms:

* **EP** rolls back uncommitted regions from undo logs (no validation
  pass, no recomputation of completed work);
* **LP** validates every region's checksum and re-executes failures.

Run:  python examples/lazy_vs_eager.py
"""

import repro
from repro.core.recovery import RecoveryManager
from repro.ep import EPRecoveryManager, EPRuntime
from repro.workloads.tmm import TMMWorkload


def build(mode: str):
    device = repro.Device(cache_capacity_lines=32)
    work = TMMWorkload(scale="small")
    kernel = work.setup(device)
    if mode == "lp":
        kernel = repro.LPRuntime(device,
                                 repro.LPConfig.paper_best()).instrument(
            kernel
        )
    elif mode == "ep":
        kernel = EPRuntime(device).instrument(kernel)
    return device, work, kernel


def main() -> None:
    # --- normal-execution costs --------------------------------------------
    print("normal execution (TMM small; modeled cycles, NVM line writes)")
    print("-" * 64)
    stats = {}
    for mode in ("base", "lp", "ep"):
        device, work, kernel = build(mode)
        result = device.launch(kernel)
        work.verify(device)
        device.drain()
        stats[mode] = (result.total_cycles,
                       device.memory.write_stats.total_lines)
        cyc, lines = stats[mode]
        print(f"  {mode:5s} {cyc:12,.0f} cycles   {lines:6,d} lines")
    base_c, base_l = stats["base"]
    for mode in ("lp", "ep"):
        cyc, lines = stats[mode]
        print(f"  {mode}: +{(cyc / base_c - 1) * 100:6.1f}% time, "
              f"+{(lines / base_l - 1) * 100:6.1f}% NVM writes")

    # --- crash + recovery, both ways ------------------------------------------
    print("\ncrash after half the grid, then recover")
    print("-" * 64)

    device, work, lp_kernel = build("lp")
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(
        after_blocks=32, persist_fraction=0.3, seed=1))
    report = RecoveryManager(device, lp_kernel).recover()
    work.verify(device)
    print(f"  LP: validated all regions, re-executed "
          f"{len(report.recovered_blocks)}; "
          f"{report.total_recovery_cycles:,.0f} recovery cycles")

    device, work, ep_kernel = build("ep")
    device.launch(ep_kernel, crash_plan=repro.CrashPlan(
        after_blocks=32, persist_fraction=0.3, seed=1))
    ep_report = EPRecoveryManager(device, ep_kernel).recover()
    work.verify(device)
    relaunch = ep_report.relaunch.total_cycles if ep_report.relaunch else 0
    print(f"  EP: no validation needed; rolled back "
          f"{len(ep_report.uncommitted_blocks)} uncommitted regions "
          f"({ep_report.undo_records_applied} undo records), re-ran them "
          f"in {relaunch:,.0f} cycles")

    print("\nthe trade the paper describes: EP taxes every run,")
    print("LP taxes only the crash — and crashes are the rare case.")


if __name__ == "__main__":
    main()
