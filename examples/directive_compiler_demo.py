#!/usr/bin/env python3
"""The two-directive programming model (Section VI), both ways.

Part 1 — source-to-source: feed the paper's Listings 5-6 (a CUDA matrix
multiply annotated with ``#pragma nvm lpcuda_init`` and
``lpcuda_checksum``) through the directive compiler and print the
generated host code, instrumented kernel, and the check-and-recovery
kernel of Listing 7.

Part 2 — executable: the same two-step programming model on the
simulator via the Python DSL, including a crash and recovery.

Run:  python examples/directive_compiler_demo.py
"""

import numpy as np

import repro
from repro.compiler import compile_program
from repro.compiler.pydsl import kernel_from_function, lazy_persistent
from repro.core.recovery import RecoveryManager

PAPER_LISTING = """\
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
MatrixMulCUDA<<<grid, threads, 0, stream>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+^", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"""


def source_to_source() -> None:
    print("=" * 70)
    print("PART 1: the paper's Listings 5-6 through the directive compiler")
    print("=" * 70)
    out = compile_program(PAPER_LISTING)
    print("\n--- generated host code (lpcuda_init lowered) ---")
    print(out.host_code.splitlines()[0])
    print("\n--- instrumented kernel (Listing 2's shape, generated) ---")
    print(out.kernel_code)
    print("\n--- check-and-recovery kernel (Listing 7, generated) ---")
    print(out.recovery_code)


def executable_dsl() -> None:
    print()
    print("=" * 70)
    print("PART 2: the same model, executable on the simulator")
    print("=" * 70)

    # The lpcuda_checksum analogue: declare which buffer the region's
    # persistent stores land in.
    @kernel_from_function(grid=(8, 1), block=(32, 1), protected=("y",))
    def saxpy(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        a = np.float32(2.0)
        ctx.st("y", idx, a * ctx.ld("x", idx) + ctx.ld("y0", idx),
               slots=ctx.tid)
        ctx.flops(2)

    device = repro.Device(cache_capacity_lines=8)
    n = 256
    x = np.arange(n, dtype=np.float32)
    y0 = np.ones(n, dtype=np.float32)
    device.alloc("x", (n,), np.float32, init=x)
    device.alloc("y0", (n,), np.float32, init=y0)
    device.alloc("y", (n,), np.float32)

    # The lpcuda_init analogue: one call sizes and attaches the table.
    lp_kernel = lazy_persistent(device, saxpy)
    device.launch(lp_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=4, seed=5))
    print(f"\ncrashed mid-saxpy; "
          f"{np.count_nonzero(device.memory['y'].array == 0)} elements "
          "stale")
    RecoveryManager(device, lp_kernel).recover()
    assert np.allclose(device.memory["y"].array, 2.0 * x + y0)
    print("recovered: y == 2x + y0 everywhere.")


def main() -> None:
    source_to_source()
    executable_dsl()


if __name__ == "__main__":
    main()
