"""Unit tests for warp shuffle emulation."""

import numpy as np
import pytest

from repro.gpu.warp import (
    WARP_SIZE,
    lane_ids,
    shfl_down,
    shfl_xor,
    warp_ids,
    warp_reduce,
)


def test_shfl_down_basic():
    vals = np.arange(32)
    out = shfl_down(vals, 1)
    # Lane i receives lane i+1; last lane keeps its own value.
    assert np.array_equal(out[:-1], vals[1:])
    assert out[-1] == vals[-1]


def test_shfl_down_multi_warp():
    vals = np.arange(64)
    out = shfl_down(vals, 16)
    assert out[0] == 16
    assert out[32] == 48           # second warp shifts within itself
    assert out[31] == 31           # no cross-warp leakage
    assert out[48] == 48           # lanes with no source keep their own


def test_shfl_down_zero_offset_is_identity():
    vals = np.arange(40)
    assert np.array_equal(shfl_down(vals, 0), vals)


def test_shfl_down_partial_warp_pads_with_zero():
    vals = np.arange(1, 41)  # 40 threads: warp 1 has 8 live lanes
    out = shfl_down(vals, 4)
    # Thread 36 (lane 4 of warp 1) sources lane 8 -> padding 0.
    assert out[36] == 0
    assert out[35] == 40


def test_shfl_down_negative_offset_rejected():
    with pytest.raises(ValueError):
        shfl_down(np.arange(32), -1)


def test_shfl_xor_swaps_pairs():
    vals = np.arange(32)
    out = shfl_xor(vals, 1)
    assert out[0] == 1 and out[1] == 0
    assert out[30] == 31 and out[31] == 30


def test_shfl_xor_halves():
    vals = np.arange(32)
    out = shfl_xor(vals, 16)
    assert np.array_equal(out, np.concatenate([vals[16:], vals[:16]]))


def test_shfl_xor_bad_mask_rejected():
    with pytest.raises(ValueError):
        shfl_xor(np.arange(32), 32)


def test_warp_reduce_add_matches_sum():
    rng = np.random.default_rng(0)
    vals = rng.integers(0, 1000, size=96).astype(np.uint64)
    reduced, steps = warp_reduce(vals, "add")
    assert steps == 5  # log2(32)
    expect = vals.reshape(3, 32).sum(axis=1)
    assert np.array_equal(reduced, expect)


def test_warp_reduce_xor_matches_fold():
    rng = np.random.default_rng(1)
    vals = rng.integers(0, 1 << 60, size=64).astype(np.uint64)
    reduced, _ = warp_reduce(vals, "xor")
    expect = np.bitwise_xor.reduce(vals.reshape(2, 32), axis=1)
    assert np.array_equal(reduced, expect)


def test_warp_reduce_partial_warp():
    vals = np.arange(1, 41).astype(np.uint64)  # 40 threads
    reduced, _ = warp_reduce(vals, "add")
    assert reduced[0] == np.sum(np.arange(1, 33))
    assert reduced[1] == np.sum(np.arange(33, 41))


def test_warp_reduce_unknown_op_rejected():
    with pytest.raises(ValueError):
        warp_reduce(np.arange(32), "mul")


def test_lane_and_warp_ids():
    assert np.array_equal(lane_ids(4), [0, 1, 2, 3])
    assert lane_ids(40)[32] == 0
    assert warp_ids(40)[31] == 0
    assert warp_ids(40)[32] == 1
