"""Unit tests for per-block shared memory."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.gpu.shared import SharedMemory


def test_alloc_and_rw():
    shm = SharedMemory()
    arr = shm.alloc("a", (8,), np.int32)
    shm.write("a", slice(0, 4), np.arange(4))
    assert np.array_equal(arr[:4], np.arange(4))
    out = shm.read("a", slice(0, 4))
    assert np.array_equal(out, np.arange(4))


def test_traffic_counts_reads_and_writes():
    shm = SharedMemory()
    shm.alloc("a", (8,), np.int32)
    shm.write("a", slice(0, 8), np.zeros(8, np.int32))
    shm.read("a", slice(0, 8))
    assert shm.traffic_bytes == 8 * 4 * 2


def test_alloc_is_idempotent_per_name():
    shm = SharedMemory()
    a1 = shm.alloc("a", (8,), np.int32)
    a1[0] = 7
    a2 = shm.alloc("a", (8,), np.int32)
    assert a2[0] == 7
    assert a1 is a2


def test_capacity_overflow_rejected():
    shm = SharedMemory(capacity_bytes=64)
    shm.alloc("a", (8,), np.int32)  # 32 bytes
    with pytest.raises(AllocationError):
        shm.alloc("b", (16,), np.int32)  # 64 more bytes
    assert shm.used_bytes == 32


def test_int_shape_accepted():
    shm = SharedMemory()
    arr = shm.alloc("a", 4, np.float32)
    assert arr.shape == (4,)


def test_unknown_name_rejected():
    shm = SharedMemory()
    with pytest.raises(AllocationError):
        shm.read("ghost", slice(0, 1))
    with pytest.raises(AllocationError):
        shm.raw("ghost")
