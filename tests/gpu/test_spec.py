"""Unit tests for GPU and NVM hardware specs."""

import pytest

from repro.gpu.spec import GPUSpec, NVMSpec


def test_v100_preset_is_default():
    spec = GPUSpec.v100()
    assert spec.sm_count == 80
    assert spec.total_lanes == 80 * 64
    assert spec.warp_size == 32


def test_bandwidth_per_cycle_conversion():
    spec = GPUSpec.v100()
    assert spec.mem_bytes_per_cycle == pytest.approx(900.0 / 1.38)


def test_concurrent_blocks_limited_by_threads():
    spec = GPUSpec.v100()
    # 1024-thread blocks: 2 per SM (2048-thread cap).
    assert spec.concurrent_blocks(1024) == 160
    # 64-thread blocks: block cap of 32 per SM dominates.
    assert spec.concurrent_blocks(64) == 2560
    # Unspecified: the raw block cap.
    assert spec.concurrent_blocks() == 2560
    assert spec.max_concurrent_blocks == 2560


def test_concurrent_blocks_never_zero():
    spec = GPUSpec.v100()
    assert spec.concurrent_blocks(4096) >= spec.sm_count


def test_cycles_to_us():
    spec = GPUSpec.v100()
    assert spec.cycles_to_us(1380) == pytest.approx(1.0)


def test_bad_line_size_rejected():
    with pytest.raises(ValueError):
        GPUSpec(line_size=100)
    with pytest.raises(ValueError):
        GPUSpec(sm_count=0)


def test_nvm_dram_like_inherits_bandwidth():
    spec = GPUSpec.v100()
    nvm = NVMSpec.dram_like()
    assert nvm.bytes_per_cycle(spec) == pytest.approx(spec.mem_bytes_per_cycle)


def test_paper_nvm_throttles_bandwidth():
    spec = GPUSpec.v100()
    nvm = NVMSpec.paper_nvm()
    assert nvm.bw_gbps == pytest.approx(326.4)
    assert nvm.bytes_per_cycle(spec) < spec.mem_bytes_per_cycle
    assert nvm.write_latency_cycles(spec) == pytest.approx(480 * 1.38)
    assert nvm.read_latency_cycles(spec) == pytest.approx(160 * 1.38)


def test_nvm_validation():
    with pytest.raises(ValueError):
        NVMSpec(bw_gbps=-1.0)
    with pytest.raises(ValueError):
        NVMSpec(read_ns=-5.0)


def test_titan_v_preset():
    assert GPUSpec.titan_v().name == "TitanV"
