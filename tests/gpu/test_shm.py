"""Unit tests for the shared-memory plumbing (segments, janitor, codec)."""

import os
import signal

import numpy as np
import pytest

from repro.gpu import shm


# ---------------------------------------------------------------------------
# cpu_budget
# ---------------------------------------------------------------------------

def test_cpu_budget_is_positive():
    assert shm.cpu_budget() >= 1


def test_cpu_budget_respects_affinity():
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("no scheduling affinity on this platform")
    assert shm.cpu_budget() <= max(1, len(os.sched_getaffinity(0)))


# ---------------------------------------------------------------------------
# Segment lifecycle
# ---------------------------------------------------------------------------

def test_segment_create_attach_destroy():
    seg = shm.SharedSegment.create("test", 4096)
    assert seg.name.startswith(f"{shm.SEGMENT_PREFIX}-{os.getpid()}-test-")
    assert seg.nbytes >= 4096
    arr = seg.ndarray(np.int64, (8,))
    arr[:] = np.arange(8)

    other = shm.SharedSegment.attach(seg.name)
    view = other.ndarray(np.int64, (8,))
    assert np.array_equal(view, np.arange(8))
    view[0] = 99
    assert arr[0] == 99  # both views alias one mapping

    del view
    other.close()
    del arr
    seg.destroy()
    assert seg.name not in shm.leaked_segments()


def test_destroy_is_idempotent_and_attach_side_never_unlinks():
    seg = shm.SharedSegment.create("test", 128)
    other = shm.SharedSegment.attach(seg.name)
    other.destroy()  # non-owner: must only close, not unlink
    assert seg.name in shm.leaked_segments()
    seg.destroy()
    seg.destroy()
    assert seg.name not in shm.leaked_segments()


def test_close_tolerates_live_views():
    seg = shm.SharedSegment.create("test", 256)
    view = seg.ndarray(np.uint8, (256,))
    seg.destroy()  # view still alive: name must go, no exception
    assert seg.name not in shm.leaked_segments()
    assert view[0] == 0  # the pinned mapping stays readable


def test_registry_tracks_owned_segments():
    seg = shm.SharedSegment.create("test", 64)
    assert seg.name in shm.live_segment_names()
    seg.destroy()
    assert seg.name not in shm.live_segment_names()


def test_disown_all_revokes_unlink_rights():
    seg = shm.SharedSegment.create("test", 64)
    try:
        shm.disown_all()
        assert not seg.owner
        seg.destroy()  # now a no-op unlink: the name must survive
        assert seg.name in shm.leaked_segments()
    finally:
        seg.owner = True
        seg.destroy()


# ---------------------------------------------------------------------------
# Orphan janitor
# ---------------------------------------------------------------------------

def test_reap_orphans_removes_dead_creators_segment():
    pid = os.fork()
    if pid == 0:  # child: create a segment, then die without cleanup
        shm.SharedSegment.create("orphan", 1024)
        os.kill(os.getpid(), signal.SIGKILL)
    os.waitpid(pid, 0)
    orphaned = [n for n in shm.leaked_segments()
                if n.startswith(f"{shm.SEGMENT_PREFIX}-{pid}-")]
    assert orphaned, "child should have left an orphan behind"
    reaped = shm.reap_orphans()
    assert set(orphaned) <= set(reaped)
    assert not [n for n in shm.leaked_segments()
                if n.startswith(f"{shm.SEGMENT_PREFIX}-{pid}-")]


def test_reap_orphans_spares_live_creators():
    seg = shm.SharedSegment.create("test", 64)
    try:
        assert seg.name not in shm.reap_orphans()
        assert seg.name in shm.leaked_segments()
    finally:
        seg.destroy()


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------

def test_codec_scalar_roundtrip():
    w = shm.PayloadWriter()
    w.u8(7)
    w.u32(123456)
    w.i64(-42)
    w.str_("tmm_C")
    w.bytes_(b"\x00raw\xff")
    r = shm.PayloadReader(w.getvalue())
    assert r.u8() == 7
    assert r.u32() == 123456
    assert r.i64() == -42
    assert r.str_() == "tmm_C"
    assert r.bytes_() == b"\x00raw\xff"


@pytest.mark.parametrize("arr", [
    np.arange(12, dtype=np.int32).reshape(3, 4),
    np.array([], dtype=np.float64),
    np.array(5, dtype=np.uint16),
    np.random.default_rng(0).random((2, 3, 4)),
    np.array([True, False, True]),
])
def test_codec_array_roundtrip(arr):
    w = shm.PayloadWriter()
    w.array(arr)
    out = shm.PayloadReader(w.getvalue()).array()
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


def test_codec_optional_array_roundtrip():
    w = shm.PayloadWriter()
    w.optional_array(None)
    w.optional_array(np.arange(3))
    r = shm.PayloadReader(w.getvalue())
    assert r.optional_array() is None
    assert np.array_equal(r.optional_array(), np.arange(3))


def test_codec_noncontiguous_array():
    base = np.arange(20).reshape(4, 5)
    sliced = base[:, ::2]
    w = shm.PayloadWriter()
    w.array(sliced)
    assert np.array_equal(shm.PayloadReader(w.getvalue()).array(), sliced)


def test_codec_reads_from_memoryview_offsets():
    w = shm.PayloadWriter()
    w.u32(77)
    w.array(np.arange(4, dtype=np.int64))
    payload = w.getvalue()
    buf = memoryview(b"\xaa" * 3 + payload)
    r = shm.PayloadReader(buf, offset=3)
    assert r.u32() == 77
    assert np.array_equal(r.array(), np.arange(4, dtype=np.int64))


def test_segment_stats_walk_registry():
    base_count, base_bytes = shm.segment_stats()
    seg = shm.SharedSegment.create("stats", 4096)
    try:
        count, nbytes = shm.segment_stats()
        assert count == base_count + 1
        assert nbytes >= base_bytes + 4096
    finally:
        seg.destroy()
    assert shm.segment_stats() == (base_count, base_bytes)


def test_publish_segment_gauges_tracks_create_and_unlink():
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    seg = shm.SharedSegment.create("gauge", 2048)
    try:
        count, nbytes = shm.publish_segment_gauges(reg)
        assert count >= 1 and nbytes >= 2048
        gauges = reg.snapshot()["gauges"]
        assert gauges["engine.shm.segments"] == count
        assert gauges["engine.shm.segment_bytes"] == nbytes
    finally:
        seg.destroy()
    assert shm.publish_segment_gauges(reg) == shm.segment_stats()


def test_segment_lifecycle_emits_gauges_to_installed_recorder():
    from repro import obs

    with obs.recording(trace=False) as rec:
        seg = shm.SharedSegment.create("live", 1024)
        created = rec.metrics_snapshot()["gauges"]["engine.shm.segments"]
        assert created >= 1
        seg.destroy()
        after = rec.metrics_snapshot()["gauges"]
        assert after["engine.shm.segments"] == created - 1


def test_publish_segment_gauges_null_metrics_is_noop():
    from repro.obs.metrics import NullMetrics

    # returns the stats but records nothing
    stats = shm.publish_segment_gauges(NullMetrics())
    assert stats == shm.segment_stats()
