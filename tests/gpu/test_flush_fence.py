"""Unit tests for the EP primitives: clwb and persist barriers."""

import numpy as np
import pytest

import repro
from repro.errors import OutOfBoundsError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.nvm.model import WritebackReason


def make_ctx(cache_lines=64, **kw):
    mem = GlobalMemory(cache_capacity_lines=cache_lines)
    buf = mem.alloc("a", (128,), np.int32)
    scratch = mem.alloc("s", (32,), np.int32, persistent=False)
    ctx = BlockContext(mem, AtomicUnit(mem),
                       LaunchConfig.linear(2, 32), 0, **kw)
    return mem, buf, scratch, ctx


def test_memory_flush_persists_specific_lines():
    mem, buf, _, ctx = make_ctx()
    mem.write(buf, np.arange(64), np.arange(64).astype(np.int32))
    flushed = mem.flush(buf, np.arange(32))  # first line (32 int32)
    assert flushed == 1
    assert np.array_equal(buf.nvm_array[:32], np.arange(32))
    assert np.all(buf.nvm_array[32:64] == 0)  # second line still dirty
    assert mem.write_stats.by_reason[WritebackReason.FLUSH] == 1


def test_flush_clean_lines_costs_nothing():
    mem, buf, _, ctx = make_ctx()
    assert mem.flush(buf, np.arange(8)) == 0


def test_flush_non_persistent_is_noop():
    mem, _, scratch, ctx = make_ctx()
    scratch.data[:] = 5
    assert mem.flush(scratch, np.arange(8)) == 0


def test_flush_bounds_checked():
    mem, buf, _, ctx = make_ctx()
    with pytest.raises(OutOfBoundsError):
        mem.flush(buf, np.array([500]))


def test_ctx_clwb_tracks_pending_and_charges():
    mem, buf, _, ctx = make_ctx()
    ctx.st(buf, np.arange(64), np.ones(64))
    flushed = ctx.clwb(buf, np.arange(64))
    assert flushed == 2
    assert ctx.tally.alu_ops >= 2
    assert ctx._pending_flush_lines == 2


def test_persist_barrier_charges_serial_stall():
    mem, buf, _, ctx = make_ctx(fence_latency_cycles=500.0,
                                fence_concurrency=1)
    ctx.st(buf, np.arange(32), np.ones(32))
    ctx.clwb(buf, np.arange(32))
    ctx.persist_barrier()
    assert ctx.tally.serial_cycles == pytest.approx(500.0 + 8.0)
    assert ctx._pending_flush_lines == 0


def test_persist_barrier_amortized_by_concurrency():
    def stall(concurrency):
        _, buf, _, ctx = make_ctx(fence_latency_cycles=400.0,
                                  fence_concurrency=concurrency)
        ctx.st(buf, np.arange(32), np.ones(32))
        ctx.clwb(buf, np.arange(32))
        ctx.persist_barrier()
        return ctx.tally.serial_cycles

    assert stall(8) == pytest.approx(stall(1) / 8)


def test_barrier_without_pending_still_stalls_a_little():
    _, _, _, ctx = make_ctx(fence_latency_cycles=300.0,
                            fence_concurrency=1)
    ctx.persist_barrier()
    assert ctx.tally.serial_cycles == pytest.approx(300.0)


def test_device_sets_fence_params_from_nvm():
    """Slower NVM must make fences dearer end to end."""
    import repro
    from repro.ep import EPRuntime
    from repro.workloads.tmm import TMMWorkload

    def cycles(nvm):
        device = repro.Device(nvm=nvm)
        work = TMMWorkload(scale="tiny")
        kernel = EPRuntime(device).instrument(work.setup(device))
        return device.launch(kernel).tally.serial_cycles

    dram = cycles(repro.NVMSpec.dram_like())
    nvm = cycles(repro.NVMSpec.paper_nvm())
    assert nvm > dram
