"""Launch-engine parity: serial vs parallel vs batched, bit for bit.

LP regions are associative (DESIGN.md §3): a launch's final state must
not depend on *how* its blocks were scheduled. The engines exploit that
— process-parallel chunks, vectorized block groups — but the contract
is strict bit-identity with :class:`SerialEngine` on every observable:
completed blocks, every tally field, every buffer's volatile data and
NVM shadow, the write-back statistics, and (for LP kernels) the
checksum-table contents those buffers hold. These tests pin that
contract across block orders and mid-kernel crashes.
"""

import dataclasses
import os
import signal

import numpy as np
import pytest

import repro
from repro import obs
from repro.errors import LaunchError
from repro.gpu import shm
from repro.gpu.engine import (
    BatchedEngine,
    ParallelEngine,
    SerialEngine,
    make_engine,
)
from repro.megakv.kernels import KVInsertKernel, KVSearchKernel, alloc_results
from repro.megakv.store import MegaKVStore
from repro.workloads.spmv import SPMVWorkload

ENGINES = ["parallel", "batched"]


def assert_same_launch(ref, other):
    """Bit-identity of two (device, result) pairs from identical launches."""
    dev_a, res_a = ref
    dev_b, res_b = other
    assert res_a.completed_blocks == res_b.completed_blocks
    assert res_a.crashed == res_b.crashed
    for field in dataclasses.fields(res_a.tally):
        val_a = getattr(res_a.tally, field.name)
        val_b = getattr(res_b.tally, field.name)
        assert val_a == val_b, (field.name, val_a, val_b)
    assert dev_a.memory.buffers.keys() == dev_b.memory.buffers.keys()
    for name, buf in dev_a.memory.buffers.items():
        assert np.array_equal(buf.data, dev_b.memory[name].data), name
        if buf.shadow is not None:
            assert np.array_equal(
                buf.shadow, dev_b.memory[name].shadow
            ), name
    assert (dev_a.memory.write_stats.by_reason
            == dev_b.memory.write_stats.by_reason)
    assert (dev_a.memory.write_stats.by_buffer
            == dev_b.memory.write_stats.by_buffer)


def run_spmv(engine, config, order="sequential", crash_after=None):
    device = repro.Device(cache_capacity_lines=64, block_order=order,
                          seed=7, engine=engine)
    work = SPMVWorkload(scale="small", seed=3)
    kernel = work.setup(device)
    lp_kernel = repro.LPRuntime(device, config).instrument(kernel)
    crash_plan = None
    if crash_after is not None:
        crash_plan = repro.CrashPlan(after_blocks=crash_after,
                                     persist_fraction=0.3, seed=5)
    result = device.launch(lp_kernel, crash_plan=crash_plan)
    return device, result


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("order", ["sequential", "shuffled"])
def test_spmv_parity(engine, order):
    config = repro.LPConfig.paper_best()
    assert_same_launch(run_spmv("serial", config, order),
                       run_spmv(engine, config, order))


@pytest.mark.parametrize("engine", ENGINES)
def test_spmv_parity_under_crash(engine):
    """A mid-kernel crash truncates identically under every engine."""
    config = repro.LPConfig.paper_best()
    ref = run_spmv("serial", config, crash_after=4)
    got = run_spmv(engine, config, crash_after=4)
    assert ref[1].crashed and got[1].crashed
    assert_same_launch(ref, got)


@pytest.mark.parametrize("engine", ENGINES)
def test_spmv_parity_hash_table_config(engine):
    """Quadratic-table inserts replay in block order: table bits match."""
    config = repro.LPConfig.naive_quadratic()
    assert_same_launch(run_spmv("serial", config, "shuffled"),
                       run_spmv(engine, config, "shuffled"))


def test_crashed_state_recovers_identically():
    """The batched engine's crash image is valid LP recovery input."""
    config = repro.LPConfig.paper_best()
    states = {}
    for engine in ("serial", "batched"):
        device = repro.Device(cache_capacity_lines=64, seed=7,
                              engine=engine)
        work = SPMVWorkload(scale="small", seed=3)
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(device, config).instrument(kernel)
        plan = repro.CrashPlan(after_blocks=4, persist_fraction=0.3,
                               seed=5)
        device.launch(lp_kernel, crash_plan=plan)
        report = repro.RecoveryManager(device, lp_kernel).recover()
        work.verify(device)
        states[engine] = (device, report)
    dev_s, rep_s = states["serial"]
    dev_b, rep_b = states["batched"]
    assert rep_s.recovered_blocks == rep_b.recovered_blocks
    for name, buf in dev_s.memory.buffers.items():
        assert np.array_equal(buf.data, dev_b.memory[name].data), name


def run_megakv_search(engine):
    device = repro.Device(cache_capacity_lines=64, engine=engine)
    store = MegaKVStore(device, capacity=512)
    rng = np.random.default_rng(11)
    keys = np.unique(
        rng.integers(1, 2 ** 40, size=400, dtype=np.uint64)
    )
    vals = rng.integers(1, 2 ** 40, size=keys.size, dtype=np.uint64)
    device.launch(KVInsertKernel(store, keys, vals))
    # Half hits, half misses, ragged final block.
    queries = np.concatenate([
        keys[:150],
        rng.integers(2 ** 41, 2 ** 42, size=131, dtype=np.uint64),
    ])
    alloc_results(device, "results", queries.size)
    search = KVSearchKernel(store, queries, "results",
                            threads_per_block=64)
    lp_kernel = repro.LPRuntime(
        device, repro.LPConfig.paper_best()
    ).instrument(search)
    result = device.launch(lp_kernel)
    return device, result, store


@pytest.mark.parametrize("engine", ENGINES)
def test_megakv_search_engine_parity(engine):
    dev_s, res_s, store_s = run_megakv_search("serial")
    dev_b, res_b, store_b = run_megakv_search(engine)
    assert_same_launch((dev_s, res_s), (dev_b, res_b))
    # Host-side probe accounting must match too, including the
    # dedup'd probe width when both hash choices coincide.
    assert (dataclasses.asdict(store_s.stats)
            == dataclasses.asdict(store_b.stats))


# ---------------------------------------------------------------------------
# Engine mechanics.


def test_parallel_falls_back_for_unsafe_kernels():
    """EP kernels (clwb, cache-state dependent) must run serially."""
    device = repro.Device(cache_capacity_lines=64, engine="parallel")
    work = SPMVWorkload(scale="tiny", seed=3)
    kernel = work.setup(device)
    ep_kernel = repro.EPRuntime(device).instrument(kernel)
    assert not getattr(ep_kernel, "parallel_safe", True)
    device.launch(ep_kernel)
    work.verify(device)


def test_batched_requires_commutative_checksums():
    """Order-sensitive lanes (Adler-32) disable batching, not correctness."""
    config = repro.LPConfig(
        checksums=(repro.ChecksumKind.ADLER32,),
        reduction=repro.ReductionMode.SEQUENTIAL_MEMORY,
    )
    assert_same_launch(run_spmv("serial", config),
                       run_spmv("batched", config))


def test_duplicate_block_ids_rejected():
    device = repro.Device()
    kernel = SPMVWorkload(scale="tiny", seed=3).setup(device)
    with pytest.raises(LaunchError, match="duplicate block ids"):
        device.launch(kernel, block_ids=[0, 1, 1])


def test_make_engine_resolution():
    assert isinstance(make_engine(None), SerialEngine)
    assert isinstance(make_engine("serial"), SerialEngine)
    assert isinstance(make_engine("parallel", jobs=2), ParallelEngine)
    assert isinstance(make_engine("batched"), BatchedEngine)
    engine = ParallelEngine(jobs=3)
    assert make_engine(engine) is engine
    with pytest.raises(LaunchError, match="unknown launch engine"):
        make_engine("warp-speculative")


def test_device_accepts_engine_name():
    device = repro.Device(engine="batched")
    assert isinstance(device.engine, BatchedEngine)


def test_parallel_jobs_default_is_container_aware():
    engine = ParallelEngine()
    assert engine.jobs == shm.cpu_budget()
    with pytest.raises(LaunchError, match="jobs >= 1"):
        ParallelEngine(jobs=0)


# ---------------------------------------------------------------------------
# Shared-memory pool mechanics.


def _forked_engine(jobs=2):
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("no fork on this platform")
    return ParallelEngine(jobs=jobs)


@pytest.mark.parametrize("config_name", ["paper_best", "naive_quadratic"])
def test_forked_pool_vectorized_parity(config_name):
    """jobs=2 forces real worker processes through the batched path."""
    config = getattr(repro.LPConfig, config_name)()
    engine = _forked_engine()
    try:
        ref = run_spmv("serial", config, "shuffled")
        got = run_spmv(engine, config, "shuffled")
        assert engine._pool is not None, "pool path was not exercised"
        assert_same_launch(ref, got)
    finally:
        engine.close()
    assert not shm.leaked_segments()


def test_forked_pool_block_granular_parity():
    """Adler-32 lanes disable batching: workers ship per-block op logs."""
    config = repro.LPConfig(
        checksums=(repro.ChecksumKind.ADLER32,),
        reduction=repro.ReductionMode.SEQUENTIAL_MEMORY,
    )
    engine = _forked_engine()
    try:
        ref = run_spmv("serial", config)
        got = run_spmv(engine, config)
        assert engine._pool is not None, "pool path was not exercised"
        assert_same_launch(ref, got)
    finally:
        engine.close()
    assert not shm.leaked_segments()


def test_engine_is_reentrant_and_reuses_its_pool():
    """Two launches on one engine instance: one fork, identical results."""
    engine = _forked_engine()
    try:
        device = repro.Device(cache_capacity_lines=64, seed=7,
                              engine=engine)
        work = SPMVWorkload(scale="small", seed=3)
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(
            device, repro.LPConfig.paper_best()).instrument(kernel)
        device.launch(lp_kernel)
        first_pool = engine._pool
        assert first_pool is not None
        first_pids = [p.pid for p, _ in first_pool.workers]
        device.launch(lp_kernel)
        assert engine._pool is first_pool, "pool must persist across launches"
        assert [p.pid for p, _ in engine._pool.workers] == first_pids
        work.verify(device)
    finally:
        engine.close()
    assert not shm.leaked_segments()


def test_sigkilled_worker_falls_back_and_leaks_nothing():
    """Killing a pool worker must not lose blocks or /dev/shm segments."""
    engine = _forked_engine()
    with obs.recording(trace=False) as rec:
        try:
            device = repro.Device(cache_capacity_lines=64, seed=7,
                                  engine=engine)
            work = SPMVWorkload(scale="small", seed=3)
            kernel = work.setup(device)
            lp_kernel = repro.LPRuntime(
                device, repro.LPConfig.paper_best()).instrument(kernel)
            device.launch(lp_kernel)
            pool = engine._pool
            assert pool is not None
            victim = pool.workers[0][0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)

            result = device.launch(lp_kernel)
            assert engine._pool is None, "broken pool must be torn down"
            assert result.completed_blocks == list(
                range(kernel.launch_config().n_blocks))
            work.verify(device)
        finally:
            engine.close()
        shm.reap_orphans()
        assert not shm.leaked_segments()
        # the live segment gauges must agree with the empty registry
        assert shm.publish_segment_gauges(rec.metrics) == (0, 0)
        snap = rec.metrics_snapshot()["gauges"]
        assert snap["engine.shm.segments"] == 0
        assert snap["engine.shm.segment_bytes"] == 0


def test_forked_pool_shard_affine_dispatch_keeps_parity(tmp_path):
    """A sharded shadow tags every chunk with its NVM shard; the pool's
    shard-affine dispatch preference must not change results vs serial.
    """
    from repro.nvm.sharded import ShardedShadow

    config = repro.LPConfig.paper_best()

    def run(engine, path):
        heap = ShardedShadow.create(path, n_shards=4)
        device = repro.Device(cache_capacity_lines=64, seed=7,
                              engine=engine, shadow=heap)
        work = SPMVWorkload(scale="small", seed=3)
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(device, config).instrument(kernel)
        result = device.launch(lp_kernel)
        device.drain()
        heap.close()
        return device, result

    engine = _forked_engine()
    with obs.recording(trace=False) as rec:
        try:
            ref = run("serial", tmp_path / "a.lpnv")
            got = run(engine, tmp_path / "b.lpnv")
            assert engine._pool is not None, "pool path was not exercised"
            assert_same_launch(ref, got)
            counters = rec.metrics_snapshot()["counters"]
            affine = [v for k, v in counters.items()
                      if k.startswith("engine.scheduling.shard_affine")]
            assert affine and sum(affine) > 0, (
                "pooled launch over a sharded heap never took the "
                "shard-affine dispatch path"
            )
        finally:
            engine.close()
    assert not shm.leaked_segments()
    # The two heaps converged to bit-identical persistent images.
    for k in range(4):
        a = (tmp_path / f"a.lpnv.shard{k}").read_bytes()
        b = (tmp_path / f"b.lpnv.shard{k}").read_bytes()
        assert a == b, f"shard {k} diverged between serial and pooled"


def test_engine_close_unlinks_every_segment():
    engine = _forked_engine()
    config = repro.LPConfig.paper_best()
    with obs.recording(trace=False) as rec:
        run_spmv(engine, config)
        assert engine._pool is not None
        created = {engine._pool.image_seg.name, engine._pool.slot_seg.name,
                   engine._pool.arena_seg.name}
        assert created <= set(shm.leaked_segments())
        gauges = rec.metrics_snapshot()["gauges"]
        assert gauges["engine.shm.segments"] >= 3
        assert gauges["engine.shm.segment_bytes"] >= sum(
            seg.nbytes for seg in (engine._pool.image_seg,
                                   engine._pool.slot_seg,
                                   engine._pool.arena_seg))
        engine.close()
        assert not created & set(shm.leaked_segments())
        assert engine._pool is None
        # unlinking the last segment drove the gauges back to zero
        gauges = rec.metrics_snapshot()["gauges"]
        assert gauges["engine.shm.segments"] == 0
        assert gauges["engine.shm.segment_bytes"] == 0
