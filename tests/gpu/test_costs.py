"""Unit tests for the analytic cost model."""

import pytest

from repro.gpu.costs import CostCoefficients, CostModel, Tally, TimeBreakdown


def make_tally(**kw) -> Tally:
    base = dict(n_blocks=100, threads_per_block=128)
    base.update(kw)
    return Tally(**base)


def test_tally_merge_accumulates():
    a = make_tally(alu_ops=10, global_read_bytes=100, atomic_hot_max=3)
    b = make_tally(alu_ops=5, global_write_bytes=50, atomic_hot_max=7)
    a.merge(b)
    assert a.alu_ops == 15
    assert a.global_bytes == 150
    assert a.atomic_hot_max == 7  # max, not sum


def test_tally_copy_is_independent():
    a = make_tally(alu_ops=10)
    b = a.copy()
    b.alu_ops += 1
    assert a.alu_ops == 10


def test_compute_bound_time():
    model = CostModel()
    lanes = model.spec.total_lanes
    t = model.time_of(make_tally(alu_ops=lanes * 1000.0))
    assert t.compute_cycles == pytest.approx(1000.0)
    assert t.bottleneck == "compute"


def test_memory_bound_time():
    model = CostModel()
    bpc = model.nvm.bytes_per_cycle(model.spec)
    t = model.time_of(make_tally(global_read_bytes=bpc * 500.0))
    assert t.memory_cycles == pytest.approx(500.0)
    assert t.bottleneck == "memory"


def test_overlap_takes_max_not_sum():
    model = CostModel()
    lanes = model.spec.total_lanes
    bpc = model.nvm.bytes_per_cycle(model.spec)
    t = model.time_of(
        make_tally(alu_ops=lanes * 100.0, global_read_bytes=bpc * 400.0)
    )
    assert t.total_cycles == pytest.approx(400.0)


def test_serial_and_atomic_cycles_add_on_top():
    model = CostModel()
    t = model.time_of(make_tally(serial_cycles=100.0, atomic_ops=80.0))
    assert t.total_cycles >= 100.0 + 80.0 / model.spec.atomic_throughput_per_cycle


def test_hot_address_serializes():
    model = CostModel()
    quiet = model.time_of(make_tally(atomic_ops=1000.0, atomic_hot_max=1.0))
    hot = model.time_of(make_tally(atomic_ops=1000.0, atomic_hot_max=500.0))
    assert hot.total_cycles > quiet.total_cycles


def test_more_work_never_faster():
    model = CostModel()
    small = make_tally(alu_ops=1e6, global_read_bytes=1e6)
    big = make_tally(alu_ops=2e6, global_read_bytes=3e6,
                     serial_cycles=10.0)
    assert model.time_of(big).total_cycles >= model.time_of(small).total_cycles


def test_low_occupancy_limits_lanes():
    model = CostModel()
    # One block of 64 threads cannot use the whole machine.
    t = model.time_of(Tally(n_blocks=1, threads_per_block=64, alu_ops=6400.0))
    assert t.compute_cycles == pytest.approx(100.0)


def test_overhead_and_slowdown():
    a = TimeBreakdown(100, 0, 0, 0, 0, 0)
    b = TimeBreakdown(121, 0, 0, 0, 0, 0)
    assert b.overhead_vs(a) == pytest.approx(0.21)
    assert b.slowdown_vs(a) == pytest.approx(1.21)
    with pytest.raises(ValueError):
        a.overhead_vs(TimeBreakdown(0, 0, 0, 0, 0, 0))


def test_lock_convoy_grows_with_population():
    model = CostModel()
    small = model.lock_convoy_cycles(100, population=100,
                                     threads_per_block=64)
    big = model.lock_convoy_cycles(100, population=100000,
                                   threads_per_block=64)
    assert big > small


def test_lock_convoy_small_blocks_contend_more():
    """1024-thread blocks cap residency at 160; 64-thread at 2560."""
    model = CostModel()
    fat = model.lock_convoy_cycles(10000, population=10000,
                                   threads_per_block=1024)
    thin = model.lock_convoy_cycles(10000, population=10000,
                                    threads_per_block=64)
    assert thin > 3 * fat


def test_lock_convoy_zero_inserts_free():
    assert CostModel().lock_convoy_cycles(0) == 0.0


def test_emulated_cas_storms_with_population():
    model = CostModel()
    calm = model.emulated_cas_cycles(1000, population=100,
                                     threads_per_block=64)
    storm = model.emulated_cas_cycles(1000, population=100000,
                                      threads_per_block=64)
    assert storm > 5 * calm


def test_emulated_models_respect_slack():
    model = CostModel()
    demand = model.emulated_swap_cycles(1000, population=1000)
    assert model.emulated_swap_cycles(1000, population=1000,
                                      slack_cycles=demand * 2) == 0.0
    assert model.emulated_cas_cycles(0, population=10) == 0.0
    assert model.emulated_swap_cycles(0, population=10) == 0.0


def test_coefficients_are_the_documented_defaults():
    c = CostCoefficients()
    assert c.table_region_interval_cycles == 128.0
    assert c.lock_cs_base_cycles == 300.0
    assert c.lock_contention_coeff == 0.25
