"""Unit tests for the atomic unit."""

import numpy as np

from repro.gpu.atomics import AtomicUnit
from repro.gpu.memory import GlobalMemory


def make():
    mem = GlobalMemory(cache_capacity_lines=64)
    buf = mem.alloc("a", (64,), np.uint64)
    return mem, buf, AtomicUnit(mem)


def test_cas_claims_empty_slot():
    _, buf, au = make()
    old = au.cas(buf, 3, 0, 42)
    assert old == 0
    assert buf.array[3] == 42


def test_cas_fails_on_occupied_slot():
    _, buf, au = make()
    au.cas(buf, 3, 0, 42)
    old = au.cas(buf, 3, 0, 99)
    assert old == 42
    assert buf.array[3] == 42  # unchanged


def test_exch_always_swaps():
    _, buf, au = make()
    assert au.exch(buf, 5, 7) == 0
    assert au.exch(buf, 5, 9) == 7
    assert buf.array[5] == 9


def test_add_handles_duplicate_indices():
    mem = GlobalMemory(cache_capacity_lines=64)
    buf = mem.alloc("h", (8,), np.int64)
    au = AtomicUnit(mem)
    au.add(buf, np.array([1, 1, 1, 2]), np.array([1, 1, 1, 5]))
    assert buf.array[1] == 3
    assert buf.array[2] == 5


def test_max_semantics():
    mem = GlobalMemory(cache_capacity_lines=64)
    buf = mem.alloc("m", (4,), np.int64)
    au = AtomicUnit(mem)
    au.max_(buf, np.array([0, 0, 1]), np.array([3, 9, 2]))
    assert buf.array[0] == 9
    assert buf.array[1] == 2


def test_hot_max_tracks_worst_address():
    _, buf, au = make()
    for _ in range(5):
        au.exch(buf, 7, 1)
    au.exch(buf, 8, 1)
    assert au.hot_max == 5
    assert au.total_ops == 6


def test_atomic_writes_enter_persistence_domain():
    mem = GlobalMemory(cache_capacity_lines=64)
    buf = mem.alloc("a", (8,), np.uint64)
    au = AtomicUnit(mem)
    au.exch(buf, 0, 42)
    assert mem.cache.n_dirty >= 1
    mem.drain()
    assert buf.nvm_array[0] == 42


def test_add_routes_dirty_lines():
    mem = GlobalMemory(cache_capacity_lines=64)
    buf = mem.alloc("h", (8,), np.int64)
    au = AtomicUnit(mem)
    au.add(buf, np.array([0, 1]), np.array([1, 1]))
    mem.drain()
    assert buf.nvm_array[0] == 1


def test_empty_unit_hot_max_zero():
    _, _, au = make()
    assert au.hot_max == 0
