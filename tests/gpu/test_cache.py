"""Unit tests for the write-back cache model."""

import pytest

from repro.gpu.cache import WriteBackCache


def test_writes_become_dirty():
    cache = WriteBackCache(capacity_lines=8)
    assert cache.touch_write([1, 2, 3]) == []
    assert cache.n_dirty == 3
    assert cache.is_dirty(2)
    assert not cache.is_dirty(7)


def test_capacity_evicts_oldest_first():
    cache = WriteBackCache(capacity_lines=3)
    cache.touch_write([10])
    cache.touch_write([11])
    cache.touch_write([12])
    evicted = cache.touch_write([13, 14])
    assert evicted == [10, 11]
    assert cache.n_dirty == 3
    assert cache.evictions == 2


def test_rewrite_refreshes_recency():
    cache = WriteBackCache(capacity_lines=3)
    cache.touch_write([1, 2, 3])
    cache.touch_write([1])  # 1 becomes youngest
    evicted = cache.touch_write([4])
    assert evicted == [2]


def test_zero_capacity_is_write_through():
    cache = WriteBackCache(capacity_lines=0)
    assert cache.touch_write([5, 6]) == [5, 6]
    assert cache.n_dirty == 0


def test_drain_returns_everything_in_age_order():
    cache = WriteBackCache(capacity_lines=10)
    cache.touch_write([3, 1, 2])
    assert cache.drain() == [3, 1, 2]
    assert cache.n_dirty == 0
    assert cache.evictions == 3


def test_drop_all_loses_without_eviction_count():
    cache = WriteBackCache(capacity_lines=10)
    cache.touch_write([1, 2])
    lost = cache.drop_all()
    assert lost == [1, 2]
    assert cache.evictions == 0
    assert cache.n_dirty == 0


def test_evict_specific_only_hits_dirty_lines():
    cache = WriteBackCache(capacity_lines=10)
    cache.touch_write([1, 2, 3])
    out = cache.evict_specific([2, 9])
    assert out == [2]
    assert cache.dirty_lines == [1, 3]
    assert cache.evictions == 1


def test_discard_drops_without_counting():
    cache = WriteBackCache(capacity_lines=10)
    cache.touch_write([1, 2, 3])
    dropped = cache.discard([3, 4])
    assert dropped == [3]
    assert cache.evictions == 0
    assert cache.dirty_lines == [1, 2]


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        WriteBackCache(capacity_lines=-1)
