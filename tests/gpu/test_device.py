"""Unit tests for the device: launches, ordering, crashes."""

import numpy as np
import pytest

from repro.errors import CrashedDeviceError, LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.nvm.crash import CrashPlan


class FillKernel(Kernel):
    """Each block writes its id into its slice of the output."""

    name = "fill"
    protected_buffers = ("fill_out",)

    def __init__(self, n_blocks=8, threads=32):
        self._cfg = LaunchConfig.linear(n_blocks, threads)

    def launch_config(self):
        return self._cfg

    def run_block(self, ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("fill_out", idx, float(ctx.block_id))
        ctx.flops(1)


def setup(device, n_blocks=8, threads=32):
    kernel = FillKernel(n_blocks, threads)
    device.alloc("fill_out", (n_blocks * threads,), np.float32)
    return kernel


def test_launch_runs_all_blocks():
    device = Device()
    kernel = setup(device)
    result = device.launch(kernel)
    assert result.n_completed == 8
    assert not result.crashed
    out = device.memory["fill_out"].array
    assert out[0] == 0 and out[255] == 7


def test_launch_result_carries_cost():
    device = Device()
    kernel = setup(device)
    result = device.launch(kernel)
    assert result.total_cycles > 0
    assert result.tally.global_write_bytes == 256 * 4


def test_shuffled_order_same_final_state():
    seq = Device(block_order="sequential")
    shuf = Device(block_order="shuffled", seed=11)
    k1, k2 = setup(seq), setup(shuf)
    seq.launch(k1)
    shuf.launch(k2)
    assert np.array_equal(
        seq.memory["fill_out"].array, shuf.memory["fill_out"].array
    )


def test_shuffled_order_is_seeded():
    orders = []
    for _ in range(2):
        device = Device(block_order="shuffled", seed=5)
        kernel = setup(device)
        result = device.launch(kernel)
        orders.append(result.completed_blocks)
    assert orders[0] == orders[1]
    assert orders[0] != sorted(orders[0])  # actually shuffled


def test_bad_block_order_rejected():
    with pytest.raises(LaunchError):
        Device(block_order="sideways")


def test_block_subset_launch():
    device = Device()
    kernel = setup(device)
    result = device.launch(kernel, block_ids=[2, 5])
    assert sorted(result.completed_blocks) == [2, 5]
    out = device.memory["fill_out"].array
    assert out[2 * 32] == 2
    assert out[0] == 0 and out[32] == 0  # untouched blocks


def test_block_subset_validated():
    device = Device()
    kernel = setup(device)
    with pytest.raises(LaunchError):
        device.launch(kernel, block_ids=[99])


def test_crash_plan_stops_and_poisons_device():
    device = Device(cache_capacity_lines=4)
    kernel = setup(device)
    result = device.launch(kernel, crash_plan=CrashPlan(after_blocks=3))
    assert result.crashed
    assert result.n_completed == 3
    assert result.crash_report is not None
    with pytest.raises(CrashedDeviceError):
        device.launch(kernel)
    device.restart()
    device.launch(kernel, block_ids=[0])  # usable again


def test_crash_after_zero_blocks():
    device = Device()
    kernel = setup(device)
    result = device.launch(kernel, crash_plan=CrashPlan(after_blocks=0))
    assert result.n_completed == 0
    assert np.all(device.memory["fill_out"].array == 0)


def test_crash_loses_unevicted_stores():
    device = Device(cache_capacity_lines=2)
    kernel = setup(device)
    device.launch(kernel, crash_plan=CrashPlan(after_blocks=8))
    out = device.memory["fill_out"].array
    # Early blocks' lines were evicted (persisted); the last writes died
    # in cache.
    assert out[255] == 0
    assert np.any(out != 0)


def test_drain_then_crash_is_lossless():
    device = Device()
    kernel = setup(device)
    device.launch(kernel)
    device.drain()
    device.memory.crash()
    out = device.memory["fill_out"].array
    assert out[255] == 7


def test_free_through_device():
    device = Device()
    setup(device)
    device.free("fill_out")
    assert "fill_out" not in device.memory
