"""Unit tests for LaunchConfig, BlockContext and the Kernel ABC."""

import numpy as np
import pytest

from repro.errors import DeviceError, LaunchError, UnrecoverableRegionError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory


def make_ctx(block_id=0, mode=ExecMode.NORMAL, grid=(4, 1), block=(32, 1)):
    mem = GlobalMemory(cache_capacity_lines=64)
    mem.alloc("out", (256,), np.float32)
    mem.alloc("scratch", (256,), np.float32, persistent=False)
    cfg = LaunchConfig(grid=grid, block=block)
    return BlockContext(mem, AtomicUnit(mem), cfg, block_id, mode), mem


class Recorder:
    """Minimal StoreObserver for interception tests."""

    def __init__(self, protected=("out",)):
        self.protected = frozenset(protected)
        self.calls = []

    def on_store(self, values, slots):
        self.calls.append((np.array(values), np.array(slots)))


# -- LaunchConfig ------------------------------------------------------------

def test_launch_config_geometry():
    cfg = LaunchConfig(grid=(4, 2), block=(8, 4))
    assert cfg.n_blocks == 8
    assert cfg.threads_per_block == 32
    assert cfg.n_warps_per_block == 1
    assert cfg.block_coords(5) == (1, 1)


def test_launch_config_linear():
    cfg = LaunchConfig.linear(10, 64)
    assert cfg.n_blocks == 10
    assert cfg.threads_per_block == 64
    assert cfg.n_warps_per_block == 2


def test_launch_config_validation():
    with pytest.raises(LaunchError):
        LaunchConfig(grid=(0, 1))
    cfg = LaunchConfig(grid=(2, 2))
    with pytest.raises(LaunchError):
        cfg.block_coords(4)


# -- memory ops & accounting -------------------------------------------------

def test_ld_st_roundtrip_and_bytes():
    ctx, _ = make_ctx()
    ctx.st("out", np.arange(4), np.array([1.0, 2.0, 3.0, 4.0]))
    vals = ctx.ld("out", np.arange(4))
    assert np.allclose(vals, [1, 2, 3, 4])
    assert ctx.tally.global_write_bytes == 16
    assert ctx.tally.global_read_bytes == 16


def test_st_broadcasts_scalars():
    ctx, mem = make_ctx()
    ctx.st("out", np.arange(8), 5.0)
    assert np.all(mem["out"].array[:8] == 5.0)


def test_observer_sees_protected_stores_only():
    ctx, _ = make_ctx()
    rec = Recorder()
    ctx.lp_observer = rec
    ctx.st("out", np.arange(4), np.ones(4))
    ctx.st("scratch", np.arange(4), np.ones(4))
    assert len(rec.calls) == 1


def test_validate_mode_suppresses_persistent_writes():
    ctx, mem = make_ctx(mode=ExecMode.VALIDATE)
    rec = Recorder()
    ctx.lp_observer = rec
    mem["out"].data[:4] = [9, 9, 9, 9]
    ctx.st("out", np.arange(4), np.zeros(4))
    # The write did not land; the observer saw memory's contents.
    assert np.all(mem["out"].array[:4] == 9)
    assert np.allclose(rec.calls[0][0], 9)


def test_validate_mode_allows_scratch_writes():
    ctx, mem = make_ctx(mode=ExecMode.VALIDATE)
    ctx.st("scratch", np.arange(4), np.ones(4))
    assert np.all(mem["scratch"].array[:4] == 1)


def test_validate_mode_suppresses_unprotected_persistent_writes():
    ctx, mem = make_ctx(mode=ExecMode.VALIDATE)
    ctx.st("out", np.arange(4), np.ones(4))  # no observer attached
    assert np.all(mem["out"].array[:4] == 0)


def test_atomic_to_persistent_in_validate_raises():
    ctx, _ = make_ctx(mode=ExecMode.VALIDATE)
    with pytest.raises(DeviceError):
        ctx.atomic_add("out", np.array([0]), np.array([1.0]))


def test_recover_mode_writes_normally():
    ctx, mem = make_ctx(mode=ExecMode.RECOVER)
    ctx.st("out", np.arange(2), np.array([3.0, 4.0]))
    assert mem["out"].array[0] == 3.0


def test_thread_geometry_helpers():
    ctx, _ = make_ctx(block_id=5, grid=(4, 2), block=(8, 4))
    assert ctx.n_threads == 32
    assert ctx.block_xy == (1, 1)
    tx, ty = ctx.thread_xy()
    assert tx[9] == 1 and ty[9] == 1
    assert np.array_equal(ctx.tid, np.arange(32))


def test_shuffle_and_sync_are_costed():
    ctx, _ = make_ctx()
    ctx.shfl_down(np.arange(32), 1)
    ctx.syncthreads()
    assert ctx.tally.shuffle_ops == 32
    assert ctx.tally.syncthreads == 1


def test_alu_and_flops_accounting():
    ctx, _ = make_ctx()
    ctx.alu(10)
    ctx.flops(2)           # 2 per thread x 32 threads
    ctx.flops(3, active_threads=4)
    assert ctx.tally.alu_ops == 10 + 64 + 12


def test_finalize_tally_folds_shared_traffic():
    ctx, _ = make_ctx()
    ctx.shared.alloc("s", (8,), np.int32)
    ctx.shared.write("s", slice(0, 8), np.zeros(8, np.int32))
    tally = ctx.finalize_tally()
    assert tally.shared_bytes == 32


# -- Kernel ABC defaults -----------------------------------------------------

class TinyKernel(Kernel):
    name = "tiny"
    protected_buffers = ("out",)

    def launch_config(self):
        return LaunchConfig.linear(2, 32)

    def run_block(self, ctx):
        idx = ctx.block_id * 32 + ctx.tid
        ctx.st("out", idx, 1.0)


def test_default_recover_reruns_idempotent_block():
    ctx, mem = make_ctx()
    TinyKernel().recover_block(ctx)
    assert np.all(mem["out"].array[:32] == 1.0)


def test_non_idempotent_without_recovery_raises():
    class NonIdem(TinyKernel):
        idempotent = False

    ctx, _ = make_ctx()
    with pytest.raises(UnrecoverableRegionError):
        NonIdem().recover_block(ctx)
