"""Unit tests for global memory and its NVM persistence domain."""

import numpy as np
import pytest

from repro.errors import AllocationError, OutOfBoundsError
from repro.gpu.memory import GlobalMemory
from repro.nvm.model import WritebackReason


def make_memory(capacity_lines=4):
    return GlobalMemory(line_size=128, cache_capacity_lines=capacity_lines)


def test_alloc_shapes_and_views():
    mem = make_memory()
    buf = mem.alloc("a", (4, 8), np.float32)
    assert buf.array.shape == (4, 8)
    assert buf.nvm_array.shape == (4, 8)
    assert buf.size == 32
    assert "a" in mem


def test_alloc_with_init_is_persisted_at_birth():
    mem = make_memory()
    data = np.arange(16, dtype=np.int32)
    buf = mem.alloc("a", (16,), np.int32, init=data)
    assert np.array_equal(buf.array, data)
    assert np.array_equal(buf.nvm_array, data)


def test_alloc_duplicate_name_rejected():
    mem = make_memory()
    mem.alloc("a", (4,))
    with pytest.raises(AllocationError):
        mem.alloc("a", (4,))


def test_alloc_bad_shape_rejected():
    mem = make_memory()
    with pytest.raises(AllocationError):
        mem.alloc("bad", (0, 4))


def test_init_shape_mismatch_rejected():
    mem = make_memory()
    with pytest.raises(AllocationError):
        mem.alloc("a", (4,), np.int32, init=np.zeros(5, dtype=np.int32))


def test_write_updates_volatile_not_nvm():
    mem = make_memory(capacity_lines=64)
    buf = mem.alloc("a", (32,), np.int32)
    mem.write(buf, np.array([0, 1]), np.array([7, 8]))
    assert buf.array[0] == 7
    assert buf.nvm_array[0] == 0  # still volatile


def test_eviction_pushes_line_to_nvm():
    mem = make_memory(capacity_lines=1)
    buf = mem.alloc("a", (128,), np.int32)  # 4 lines of 32 ints
    mem.write(buf, np.array([0]), np.array([1]))    # line 0 dirty
    mem.write(buf, np.array([32]), np.array([2]))   # line 1; evicts line 0
    assert buf.nvm_array[0] == 1
    assert buf.nvm_array[32] == 0
    assert mem.write_stats.by_reason[WritebackReason.EVICTION] == 1


def test_drain_persists_everything():
    mem = make_memory(capacity_lines=64)
    buf = mem.alloc("a", (32,), np.int32)
    mem.write(buf, np.arange(32), np.arange(32))
    n = mem.drain()
    assert n >= 1
    assert np.array_equal(buf.nvm_array, np.arange(32))


def test_crash_discards_dirty_lines():
    mem = make_memory(capacity_lines=64)
    buf = mem.alloc("a", (32,), np.int32, init=np.full(32, 5, np.int32))
    mem.write(buf, np.arange(32), np.arange(100, 132))
    report = mem.crash()
    assert report.n_lost >= 1
    assert np.all(buf.array == 5)       # volatile restored to NVM image
    assert np.all(buf.nvm_array == 5)


def test_crash_partial_persistence_is_seeded():
    def run(seed):
        mem = make_memory(capacity_lines=64)
        buf = mem.alloc("a", (256,), np.int32)
        mem.write(buf, np.arange(256), np.arange(256))
        mem.crash(persist_fraction=0.5, rng=np.random.default_rng(seed))
        return buf.array.copy()

    assert np.array_equal(run(3), run(3))
    # Roughly half the lines survive.
    survived = np.count_nonzero(run(3))
    assert 0 < survived < 256


def test_crash_zeroes_scratch_buffers():
    mem = make_memory()
    buf = mem.alloc("scratch", (8,), np.int32, persistent=False)
    buf.data[:] = 9
    mem.crash()
    assert np.all(buf.array == 0)


def test_scratch_buffers_have_no_nvm_view():
    mem = make_memory()
    buf = mem.alloc("scratch", (8,), np.int32, persistent=False)
    with pytest.raises(AllocationError):
        _ = buf.nvm_array


def test_out_of_bounds_write_rejected():
    mem = make_memory()
    buf = mem.alloc("a", (8,), np.int32)
    with pytest.raises(OutOfBoundsError):
        mem.write(buf, np.array([8]), np.array([1]))
    with pytest.raises(OutOfBoundsError):
        mem.read(buf, np.array([-1]))


def test_write_stats_attribute_per_buffer():
    mem = make_memory(capacity_lines=64)
    a = mem.alloc("a", (32,), np.int32)
    b = mem.alloc("__lp_table", (32,), np.int32)
    mem.write(a, np.array([0]), np.array([1]))
    mem.write(b, np.array([0]), np.array([1]))
    mem.drain()
    assert mem.write_stats.lines_for_buffer("a") == 1
    assert mem.write_stats.lines_for_buffers("__lp_") == 1


def test_free_discards_dirty_lines():
    mem = make_memory(capacity_lines=64)
    buf = mem.alloc("a", (32,), np.int32)
    mem.write(buf, np.array([0]), np.array([1]))
    mem.free("a")
    assert "a" not in mem
    assert mem.cache.n_dirty == 0
    # Freed names can be reused.
    mem.alloc("a", (8,), np.int32)


def test_free_unknown_name_rejected():
    mem = make_memory()
    with pytest.raises(AllocationError):
        mem.free("ghost")


def test_clean_lines_always_match_shadow():
    """Invariant: a line not in the dirty set has data == shadow."""
    mem = make_memory(capacity_lines=2)
    buf = mem.alloc("a", (512,), np.int32)
    rng = np.random.default_rng(0)
    for _ in range(50):
        idx = rng.integers(0, 512, size=8)
        mem.write(buf, idx, rng.integers(0, 100, size=8).astype(np.int32))
    dirty = set(mem.cache.dirty_lines)
    line_ints = 128 // 4
    for line in range(buf.n_lines):
        if buf.first_line + line in dirty:
            continue
        lo = line * line_ints
        hi = min(lo + line_ints, buf.size)
        assert np.array_equal(buf.data[lo:hi], buf.shadow[lo:hi])


def test_buffers_are_line_aligned_and_disjoint():
    mem = make_memory()
    a = mem.alloc("a", (3,), np.int8)     # tiny, pads to one line
    b = mem.alloc("b", (3,), np.int8)
    assert a.base_addr % 128 == 0
    assert b.base_addr % 128 == 0
    assert b.first_line >= a.first_line + a.n_lines
