"""Sharded crash-and-recover integration: a real SIGKILL inside one
shard's write-back window, cold parallel reopen of every shard, and
convergence to the crash-free reference — plus the no-leaked-state
guarantee for shard files and /dev/shm segments (satellite of the
sharded scale-out PR)."""

import tempfile
from pathlib import Path

from repro.gpu import shm
from repro.harness import run_cell
from repro.nvm.inspect import inspect_sharded

N_SHARDS = 4


def test_shard_kill_cell_converges_with_containment(tmp_path):
    cell = run_cell("spmv", "serial", "global-array", shards=N_SHARDS,
                    kill_rounds=2, trigger="writebacks:6",
                    artifacts_dir=tmp_path / "artifacts")
    assert cell["shards"] == N_SHARDS

    launch, recover = cell["rounds"]
    # The launch round was converted to a shard-kill trigger: the child
    # dies inside ONE shard's armed journal window.
    assert launch["trigger"].startswith("shardwb*:")
    assert launch["killed"] and launch["returncode"] == -9
    assert launch["blocks_failed"] > 0
    armed = launch["inspect"]["shards_armed"]
    assert armed, "the kill must land inside an armed shard journal"
    assert len(armed) < N_SHARDS, (
        "torn state leaked outside the killed shard — containment is "
        "the whole point of per-shard journals"
    )
    assert launch["torn_by_shard"] == {
        str(k): launch["inspect"]["torn_by_shard"][str(k)] for k in armed
    }
    assert launch["inspect_consistent"]

    # The recover round re-kills with a heap-wide trigger; the grid
    # still converges to the verified crash-free reference.
    assert recover["phase"] == "recover"
    assert recover["inspect_consistent"]
    final = cell["final"]
    assert final["converged"]
    assert final["verified"] and final["verified_persisted"]
    assert cell["ok"]

    # Artifacts: manifest + every shard under <cell>.sharded/, and the
    # plain-heap ``*.heap.lpnv`` glob (CI's telemetry job) sees none
    # of them.
    cell_dir = tmp_path / "artifacts" / "spmv-serial-global-array.sharded"
    assert (cell_dir / "heap.lpnv").exists()
    for k in range(N_SHARDS):
        assert (cell_dir / f"heap.lpnv.shard{k}").exists()
    assert not list((tmp_path / "artifacts").glob("*.heap.lpnv"))
    report = inspect_sharded(cell_dir / "heap.lpnv")
    assert report.n_shards == N_SHARDS
    # The last round's snapshot was taken before its reopen, so the
    # artifact still carries that round's armed journals verbatim.
    assert report.armed_shards() == recover["inspect"]["shards_armed"]
    assert report.merged_torn()["torn_lines"] == recover["torn_lines"]


def test_shard_kill_leaves_no_files_or_segments_behind():
    tmp_root = Path(tempfile.gettempdir())
    dirs_before = set(tmp_root.glob("lp-harness-*"))
    files_before = set(tmp_root.glob("**/*.lpnv.shard*"))
    segments_before = set(shm.leaked_segments())

    cell = run_cell("tmm", "serial", "global-array", shards=N_SHARDS,
                    kill_rounds=1, trigger="writebacks:6")
    assert cell["ok"] and cell["rounds"][0]["killed"]

    # No shard file, manifest, or harness scratch dir survives the
    # kill — ManagedTmpdir owns them all parent-side.
    assert not set(tmp_root.glob("lp-harness-*")) - dirs_before
    assert not set(tmp_root.glob("**/*.lpnv.shard*")) - files_before
    # And the SIGKILLed child's engine pool left no /dev/shm segments.
    assert not set(shm.leaked_segments()) - segments_before
