"""Integration matrix: crash recovery across workloads, tables, orders."""

import numpy as np
import pytest

import repro
from repro.core.config import ChecksumKind
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.gpu.engine import make_engine
from repro.obs import load_schema, validate
from repro.obs.forensics import LANE_MISMATCH, MISSING_ENTRY
from repro.workloads import WORKLOADS, make_workload

TABLES = {
    "global_array": repro.LPConfig.paper_best(),
    "quadratic": repro.LPConfig.naive_quadratic(),
    "cuckoo": repro.LPConfig.naive_cuckoo(),
}


@pytest.mark.parametrize("table_name", sorted(TABLES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_crash_recovery(workload_name, table_name):
    device = repro.Device(cache_capacity_lines=16,
                          block_order="shuffled", seed=13)
    work = make_workload(workload_name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device, TABLES[table_name]).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 3),
                                   persist_fraction=0.35, seed=21),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)
    # Every injected failure must come with a forensics record: same
    # blocks, a known reason, and a schema-valid serialization.
    if report.initial.failed_blocks:
        forensics = report.forensics
        assert forensics is not None
        assert [f.block_id for f in forensics.failures] \
            == report.initial.failed_blocks
        assert all(f.reason in (MISSING_ENTRY, LANE_MISMATCH)
                   for f in forensics.failures)
        validate(forensics.to_dict(), load_schema("forensics"))
    else:
        assert report.forensics is None


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_block_order_invariance(workload_name):
    """LP regions are associative: any block order, same output and a
    fully valid checksum table."""
    outputs = []
    for order, seed in (("sequential", 0), ("shuffled", 7),
                        ("shuffled", 23)):
        device = repro.Device(block_order=order, seed=seed)
        work = make_workload(workload_name, scale="tiny")
        kernel = work.setup(device)
        lp_kernel = LPRuntime(device).instrument(kernel)
        device.launch(lp_kernel)
        device.drain()
        report = RecoveryManager(device, lp_kernel).validate()
        assert report.all_passed
        outputs.append({
            b: device.memory[b].array.copy()
            for b in kernel.protected_buffers
        })
    for buf in outputs[0]:
        assert np.array_equal(outputs[0][buf], outputs[1][buf])
        assert np.array_equal(outputs[0][buf], outputs[2][buf])


# -- engine parity of the post-crash pipeline -----------------------------------
#
# The validation fast path (vectorized re-checksum + batched table
# lookups) and the batched/chunked recovery dispatch must be invisible:
# every engine reproduces the serial reference's ValidationReport bit
# for bit — failed sets, missing entries, per-block failure_details
# lanes, and the forensics serialization (hex lanes included).

CHECKSUM_KINDS = {
    "modular": (ChecksumKind.MODULAR,),
    "parity": (ChecksumKind.PARITY,),
}


def _recover_with_engine(engine_name, config, shadow=None):
    """Crash deterministically (serial NORMAL launch), then run the
    validate → recover → re-validate pipeline under ``engine_name``.

    ``shadow`` optionally routes the NVM images through a durable
    mapped heap — the backend must be semantically invisible."""
    device = repro.Device(cache_capacity_lines=16, seed=13,
                          shadow=shadow)
    work = make_workload("spmv", scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device, config).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 3),
                                   persist_fraction=0.35, seed=21),
    )
    device.engine = make_engine(engine_name)
    report = RecoveryManager(device, lp_kernel).recover()
    outputs = {
        b: device.memory[b].array.copy()
        for b in kernel.protected_buffers
    }
    return report, outputs, device


def _assert_details_equal(ref, got):
    assert sorted(ref) == sorted(got)
    for block_id, ref_detail in ref.items():
        detail = got[block_id]
        assert detail["reason"] == ref_detail["reason"]
        for lane_key in ("expected", "found"):
            if ref_detail[lane_key] is None:
                assert detail[lane_key] is None
            else:
                assert np.array_equal(detail[lane_key],
                                      ref_detail[lane_key])


@pytest.mark.parametrize("checksum_name", sorted(CHECKSUM_KINDS))
@pytest.mark.parametrize("table_name", sorted(TABLES))
@pytest.mark.parametrize("engine_name", ["parallel", "batched"])
def test_recovery_pipeline_engine_parity(engine_name, table_name,
                                         checksum_name):
    config = TABLES[table_name].with_(
        checksums=CHECKSUM_KINDS[checksum_name]
    )
    ref_report, ref_out, _ = _recover_with_engine("serial", config)
    report, out, _ = _recover_with_engine(engine_name, config)

    for phase in ("initial", "final"):
        ref_val = getattr(ref_report, phase)
        val = getattr(report, phase)
        assert val.n_blocks == ref_val.n_blocks
        assert val.failed_blocks == ref_val.failed_blocks
        assert val.missing_checksums == ref_val.missing_checksums
        _assert_details_equal(ref_val.failure_details,
                              val.failure_details)

    assert report.recovered == ref_report.recovered
    assert report.recovered_blocks == ref_report.recovered_blocks
    if ref_report.forensics is None:
        assert report.forensics is None
    else:
        assert report.forensics.to_dict() == ref_report.forensics.to_dict()
    for buf, ref_arr in ref_out.items():
        assert np.array_equal(out[buf], ref_arr)
    # The parity is only meaningful if the crash actually broke blocks.
    assert ref_report.initial.failed_blocks


# -- mapped-backend column ------------------------------------------------------
#
# Routing the NVM images through the durable mmap heap must change
# nothing observable: same failed sets, same forensics, same recovered
# memory, and an NVM image (in memory AND in the reopened heap file)
# bit-identical to the in-memory backend under the same CrashPlan seed.

@pytest.mark.parametrize("table_name", sorted(TABLES))
@pytest.mark.parametrize("engine_name", ["serial", "parallel", "batched"])
def test_recovery_mapped_backend_parity(engine_name, table_name,
                                        tmp_path):
    config = TABLES[table_name]
    ref_report, ref_out, ref_device = _recover_with_engine(
        engine_name, config)
    heap_path = tmp_path / "heap.lpnv"
    heap = repro.MappedShadow.create(heap_path)
    report, out, device = _recover_with_engine(
        engine_name, config, shadow=heap)

    for phase in ("initial", "final"):
        ref_val = getattr(ref_report, phase)
        val = getattr(report, phase)
        assert val.failed_blocks == ref_val.failed_blocks
        assert val.missing_checksums == ref_val.missing_checksums
        _assert_details_equal(ref_val.failure_details,
                              val.failure_details)
    if ref_report.forensics is None:
        assert report.forensics is None
    else:
        assert report.forensics.to_dict() == ref_report.forensics.to_dict()
    for buf, ref_arr in ref_out.items():
        assert np.array_equal(out[buf], ref_arr)

    # NVM images: in-memory shadow vs mapped view, then vs a cold reopen.
    ref_device.drain()
    device.drain()
    persistent = {
        name: buf.shadow.tobytes()
        for name, buf in ref_device.memory.buffers.items()
        if buf.persistent
    }
    for name, ref_bytes in persistent.items():
        assert device.memory[name].shadow.tobytes() == ref_bytes
    heap.close()
    with repro.MappedShadow.open(heap_path) as reopened:
        assert sorted(reopened.entries) == sorted(persistent)
        for name, ref_bytes in persistent.items():
            assert reopened.view(name).tobytes() == ref_bytes
    assert ref_report.initial.failed_blocks


# -- full parity matrix ---------------------------------------------------------
#
# The shared-memory parallel engine drives the *whole* pipeline — the
# crashed NORMAL launch, validation, recovery — across every workload,
# every table, and both shadow backends, and must land bit-identically
# on the serial reference: recovered volatile + NVM images, failed
# sets, forensics, everything.

def _full_pipeline(engine_name, workload_name, config, shadow=None):
    device = repro.Device(cache_capacity_lines=16, block_order="shuffled",
                          seed=13, engine=engine_name, shadow=shadow)
    work = make_workload(workload_name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device, config).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 3),
                                   persist_fraction=0.35, seed=21),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)
    device.drain()
    images = {
        name: (buf.data.tobytes(),
               None if buf.shadow is None else buf.shadow.tobytes())
        for name, buf in device.memory.buffers.items()
    }
    return report, images


@pytest.mark.parametrize("shadow_kind", ["memory", "mapped"])
@pytest.mark.parametrize("table_name", sorted(TABLES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_parallel_engine_parity_matrix(workload_name, table_name,
                                       shadow_kind, tmp_path):
    config = TABLES[table_name]

    def shadow():
        if shadow_kind == "memory":
            return None
        return repro.MappedShadow.create(
            tmp_path / f"heap-{len(list(tmp_path.iterdir()))}.lpnv")

    ref_report, ref_images = _full_pipeline(
        "serial", workload_name, config, shadow=shadow())
    report, images = _full_pipeline(
        "parallel", workload_name, config, shadow=shadow())

    for phase in ("initial", "final"):
        ref_val = getattr(ref_report, phase)
        val = getattr(report, phase)
        assert val.n_blocks == ref_val.n_blocks
        assert val.failed_blocks == ref_val.failed_blocks
        assert val.missing_checksums == ref_val.missing_checksums
        _assert_details_equal(ref_val.failure_details,
                              val.failure_details)
    assert report.recovered_blocks == ref_report.recovered_blocks
    if ref_report.forensics is None:
        assert report.forensics is None
    else:
        assert report.forensics.to_dict() == ref_report.forensics.to_dict()
    assert images.keys() == ref_images.keys()
    for name, (ref_data, ref_shadow) in ref_images.items():
        data, shadow_bytes = images[name]
        assert data == ref_data, (name, "volatile image")
        assert shadow_bytes == ref_shadow, (name, "NVM image")
