"""Integration matrix: crash recovery across workloads, tables, orders."""

import numpy as np
import pytest

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.obs import load_schema, validate
from repro.obs.forensics import LANE_MISMATCH, MISSING_ENTRY
from repro.workloads import WORKLOADS, make_workload

TABLES = {
    "global_array": repro.LPConfig.paper_best(),
    "quadratic": repro.LPConfig.naive_quadratic(),
    "cuckoo": repro.LPConfig.naive_cuckoo(),
}


@pytest.mark.parametrize("table_name", sorted(TABLES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_crash_recovery(workload_name, table_name):
    device = repro.Device(cache_capacity_lines=16,
                          block_order="shuffled", seed=13)
    work = make_workload(workload_name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device, TABLES[table_name]).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 3),
                                   persist_fraction=0.35, seed=21),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)
    # Every injected failure must come with a forensics record: same
    # blocks, a known reason, and a schema-valid serialization.
    if report.initial.failed_blocks:
        forensics = report.forensics
        assert forensics is not None
        assert [f.block_id for f in forensics.failures] \
            == report.initial.failed_blocks
        assert all(f.reason in (MISSING_ENTRY, LANE_MISMATCH)
                   for f in forensics.failures)
        validate(forensics.to_dict(), load_schema("forensics"))
    else:
        assert report.forensics is None


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_block_order_invariance(workload_name):
    """LP regions are associative: any block order, same output and a
    fully valid checksum table."""
    outputs = []
    for order, seed in (("sequential", 0), ("shuffled", 7),
                        ("shuffled", 23)):
        device = repro.Device(block_order=order, seed=seed)
        work = make_workload(workload_name, scale="tiny")
        kernel = work.setup(device)
        lp_kernel = LPRuntime(device).instrument(kernel)
        device.launch(lp_kernel)
        device.drain()
        report = RecoveryManager(device, lp_kernel).validate()
        assert report.all_passed
        outputs.append({
            b: device.memory[b].array.copy()
            for b in kernel.protected_buffers
        })
    for buf in outputs[0]:
        assert np.array_equal(outputs[0][buf], outputs[1][buf])
        assert np.array_equal(outputs[0][buf], outputs[2][buf])
