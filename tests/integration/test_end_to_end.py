"""End-to-end scenarios: the README quickstart, multi-kernel chains,
write amplification and the NVM-timed device."""

import numpy as np

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.nvm.model import write_amplification
from repro.workloads.histo import HISTOWorkload
from repro.workloads.tmm import TMMWorkload


def test_readme_quickstart_flow():
    device = repro.Device()
    work = repro.workloads.TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp = repro.LPRuntime(device, repro.LPConfig.paper_best())
    lp_kernel = lp.instrument(kernel)
    result = device.launch(lp_kernel)
    assert not result.crashed
    work.verify(device)


def test_two_kernels_chained_with_independent_tables():
    """Two LP-protected kernels in sequence; a crash in the second must
    not disturb the first's (already persisted) results."""
    device = repro.Device(cache_capacity_lines=16)
    tmm = TMMWorkload(scale="tiny")
    tmm_kernel = tmm.setup(device)
    lp_tmm = LPRuntime(device).instrument(tmm_kernel, table_name="t1")
    device.launch(lp_tmm)
    device.drain()

    histo = HISTOWorkload(scale="tiny")
    histo_kernel = histo.setup(device)
    lp_histo = LPRuntime(device).instrument(histo_kernel, table_name="t2")
    device.launch(lp_histo, crash_plan=repro.CrashPlan(after_blocks=2))
    report = RecoveryManager(device, lp_histo).recover()
    assert report.recovered
    tmm.verify(device)
    histo.verify(device)


def test_lp_on_nvm_timed_device():
    device = repro.Device(nvm=repro.NVMSpec.paper_nvm())
    work = TMMWorkload(scale="tiny")
    lp_kernel = LPRuntime(device).instrument(work.setup(device))
    result = device.launch(lp_kernel)
    work.verify(device)
    # The throttled NVM bandwidth makes memory slower than on DRAM.
    dram = repro.Device()
    work2 = TMMWorkload(scale="tiny")
    lp2 = LPRuntime(dram).instrument(work2.setup(dram))
    dram_result = dram.launch(lp2)
    assert result.time.memory_cycles > dram_result.time.memory_cycles


def test_write_amplification_is_only_checksums():
    def run(with_lp):
        device = repro.Device()
        work = TMMWorkload(scale="small")
        kernel = work.setup(device)
        if with_lp:
            kernel = LPRuntime(device).instrument(kernel)
        device.launch(kernel)
        device.drain()
        return device

    base = run(False)
    lp = run(True)
    amp = write_amplification(lp.memory.write_stats,
                              base.memory.write_stats)
    assert amp > 0
    # Every extra line is attributable to the __lp_ table buffers.
    extra = (lp.memory.write_stats.total_lines
             - base.memory.write_stats.total_lines)
    assert extra == lp.memory.write_stats.lines_for_buffers("__lp_")


def test_checkpoint_style_periodic_drain():
    """The paper combines LP with periodic flushing so validation only
    covers regions newer than the last flush; a drain mid-stream must
    bound what a crash can lose."""
    device = repro.Device(cache_capacity_lines=1024)
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)

    n_blocks = kernel.launch_config().n_blocks
    half = list(range(n_blocks // 2))
    rest = list(range(n_blocks // 2, n_blocks))
    device.launch(lp_kernel, block_ids=half)
    device.drain()  # checkpoint
    device.launch(lp_kernel, block_ids=rest,
                  crash_plan=repro.CrashPlan(after_blocks=len(rest)))
    # Everything before the drain survived the crash verbatim.
    ref = work.reference()["tmm_C"].reshape(-1)
    out = device.memory["tmm_C"].array.reshape(-1)
    tile = work.tile
    first_block_elems = out.reshape(work.n, work.n)[:tile, :tile]
    ref_block_elems = ref.reshape(work.n, work.n)[:tile, :tile]
    assert np.array_equal(first_block_elems, ref_block_elems)
    # And full recovery restores the rest.
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)
