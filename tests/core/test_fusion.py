"""Unit tests for thread-block fusion of LP regions."""

import numpy as np
import pytest

import repro
from repro.core.fusion import FusedKernel, fuse_blocks
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.errors import LaunchError
from repro.workloads.tmm import TMMWorkload


def test_factor_one_is_identity():
    device = repro.Device()
    kernel = TMMWorkload(scale="tiny").setup(device)
    assert fuse_blocks(kernel, 1) is kernel


def test_bad_factor_rejected():
    device = repro.Device()
    kernel = TMMWorkload(scale="tiny").setup(device)
    with pytest.raises(LaunchError):
        fuse_blocks(kernel, 0)


@pytest.mark.parametrize("factor", [2, 3, 4, 16])
def test_fused_kernel_output_matches(factor):
    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    fused = fuse_blocks(work.setup(device), factor)
    device.launch(fused)
    work.verify(device)


def test_fused_launch_geometry():
    device = repro.Device()
    kernel = TMMWorkload(scale="tiny").setup(device)  # 16 blocks
    fused = fuse_blocks(kernel, 3)
    assert fused.launch_config().n_blocks == 6  # ceil(16/3)
    assert isinstance(fused, FusedKernel)
    assert fused.protected_buffers == kernel.protected_buffers


def test_fusion_shrinks_checksum_table():
    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    fused = fuse_blocks(work.setup(device), 4)
    lp_kernel = LPRuntime(device).instrument(fused)
    assert lp_kernel.table.capacity == 4


def test_one_checksum_covers_the_whole_fused_region():
    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    fused = fuse_blocks(work.setup(device), 16)  # everything in one
    lp_kernel = LPRuntime(device).instrument(fused)
    device.launch(lp_kernel)
    all_values = device.memory["tmm_C"].array.reshape(-1)
    expect = lp_kernel.cset.checksum_of(all_values)
    # Not exactly: fused region folds blocks in tile order, but the
    # lanes are commutative so any order gives the same value.
    assert np.array_equal(lp_kernel.table.lookup(0), expect)


@pytest.mark.parametrize("factor", [2, 4])
def test_fused_crash_recovery(factor):
    device = repro.Device(cache_capacity_lines=8)
    work = TMMWorkload(scale="tiny")
    fused = fuse_blocks(work.setup(device), factor)
    lp_kernel = LPRuntime(device,
                          repro.LPConfig.naive_cuckoo()).instrument(fused)
    n_fused = fused.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=n_fused // 2,
                                   persist_fraction=0.4, seed=5),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)


def test_fused_validation_detects_corruption_at_region_granularity():
    device = repro.Device(cache_capacity_lines=1024)
    work = TMMWorkload(scale="tiny")
    fused = fuse_blocks(work.setup(device), 4)
    lp_kernel = LPRuntime(device).instrument(fused)
    device.launch(lp_kernel)
    device.drain()
    repro.FaultInjector().flip_bit(device.memory, "tmm_C", 0, 5)
    manager = RecoveryManager(device, lp_kernel)
    report = manager.validate()
    # Element 0 lives in inner block 0 -> fused region 0.
    assert report.failed_blocks == [0]
    recovery = manager.recover()
    assert recovery.recovered
    work.verify(device)
