"""Unit tests for the LP runtime (kernel instrumentation)."""

import numpy as np
import pytest

import repro
from repro.core.config import LPConfig, TableKind
from repro.core.runtime import LazyPersistentKernel, LPRuntime
from repro.errors import ConfigError
from repro.gpu.kernel import ExecMode, Kernel, LaunchConfig


class SquareKernel(Kernel):
    """Each block squares its slice of the input into the output."""

    name = "square"
    protected_buffers = ("sq_out",)

    def __init__(self, n_blocks=4, threads=32):
        self._cfg = LaunchConfig.linear(n_blocks, threads)

    def launch_config(self):
        return self._cfg

    def run_block(self, ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        x = ctx.ld("sq_in", idx)
        ctx.st("sq_out", idx, x * x, slots=ctx.tid)
        ctx.flops(1)


def setup(device, n_blocks=4, threads=32, seed=0):
    rng = np.random.default_rng(seed)
    n = n_blocks * threads
    data = rng.integers(1, 50, size=n).astype(np.int64)
    device.alloc("sq_in", (n,), np.int64, init=data)
    device.alloc("sq_out", (n,), np.int64)
    return SquareKernel(n_blocks, threads), data


def test_instrument_allocates_table_sized_to_grid():
    device = repro.Device()
    kernel, _ = setup(device)
    runtime = LPRuntime(device, LPConfig.paper_best())
    lp_kernel = runtime.instrument(kernel)
    assert lp_kernel.table.capacity == 4
    assert lp_kernel.table.n_lanes == 2
    assert lp_kernel.launch_config().n_blocks == 4


def test_instrumented_kernel_computes_same_output():
    device = repro.Device()
    kernel, data = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    assert np.array_equal(device.memory["sq_out"].array, data * data)


def test_every_block_inserted_a_checksum():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    for block in range(4):
        assert lp_kernel.table.lookup(block) is not None


def test_checksum_matches_stored_data():
    device = repro.Device()
    kernel, data = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    block0_vals = (data * data)[:32]
    expect = lp_kernel.cset.checksum_of(block0_vals)
    assert np.array_equal(lp_kernel.table.lookup(0), expect)


def test_unprotected_kernel_rejected():
    class NoOutputs(SquareKernel):
        protected_buffers = ()

    device = repro.Device()
    setup(device)
    with pytest.raises(ConfigError):
        LPRuntime(device).instrument(NoOutputs())


def test_validate_all_pass_after_drain():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    device.drain()
    lp_kernel.reset_validation()
    device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    assert lp_kernel.validation_failures == []


def test_validate_flags_corrupted_block():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    device.drain()
    # Corrupt one element of block 2's output in NVM.
    repro.FaultInjector().flip_bit(device.memory, "sq_out",
                                   flat_index=2 * 32 + 5, bit=3)
    lp_kernel.reset_validation()
    device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    assert lp_kernel.validation_failures == [2]
    assert lp_kernel.missing_checksums == []


def test_validate_flags_missing_checksum():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    # Run only three of four blocks; block 3 has no checksum entry.
    device.launch(lp_kernel, block_ids=[0, 1, 2])
    device.drain()
    lp_kernel.reset_validation()
    device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    assert 3 in lp_kernel.validation_failures
    assert 3 in lp_kernel.missing_checksums


def test_validate_requires_validate_context():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    result = device.launch(lp_kernel)
    assert result.n_completed == 4
    from repro.gpu.atomics import AtomicUnit
    from repro.gpu.kernel import BlockContext

    ctx = BlockContext(device.memory, AtomicUnit(device.memory),
                       lp_kernel.launch_config(), 0, ExecMode.NORMAL)
    with pytest.raises(ConfigError):
        lp_kernel.validate_block(ctx)


def test_space_overhead_metric():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    # Global array: 4 blocks x 2 lanes x 8 B over 128 int64 outputs.
    expect = (4 * 2 * 8) / (128 * 8)
    assert lp_kernel.space_overhead() == pytest.approx(expect)


def test_kernel_name_encodes_config():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device, LPConfig.naive_quadratic()).instrument(kernel)
    assert "quadratic" in lp_kernel.name
    assert lp_kernel.name.startswith("square+lp")


def test_runtime_respects_table_choice():
    device = repro.Device()
    kernel, _ = setup(device)
    lp = LPRuntime(device, LPConfig.naive_cuckoo()).instrument(
        kernel, table_name="custom"
    )
    assert lp.table.kind is TableKind.CUCKOO
    assert any("custom" in n for n in lp.table.buffer_names)


def test_recover_block_refreshes_checksum():
    device = repro.Device()
    kernel, _ = setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    stored = lp_kernel.table.lookup(1).copy()
    device.launch(lp_kernel, block_ids=[1], mode=ExecMode.RECOVER)
    assert np.array_equal(lp_kernel.table.lookup(1), stored)
