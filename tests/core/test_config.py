"""Unit tests for the LP design-space configuration."""

import pytest

from repro.core.config import (
    AtomicMode,
    ChecksumKind,
    LockMode,
    LPConfig,
    ReductionMode,
    TableKind,
)
from repro.errors import ConfigError


def test_paper_best_defaults():
    cfg = LPConfig.paper_best()
    assert cfg.table is TableKind.GLOBAL_ARRAY
    assert cfg.locks is LockMode.LOCK_FREE
    assert cfg.reduction is ReductionMode.PARALLEL_SHUFFLE
    assert set(cfg.checksums) == {ChecksumKind.MODULAR, ChecksumKind.PARITY}
    assert cfg.n_lanes == 2


def test_naive_variants():
    assert LPConfig.naive_quadratic().table is TableKind.QUADRATIC
    assert LPConfig.naive_cuckoo().table is TableKind.CUCKOO


def test_empty_checksums_rejected():
    with pytest.raises(ConfigError):
        LPConfig(checksums=())


def test_duplicate_checksums_rejected():
    with pytest.raises(ConfigError):
        LPConfig(checksums=(ChecksumKind.MODULAR, ChecksumKind.MODULAR))


def test_adler_forbidden_with_shuffle_reduction():
    with pytest.raises(ConfigError):
        LPConfig(checksums=(ChecksumKind.ADLER32,))
    # ... but allowed sequentially.
    cfg = LPConfig(
        checksums=(ChecksumKind.ADLER32,),
        reduction=ReductionMode.SEQUENTIAL_MEMORY,
        table=TableKind.QUADRATIC,
    )
    assert not cfg.checksums[0].commutative


def test_global_array_has_no_lock_or_emulated_variants():
    with pytest.raises(ConfigError):
        LPConfig(table=TableKind.GLOBAL_ARRAY, locks=LockMode.LOCK_BASED)
    with pytest.raises(ConfigError):
        LPConfig(table=TableKind.GLOBAL_ARRAY, atomics=AtomicMode.EMULATED)


def test_load_factor_bounds():
    with pytest.raises(ConfigError):
        LPConfig(quad_target_load_factor=0.0)
    with pytest.raises(ConfigError):
        LPConfig(cuckoo_target_load_factor=1.5)


def test_with_replaces_fields():
    cfg = LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED)
    assert cfg.locks is LockMode.LOCK_BASED
    assert cfg.table is TableKind.QUADRATIC


def test_with_revalidates():
    cfg = LPConfig.naive_quadratic()
    with pytest.raises(ConfigError):
        cfg.with_(checksums=())


def test_design_space_enumerates_valid_corners():
    corners = list(LPConfig.design_space())
    # 2 hash tables x 2 locks x 2 atomics x 2 reductions + 2 global array.
    assert len(corners) == 18
    assert all(isinstance(c, LPConfig) for c in corners)
    ga = [c for c in corners if c.table is TableKind.GLOBAL_ARRAY]
    assert len(ga) == 2


def test_describe_labels():
    assert LPConfig.paper_best().describe() == "global_array+shfl"
    label = LPConfig.naive_quadratic().with_(
        locks=LockMode.LOCK_BASED, atomics=AtomicMode.EMULATED
    ).describe()
    assert label == "quadratic+shfl+lock+noatomic"


def test_uses_float_conversion():
    assert LPConfig.paper_best().uses_float_conversion
    cfg = LPConfig(checksums=(ChecksumKind.MODULAR,))
    assert not cfg.uses_float_conversion


def test_table_kind_helpers():
    assert TableKind.QUADRATIC.is_hash_table
    assert not TableKind.GLOBAL_ARRAY.is_hash_table
    assert ChecksumKind.MODULAR.commutative
    assert not ChecksumKind.ADLER32.commutative
