"""Unit tests for the insertion concurrency protocols."""

import numpy as np
import pytest

from repro.core.config import AtomicMode, LockMode, LPConfig
from repro.core.tables.locks import InsertionProtocol
from repro.gpu.atomics import AtomicUnit
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory


def make_env(config):
    mem = GlobalMemory(cache_capacity_lines=64)
    keys = mem.alloc("keys", (16,), np.uint64,
                     init=np.zeros(16, np.uint64))
    ctx = BlockContext(mem, AtomicUnit(mem),
                       LaunchConfig.linear(4, 32), 0)
    protocol = InsertionProtocol(config, CostModel(), population=1000)
    return keys, ctx, protocol


def test_hardware_claim_uses_atomic_cas():
    keys, ctx, protocol = make_env(LPConfig.naive_quadratic())
    old = protocol.claim_if_empty(ctx, keys, 3, np.uint64(0),
                                  np.uint64(42))
    assert old == 0
    assert keys.array[3] == 42
    assert ctx.atomics.total_ops == 1


def test_emulated_claim_same_semantics_no_atomics():
    config = LPConfig.naive_quadratic().with_(atomics=AtomicMode.EMULATED)
    keys, ctx, protocol = make_env(config)
    old = protocol.claim_if_empty(ctx, keys, 3, np.uint64(0),
                                  np.uint64(42))
    assert old == 0 and keys.array[3] == 42
    # Occupied slot: no overwrite, old value returned.
    old = protocol.claim_if_empty(ctx, keys, 3, np.uint64(0),
                                  np.uint64(99))
    assert old == 42 and keys.array[3] == 42
    assert ctx.atomics.total_ops == 0
    assert ctx.tally.serial_cycles > 0  # the emulation penalty


def test_hardware_swap_vs_emulated_swap():
    for config, expect_atomics in (
        (LPConfig.naive_cuckoo(), 1),
        (LPConfig.naive_cuckoo().with_(atomics=AtomicMode.EMULATED), 0),
    ):
        keys, ctx, protocol = make_env(config)
        old = protocol.swap(ctx, keys, 5, np.uint64(7))
        assert old == 0 and keys.array[5] == 7
        assert ctx.atomics.total_ops == expect_atomics


def test_lock_free_charges_no_convoy():
    keys, ctx, protocol = make_env(LPConfig.naive_quadratic())
    protocol.charge_lock(ctx, chain_length=3)
    assert ctx.tally.serial_cycles == 0


def test_lock_based_convoy_scales_with_chain():
    config = LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED)
    keys, ctx, protocol = make_env(config)
    protocol.charge_lock(ctx, chain_length=1)
    short = ctx.tally.serial_cycles
    protocol.charge_lock(ctx, chain_length=10)
    long_total = ctx.tally.serial_cycles
    assert short > 0
    assert long_total - short > short  # longer chains hold the lock longer


def test_population_drives_contention():
    config = LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED)
    mem = GlobalMemory(cache_capacity_lines=64)
    ctx = BlockContext(mem, AtomicUnit(mem),
                       LaunchConfig.linear(4, 32), 0)
    small = InsertionProtocol(config, CostModel(), population=10)
    big = InsertionProtocol(config, CostModel(), population=100000)
    small.charge_lock(ctx, 1)
    after_small = ctx.tally.serial_cycles
    big.charge_lock(ctx, 1)
    assert ctx.tally.serial_cycles - after_small > after_small
