"""Unit tests for the three checksum-table organizations."""

import numpy as np
import pytest

from repro.core.config import AtomicMode, LockMode, LPConfig, TableKind
from repro.core.tables import (
    EMPTY_KEY,
    CuckooTable,
    GlobalArrayTable,
    QuadraticTable,
    make_table,
    mix64,
    mix64_array,
    pow2_ceil,
)
from repro.errors import TableError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory


def make_env(n_blocks=16, threads=32):
    mem = GlobalMemory(cache_capacity_lines=512)
    cfg = LaunchConfig.linear(n_blocks, threads)
    ctx = BlockContext(mem, AtomicUnit(mem), cfg, 0)
    return mem, ctx


def lanes_for(key, n_lanes=2):
    return np.array([key * 3 + 1, key * 7 + 2], dtype=np.uint64)[:n_lanes]


# -- helpers -------------------------------------------------------------------

def test_pow2_ceil():
    assert pow2_ceil(0) == 1
    assert pow2_ceil(1) == 1
    assert pow2_ceil(5) == 8
    assert pow2_ceil(64) == 64


def test_mix64_is_deterministic_and_spread():
    a = mix64(1, 0)
    assert a == mix64(1, 0)
    assert mix64(1, 0) != mix64(2, 0)
    assert mix64(1, 0) != mix64(1, 1)


def test_mix64_array_matches_scalar():
    keys = np.arange(100, dtype=np.uint64)
    vec = mix64_array(keys, 12345)
    scalars = [mix64(int(k), 12345) for k in keys]
    assert np.array_equal(vec, np.array(scalars, dtype=np.uint64))


# -- factory -------------------------------------------------------------------

def test_make_table_dispatch():
    for config, cls in (
        (LPConfig.naive_quadratic(), QuadraticTable),
        (LPConfig.naive_cuckoo(), CuckooTable),
        (LPConfig.paper_best(), GlobalArrayTable),
    ):
        mem, _ = make_env()
        table = make_table(mem, "t", 16, 2, config)
        assert isinstance(table, cls)


def test_make_table_rejects_perfect_global_array():
    mem, _ = make_env()
    with pytest.raises(TableError):
        make_table(mem, "t", 16, 2, LPConfig.paper_best(),
                   perfect_hash=True)


def test_table_validates_arguments():
    mem, _ = make_env()
    with pytest.raises(TableError):
        QuadraticTable(mem, "t", 0, 2, LPConfig.naive_quadratic())
    with pytest.raises(TableError):
        QuadraticTable(mem, "t", 4, 0, LPConfig.naive_quadratic())


# -- shared behaviour across kinds -----------------------------------------------

@pytest.mark.parametrize("config", [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
    LPConfig.paper_best(),
])
def test_insert_then_lookup_roundtrip(config):
    mem, ctx = make_env()
    table = make_table(mem, "t", 16, 2, config)
    for key in range(16):
        table.insert(ctx, key, lanes_for(key))
    for key in range(16):
        assert np.array_equal(table.lookup(key), lanes_for(key))
    assert table.stats.inserts == 16


@pytest.mark.parametrize("config", [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
    LPConfig.paper_best(),
])
def test_reinsert_overwrites_lanes(config):
    """Recovery re-execution must refresh an existing entry in place."""
    mem, ctx = make_env()
    table = make_table(mem, "t", 16, 2, config)
    table.insert(ctx, 3, lanes_for(3))
    fresh = np.array([111, 222], dtype=np.uint64)
    table.insert(ctx, 3, fresh)
    assert np.array_equal(table.lookup(3), fresh)


@pytest.mark.parametrize("config", [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
])
def test_missing_key_lookup_returns_none(config):
    mem, _ = make_env()
    table = make_table(mem, "t", 16, 2, config)
    assert table.lookup(7) is None
    assert table.stats.failed_lookups == 1


@pytest.mark.parametrize("config", [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
    LPConfig.paper_best(),
])
def test_table_buffers_are_persistent_and_prefixed(config):
    mem, _ = make_env()
    table = make_table(mem, "t", 16, 2, config)
    assert table.buffer_names
    for name in table.buffer_names:
        assert name.startswith("__lp_")
        assert mem[name].persistent
    assert table.space_bytes == sum(
        mem[name].nbytes for name in table.buffer_names
    )


def test_table_free_releases_buffers():
    mem, _ = make_env()
    table = make_table(mem, "t", 16, 2, LPConfig.paper_best())
    names = list(table.buffer_names)
    table.free()
    for name in names:
        assert name not in mem


# -- quadratic specifics ---------------------------------------------------------

def test_quadratic_counts_collisions():
    mem, ctx = make_env()
    # Tiny load factor target forces a small table and collisions.
    config = LPConfig.naive_quadratic().with_(quad_target_load_factor=1.0)
    table = QuadraticTable(mem, "t", 8, 2, config)
    assert table.capacity == 8
    for key in range(8):
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.collisions > 0
    assert table.stats.probes == 8 + table.stats.collisions
    for key in range(8):
        assert table.lookup(key) is not None


def test_quadratic_capacity_targets_load_factor():
    mem, _ = make_env()
    table = QuadraticTable(mem, "t", 100, 2, LPConfig.naive_quadratic())
    assert table.capacity >= 100 / 0.7
    assert table.capacity & (table.capacity - 1) == 0


def test_quadratic_perfect_hash_has_no_collisions():
    mem, ctx = make_env()
    table = QuadraticTable(mem, "t", 64, 2, LPConfig.naive_quadratic(),
                           perfect_hash=True)
    for key in range(64):
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.collisions == 0
    assert table.lookup(13) is not None


def test_quadratic_lock_based_charges_serial_cycles():
    mem, ctx = make_env()
    config = LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED)
    table = QuadraticTable(mem, "t", 16, 2, config,
                           cost_model=CostModel())
    table.insert(ctx, 0, lanes_for(0))
    assert ctx.tally.serial_cycles > 0


def test_quadratic_emulated_atomics_work_functionally():
    mem, ctx = make_env()
    config = LPConfig.naive_quadratic().with_(atomics=AtomicMode.EMULATED)
    table = QuadraticTable(mem, "t", 16, 2, config)
    for key in range(16):
        table.insert(ctx, key, lanes_for(key))
    for key in range(16):
        assert np.array_equal(table.lookup(key), lanes_for(key))
    assert ctx.tally.serial_cycles > 0  # the emulation penalty
    assert ctx.atomics.total_ops == 0   # no hardware atomics used


# -- cuckoo specifics -------------------------------------------------------------

def test_cuckoo_two_tables_sizing():
    mem, _ = make_env()
    table = CuckooTable(mem, "t", 100, 2, LPConfig.naive_cuckoo())
    assert table.capacity == 2 * table.per_table_capacity
    # Combined load factor at most the configured target.
    assert 100 / table.capacity <= 0.45


def test_cuckoo_eviction_chain_displaces_and_preserves():
    mem, ctx = make_env()
    # Force a crowded table (per-table capacity close to n).
    config = LPConfig.naive_cuckoo().with_(cuckoo_target_load_factor=0.5)
    table = CuckooTable(mem, "t", 32, 2, config)
    for key in range(32):
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.collisions > 0
    for key in range(32):
        assert np.array_equal(table.lookup(key), lanes_for(key))


def test_cuckoo_rehash_preserves_entries():
    mem, ctx = make_env()
    config = LPConfig.naive_cuckoo().with_(cuckoo_target_load_factor=0.5)
    # A minuscule chain bound forces rehashes quickly.
    table = CuckooTable(mem, "t", 24, 2, config, max_chain=2)
    for key in range(24):
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.rehashes > 0
    for key in range(24):
        assert np.array_equal(table.lookup(key), lanes_for(key))


def test_cuckoo_lookup_is_two_probes():
    mem, ctx = make_env()
    table = CuckooTable(mem, "t", 16, 2, LPConfig.naive_cuckoo())
    table.insert(ctx, 5, lanes_for(5))
    assert table.lookup(5) is not None
    assert table.lookup(6) is None  # exactly checks both slots


def test_cuckoo_emulated_swap_functional():
    mem, ctx = make_env()
    config = LPConfig.naive_cuckoo().with_(atomics=AtomicMode.EMULATED)
    table = CuckooTable(mem, "t", 16, 2, config)
    for key in range(16):
        table.insert(ctx, key, lanes_for(key))
    for key in range(16):
        assert np.array_equal(table.lookup(key), lanes_for(key))
    assert ctx.atomics.total_ops == 0


# -- global array specifics --------------------------------------------------------

def test_global_array_is_exact_size():
    mem, _ = make_env()
    table = GlobalArrayTable(mem, "t", 100, 2, LPConfig.paper_best())
    assert table.capacity == 100
    assert table.space_bytes == 100 * 2 * 8


def test_global_array_never_collides_or_uses_atomics():
    mem, ctx = make_env()
    table = GlobalArrayTable(mem, "t", 64, 2, LPConfig.paper_best())
    for key in range(64):
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.collisions == 0
    assert ctx.atomics.total_ops == 0
    assert ctx.tally.serial_cycles == 0


def test_global_array_missing_entry_is_sentinel():
    mem, _ = make_env()
    table = GlobalArrayTable(mem, "t", 8, 2, LPConfig.paper_best())
    assert table.lookup(5) is None


def test_global_array_rejects_foreign_keys():
    mem, ctx = make_env()
    table = GlobalArrayTable(mem, "t", 8, 2, LPConfig.paper_best())
    with pytest.raises(TableError):
        table.insert(ctx, 8, lanes_for(8))
    with pytest.raises(TableError):
        table.lookup(-1)


def test_empty_key_sentinel():
    assert int(EMPTY_KEY) == (1 << 64) - 1


# -- batched lookup (lookup_many) ------------------------------------------------

ALL_CONFIGS = [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
    LPConfig.paper_best(),
]


def _assert_lookup_many_matches_scalar(table, keys):
    """lookup_many must agree with a per-key lookup loop, per element."""
    lanes, found = table.lookup_many(np.asarray(keys, dtype=np.int64))
    assert lanes.shape == (len(keys), table.n_lanes)
    assert lanes.dtype == np.uint64
    assert found.shape == (len(keys),)
    for i, key in enumerate(keys):
        scalar = table.lookup(int(key))
        assert bool(found[i]) == (scalar is not None)
        if scalar is not None:
            assert np.array_equal(lanes[i], scalar)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_lookup_many_matches_scalar_lookup(config):
    mem, ctx = make_env()
    table = make_table(mem, "t", 16, 2, config)
    for key in range(0, 16, 2):  # half present, half missing
        table.insert(ctx, key, lanes_for(key))
    _assert_lookup_many_matches_scalar(table, list(range(16)))


@pytest.mark.parametrize("config", [
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
])
def test_lookup_many_perfect_hash_variant(config):
    mem, ctx = make_env()
    table = make_table(mem, "t", 16, 2, config, perfect_hash=True)
    for key in range(0, 16, 3):
        table.insert(ctx, key, lanes_for(key))
    _assert_lookup_many_matches_scalar(table, list(range(16)))


def test_lookup_many_quadratic_with_long_probe_chains():
    mem, ctx = make_env()
    table = QuadraticTable(mem, "t", 16, 2, LPConfig.naive_quadratic())
    for key in range(24):  # overload → collisions, long probe chains
        table.insert(ctx, key, lanes_for(key))
    assert table.stats.collisions > 0
    _assert_lookup_many_matches_scalar(table, list(range(32)))


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_lookup_many_stats_match_scalar_loop(config):
    mem, ctx = make_env()
    keys = list(range(16))
    present = list(range(0, 16, 2))

    table_a = make_table(mem, "ta", 16, 2, config)
    table_b = make_table(mem, "tb", 16, 2, config)
    for key in present:
        table_a.insert(ctx, key, lanes_for(key))
        table_b.insert(ctx, key, lanes_for(key))

    for key in keys:
        table_a.lookup(key)
    table_b.lookup_many(np.asarray(keys, dtype=np.int64))

    assert table_b.stats.lookups == table_a.stats.lookups == len(keys)
    assert table_b.stats.failed_lookups == table_a.stats.failed_lookups


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_lookup_many_empty_batch(config):
    mem, _ = make_env()
    table = make_table(mem, "t", 16, 2, config)
    lanes, found = table.lookup_many(np.array([], dtype=np.int64))
    assert lanes.shape == (0, 2)
    assert found.shape == (0,)
    assert table.stats.lookups == 0


def test_lookup_many_global_array_rejects_foreign_keys():
    mem, _ = make_env()
    table = GlobalArrayTable(mem, "t", 8, 2, LPConfig.paper_best())
    with pytest.raises(TableError):
        table.lookup_many(np.array([0, 8], dtype=np.int64))
    with pytest.raises(TableError):
        table.lookup_many(np.array([-1], dtype=np.int64))
