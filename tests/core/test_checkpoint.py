"""Unit tests for checkpointing and the interval policy."""

import numpy as np
import pytest

import repro
from repro.core.checkpoint import (
    CheckpointManager,
    optimal_checkpoint_interval,
)
from repro.core.runtime import LPRuntime
from repro.workloads.histo import HISTOWorkload
from repro.workloads.tmm import TMMWorkload


def test_checkpoint_closes_epoch():
    device = repro.Device(cache_capacity_lines=1024)
    cm = CheckpointManager(device)
    work = TMMWorkload(scale="tiny")
    kernel = LPRuntime(device).instrument(work.setup(device))
    cm.launch(kernel)
    assert cm.epoch_kernels == [kernel]
    lines = cm.checkpoint()
    assert lines > 0
    assert cm.epoch_kernels == []
    assert cm.checkpoints_taken == 1
    assert cm.checkpoint_lines == lines


def test_recover_only_touches_open_epoch():
    device = repro.Device(cache_capacity_lines=1024)
    cm = CheckpointManager(device)

    tmm = TMMWorkload(scale="tiny")
    k1 = LPRuntime(device).instrument(tmm.setup(device), table_name="e1")
    cm.launch(k1)
    cm.checkpoint()

    histo = HISTOWorkload(scale="tiny")
    k2 = LPRuntime(device).instrument(histo.setup(device),
                                      table_name="e2")
    cm.launch(k2, crash_plan=repro.CrashPlan(after_blocks=1))
    records = cm.recover()
    assert [r.kernel_name for r in records] == [k2.name]
    tmm.verify(device)
    histo.verify(device)


def test_recover_epoch_in_launch_order():
    device = repro.Device(cache_capacity_lines=64)
    cm = CheckpointManager(device)
    tmm = TMMWorkload(scale="tiny")
    k1 = LPRuntime(device).instrument(tmm.setup(device), table_name="a")
    histo = HISTOWorkload(scale="tiny")
    cm.launch(k1)
    k2 = LPRuntime(device).instrument(histo.setup(device), table_name="b")
    cm.launch(k2, crash_plan=repro.CrashPlan(after_blocks=2))
    records = cm.recover()
    assert [r.kernel_name for r in records] == [k1.name, k2.name]
    tmm.verify(device)
    histo.verify(device)


def test_recover_with_no_epoch_is_empty():
    device = repro.Device()
    cm = CheckpointManager(device)
    assert cm.recover() == []


def test_young_daly_optimum():
    policy = optimal_checkpoint_interval(1e5, 1e12)
    assert policy.interval_cycles == pytest.approx((2 * 1e5 * 1e12) ** 0.5)
    # At the optimum, the two overhead components are equal.
    amortized = policy.checkpoint_cost_cycles / policy.interval_cycles
    loss = policy.interval_cycles / (2 * policy.mtbf_cycles)
    assert amortized == pytest.approx(loss)
    assert 0 < policy.expected_overhead < 0.01
    assert 0.99 < policy.availability < 1.0


def test_young_daly_validation():
    with pytest.raises(ValueError):
        optimal_checkpoint_interval(0, 1e9)
    with pytest.raises(ValueError):
        optimal_checkpoint_interval(1e3, -1)


def test_more_frequent_crashes_need_shorter_intervals():
    stable = optimal_checkpoint_interval(1e5, 1e13)
    flaky = optimal_checkpoint_interval(1e5, 1e9)
    assert flaky.interval_cycles < stable.interval_cycles
    assert flaky.expected_overhead > stable.expected_overhead
