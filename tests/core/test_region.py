"""Unit tests for the LP region observer."""

import numpy as np

from repro.core.checksum import ChecksumSet
from repro.core.config import PAPER_CHECKSUM_PAIR
from repro.core.region import LPRegionObserver
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory


def make_ctx(threads=32):
    mem = GlobalMemory(cache_capacity_lines=64)
    cfg = LaunchConfig.linear(1, threads)
    return BlockContext(mem, AtomicUnit(mem), cfg, 0)


def test_observer_folds_values_per_thread():
    ctx = make_ctx(4)
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    obs = LPRegionObserver(cset, ctx, frozenset({"out"}))
    vals = np.float32([1.0, 2.0, 3.0, 4.0])
    obs.on_store(vals, np.arange(4))
    assert obs.n_values == 4
    assert np.array_equal(
        obs.state.lane_values_reference(), cset.checksum_of(vals)
    )


def test_observer_charges_update_cost():
    ctx = make_ctx(4)
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    obs = LPRegionObserver(cset, ctx, frozenset({"out"}))
    obs.on_store(np.float32([1.0, 2.0]), np.array([0, 1]))
    # 2 values x (1 modular + 2 parity incl. conversion) ops.
    assert ctx.tally.alu_ops == 6


def test_observer_conversion_cost_optional():
    ctx = make_ctx(4)
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    obs = LPRegionObserver(cset, ctx, frozenset({"out"}),
                           charge_float_conversion=False)
    obs.on_store(np.int32([1, 2]), np.array([0, 1]))
    assert ctx.tally.alu_ops == 4  # one op cheaper per value


def test_observer_protected_set_exposed():
    ctx = make_ctx()
    obs = LPRegionObserver(ChecksumSet(PAPER_CHECKSUM_PAIR), ctx,
                           frozenset({"a", "b"}))
    assert obs.protected == {"a", "b"}
