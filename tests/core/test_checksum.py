"""Unit tests for checksum functions and per-block state."""

import numpy as np
import pytest

from repro.core.checksum import (
    Adler32Checksum,
    BlockChecksumState,
    ChecksumSet,
    EMPTY_SENTINEL,
    ModularChecksum,
    ParityChecksum,
    float_bits,
    float_to_ordered_int,
    make_function,
    to_lane_words,
)
from repro.core.config import PAPER_CHECKSUM_PAIR, ChecksumKind
from repro.errors import ConfigError


# -- value normalization (Fig. 2) --------------------------------------------

def test_paper_fig2_example():
    """3.5 as float32 concatenates to the integer 1080033280."""
    assert float_bits(np.float32([3.5]))[0] == 1080033280


def test_float_bits_float64():
    out = float_bits(np.float64([1.0]))
    assert out.dtype == np.uint64
    assert out[0] == np.float64(1.0).view(np.uint64)


def test_float_bits_ints_two_complement():
    out = float_bits(np.int32([-1]))
    assert out[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert float_bits(np.int32([5]))[0] == 5


def test_float_bits_rejects_weird_dtypes():
    with pytest.raises(ConfigError):
        float_bits(np.array(["x"]))


def test_ordered_int_is_monotone():
    vals = np.float32([-100.0, -1.5, -0.0, 0.0, 1e-10, 3.5, 1e30])
    ordered = float_to_ordered_int(vals)
    assert np.all(np.diff(ordered.astype(np.int64)) >= 0)


def test_ordered_int_float64():
    vals = np.float64([-2.0, 0.0, 2.0])
    ordered = float_to_ordered_int(vals)
    assert ordered[0] < ordered[1] < ordered[2]


def test_ordered_int_rejects_ints():
    with pytest.raises(ConfigError):
        float_to_ordered_int(np.int32([1]))


# -- individual checksum functions --------------------------------------------

def test_modular_is_wraparound_sum():
    f = ModularChecksum()
    words = np.array([2**63, 2**63, 5], dtype=np.uint64)
    assert f.fold_all(words) == 5  # wraps modulo 2**64


def test_parity_is_xor():
    f = ParityChecksum()
    words = np.array([0b1100, 0b1010], dtype=np.uint64)
    assert f.fold_all(words) == 0b0110


def test_parity_empty_fold_is_identity():
    f = ParityChecksum()
    assert f.fold_all(np.array([], dtype=np.uint64)) == 0


def test_adler32_matches_zlib():
    import zlib

    f = Adler32Checksum()
    words = np.arange(10, dtype=np.uint64)
    expect = zlib.adler32(np.ascontiguousarray(words, "<u8").tobytes(), 1)
    assert f.fold_all(words) == expect


def test_adler32_is_order_sensitive():
    f = Adler32Checksum()
    a = np.array([1, 2, 3], dtype=np.uint64)
    b = np.array([3, 2, 1], dtype=np.uint64)
    assert f.fold_all(a) != f.fold_all(b)
    with pytest.raises(ConfigError):
        f.combine(a, b)
    with pytest.raises(ConfigError):
        f.fold_at(np.zeros(3, np.uint64), np.arange(3), a)


def test_make_function_covers_all_kinds():
    for kind in ChecksumKind:
        assert make_function(kind).kind is kind


def test_reduce_op_names():
    assert ModularChecksum().reduce_op == "add"
    assert ParityChecksum().reduce_op == "xor"
    with pytest.raises(ConfigError):
        _ = Adler32Checksum().reduce_op


# -- ChecksumSet ---------------------------------------------------------------

def test_checksum_set_reference_fold():
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    vals = np.float32([1.0, 2.0, 3.5])
    lanes = cset.checksum_of(vals)
    words = to_lane_words(vals)
    assert lanes[0] == words.sum(dtype=np.uint64)
    assert lanes[1] == np.bitwise_xor.reduce(words)


def test_checksum_set_needs_kinds():
    with pytest.raises(ConfigError):
        ChecksumSet(())


def test_checksum_set_ops_and_commutativity():
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    assert cset.commutative
    assert cset.ops_per_update == 3  # 1 modular + 2 parity
    seq = ChecksumSet((ChecksumKind.ADLER32,))
    assert not seq.commutative


def test_false_negative_bound_shrinks_with_lanes():
    one = ChecksumSet((ChecksumKind.MODULAR,)).false_negative_bound()
    two = ChecksumSet(PAPER_CHECKSUM_PAIR).false_negative_bound()
    assert two < one < 1e-18


# -- BlockChecksumState ---------------------------------------------------------

def test_state_update_scatter_and_reference():
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    state = cset.new_block_state(n_threads=4)
    vals = np.float32([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
    state.update(vals, np.arange(8) % 4)
    assert state.n_values == 8
    assert np.array_equal(
        state.lane_values_reference(), cset.checksum_of(vals)
    )


def test_state_order_insensitive_for_commutative_lanes():
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    vals = np.float32([5.0, -1.0, 2.25, 9.0])

    s1 = cset.new_block_state(2)
    s1.update(vals, np.array([0, 1, 0, 1]))
    s2 = cset.new_block_state(2)
    s2.update(vals[::-1].copy(), np.array([1, 1, 0, 0]))
    assert np.array_equal(
        s1.lane_values_reference(), s2.lane_values_reference()
    )


def test_state_misaligned_slots_rejected():
    state = ChecksumSet(PAPER_CHECKSUM_PAIR).new_block_state(2)
    with pytest.raises(ConfigError):
        state.update(np.float32([1.0, 2.0]), np.array([0]))


def test_state_with_adler_lane():
    cset = ChecksumSet((ChecksumKind.MODULAR, ChecksumKind.ADLER32))
    state = cset.new_block_state(2)
    vals = np.float32([1.0, 2.0])
    state.update(vals, np.array([0, 1]))
    lanes = state.lane_values_reference()
    words = to_lane_words(vals)
    assert lanes[0] == words.sum(dtype=np.uint64)
    assert lanes[1] == Adler32Checksum().fold_all(words)


def test_empty_sentinel_is_all_ones():
    assert int(EMPTY_SENTINEL) == (1 << 64) - 1


def test_state_lane_positions_exposed():
    cset = ChecksumSet((ChecksumKind.ADLER32, ChecksumKind.MODULAR))
    state = cset.new_block_state(2)
    assert state.comm_lane_positions == [1]
    assert list(state.seq_lane_states) == [0]
