"""Unit tests for block-level reductions (parallel vs sequential)."""

import numpy as np
import pytest

from repro.core.checksum import ChecksumSet
from repro.core.config import (
    PAPER_CHECKSUM_PAIR,
    ChecksumKind,
    ReductionMode,
)
from repro.core.reduction import (
    apply_reduction_tally,
    reduce_block,
    reduce_parallel,
    reduce_sequential,
    reduction_tally,
)
from repro.errors import ConfigError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.costs import Tally
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory


def make_state(n_threads, seed=0, kinds=PAPER_CHECKSUM_PAIR):
    rng = np.random.default_rng(seed)
    cset = ChecksumSet(kinds)
    state = cset.new_block_state(n_threads)
    vals = rng.standard_normal(n_threads * 3).astype(np.float32)
    state.update(vals, np.arange(vals.size) % n_threads)
    return state


def make_ctx(n_threads):
    mem = GlobalMemory(cache_capacity_lines=64)
    cfg = LaunchConfig.linear(1, n_threads)
    return BlockContext(mem, AtomicUnit(mem), cfg, 0)


@pytest.mark.parametrize("n_threads", [1, 31, 32, 33, 64, 256, 1024])
def test_parallel_equals_reference(n_threads):
    state = make_state(n_threads)
    expect = state.lane_values_reference()
    assert np.array_equal(reduce_parallel(state), expect)


@pytest.mark.parametrize("n_threads", [1, 32, 100, 512])
def test_sequential_equals_reference(n_threads):
    state = make_state(n_threads)
    expect = state.lane_values_reference()
    assert np.array_equal(reduce_sequential(state), expect)


def test_parallel_equals_sequential_with_ctx():
    state = make_state(96, seed=7)
    par = reduce_parallel(make_state(96, seed=7), make_ctx(96))
    seq = reduce_sequential(state, make_ctx(96))
    assert np.array_equal(par, seq)


def test_reduce_block_dispatch():
    state = make_state(64)
    expect = state.lane_values_reference()
    for mode in ReductionMode:
        assert np.array_equal(
            reduce_block(make_state(64), mode), expect
        )


def test_parallel_rejects_order_sensitive_lanes():
    state = make_state(
        32, kinds=(ChecksumKind.MODULAR, ChecksumKind.ADLER32)
    )
    with pytest.raises(ConfigError):
        reduce_parallel(state)
    # Sequential handles them fine.
    lanes = reduce_sequential(state)
    assert lanes.shape == (2,)


def test_functional_charges_match_analytic_tally_parallel():
    """The analytic profile costs must mirror the functional charges."""
    n_threads = 96
    ctx = make_ctx(n_threads)
    reduce_parallel(make_state(n_threads), ctx)
    tally = ctx.finalize_tally()
    cost = reduction_tally(ReductionMode.PARALLEL_SHUFFLE, n_threads, 2)
    assert tally.shuffle_ops == cost.shuffle_ops
    assert tally.alu_ops == cost.alu_ops
    assert tally.shared_bytes == cost.shared_bytes
    assert tally.syncthreads == cost.syncthreads
    assert tally.global_read_bytes + tally.global_write_bytes == 0


def test_functional_charges_match_analytic_tally_sequential():
    n_threads = 64
    ctx = make_ctx(n_threads)
    reduce_sequential(make_state(n_threads), ctx)
    tally = ctx.finalize_tally()
    cost = reduction_tally(ReductionMode.SEQUENTIAL_MEMORY, n_threads, 2)
    assert tally.shared_bytes == cost.shared_bytes
    assert tally.global_read_bytes + tally.global_write_bytes == cost.global_bytes
    assert tally.alu_ops == cost.alu_ops
    assert tally.syncthreads == cost.syncthreads


def test_parallel_cheaper_in_steps_than_sequential():
    par = reduction_tally(ReductionMode.PARALLEL_SHUFFLE, 1024, 2)
    seq = reduction_tally(ReductionMode.SEQUENTIAL_MEMORY, 1024, 2)
    assert par.global_bytes == 0
    assert seq.global_bytes > 0


def test_zero_lanes_tally_is_empty():
    cost = reduction_tally(ReductionMode.PARALLEL_SHUFFLE, 64, 0)
    assert cost.alu_ops == 0 and cost.shared_bytes == 0


def test_apply_reduction_tally():
    tally = Tally()
    cost = reduction_tally(ReductionMode.SEQUENTIAL_MEMORY, 64, 2)
    apply_reduction_tally(tally, cost, n_blocks=10)
    assert tally.alu_ops == cost.alu_ops * 10
    assert tally.global_read_bytes == cost.global_bytes / 2 * 10
