"""Unit tests for post-crash validation and eager recovery."""

import numpy as np
import pytest

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.errors import RecoveryError
from repro.gpu.kernel import Kernel, LaunchConfig


class StampKernel(Kernel):
    """Each block stamps (block_id + 1) over its output slice."""

    name = "stamp"
    protected_buffers = ("st_out",)

    def __init__(self, n_blocks=8, threads=32):
        self._cfg = LaunchConfig.linear(n_blocks, threads)

    def launch_config(self):
        return self._cfg

    def run_block(self, ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("st_out", idx, float(ctx.block_id + 1), slots=ctx.tid)


def build(cache_lines=8, config=None, n_blocks=8):
    device = repro.Device(cache_capacity_lines=cache_lines)
    device.alloc("st_out", (n_blocks * 32,), np.float32)
    kernel = StampKernel(n_blocks)
    lp_kernel = LPRuntime(
        device, config or repro.LPConfig.paper_best()
    ).instrument(kernel)
    return device, lp_kernel


def expected(n_blocks=8):
    return np.repeat(np.arange(1, n_blocks + 1, dtype=np.float32), 32)


def test_validation_report_clean_run():
    device, lp_kernel = build(cache_lines=1024)
    device.launch(lp_kernel)
    device.drain()
    report = RecoveryManager(device, lp_kernel).validate()
    assert report.all_passed
    assert report.n_blocks == 8
    assert report.n_failed == 0


def test_crash_then_recover_restores_output():
    device, lp_kernel = build()
    result = device.launch(
        lp_kernel, crash_plan=repro.CrashPlan(after_blocks=5,
                                              persist_fraction=0.3, seed=2)
    )
    assert result.crashed
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert np.array_equal(device.memory["st_out"].array, expected())


def test_recovery_reexecutes_only_failures():
    device, lp_kernel = build(cache_lines=2048)
    # Everything persists except we drop the whole cache at the end.
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=8))
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert set(report.recovered_blocks) == set(report.initial.failed_blocks)
    assert np.array_equal(device.memory["st_out"].array, expected())


def test_recovery_on_clean_state_is_noop():
    device, lp_kernel = build(cache_lines=1024)
    device.launch(lp_kernel)
    device.drain()
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert report.recovered_blocks == []
    assert report.recovery_launches == []


def test_recovery_restarts_crashed_device():
    device, lp_kernel = build()
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=3))
    assert device.crashed
    RecoveryManager(device, lp_kernel).recover()
    assert not device.crashed


def test_recovery_total_cycles_accumulate():
    device, lp_kernel = build()
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=3))
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.total_recovery_cycles > report.initial.launch.total_cycles


def test_recovery_detects_corruption_not_just_crashes():
    device, lp_kernel = build(cache_lines=1024)
    device.launch(lp_kernel)
    device.drain()
    repro.FaultInjector().flip_bit(device.memory, "st_out", 100, 7)
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert report.recovered_blocks == [100 // 32]
    assert np.array_equal(device.memory["st_out"].array, expected())


@pytest.mark.parametrize("config", [
    repro.LPConfig.naive_quadratic(),
    repro.LPConfig.naive_cuckoo(),
])
def test_recovery_with_hash_tables(config):
    device, lp_kernel = build(config=config)
    device.launch(
        lp_kernel, crash_plan=repro.CrashPlan(after_blocks=4,
                                              persist_fraction=0.5, seed=3)
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert np.array_equal(device.memory["st_out"].array, expected())


def test_unconverging_recovery_raises():
    """Validation that can never pass must surface as RecoveryError."""
    device, lp_kernel = build()
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=4))
    # Sabotage the table: every lookup misses, so every block fails
    # validation no matter how often it is re-executed. Validation
    # fetches checksums through the vectorized lookup_many; patch both
    # entry points so scalar callers miss too.
    n_lanes = lp_kernel.table.n_lanes
    lp_kernel.table.lookup = lambda key: None
    lp_kernel.table.lookup_many = lambda keys: (
        np.zeros((len(keys), n_lanes), dtype=np.uint64),
        np.zeros(len(keys), dtype=bool),
    )
    with pytest.raises(RecoveryError):
        RecoveryManager(device, lp_kernel).recover(max_rounds=2)


def test_recovery_validates_persistence_not_semantics():
    """A recovery function that writes *different but consistent* data
    passes validation: LP certifies that what is in memory matches its
    checksum, not that a custom recovery reproduced the original values
    (Section IV-A leaves non-idempotent recovery to the application).
    """

    class RewritingRecovery(StampKernel):
        def recover_block(self, ctx):
            idx = ctx.block_id * ctx.n_threads + ctx.tid
            ctx.st("st_out", idx, -1.0, slots=ctx.tid)

    device = repro.Device(cache_capacity_lines=8)
    device.alloc("st_out", (8 * 32,), np.float32)
    lp_kernel = LPRuntime(device).instrument(RewritingRecovery())
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=4))
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered  # consistent, though semantically rewritten
    out = device.memory["st_out"].array
    assert np.any(out == -1.0)
