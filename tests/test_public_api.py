"""The public package surface: exports, version, docstring examples."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_subpackage_surfaces():
    import repro.bench.experiments as experiments
    import repro.compiler as compiler
    import repro.ep as ep
    import repro.megakv as megakv
    import repro.nvm as nvm
    import repro.workloads as workloads

    for module in (compiler, ep, megakv, workloads):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module, name)
    for name in nvm.__all__:
        assert getattr(nvm, name) is not None, name
    assert len(experiments.EXPERIMENTS) == 16


def test_package_docstring_quick_tour_runs():
    """The __init__ docstring's tour must actually work."""
    device = repro.Device()
    work = repro.workloads.TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp = repro.LPRuntime(device, repro.LPConfig.paper_best())
    lp_kernel = lp.instrument(kernel)
    result = device.launch(lp_kernel)
    work.verify(device)
    assert result.n_completed == kernel.launch_config().n_blocks


def test_audit_docstring_example_runs():
    def scenario():
        device = repro.Device(cache_capacity_lines=16)
        work = repro.workloads.TMMWorkload(scale="tiny")
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(device).instrument(kernel)
        return device, lp_kernel, work.verify

    report = repro.audit_crash_consistency(scenario, n_schedules=5)
    assert report.all_passed
