"""Smoke tests: every example script must run end to end.

Examples are executable documentation; this keeps them from rotting.
Each runs in-process via runpy (they are all deterministic and finish
in seconds).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
    assert "Traceback" not in out
