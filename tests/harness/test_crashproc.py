"""Out-of-process crash harness tests: real SIGKILLs, real reopens.

The end-to-end matrix here is the PR's acceptance test: a child
process running a workload launch against a mapped heap is SIGKILLed
mid-launch, the parent reopens the heap file cold, runs the
engine-pluggable validate+recover pipeline, and the recovered buffers
equal a crash-free run's output — across workloads × engines.
"""

import json

import pytest

from repro.errors import ChildStartupError, HarnessError
from repro.harness import (
    ChildSpec,
    ManagedTmpdir,
    parse_trigger,
    run_cell,
    run_child,
    run_grid,
)
from repro.harness.scenarios import render_text, write_report

# ---------------------------------------------------------------------------
# Trigger parsing
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("text,expected", [
    ("writebacks:6", ("writebacks", 6.0)),
    ("blocks:12", ("blocks", 12.0)),
    ("walltime:0.5", ("walltime", 0.5)),
    ("shardwb2:5", ("shardwb2", 5.0)),
    ("shardwb*:6", ("shardwb*", 6.0)),
])
def test_parse_trigger_accepts_valid(text, expected):
    assert parse_trigger(text) == expected


@pytest.mark.parametrize("text", [
    "writebacks", "writebacks:", "writebacks:abc", "writebacks:-3",
    "writebacks:2.5", "blocks:0", "walltime:0", "sigkill:3", "6",
    "shardwb:4", "shardwb-1:4", "shardwb*", "shardwb2:0",
])
def test_parse_trigger_rejects_invalid(text):
    with pytest.raises(HarnessError):
        parse_trigger(text)


def test_shardwb_target_decodes_shard_index():
    from repro.harness.crashproc import shardwb_target

    assert shardwb_target("shardwb2") == 2
    assert shardwb_target("shardwb0") == 0
    assert shardwb_target("shardwb*") is None
    with pytest.raises(HarnessError):
        shardwb_target("writebacks")


# ---------------------------------------------------------------------------
# Managed tmpdir (the no-leaked-state satellite)
# ---------------------------------------------------------------------------

def test_managed_tmpdir_removes_contents_on_exit():
    with ManagedTmpdir() as tmp:
        path = tmp.path
        tmp.file("heap.lpnv").write_bytes(b"x" * 64)
        (path / "nested").mkdir()
        (path / "nested" / "worker.tmp").write_text("leak?")
        assert path.exists()
    assert not path.exists()


def test_managed_tmpdir_cleanup_is_idempotent():
    tmp = ManagedTmpdir()
    tmp.cleanup()
    tmp.cleanup()
    assert not tmp.path.exists()


def test_managed_tmpdir_keep_leaves_directory():
    tmp = ManagedTmpdir(keep=True)
    marker = tmp.file("marker")
    marker.touch()
    tmp.cleanup()
    try:
        assert marker.exists()
    finally:
        import shutil

        shutil.rmtree(tmp.path, ignore_errors=True)


# ---------------------------------------------------------------------------
# Startup retry/backoff
# ---------------------------------------------------------------------------

def _spec(tmp, **overrides):
    base = dict(
        workload="spmv", scale="tiny", seed=0, config="global-array",
        engine="serial", jobs=None, cache_lines=8,
        heap_path=str(tmp.file("heap.lpnv")),
        ready_path=str(tmp.file("ready")),
        phase="launch", trigger=None,
    )
    base.update(overrides)
    return ChildSpec(**base)


def test_child_that_dies_before_ready_exhausts_bounded_retries():
    with ManagedTmpdir() as tmp:
        # An unknown workload makes the child exit during setup, before
        # it ever touches its ready marker — a startup failure.
        spec = _spec(tmp, workload="no-such-workload")
        with pytest.raises(ChildStartupError) as excinfo:
            run_child(spec, tmp, timeout=60.0, startup_retries=1,
                      backoff=0.01)
        assert "2 times" in str(excinfo.value)


def test_child_spec_round_trips_through_json():
    with ManagedTmpdir() as tmp:
        spec = _spec(tmp, trigger="blocks:3")
        assert ChildSpec.from_json(spec.to_json()) == spec


def test_child_spec_shards_round_trips_and_defaults_off():
    with ManagedTmpdir() as tmp:
        assert _spec(tmp).shards == 0
        spec = _spec(tmp, shards=4, trigger="shardwb*:6")
        restored = ChildSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.shards == 4


def test_clean_child_completes_and_leaves_consistent_heap():
    import numpy as np

    from repro.harness.crashproc import build_run
    from repro.nvm.mapped import MappedShadow

    with ManagedTmpdir() as tmp:
        spec = _spec(tmp)  # no trigger: the child survives
        outcome = run_child(spec, tmp, timeout=60.0)
        assert outcome.completed and not outcome.killed
        with MappedShadow.open(spec.heap_path) as heap:
            assert heap.torn is None
            device, work, _ = build_run(spec)
            heap.adopt(device.memory)
            for name, expect in work.reference().items():
                got = device.memory[name].array.reshape(expect.shape)
                assert np.allclose(got, expect, rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# End-to-end kill matrix: the acceptance criterion
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["serial", "parallel", "batched"])
@pytest.mark.parametrize("workload", ["spmv", "tmm"])
def test_kill_midlaunch_reopen_recover_verify(workload, engine):
    cell = run_cell(workload, engine, "global-array", kill_rounds=1,
                    trigger="writebacks:6")
    (round0,) = cell["rounds"]
    assert round0["killed"], "the trigger must actually SIGKILL the child"
    assert round0["returncode"] == -9
    assert round0["blocks_failed"] > 0, "the kill must lose real state"
    final = cell["final"]
    assert final["converged"]
    assert final["blocks_recovered"] > 0
    assert final["verified"], "recovered output != crash-free reference"
    assert final["verified_persisted"]
    assert cell["ok"]


def test_rekill_during_recovery_still_converges():
    cell = run_cell("tmm", "serial", "global-array", kill_rounds=2,
                    trigger="writebacks:6")
    assert [r["phase"] for r in cell["rounds"]] == ["launch", "recover"]
    assert all(r["killed"] for r in cell["rounds"])
    assert cell["final"]["converged"] and cell["ok"]
    assert cell["rounds_to_convergence"] == 3


def test_blocks_trigger_kills_after_n_blocks():
    cell = run_cell("tmm", "serial", "global-array", kill_rounds=1,
                    trigger="blocks:3")
    (round0,) = cell["rounds"]
    assert round0["killed"]
    # A block-boundary kill happens outside the write-back window:
    # no torn lines, but plenty of lost blocks.
    assert round0["torn_lines"] == 0
    assert round0["blocks_failed"] > 0
    assert cell["ok"]


def test_writebacks_trigger_leaves_a_torn_window():
    cell = run_cell("tmm", "serial", "global-array", kill_rounds=1,
                    trigger="writebacks:6")
    assert cell["rounds"][0]["torn_lines"] > 0
    assert cell["rounds"][0]["torn_by_buffer"]
    assert cell["ok"]


def test_grid_report_shape_and_render(tmp_path):
    report = run_grid(workloads=("spmv",), engines=("serial",),
                      kill_rounds=1)
    assert report["suite"] == "crash-test"
    assert len(report["cells"]) == 1
    assert report["converged"]
    out = tmp_path / "report.json"
    write_report(report, out)
    assert json.loads(out.read_text())["converged"]
    text = render_text(report)
    assert "spmv" in text and "ok" in text


# ---------------------------------------------------------------------------
# Seeded, reproducible kill triggers (--kill-seed)
# ---------------------------------------------------------------------------

def test_round_trigger_is_deterministic_per_seed():
    from repro.harness.scenarios import _round_trigger

    a = _round_trigger("writebacks:6", 42, 0, "spmv", "serial", "ga")
    b = _round_trigger("writebacks:6", 42, 0, "spmv", "serial", "ga")
    assert a == b
    kind, value = a.split(":")
    assert kind == "writebacks"
    assert 1 <= int(value) <= 12  # bounded by twice the base threshold


def test_round_trigger_varies_across_rounds_and_cells():
    from repro.harness.scenarios import _round_trigger

    base = _round_trigger("writebacks:50", 42, 0, "spmv", "serial", "ga")
    variants = {
        _round_trigger("writebacks:50", 42, 1, "spmv", "serial", "ga"),
        _round_trigger("writebacks:50", 42, 0, "tmm", "serial", "ga"),
        _round_trigger("writebacks:50", 43, 0, "spmv", "serial", "ga"),
    }
    assert variants - {base}, "the stream must depend on round/cell/seed"


def test_round_trigger_passthrough_cases():
    from repro.harness.scenarios import _round_trigger

    assert _round_trigger("writebacks:6", None, 0, "w", "e", "c") \
        == "writebacks:6"
    assert _round_trigger("walltime:0.5", 42, 0, "w", "e", "c") \
        == "walltime:0.5"


def test_run_cell_records_seeded_triggers_for_replay():
    a = run_cell("tmm", "serial", "global-array", kill_rounds=1,
                 trigger="writebacks:6", kill_seed=7)
    b = run_cell("tmm", "serial", "global-array", kill_rounds=1,
                 trigger="writebacks:6", kill_seed=7)
    assert a["rounds"][0]["trigger"] == b["rounds"][0]["trigger"]
    assert a["rounds"][0]["trigger"].startswith("writebacks:")
    assert a["ok"] and b["ok"]


def test_run_grid_report_carries_the_kill_seed():
    report = run_grid(workloads=("spmv",), engines=("serial",),
                      kill_rounds=1, kill_seed=7)
    assert report["kill_seed"] == 7
    assert report["converged"]


# ---------------------------------------------------------------------------
# Observability: inspector cross-check, child traces, heap artifacts
# ---------------------------------------------------------------------------

def test_inspector_agrees_with_harness_on_armed_journal_kill(tmp_path):
    """The PR's acceptance criterion: a child SIGKILLed inside the
    armed-journal write-back window must yield the *same* armed /
    torn / directory state from ``repro inspect``'s cold decoder as
    from the harness's reopen-and-measure path — cross-checked per
    round and folded into the cell verdict.
    """
    from repro.nvm.inspect import inspect_heap

    cell = run_cell("tmm", "serial", "global-array", kill_rounds=1,
                    trigger="writebacks:6",
                    artifacts_dir=tmp_path / "artifacts")
    (round0,) = cell["rounds"]
    assert round0["killed"]
    inspected = round0["inspect"]
    # The writebacks trigger fires inside the journal window.
    assert inspected["armed"] is True
    assert inspected["mode"] == "EXACT"
    assert round0["inspect_consistent"] is True
    assert inspected["torn_lines"] == round0["torn_lines"] > 0
    assert inspected["torn_by_buffer"] == round0["torn_by_buffer"]
    assert inspected["buffers"] == round0["buffers"]
    assert cell["ok"]

    # The copied artifact still holds the armed journal (_measure's
    # reopen disarmed the live heap *after* the snapshot), so
    # ``repro inspect`` on the artifact reproduces the round's state.
    artifact = tmp_path / "artifacts" / "tmm-serial-global-array.heap.lpnv"
    report = inspect_heap(artifact)
    assert report.torn.armed
    assert report.torn.n_lines == round0["torn_lines"]
    assert report.torn.by_buffer == round0["torn_by_buffer"]
    assert sorted(e.name for e in report.entries) == round0["buffers"]


def test_clean_round_inspects_consistently_too():
    cell = run_cell("spmv", "serial", "global-array", kill_rounds=1,
                    trigger="blocks:3")
    (round0,) = cell["rounds"]
    assert round0["inspect"]["armed"] is False
    assert round0["inspect"]["mode"] == "EMPTY"
    assert round0["inspect_consistent"] is True
    assert cell["ok"]


def test_trace_dir_captures_child_flight_recorder(tmp_path):
    from repro.obs import read_jsonl_trace

    cell = run_cell("tmm", "serial", "global-array", kill_rounds=2,
                    trigger="writebacks:6", trace_dir=tmp_path)
    assert cell["ok"]
    traces = sorted(p.name for p in tmp_path.glob("*.trace.jsonl"))
    assert traces == [
        "tmm-serial-global-array-round0-launch.trace.jsonl",
        "tmm-serial-global-array-round1-recover.trace.jsonl",
    ]
    # The SIGKILL truncates the stream mid-run; the reader tolerates a
    # torn tail and the captured prefix has real device-side events.
    events = read_jsonl_trace(
        tmp_path / "tmm-serial-global-array-round0-launch.trace.jsonl")
    assert events, "child recorded nothing before its SIGKILL"
    names = {e["name"] for e in events}
    assert "harness.child.ready" in names
    # The writebacks trigger kills inside the journal window, so the
    # last thing on tape is the arming of the window that tore.
    assert events[-1]["name"] == "nvm.writeback.arm"


def test_sampler_flushes_at_round_boundaries():
    from repro import obs
    from repro.obs import MetricsRegistry, Recorder, TelemetrySampler

    rec = Recorder(metrics=MetricsRegistry())
    rec.sampler = TelemetrySampler(rec.metrics)
    previous = obs.install(rec)
    try:
        cell = run_cell("spmv", "serial", "global-array", kill_rounds=2,
                        trigger="writebacks:6")
    finally:
        obs.install(previous)
        rec.sampler.close()
    assert cell["ok"]
    assert len(rec.sampler.samples) == len(cell["rounds"])
    latest = rec.sampler.latest()
    assert any(k.startswith("harness.rounds") for k in latest.counters)
