"""KVServer over real sockets: batching, shed, stats, gauges.

Every test runs the daemon in-process on a Unix socket (or loopback
TCP) with real reader/batcher threads — only the process boundary is
elided relative to ``python -m repro serve``.
"""

import json
import threading

import pytest

from repro import obs
from repro.errors import ServiceError
from repro.obs.schema import load_schema, validate
from repro.service.core import ServiceConfig
from repro.service.daemon import KVServer
from repro.service.loadgen import LoadConfig, run_load
from repro.service.protocol import ServiceClient


@pytest.fixture
def server(tmp_path):
    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64),
                   address=str(tmp_path / "kv.sock")).start()
    yield srv
    srv.shutdown()
    srv.join(timeout=30)


def test_round_trip_over_unix_socket(server):
    with ServiceClient(server.address) as client:
        assert client.ping()
        client.put(1, 100)
        assert client.get(1) == 100
        client.delete(1)
        assert client.get(1) is None


def test_round_trip_over_tcp(tmp_path):
    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64),
                   address="127.0.0.1:0").start()
    try:
        host, port = srv.address
        with ServiceClient((host, port)) as client:
            client.put(2, 22)
            assert client.get(2) == 22
    finally:
        srv.shutdown()
        srv.join(timeout=30)


def test_pipelined_requests_batch_into_one_window(server):
    """max_wait_ms collects a pipelined burst into few windows."""
    with ServiceClient(server.address) as client:
        ids = [client.send("put", k + 1, k + 1) for k in range(32)]
        for req_id in ids:
            assert client.wait(req_id)["ok"]
    stats = server.stats()
    assert stats["counters"]["acked"] == 32
    assert stats["counters"]["windows"] < 32
    assert stats["batch_occupancy"]["max"] > 1


def test_one_per_launch_config_never_batches(tmp_path):
    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64,
                                 max_batch=1, max_wait_ms=0.0),
                   address=str(tmp_path / "kv1.sock")).start()
    try:
        with ServiceClient(srv.address) as client:
            for k in range(8):
                client.put(k + 1, 1)
        stats = srv.stats()
        assert stats["counters"]["windows"] == 8
        assert stats["batch_occupancy"]["max"] == 1
    finally:
        srv.shutdown()
        srv.join(timeout=30)


def test_admission_control_sheds_over_capacity(tmp_path):
    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64,
                                 queue_cap=2, max_batch=2,
                                 max_wait_ms=50.0),
                   address=str(tmp_path / "shed.sock")).start()
    try:
        with ServiceClient(srv.address) as client:
            ids = [client.send("put", k + 1, 1) for k in range(64)]
            docs = [client.wait(i) for i in ids]
        shed = [d for d in docs if d.get("shed")]
        acked = [d for d in docs if d.get("ok")]
        assert shed, "queue_cap=2 under a 64-deep burst must shed"
        assert len(shed) + len(acked) == 64
        assert srv.stats()["counters"]["shed"] == len(shed)
    finally:
        srv.shutdown()
        srv.join(timeout=30)


def test_malformed_requests_get_error_responses(server):
    with ServiceClient(server.address) as client:
        doc = client.call("put", key=0, value=1)
        assert not doc["ok"]
        doc = client.call("get", key=1 << 64)
        assert not doc["ok"]
        # The connection survives recoverable protocol errors.
        client.put(1, 5)
        assert client.get(1) == 5


def test_concurrent_clients_see_consistent_state(server):
    def hammer(base):
        with ServiceClient(server.address) as client:
            for k in range(base, base + 20):
                client.put(k, k * 3)
            for k in range(base, base + 20):
                assert client.get(k) == k * 3

    threads = [threading.Thread(target=hammer, args=(1 + i * 100,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()


def test_stats_document_matches_committed_schema(server):
    schema = load_schema("service_stats")
    validate(server.stats(), schema)  # empty server
    run_load(server.address,
             LoadConfig(clients=2, requests_per_client=40, pipeline=4))
    doc = server.stats()
    validate(doc, schema)
    assert doc["counters"]["acked"] == 80
    assert doc["latency_ms"]["p50_ms"] is not None
    # The wire round-trip preserves schema conformance.
    with ServiceClient(server.address) as client:
        validate(client.stats(), schema)


def test_stats_schema_round_trips_as_json(server):
    doc = server.stats()
    validate(json.loads(json.dumps(doc)), load_schema("service_stats"))


def test_gauges_published_to_registry(server):
    with ServiceClient(server.address) as client:
        for k in range(8):
            client.put(k + 1, 1)
    metrics = obs.MetricsRegistry()
    server.publish_gauges(metrics)
    snap = metrics.snapshot()
    gauges = snap["gauges"]
    assert gauges["service.queue.depth"] == 0
    assert gauges["service.queue.capacity"] == 1024
    assert gauges["service.windows.flushed"] >= 1
    assert "service.batch.occupancy" in gauges
    assert "service.shed.requests" in gauges


def test_telemetry_sampler_carries_service_gauges(tmp_path, server):
    """The serve CLI wiring: sampler + gauge_providers → JSONL lines
    that validate against the telemetry schema and carry the service
    gauges."""
    with ServiceClient(server.address) as client:
        for k in range(8):
            client.put(k + 1, 1)
    metrics = obs.MetricsRegistry()
    jsonl = tmp_path / "svc-telemetry.jsonl"
    sampler = obs.TelemetrySampler(
        metrics, interval=0.05, jsonl_path=jsonl,
        gauge_providers=[server.publish_gauges])
    sampler.start()
    import time

    time.sleep(0.3)
    sampler.stop()
    sampler.close()
    lines = [json.loads(line)
             for line in jsonl.read_text().splitlines() if line]
    assert lines
    schema = load_schema("telemetry")
    for line in lines:
        validate(line, schema)
    assert "service.queue.depth" in lines[-1]["gauges"]
    assert "service.windows.flushed" in lines[-1]["gauges"]


def test_durable_server_resumes_after_clean_restart(tmp_path):
    heap = tmp_path / "srv.heap.lpnv"
    sock = str(tmp_path / "srv.sock")
    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64),
                   heap_path=heap, address=sock).start()
    with ServiceClient(srv.address) as client:
        client.put(1, 10)
        client.put(2, 20)
        client.delete(1)
    srv.shutdown()
    srv.join(timeout=30)

    srv = KVServer(ServiceConfig(capacity=512, cache_lines=64),
                   heap_path=heap, address=sock).start()
    try:
        stats = srv.stats()
        assert stats["backend"] == "mapped"
        assert stats["resume"]["resumed"]
        with ServiceClient(srv.address) as client:
            assert client.get(1) is None
            assert client.get(2) == 20
    finally:
        srv.shutdown()
        srv.join(timeout=30)


def test_bad_address_rejected():
    with pytest.raises(ServiceError):
        KVServer(ServiceConfig(), address="127.0.0.1:notaport")
