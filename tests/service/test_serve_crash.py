"""Acceptance: SIGKILL the daemon mid-batch under live load; resume.

This is the issue's end-to-end criterion, run for real: a spawned
``python -m repro serve`` child is SIGKILLed by a ``writebacks:N``
trigger from inside an armed write-back window while three clients
drive mixed traffic; the harness restarts the daemon on the same heap
and the same clients — reconnect-retrying the whole time — finish
their plans. Convergence asserts every acked PUT/DELETE is observable
after the restart and every un-acked in-flight request was cleanly
retryable.
"""

import signal

import pytest

from repro.harness.serve import render_serve_text, run_serve_scenario


@pytest.mark.parametrize("shards", [0, 4], ids=["mapped", "sharded"])
def test_sigkill_mid_batch_resumes_with_no_acked_loss(shards):
    report = run_serve_scenario(shards=shards)
    detail = render_serve_text(report)

    assert report["kill_rc"] == -signal.SIGKILL, detail
    # The trigger fires inside commit(): the torn-write journal must
    # still be armed on the post-kill image.
    assert report["journal_armed_at_kill"], detail
    # The clients lived through the kill (their reconnect loop is the
    # "cleanly retryable" half of the contract).
    assert report["load"]["reconnects"] > 0, detail
    assert report["load"]["resent"] > 0, detail
    assert not report["client_failures"], detail
    # The restarted daemon really resumed (cold open → WAL replay →
    # validate → recover), and nothing acked went missing.
    assert report["resume"]["resumed"], detail
    assert not report["read_your_writes_mismatches"], detail
    assert not report["final_sweep_mismatches"], detail
    assert report["acked_writes_checked"] > 0, detail
    assert report["resumed_exit_rc"] == 0, detail
    assert report["converged"], detail
