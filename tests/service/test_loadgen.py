"""The seeded load generator is deterministic — and pinned.

The bench and crash scenarios only mean anything if two runs replay
identical traffic, so this test pins the first keys and the exact op
mix of the default seed. If it ever fails, the generator changed
behaviour and every committed BENCH_serve number is stale.
"""

from collections import Counter

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.loadgen import LoadConfig, ZipfianKeys, plan_ops

#: First eight ops of (seed=0, client 0) under the default shape —
#: committed literals, not recomputed.
PINNED_FIRST_8 = [
    ("get", 14970076879386038193, None),
    ("get", 8709371129873690708, None),
    ("put", 11400714819323198485, 874160564942366987),
    ("get", 11400714819323198485, None),
    ("put", 1606053297877825593, 2978418710633010041),
    ("put", 18332166918490527648, 9138007129887651750),
    ("delete", 15998078693348208393, None),
    ("get", 9830067809575187193, None),
]

#: Exact op mix of the same plan (200 requests at 0.5/0.4/0.1).
PINNED_MIX = {"get": 95, "put": 85, "delete": 20}


def test_seed0_plan_is_pinned():
    plan = plan_ops(LoadConfig(seed=0), client_idx=0)
    assert plan[:8] == PINNED_FIRST_8
    assert Counter(op for op, _, _ in plan) == PINNED_MIX


def test_plan_is_deterministic_per_client():
    cfg = LoadConfig(seed=123, requests_per_client=100)
    assert plan_ops(cfg, 2) == plan_ops(cfg, 2)
    assert plan_ops(cfg, 2) != plan_ops(cfg, 3)
    assert plan_ops(LoadConfig(seed=124, requests_per_client=100), 2) \
        != plan_ops(cfg, 2)


def test_partitioned_clients_touch_disjoint_keys():
    cfg = LoadConfig(seed=5, clients=4, requests_per_client=300,
                     key_space=64, partition_keys=True)
    key_sets = [
        {key for _, key, _ in plan_ops(cfg, i)} for i in range(4)
    ]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (key_sets[i] & key_sets[j])


def test_keys_are_valid_store_domain():
    plan = plan_ops(LoadConfig(seed=9, requests_per_client=500,
                               key_space=1000), 0)
    for op, key, value in plan:
        assert 0 < key < (1 << 64)
        if op == "put":
            assert 0 < value < (1 << 64)


def test_zipfian_skew_prefers_low_ranks():
    """Rank 1 must dominate a theta=0.99 stream; uniform it is not."""
    zipf = ZipfianKeys(100, theta=0.99)
    rng = np.random.default_rng(0)
    keys = zipf.draw(rng, 5000).tolist()
    counts = Counter(keys)
    hottest = counts[zipf.key_of(1)]
    assert hottest == max(counts.values())
    assert hottest > 5000 / 100 * 5  # way above the uniform share


def test_zipfian_scramble_is_injective_over_partitions():
    seen = set()
    for offset in (0, 512, 1024):
        zipf = ZipfianKeys(512, rank_offset=offset)
        keys = {zipf.key_of(r) for r in range(1, 513)}
        assert len(keys) == 512
        assert not (keys & seen)
        seen |= keys


def test_key_of_matches_draw():
    zipf = ZipfianKeys(512, theta=0.9, rank_offset=512)
    rng = np.random.default_rng(3)
    keys = zipf.draw(rng, 200)
    ranks = np.searchsorted(
        zipf._cdf, np.random.default_rng(3).random(200)) + 1
    assert all(zipf.key_of(int(r)) == int(k)
               for r, k in zip(ranks, keys))


def test_bad_shapes_rejected():
    with pytest.raises(ServiceError):
        plan_ops(LoadConfig(get_frac=0.9, put_frac=0.9, delete_frac=0.1), 0)
    with pytest.raises(ServiceError):
        ZipfianKeys(0)
