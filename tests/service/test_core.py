"""ServiceCore: window partitioning, the flush path, and resume.

The unclean-stop tests are the in-process mirror of the SIGKILL
scenario: ``close(drain=False)`` abandons the write-back cache with
the request WAL still armed, exactly what the kernel does to a
SIGKILLed daemon, and the next :class:`ServiceCore` on the same heap
must replay, recover, and converge.
"""

import pytest

from repro.errors import ServiceError
from repro.service.core import (
    Request,
    ServiceConfig,
    ServiceCore,
    partition_window,
)
from repro.service.reqlog import RequestLog, log_path_for


def _reqs(*ops):
    return [Request(op=op, key=key, value=value)
            for op, key, value in ops]


# ----------------------------------------------------------------------
# partition_window
# ----------------------------------------------------------------------

def test_partition_disjoint_ops_stay_in_one_batch():
    batches = partition_window(_reqs(
        ("put", 1, 10), ("put", 2, 20), ("delete", 3, None),
        ("get", 4, None)))
    assert len(batches) == 1
    sb = batches[0]
    assert [r.key for r in sb.inserts] == [1, 2]
    assert [r.key for r in sb.deletes] == [3]
    assert [r.key for r in sb.searches] == [4]


def test_partition_write_after_write_cuts():
    batches = partition_window(_reqs(
        ("put", 1, 10), ("put", 1, 11)))
    assert len(batches) == 2


def test_partition_read_after_write_cuts():
    batches = partition_window(_reqs(
        ("put", 1, 10), ("get", 1, None)))
    assert len(batches) == 2


def test_partition_write_after_read_cuts():
    batches = partition_window(_reqs(
        ("get", 1, None), ("delete", 1, None)))
    assert len(batches) == 2


def test_partition_duplicate_reads_coexist():
    batches = partition_window(_reqs(
        ("get", 1, None), ("get", 1, None), ("get", 1, None)))
    assert len(batches) == 1
    assert len(batches[0].searches) == 3


def test_partition_rejects_unbatchable_op():
    with pytest.raises(ServiceError):
        partition_window(_reqs(("ping", 1, None)))


# ----------------------------------------------------------------------
# execute_window
# ----------------------------------------------------------------------

@pytest.fixture
def volatile_core():
    core = ServiceCore(ServiceConfig(capacity=256, cache_lines=64))
    yield core
    core.close()


def _window(core, *ops):
    """Run one window; returns ``{req_key: response}`` per op index."""
    reqs = _reqs(*ops)
    result = core.execute_window(reqs)
    assert len(result.responses) == len(reqs)
    return result


def test_window_read_your_writes_within_one_window(volatile_core):
    result = _window(volatile_core,
                     ("put", 1, 10), ("get", 1, None),
                     ("put", 1, 11), ("get", 1, None))
    by_req = {id(req): doc for req, doc in result.responses}
    reqs = [req for req, _ in result.responses]
    gets = [doc for req, doc in result.responses if req.op == "get"]
    assert [doc["value"] for doc in gets] == [10, 11]
    assert result.sub_batches == 4
    assert all(by_req[id(r)]["ok"] for r in reqs)


def test_window_delete_then_get_misses(volatile_core):
    _window(volatile_core, ("put", 5, 50))
    result = _window(volatile_core, ("delete", 5, None), ("get", 5, None))
    get_doc = [doc for req, doc in result.responses
               if req.op == "get"][0]
    assert get_doc["value"] is None


def test_window_get_of_absent_key_is_none_not_error(volatile_core):
    result = _window(volatile_core, ("get", 999, None))
    doc = result.responses[0][1]
    assert doc["ok"] and doc["value"] is None


def test_window_store_full_fails_whole_window(volatile_core):
    cap = volatile_core.store.n_slots // 8
    too_many = [("put", k + 1, 1) for k in range(cap + 1)]
    result = _window(volatile_core, *too_many)
    assert all(not doc["ok"] and doc["error"] == "store_full"
               for _, doc in result.responses)
    assert result.launches == 0
    # The store still works afterwards.
    ok = _window(volatile_core, ("put", 1, 1), ("get", 1, None))
    assert all(doc["ok"] for _, doc in ok.responses)


# ----------------------------------------------------------------------
# Durable lifecycle: clean restart and unclean-stop resume
# ----------------------------------------------------------------------

def _apply_reference(state, ops):
    for op, key, value in ops:
        if op == "put":
            state[key] = value
        elif op == "delete":
            state.pop(key, None)
    return state


def _make_core(tmp_path, shards):
    heap = (tmp_path / "sharded" / "heap.lpnv" if shards
            else tmp_path / "heap.lpnv")
    return ServiceCore(ServiceConfig(capacity=512, cache_lines=32),
                       heap_path=heap, shards=shards), heap


@pytest.mark.parametrize("shards", [0, 4], ids=["mapped", "sharded"])
def test_clean_restart_preserves_state(tmp_path, shards):
    core, heap = _make_core(tmp_path, shards)
    ops = [("put", 1, 10), ("put", 2, 20), ("delete", 1, None),
           ("put", 3, 30)]
    core.execute_window(_reqs(*ops))
    core.close(drain=True)

    reopened = ServiceCore(ServiceConfig(capacity=512, cache_lines=32),
                           heap_path=heap, shards=shards)
    try:
        assert reopened.resume_info["resumed"]
        assert reopened.resume_info["replayed_launches"] == 0
        assert reopened.store.contents() == _apply_reference({}, ops)
    finally:
        reopened.close()


@pytest.mark.parametrize("shards", [0, 4], ids=["mapped", "sharded"])
def test_unclean_stop_replays_wal_and_converges(tmp_path, shards):
    core, heap = _make_core(tmp_path, shards)
    acked = [("put", k, k * 100) for k in range(1, 21)]
    core.execute_window(_reqs(*acked))  # acked: drained + WAL cleared

    # The in-flight window: logged and launched, but the checkpoint
    # never drains — close(drain=False) throws the cached lines away
    # with the WAL still armed, like a SIGKILL mid-window.
    inflight = [("put", 1, 111), ("put", 30, 300), ("delete", 2, None),
                ("get", 5, None), ("put", 5, 555)]
    sub_batches = partition_window(_reqs(*inflight))
    core.reqlog.begin(
        next_addr=core.device.memory.alloc_cursor,
        batch_counter=core.session.batch_counter,
        sub_batches=[{
            "inserts": [[r.key, r.value] for r in sb.inserts],
            "deletes": [r.key for r in sb.deletes],
            "searches": [r.key for r in sb.searches],
        } for sb in sub_batches],
    )
    for sb in sub_batches:
        core._launch_sub_batch(sb, [])
    core.close(drain=False)
    assert RequestLog(log_path_for(heap)).read() is not None

    reopened = ServiceCore(ServiceConfig(capacity=512, cache_lines=32),
                           heap_path=heap, shards=shards)
    try:
        info = reopened.resume_info
        assert info["resumed"]
        assert info["replayed_launches"] >= 1
        expected = _apply_reference(_apply_reference({}, acked), inflight)
        assert reopened.store.contents() == expected
        # The WAL is retired: a second restart replays nothing.
        assert RequestLog(log_path_for(heap)).read() is None

        # And the service keeps serving after the resume.
        result = reopened.execute_window(_reqs(("get", 5, None),
                                               ("put", 40, 400)))
        docs = {req.op: doc for req, doc in result.responses}
        assert docs["get"]["value"] == 555
        assert docs["put"]["ok"]
    finally:
        reopened.close()


def test_unacked_window_is_idempotent_under_client_retry(tmp_path):
    """Crash before the ack, then the client retries the same ops —
    the end state must equal a single application."""
    core, heap = _make_core(tmp_path, shards=0)
    inflight = [("put", 7, 70), ("delete", 8, None)]
    sub_batches = partition_window(_reqs(*inflight))
    core.reqlog.begin(
        next_addr=core.device.memory.alloc_cursor,
        batch_counter=core.session.batch_counter,
        sub_batches=[{
            "inserts": [[r.key, r.value] for r in sb.inserts],
            "deletes": [r.key for r in sb.deletes],
            "searches": [r.key for r in sb.searches],
        } for sb in sub_batches],
    )
    for sb in sub_batches:
        core._launch_sub_batch(sb, [])
    core.close(drain=False)

    reopened = ServiceCore(ServiceConfig(capacity=512, cache_lines=32),
                           heap_path=heap)
    try:
        reopened.execute_window(_reqs(*inflight))  # the retry
        assert reopened.store.contents() == {7: 70}
    finally:
        reopened.close()


def test_volatile_core_has_no_reqlog(volatile_core):
    assert not volatile_core.durable
    assert volatile_core.reqlog is None
    assert volatile_core.backend() == "memory"


@pytest.mark.parametrize("shards,backend", [(0, "mapped"),
                                            (4, "sharded")])
def test_backend_names(tmp_path, shards, backend):
    core, _ = _make_core(tmp_path, shards)
    try:
        assert core.backend() == backend
    finally:
        core.close()


def test_unknown_lp_config_rejected():
    with pytest.raises(ServiceError):
        ServiceConfig(config="nope").lp_config()
