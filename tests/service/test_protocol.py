"""Wire-protocol framing and request validation."""

import socket
import threading

import pytest

from repro.errors import ProtocolError, ServiceUnavailableError
from repro.service.protocol import (
    HEADER,
    MAX_FRAME,
    pack_frame,
    read_frame,
    recv_exact,
    validate_request,
)


def _pipe():
    """A connected local socket pair."""
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_frame_round_trip():
    a, b = _pipe()
    doc = {"id": 7, "op": "put", "key": 1, "value": (1 << 64) - 1}
    a.sendall(pack_frame(doc))
    assert read_frame(b) == doc
    a.close()
    b.close()


def test_many_frames_in_one_stream_byte_dribble():
    """Frames survive arbitrary TCP segmentation (one byte at a time)."""
    a, b = _pipe()
    docs = [{"id": i, "op": "get", "key": i + 1} for i in range(5)]
    wire = b"".join(pack_frame(d) for d in docs)

    def dribble():
        for i in range(len(wire)):
            a.sendall(wire[i:i + 1])
        a.close()

    thread = threading.Thread(target=dribble)
    thread.start()
    got = [read_frame(b) for _ in range(len(docs))]
    thread.join()
    assert got == docs
    assert read_frame(b) is None  # clean EOF at a frame boundary
    b.close()


def test_clean_eof_returns_none():
    a, b = _pipe()
    a.close()
    assert read_frame(b) is None
    b.close()


def test_torn_header_raises():
    a, b = _pipe()
    a.sendall(HEADER.pack(100)[:2])  # half a header, then die
    a.close()
    with pytest.raises(ServiceUnavailableError):
        read_frame(b)
    b.close()


def test_torn_payload_raises():
    a, b = _pipe()
    frame = pack_frame({"id": 1, "op": "ping"})
    a.sendall(frame[:-3])  # header + partial payload
    a.close()
    with pytest.raises(ServiceUnavailableError):
        read_frame(b)
    b.close()


def test_oversized_frame_rejected_both_ways():
    with pytest.raises(ProtocolError):
        pack_frame({"blob": "x" * (MAX_FRAME + 1)})
    a, b = _pipe()
    a.sendall(HEADER.pack(MAX_FRAME + 1))
    with pytest.raises(ProtocolError):
        read_frame(b)
    a.close()
    b.close()


def test_non_object_payload_rejected():
    a, b = _pipe()
    payload = b"[1,2,3]"
    a.sendall(HEADER.pack(len(payload)) + payload)
    with pytest.raises(ProtocolError):
        read_frame(b)
    a.close()
    b.close()


def test_recv_exact_none_only_at_boundary():
    a, b = _pipe()
    a.sendall(b"abcd")
    a.close()
    assert recv_exact(b, 4) == b"abcd"
    assert recv_exact(b, 4) is None
    b.close()


@pytest.mark.parametrize("doc", [
    {"op": "nope", "key": 1},
    {"op": "get"},                          # missing key
    {"op": "get", "key": 0},                # zero is the empty sentinel
    {"op": "get", "key": 1 << 64},          # out of uint64 range
    {"op": "get", "key": True},             # bool is not a key
    {"op": "get", "key": "1"},
    {"op": "put", "key": 1},                # missing value
    {"op": "put", "key": 1, "value": 0},
    {"op": "put", "key": 1, "value": 1 << 64},
    {"op": "put", "key": 1, "value": False},
])
def test_validate_request_rejects(doc):
    with pytest.raises(ProtocolError):
        validate_request(doc)


@pytest.mark.parametrize("doc,op", [
    ({"op": "get", "key": 1}, "get"),
    ({"op": "put", "key": (1 << 64) - 1, "value": 1}, "put"),
    ({"op": "delete", "key": 2}, "delete"),
    ({"op": "ping"}, "ping"),
    ({"op": "stats"}, "stats"),
    ({"op": "shutdown"}, "shutdown"),
])
def test_validate_request_accepts(doc, op):
    assert validate_request(doc) == op
