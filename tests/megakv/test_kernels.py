"""Unit tests for MEGA-KV insert/search/delete kernels."""

import numpy as np
import pytest

import repro
from repro.errors import TableFullError
from repro.megakv import MegaKVStore
from repro.megakv.kernels import (
    KVDeleteKernel,
    KVInsertKernel,
    KVSearchKernel,
    alloc_results,
)
from repro.workloads.generators import key_value_records


def build(capacity=256, n=100, seed=0):
    device = repro.Device()
    store = MegaKVStore(device, capacity=capacity)
    keys, vals = key_value_records(np.random.default_rng(seed), n)
    return device, store, keys, vals


def test_insert_populates_store():
    device, store, keys, vals = build()
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=16))
    assert store.contents() == dict(
        zip(map(int, keys), map(int, vals))
    )
    assert store.stats.inserts == 100


def test_insert_update_path():
    device, store, keys, vals = build()
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=16))
    new_vals = vals + np.uint64(1)
    device.launch(KVInsertKernel(store, keys, new_vals,
                                 threads_per_block=16))
    assert store.stats.updates == 100
    assert store.host_search(int(keys[0])) == int(new_vals[0])


def test_search_hits_and_misses():
    device, store, keys, vals = build()
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=16))
    alloc_results(device, "res", 100)
    query = keys.copy()
    query[50:] += np.uint64(1 << 60)  # 50 misses
    device.launch(KVSearchKernel(store, query, "res",
                                 threads_per_block=16))
    res = device.memory["res"].array
    assert np.array_equal(res[:50], vals[:50])
    assert np.all(res[50:] == 0)
    assert store.stats.hits == 50


def test_delete_removes_and_tolerates_absent():
    device, store, keys, vals = build()
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=16))
    mix = np.concatenate([keys[:30], keys[:10] + np.uint64(1 << 60)])
    device.launch(KVDeleteKernel(store, mix, threads_per_block=16))
    assert store.stats.removed == 30
    contents = store.contents()
    assert len(contents) == 70
    assert int(keys[0]) not in contents


def test_zero_keys_and_values_rejected():
    device, store, keys, vals = build()
    bad = keys.copy()
    bad[0] = 0
    with pytest.raises(TableFullError):
        KVInsertKernel(store, bad, vals)
    badv = vals.copy()
    badv[0] = 0
    with pytest.raises(TableFullError):
        KVInsertKernel(store, keys, badv)
    with pytest.raises(TableFullError):
        KVInsertKernel(store, keys, vals[:50])


def test_launch_config_covers_requests():
    device, store, keys, vals = build(n=100)
    kernel = KVInsertKernel(store, keys, vals, threads_per_block=32)
    cfg = kernel.launch_config()
    assert cfg.n_blocks * cfg.threads_per_block >= 100


def test_delete_then_insert_reuses_slot():
    device, store, keys, vals = build(n=10)
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=8))
    device.launch(KVDeleteKernel(store, keys, threads_per_block=8))
    assert store.contents() == {}
    device.launch(KVInsertKernel(store, keys, vals, threads_per_block=8))
    assert len(store.contents()) == 10
