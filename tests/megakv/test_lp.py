"""Crash-recovery tests for the LP-protected MEGA-KV session."""

import numpy as np
import pytest

import repro
from repro.megakv import KVBatchSession, MegaKVStore
from repro.workloads.generators import key_value_records


def build(capacity=512, n=200, cache_lines=8, seed=0):
    device = repro.Device(cache_capacity_lines=cache_lines)
    store = MegaKVStore(device, capacity=capacity)
    session = KVBatchSession(device, store, threads_per_block=16)
    keys, vals = key_value_records(np.random.default_rng(seed), n)
    return device, store, session, keys, vals


def as_dict(keys, vals):
    return dict(zip(map(int, keys), map(int, vals)))


def test_clean_batches():
    _, store, session, keys, vals = build(cache_lines=1024)
    out = session.insert(keys, vals)
    assert not out.crashed
    res = session.search(keys)
    assert np.array_equal(res.results, vals)
    session.delete(keys[:100])
    assert store.contents() == as_dict(keys[100:], vals[100:])


def test_insert_crash_recovers_all_records():
    _, store, session, keys, vals = build()
    out = session.insert(
        keys, vals,
        crash_plan=repro.CrashPlan(after_blocks=6, persist_fraction=0.4,
                                   seed=3),
    )
    assert out.crashed
    assert out.recovery is not None and out.recovery.recovered
    assert store.contents() == as_dict(keys, vals)


def test_delete_crash_recovers_removals():
    _, store, session, keys, vals = build()
    session.insert(keys, vals)
    out = session.delete(
        keys[:120],
        crash_plan=repro.CrashPlan(after_blocks=3, persist_fraction=0.5,
                                   seed=9),
    )
    assert out.recovery.recovered
    assert store.contents() == as_dict(keys[120:], vals[120:])


def test_search_crash_recovers_results():
    _, store, session, keys, vals = build()
    session.insert(keys, vals)
    out = session.search(
        keys[:100],
        crash_plan=repro.CrashPlan(after_blocks=2, persist_fraction=0.2,
                                   seed=11),
    )
    assert out.recovery.recovered
    assert np.array_equal(out.results, vals[:100])


def test_consecutive_crashing_batches():
    """Recover each batch before admitting the next (the session rule)."""
    _, store, session, keys, vals = build(n=150)
    session.insert(
        keys, vals,
        crash_plan=repro.CrashPlan(after_blocks=4, persist_fraction=0.3,
                                   seed=1),
    )
    session.delete(
        keys[:50],
        crash_plan=repro.CrashPlan(after_blocks=1, persist_fraction=0.6,
                                   seed=2),
    )
    out = session.search(keys)
    expect = np.concatenate([np.zeros(50, np.uint64), vals[50:]])
    assert np.array_equal(out.results, expect)


@pytest.mark.parametrize("seed", range(4))
def test_insert_crash_recovery_across_seeds(seed):
    _, store, session, keys, vals = build(seed=seed)
    out = session.insert(
        keys, vals,
        crash_plan=repro.CrashPlan(after_blocks=7,
                                   persist_fraction=0.25, seed=seed),
    )
    assert out.recovery.recovered
    assert store.contents() == as_dict(keys, vals)


def test_each_batch_gets_its_own_checksum_table():
    device, _, session, keys, vals = build(cache_lines=1024, n=64)
    session.insert(keys[:32], vals[:32])
    session.insert(keys[32:], vals[32:])
    lp_buffers = [n for n in device.memory.buffers if n.startswith("__lp_")]
    assert len(lp_buffers) >= 2


def test_mixed_operation_stream():
    """The paper's workload shape: insert, search & delete records."""
    _, store, session, keys, vals = build(cache_lines=1024, n=120)
    outcomes = session.mixed([
        ("insert", keys, vals),
        ("search", keys[:60]),
        ("delete", keys[:40]),
        ("search", keys[:60]),
    ])
    assert [o.op for o in outcomes] == ["insert", "search", "delete",
                                        "search"]
    assert np.array_equal(outcomes[1].results, vals[:60])
    expect = np.concatenate([np.zeros(40, np.uint64), vals[40:60]])
    assert np.array_equal(outcomes[3].results, expect)


def test_mixed_stream_with_injected_crashes():
    _, store, session, keys, vals = build(n=150)
    outcomes = session.mixed(
        [
            ("insert", keys, vals),
            ("delete", keys[:50]),
            ("search", keys),
        ],
        crash_plans={
            0: repro.CrashPlan(after_blocks=5, persist_fraction=0.4,
                               seed=4),
            1: repro.CrashPlan(after_blocks=1, persist_fraction=0.2,
                               seed=8),
        },
    )
    assert outcomes[0].crashed and outcomes[0].recovery.recovered
    assert outcomes[1].crashed and outcomes[1].recovery.recovered
    assert not outcomes[2].crashed
    expect = np.concatenate([np.zeros(50, np.uint64), vals[50:]])
    assert np.array_equal(outcomes[2].results, expect)


def test_mixed_stream_rejects_unknown_ops():
    _, _, session, keys, _ = build(n=10)
    with pytest.raises(ValueError):
        session.mixed([("upsert", keys)])


def test_checkpoint_releases_epoch_resources():
    device, store, session, keys, vals = build(cache_lines=1024, n=80)
    session.insert(keys, vals)
    session.search(keys[:20])
    n_before = len(device.memory.buffers)
    lines = session.checkpoint()
    assert lines >= 0
    assert len(device.memory.buffers) < n_before
    # The store itself survives and further batches work.
    out = session.search(keys[:20])
    assert np.array_equal(out.results, vals[:20])


def test_crash_recovers_older_batches_in_epoch():
    """Regression for the bug hypothesis found: a crash during batch N
    must also recover batches < N whose effects were still volatile."""
    device, store, session, keys, vals = build(cache_lines=4, n=24)
    session.insert(keys[:12], vals[:12])              # stays dirty
    out = session.insert(
        keys[12:], vals[12:],
        crash_plan=repro.CrashPlan(after_blocks=0, seed=3),
    )
    assert out.recovery is not None
    assert store.contents() == as_dict(keys, vals)
