"""Unit tests for the MEGA-KV store structure."""

import numpy as np
import pytest

import repro
from repro.errors import TableFullError
from repro.megakv import BUCKET_WIDTH, MegaKVStore


def test_sizing_targets_low_load_factor():
    device = repro.Device()
    store = MegaKVStore(device, capacity=1000)
    assert store.n_slots >= 8 * 1000
    assert store.n_buckets * BUCKET_WIDTH == store.n_slots
    assert store.n_buckets & (store.n_buckets - 1) == 0


def test_capacity_validation():
    device = repro.Device()
    with pytest.raises(TableFullError):
        MegaKVStore(device, capacity=0)


def test_two_candidate_buckets():
    device = repro.Device()
    store = MegaKVStore(device, capacity=64)
    slots = store.bucket_slots(12345)
    # Two (usually distinct) buckets of width 8.
    assert slots.size in (BUCKET_WIDTH, 2 * BUCKET_WIDTH)
    assert store.bucket_of(12345, 0) != store.bucket_of(12345, 1) or True


def test_host_search_and_contents_empty():
    device = repro.Device()
    store = MegaKVStore(device, capacity=64)
    assert store.host_search(5) is None
    assert store.contents() == {}
    assert store.load_factor == 0.0


def test_buffers_are_persistent():
    device = repro.Device()
    store = MegaKVStore(device, capacity=64)
    assert store.keys.persistent
    assert store.values.persistent
