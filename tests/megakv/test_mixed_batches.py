"""Mixed GET/PUT/DELETE streams vs the host oracle, on every substrate.

The service's flush path assumes a mixed op stream means the same
thing no matter which launch engine runs it and which shadow backs the
heap. This pins that: one deterministic interleaved stream (with
overwrites, deletes of absent keys, and searches for missing keys) is
executed across engines × shadows and every outcome must be
bit-identical to the in-Python reference dict — searched values via
the returned result arrays, the final image via ``contents()`` and
per-key ``host_search``.
"""

import numpy as np
import pytest

import repro
from repro.gpu.engine import make_engine
from repro.megakv import KVBatchSession, MegaKVStore
from repro.nvm import MappedShadow, ShardedShadow

ENGINES = ["serial", "parallel", "batched"]
SHADOWS = ["memory", "mapped", "sharded"]


def _stream(seed=0, n=64):
    """Deterministic mixed stream: puts (with overwrites), deletes
    (some of absent keys), searches (some of missing keys)."""
    rng = np.random.default_rng(seed)
    keyspace = rng.choice(np.arange(1, 10_000, dtype=np.uint64),
                          size=n, replace=False)
    ops = []
    ops.append(("insert", keyspace[:32],
                rng.integers(1, 1 << 63, 32, dtype=np.uint64)))
    ops.append(("search", keyspace[:16]))
    ops.append(("delete", keyspace[8:24]))          # all live at this point
    ops.append(("search", keyspace[:32]))           # hits and misses
    ops.append(("insert", keyspace[8:16],           # re-insert deleted
                rng.integers(1, 1 << 63, 8, dtype=np.uint64)))
    ops.append(("insert", keyspace[:8],             # overwrite live keys
                rng.integers(1, 1 << 63, 8, dtype=np.uint64)))
    ops.append(("delete", keyspace[40:48]))         # delete absent keys
    ops.append(("search", keyspace))                # full sweep
    return ops


def _oracle(ops):
    """Reference semantics: a dict, plus expected search results."""
    state: dict[int, int] = {}
    searches = []
    for op in ops:
        if op[0] == "insert":
            for k, v in zip(op[1], op[2]):
                state[int(k)] = int(v)
        elif op[0] == "delete":
            for k in op[1]:
                state.pop(int(k), None)
        else:
            searches.append(np.array([state.get(int(k), 0)
                                      for k in op[1]], dtype=np.uint64))
    return state, searches


def _build(tmp_path, engine, shadow):
    heap = None
    if shadow == "mapped":
        heap = MappedShadow.create(tmp_path / "mixed.heap.lpnv")
    elif shadow == "sharded":
        heap = ShardedShadow.create(tmp_path / "mixed.sharded",
                                    n_shards=4)
    device = repro.Device(cache_capacity_lines=64,
                          engine=make_engine(engine), shadow=heap)
    store = MegaKVStore(device, capacity=256)
    session = KVBatchSession(device, store, threads_per_block=16)
    return device, store, session, heap


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("shadow", SHADOWS)
def test_mixed_stream_matches_host_oracle(tmp_path, engine, shadow):
    ops = _stream()
    expected_state, expected_searches = _oracle(ops)

    device, store, session, heap = _build(tmp_path, engine, shadow)
    try:
        outcomes = session.mixed(ops)
        session.checkpoint()

        got_searches = [o.results for o in outcomes
                        if o.results is not None]
        assert len(got_searches) == len(expected_searches)
        for got, want in zip(got_searches, expected_searches):
            assert np.array_equal(got, want)

        assert store.contents() == expected_state
        for key, value in expected_state.items():
            assert store.host_search(key) == value
        # A key deleted and never re-inserted really is gone.
        gone = next(int(k) for k in ops[2][1]
                    if int(k) not in expected_state)
        assert store.host_search(gone) is None

        if heap is not None:
            # The drained image is the durable truth too.
            assert store.contents(persisted=True) == expected_state
    finally:
        if heap is not None:
            device.drain()
            heap.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_agree_bit_for_bit(tmp_path, engine):
    """Every engine's full-sweep results equal serial's, bitwise."""
    ops = _stream(seed=7)
    _, _, serial_session, _ = _build(tmp_path / "a", "serial", "memory")
    serial_sweep = serial_session.mixed(ops)[-1].results

    base = tmp_path / engine
    base.mkdir()
    _, _, session, heap = _build(base, engine, "mapped")
    try:
        sweep = session.mixed(ops)[-1].results
        assert sweep.dtype == serial_sweep.dtype
        assert np.array_equal(sweep, serial_sweep)
    finally:
        session.checkpoint()
        heap.close()
