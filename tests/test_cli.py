"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("tmm", "tpacf", "mri-gridding", "spmv", "sad", "histo",
                 "cutcp", "mri-q", "megakv"):
        assert name in out


def test_run_clean(capsys):
    assert main(["run", "histo", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "output verified" in out


def test_run_with_crash_recovers(capsys):
    code = main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "CRASHED" in out
    assert "recovered" in out
    assert "output verified" in out


def test_run_with_table_choice(capsys):
    assert main(["run", "spmv", "--scale", "tiny",
                 "--config", "cuckoo"]) == 0
    assert "cuckoo" in capsys.readouterr().out


def test_run_sharded_clean(capsys):
    assert main(["run", "histo", "--scale", "tiny", "--shards", "2"]) == 0
    assert "output verified" in capsys.readouterr().out


def test_run_sharded_with_crash_recovers(capsys):
    code = main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8", "--shards", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "CRASHED" in out
    assert "recovered" in out
    assert "output verified" in out


def test_experiments_single(capsys):
    assert main(["experiments", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "shuffle" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "fig99"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "EXP.md"
    assert main(["report", str(out_file)]) == 0
    text = out_file.read_text()
    assert "paper vs. measured" in text
    assert "fig5" in text


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
