"""Statement-scanner vs. legacy-regex analysis: pinned blind spots.

The legacy single-regex heuristic (kept as
:func:`analyze_kernel_source_regex`) misclassifies three statement
shapes the character-level scanner handles. These tests pin both the
old (wrong) and new (right) verdicts so the fallback's limitations
stay documented and the scanner never regresses to them.
"""

import pytest

from repro.compiler.idempotence import (
    analyze_kernel_source,
    analyze_kernel_source_regex,
    scan_statement,
)
from repro.compiler.parser import parse_program


def kernel_of(source: str):
    return parse_program(source).kernels[0]


MULTIDIM = """
__global__ void md(float *a, int n) {
    int i = blockIdx.x;
    int j = threadIdx.x;
    a[i][j] = a[i][j] + 1.0f;
}
"""

NESTED_SUBSCRIPT = """
__global__ void ns(int *y, int *idx, int n) {
    int i = blockIdx.x;
    y[idx[i]] += 1;
}
"""

PAREN_ATOMIC = """
__global__ void pa(int *bins, int n) {
    int i = blockIdx.x;
    atomicAdd(&(bins[i]), 1);
}
"""

SPACED_CAS = """
__global__ void sc(unsigned long long *tab, int n) {
    int h = blockIdx.x;
    atomicCAS( & tab [h], 0ULL, 1ULL);
}
"""


def test_multidim_write_blind_spot():
    # Old: `a[i][j] = ...` never matches the single-bracket write
    # regex, so the kernel was wrongly certified idempotent.
    legacy = analyze_kernel_source_regex(kernel_of(MULTIDIM))
    assert legacy.idempotent, "pinned legacy misclassification"
    report = analyze_kernel_source(kernel_of(MULTIDIM))
    assert not report.idempotent
    assert "a" in report.written_arrays
    assert any("'a'" in h for h in report.hazards)


def test_nested_subscript_blind_spot():
    # Old: the inner `idx[i]` bracket stops the lazy `[^\]]*` match, so
    # the compound `+=` write to y was lost (y read-only, idx read).
    legacy = analyze_kernel_source_regex(kernel_of(NESTED_SUBSCRIPT))
    assert legacy.idempotent, "pinned legacy misclassification"
    report = analyze_kernel_source(kernel_of(NESTED_SUBSCRIPT))
    assert not report.idempotent
    assert "y" in report.written_arrays
    assert "idx" in report.read_arrays
    assert any("+=" in h for h in report.hazards)


def test_parenthesized_atomic_blind_spot():
    # Old: `&(bins...)` defeats the `&?\s*ident` capture, naming no
    # written array at all.
    legacy = analyze_kernel_source_regex(kernel_of(PAREN_ATOMIC))
    assert legacy.idempotent, "pinned legacy misclassification"
    report = analyze_kernel_source(kernel_of(PAREN_ATOMIC))
    assert not report.idempotent
    assert "bins" in report.written_arrays


def test_spaced_cas_operand():
    report = analyze_kernel_source(kernel_of(SPACED_CAS))
    assert not report.idempotent
    assert "tab" in report.written_arrays


def test_scanner_and_regex_agree_on_simple_statements():
    # On the shapes the regex does handle, the verdicts must coincide.
    for src in (
        "__global__ void k(float *C, float *A, int n) {\n"
        "    C[blockIdx.x] = A[blockIdx.x];\n}",
        "__global__ void k(float *C, int n) {\n"
        "    C[blockIdx.x] += 1.0f;\n}",
        "__global__ void k(int *h, int n) {\n"
        "    atomicAdd(&h[blockIdx.x], 1);\n}",
    ):
        new = analyze_kernel_source(kernel_of(src))
        old = analyze_kernel_source_regex(kernel_of(src))
        assert new.idempotent == old.idempotent
        assert new.written_arrays == old.written_arrays
        assert new.hazards == old.hazards


@pytest.mark.parametrize("stmt,writes,reads,atomics", [
    ("a[i][j] = b[k];", [("a", "=")], ["b"], []),
    ("y[idx[i]] += 1;", [("y", "+=")], ["idx"], []),
    ("x[i] <<= 2;", [("x", "<<=")], [], []),
    ("if (a[i] == b[j]) c[i] = 0;", [("c", "=")], ["a", "b"], []),
    ("atomicCAS(&(tab[h]), old, nw);", [], ["tab"],
     [("atomicCAS", "tab")]),
    ('printf("a[0] = %d", a[0]);', [], ["a"], []),
    ("out[i] = in[i]; // out[j] += 1;", [("out", "=")], ["in"], []),
])
def test_scan_statement_classification(stmt, writes, reads, atomics):
    eff = scan_statement(stmt)
    assert eff.writes == writes
    assert eff.reads == reads
    assert eff.atomics == atomics
