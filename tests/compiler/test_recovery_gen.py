"""Unit tests for check-and-recovery kernel generation."""

from repro.compiler.parser import parse_program
from repro.compiler.recovery_gen import (
    generate_recovery_function,
    generate_recovery_kernel,
    recovery_kernel_name,
)

SOURCE = """
__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+^", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"""


def parsed():
    kernel = parse_program(SOURCE).kernels[0]
    return kernel, kernel.checksums[0]


def test_recovery_kernel_name():
    assert recovery_kernel_name("MatrixMulCUDA") == "crMatrixMulCUDA"
    assert recovery_kernel_name("foo") == "crFoo"


def test_recovery_kernel_has_same_signature():
    kernel, directive = parsed()
    out = generate_recovery_kernel(kernel, directive)
    assert "crMatrixMulCUDA(float *C, float *A, float *B, int wA, int wB)" in out


def test_recovery_kernel_validates_and_recovers():
    kernel, directive = parsed()
    out = generate_recovery_kernel(kernel, directive)
    assert "if (!lpcuda_validate(" in out
    assert "recovery_MatrixMulCUDA(C, A, B, wA, wB);" in out


def test_recovery_kernel_contains_only_the_address_slice():
    kernel, directive = parsed()
    out = generate_recovery_kernel(kernel, directive)
    assert "int c = " in out
    assert "float Csub = 0" not in out  # value computation sliced away


def test_recovery_function_reexecutes_body():
    kernel, _ = parsed()
    out = generate_recovery_function(kernel)
    assert out.startswith("__device__ void recovery_MatrixMulCUDA(")
    assert "C[c + wB * ty + tx] = Csub;" in out
    assert "#pragma nvm" not in out
