"""Unit tests for the executable Python kernel DSL."""

import numpy as np
import pytest

import repro
from repro.compiler.pydsl import (
    FunctionKernel,
    kernel_from_function,
    lazy_persistent,
)
from repro.core.recovery import RecoveryManager
from repro.gpu.kernel import LaunchConfig


def make_double(grid=(4, 1), block=(32, 1)):
    @kernel_from_function(grid=grid, block=block, protected=("out",))
    def double_it(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, ctx.ld("inp", idx) * 2, slots=ctx.tid)

    return double_it


def setup(device, n=128):
    device.alloc("inp", (n,), np.float32,
                 init=np.arange(n, dtype=np.float32))
    device.alloc("out", (n,), np.float32)


def test_decorator_builds_a_kernel():
    k = make_double()
    assert isinstance(k, FunctionKernel)
    assert k.name == "double_it"
    assert k.protected_buffers == ("out",)
    assert k.launch_config().n_blocks == 4


def test_function_kernel_runs():
    device = repro.Device()
    setup(device)
    device.launch(make_double())
    assert np.array_equal(device.memory["out"].array,
                          np.arange(128) * 2)


def test_lazy_persistent_wraps_and_runs():
    device = repro.Device()
    setup(device)
    lp_kernel = lazy_persistent(device, make_double())
    device.launch(lp_kernel)
    assert np.array_equal(device.memory["out"].array,
                          np.arange(128) * 2)
    assert lp_kernel.table.capacity == 4


def test_dsl_kernel_survives_crash_recovery():
    device = repro.Device(cache_capacity_lines=4)
    setup(device)
    lp_kernel = lazy_persistent(device, make_double(),
                                config=repro.LPConfig.naive_quadratic())
    device.launch(lp_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=2,
                                             persist_fraction=0.4, seed=1))
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert np.array_equal(device.memory["out"].array,
                          np.arange(128) * 2)


def test_custom_recover_and_validate_hooks():
    calls = []

    def body(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0, slots=ctx.tid)

    def recover(ctx):
        calls.append(("recover", ctx.block_id))
        body(ctx)

    kernel = FunctionKernel(
        body, LaunchConfig.linear(2, 32), protected=("out",),
        name="hooked", recover_fn=recover,
    )
    device = repro.Device(cache_capacity_lines=2)
    setup(device, n=64)
    lp_kernel = lazy_persistent(device, kernel)
    device.launch(lp_kernel, crash_plan=repro.CrashPlan(after_blocks=1))
    RecoveryManager(device, lp_kernel).recover()
    assert calls  # the custom recovery ran


def test_non_idempotent_dsl_kernel_flag():
    @kernel_from_function(grid=(1, 1), block=(32, 1), protected=("out",),
                          idempotent=False)
    def risky(ctx):
        ctx.st("out", ctx.tid, 1.0)

    assert not risky.idempotent
    from repro.errors import UnrecoverableRegionError
    from repro.gpu.atomics import AtomicUnit
    from repro.gpu.kernel import BlockContext
    from repro.gpu.memory import GlobalMemory

    mem = GlobalMemory(cache_capacity_lines=8)
    mem.alloc("out", (32,), np.float32)
    ctx = BlockContext(mem, AtomicUnit(mem), risky.launch_config(), 0)
    with pytest.raises(UnrecoverableRegionError):
        risky.recover_block(ctx)
