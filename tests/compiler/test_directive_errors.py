"""Directive error paths: malformed pragmas must fail loudly, with
line numbers, and with the right exception class."""

import pytest

from repro.compiler.parser import parse_pragma, parse_program, split_args
from repro.errors import DirectiveSemanticError, DirectiveSyntaxError


# ---------------------------------------------------------------------------
# Syntax errors (argument shape)
# ---------------------------------------------------------------------------

def test_init_wrong_arg_count_names_the_line():
    with pytest.raises(DirectiveSyntaxError, match=r"line 7.*3 arguments"):
        parse_pragma("#pragma nvm lpcuda_init(tab, 64)", line_no=7)


def test_init_extra_args_rejected():
    with pytest.raises(DirectiveSyntaxError, match="got 4"):
        parse_pragma("#pragma nvm lpcuda_init(tab, 64, 1, 99)", line_no=1)


def test_checksum_missing_keys_rejected():
    with pytest.raises(DirectiveSyntaxError, match=r"line 3.*at least 3"):
        parse_pragma('#pragma nvm lpcuda_checksum("+", tab)', line_no=3)


def test_unknown_directive_rejected():
    with pytest.raises(DirectiveSyntaxError, match="lpcuda_frobnicate"):
        parse_pragma("#pragma nvm lpcuda_frobnicate(x)", line_no=2)


def test_unbalanced_parentheses_rejected():
    with pytest.raises(DirectiveSyntaxError, match="unbalanced"):
        split_args("a, b), c")


def test_unterminated_quote_rejected():
    with pytest.raises(DirectiveSyntaxError, match="unterminated"):
        split_args('"+^, tab, key')


# ---------------------------------------------------------------------------
# Semantic errors (argument meaning)
# ---------------------------------------------------------------------------

def test_init_table_must_be_identifier():
    with pytest.raises(DirectiveSemanticError,
                       match=r"line 5.*'tab\[0\]'.*not an identifier"):
        parse_pragma("#pragma nvm lpcuda_init(tab[0], 64, 1)", line_no=5)


def test_checksum_unknown_type_token():
    with pytest.raises(DirectiveSemanticError,
                       match=r"line 9: unknown checksum type '%'"):
        parse_pragma('#pragma nvm lpcuda_checksum("%", tab, blockIdx.x)',
                     line_no=9)


def test_checksum_empty_type_string():
    # "" yields zero type tokens -> every token check passes vacuously,
    # so the checksum set would be empty; the keys check still holds,
    # but an empty-type directive protects nothing and must not parse
    # into a usable checksum list.
    directive = parse_pragma('#pragma nvm lpcuda_checksum("", tab, k)',
                             line_no=1)
    assert directive.checksum_types == ()
    assert directive.checksum_names == ()


def test_program_line_numbers_survive_parsing():
    source = "\n".join([
        "// header",
        "#pragma nvm lpcuda_init(tab, 64, 1)",
        "k<<<4, 8>>>(out);",
        "__global__ void k(float *out) {",
        '#pragma nvm lpcuda_checksum("+^", tab, blockIdx.x)',
        "    out[blockIdx.x] = 1.0f;",
        "}",
    ])
    program = parse_program(source)
    assert program.inits[0].line_no == 2
    (kernel,) = program.kernels
    assert kernel.checksums[0].line_no == 5
    assert kernel.checksums[0].target_statement.strip() == \
        "out[blockIdx.x] = 1.0f;"


def test_semantic_error_inside_full_program_parse():
    source = "\n".join([
        "__global__ void k(float *out) {",
        '#pragma nvm lpcuda_checksum("z", tab, blockIdx.x)',
        "    out[blockIdx.x] = 1.0f;",
        "}",
    ])
    with pytest.raises(DirectiveSemanticError, match="line 2"):
        parse_program(source)


def test_undeclared_table_lookup_fails():
    program = parse_program("__global__ void k(float *o) {\n}\n")
    with pytest.raises(DirectiveSemanticError, match="never declared"):
        program.init_for("ghost")
