"""Unit tests for store-address program slicing."""

import pytest

from repro.compiler.parser import parse_program
from repro.compiler.slicing import (
    identifiers,
    parse_store_target,
    slice_for_index,
    statement_definition,
)
from repro.errors import SliceError

KERNEL_SRC = """
__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
    C[c + wB * ty + tx] = Csub;
}
"""


def kernel():
    return parse_program(KERNEL_SRC).kernels[0]


def test_parse_store_target():
    t = parse_store_target("C[c + wB * ty + tx] = Csub;")
    assert t.array == "C"
    assert t.index_expr == "c + wB * ty + tx"
    assert t.value_expr == "Csub"
    assert t.lhs == "C[c + wB * ty + tx]"


def test_parse_store_target_rejects_non_store():
    with pytest.raises(SliceError):
        parse_store_target("x = y + 1;")


def test_identifiers():
    assert identifiers("a + b*2 + foo(bar)") == {"a", "b", "foo", "bar"}


def test_statement_definition():
    assert statement_definition("int c = wB * by;") == ("c", "wB * by")
    assert statement_definition("c = 5;") == ("c", "5")
    assert statement_definition("if (x) y = 1;") is None
    assert statement_definition("#pragma nvm foo(1)") is None
    assert statement_definition("// comment") is None


def test_slice_collects_address_chain():
    target = parse_store_target("C[c + wB * ty + tx] = Csub;")
    stmts = slice_for_index(kernel(), target)
    joined = "\n".join(stmts)
    # The address depends on c, ty, tx (and transitively bx, by).
    assert "int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;" in joined
    assert "int tx = threadIdx.x;" in joined
    assert "int by = blockIdx.y;" in joined
    # The *value* computation is not part of the address slice.
    assert "Csub" not in joined


def test_slice_is_in_execution_order():
    target = parse_store_target("C[c + wB * ty + tx] = Csub;")
    stmts = slice_for_index(kernel(), target)
    assert stmts.index("int bx = blockIdx.x;") < stmts.index(
        "int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;"
    )


def test_macros_and_params_are_free_variables():
    # BLOCK_SIZE (macro) and wB (parameter) need no defining statement.
    target = parse_store_target("C[c + wB * ty + tx] = Csub;")
    slice_for_index(kernel(), target)  # must not raise


def test_unresolvable_identifier_raises():
    source = """
__global__ void k(float *C) {
    C[mystery + 1] = 0;
}
"""
    k = parse_program(source).kernels[0]
    target = parse_store_target("C[mystery + 1] = 0;")
    with pytest.raises(SliceError):
        slice_for_index(k, target)
