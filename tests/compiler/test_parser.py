"""Unit tests for the nvm-directive parser."""

import pytest

from repro.compiler.model import ChecksumDirective, InitDirective
from repro.compiler.parser import parse_pragma, parse_program, split_args
from repro.errors import DirectiveSemanticError, DirectiveSyntaxError


# -- split_args ---------------------------------------------------------------

def test_split_args_basic():
    assert split_args("a, b, c") == ["a", "b", "c"]


def test_split_args_nested_parentheses():
    assert split_args("tab, f(x, y), 1") == ["tab", "f(x, y)", "1"]


def test_split_args_quoted_commas():
    assert split_args('"+,^", tab') == ['"+,^"', "tab"]


def test_split_args_expressions():
    assert split_args("checksumMM, grid.x*grid.y, 1") == [
        "checksumMM", "grid.x*grid.y", "1"
    ]


def test_split_args_unbalanced_rejected():
    with pytest.raises(DirectiveSyntaxError):
        split_args("f(x, y")
    with pytest.raises(DirectiveSyntaxError):
        split_args('"unterminated')


# -- parse_pragma --------------------------------------------------------------

def test_parse_init_directive():
    d = parse_pragma(
        "#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)", 10
    )
    assert isinstance(d, InitDirective)
    assert d.table == "checksumMM"
    assert d.nelems_expr == "grid.x*grid.y"
    assert d.selem_expr == "1"
    assert d.line_no == 10


def test_parse_checksum_directive():
    d = parse_pragma(
        '#pragma nvm lpcuda_checksum("+^", tab, blockIdx.x, blockIdx.y)', 5
    )
    assert isinstance(d, ChecksumDirective)
    assert d.checksum_types == ("+", "^")
    assert d.checksum_names == ("modular", "parity")
    assert d.keys == ("blockIdx.x", "blockIdx.y")


def test_parse_single_type_checksum():
    d = parse_pragma('#pragma nvm lpcuda_checksum("+", tab, k)', 1)
    assert d.checksum_types == ("+",)


def test_non_pragma_lines_ignored():
    assert parse_pragma("int x = 5;", 1) is None
    assert parse_pragma("#pragma unroll", 1) is None


def test_unknown_directive_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_pragma("#pragma nvm lpcuda_frobnicate(x)", 1)


def test_wrong_arity_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_pragma("#pragma nvm lpcuda_init(tab, 1)", 1)
    with pytest.raises(DirectiveSyntaxError):
        parse_pragma('#pragma nvm lpcuda_checksum("+", tab)', 1)


def test_bad_checksum_type_rejected():
    with pytest.raises(DirectiveSemanticError):
        parse_pragma('#pragma nvm lpcuda_checksum("*", tab, k)', 1)


def test_bad_table_name_rejected():
    with pytest.raises(DirectiveSemanticError):
        parse_pragma("#pragma nvm lpcuda_init(not a name, 1, 1)", 1)


# -- parse_program ---------------------------------------------------------------

PROGRAM = """
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
MatrixMulCUDA<<<grid, threads>>>(d_C, d_A, d_B, wA, wB);

__global__ void MatrixMulCUDA(float *C, float *A, float *B,
                              int wA, int wB) {
    int bx = blockIdx.x;
    int c = wB * BLOCK_SIZE * blockIdx.y + BLOCK_SIZE * bx;
    float Csub = 0;
#pragma nvm lpcuda_checksum("+^", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * threadIdx.y + threadIdx.x] = Csub;
}
"""


def test_parse_program_finds_inits_and_kernels():
    program = parse_program(PROGRAM)
    assert len(program.inits) == 1
    assert len(program.kernels) == 1
    kernel = program.kernel("MatrixMulCUDA")
    assert kernel.param_names == ("C", "A", "B", "wA", "wB")
    assert len(kernel.checksums) == 1


def test_checksum_directive_captures_target_statement():
    program = parse_program(PROGRAM)
    directive = program.kernels[0].checksums[0]
    assert directive.target_statement.startswith("C[")
    assert directive.table == "checksumMM"


def test_multiline_parameter_lists():
    program = parse_program(PROGRAM)
    assert "wA" in program.kernels[0].params


def test_unknown_kernel_lookup_raises():
    program = parse_program(PROGRAM)
    with pytest.raises(DirectiveSemanticError):
        program.kernel("ghost")


def test_init_lookup_by_table():
    program = parse_program(PROGRAM)
    assert program.init_for("checksumMM").nelems_expr == "grid.x*grid.y"
    with pytest.raises(DirectiveSemanticError):
        program.init_for("ghost")


def test_program_with_two_kernels():
    source = PROGRAM + """
__global__ void other(int *p) {
    p[threadIdx.x] = 1;
}
"""
    program = parse_program(source)
    assert [k.name for k in program.kernels] == ["MatrixMulCUDA", "other"]
    assert program.kernels[1].checksums == []
