"""Tests for the idempotence analysis (Section IV-A)."""

import pytest

import repro
from repro.compiler.idempotence import (
    analyze_kernel_source,
    check_idempotent_dynamic,
)
from repro.compiler.parser import parse_program
from repro.workloads import WORKLOADS, make_workload


def kernel_of(source: str):
    return parse_program(source).kernels[0]


MATMUL = """
__global__ void mm(float *C, float *A, float *B, int n) {
    int i = blockIdx.x;
    float sum = A[i] * B[i];
    C[i] = sum;
}
"""


def test_paper_matmul_is_idempotent():
    report = analyze_kernel_source(kernel_of(MATMUL))
    assert report.idempotent
    assert report.written_arrays == {"C"}
    assert report.read_arrays == {"A", "B"}


def test_read_modify_write_is_flagged():
    src = """
__global__ void accum(float *C) {
    int i = blockIdx.x;
    C[i] = C[i] + 1.0f;
}
"""
    report = analyze_kernel_source(kernel_of(src))
    assert not report.idempotent
    assert any("read and written" in h for h in report.hazards)


def test_compound_assignment_is_flagged():
    src = """
__global__ void accum(float *C, float *A) {
    int i = blockIdx.x;
    C[i] += A[i];
}
"""
    report = analyze_kernel_source(kernel_of(src))
    assert not report.idempotent
    assert any("compound update" in h for h in report.hazards)


def test_atomic_is_flagged():
    src = """
__global__ void histo(int *bins, int *data) {
    atomicAdd(&bins[data[blockIdx.x]], 1);
}
"""
    report = analyze_kernel_source(kernel_of(src))
    assert not report.idempotent
    assert any("atomic" in h for h in report.hazards)


def test_disjoint_in_out_arrays_pass():
    src = """
__global__ void scale(float *out, float *in) {
    int i = blockIdx.x;
    out[i] = in[i] * 2.0f;
    out[i] = out[i];
}
"""
    # The second statement reads 'out' -> conservative flag.
    report = analyze_kernel_source(kernel_of(src))
    assert not report.idempotent


def test_equality_comparison_is_not_a_write():
    src = """
__global__ void cmp(float *out, float *in) {
    int i = blockIdx.x;
    if (in[i] == 0.0f) {
        out[i] = 1.0f;
    }
}
"""
    report = analyze_kernel_source(kernel_of(src))
    assert report.idempotent
    assert report.written_arrays == {"out"}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_all_workload_kernels_are_dynamically_idempotent(name):
    """Every paper benchmark's kernel really is re-execution safe —
    the property the default recovery path relies on."""
    def setup():
        device = repro.Device()
        make_workload(name, scale="tiny").setup(device)
        return device

    device = repro.Device()
    kernel = make_workload(name, scale="tiny").setup(device)
    n_blocks = kernel.launch_config().n_blocks
    sample = list(range(0, n_blocks, max(1, n_blocks // 4)))
    assert check_idempotent_dynamic(kernel, setup, blocks=sample)


def test_dynamic_check_catches_accumulation():
    import numpy as np

    from repro.compiler.pydsl import kernel_from_function

    @kernel_from_function(grid=(2, 1), block=(32, 1), protected=("acc",))
    def accumulate(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("acc", idx, ctx.ld("acc", idx) + 1.0)

    def setup():
        device = repro.Device()
        device.alloc("acc", (64,), np.float32)
        return device

    assert not check_idempotent_dynamic(accumulate, setup)
