"""Unit tests for directive-driven source instrumentation."""

import pytest

from repro.compiler.transform import (
    compile_program,
    emit_host_code,
    emit_instrumented_kernel,
)
from repro.compiler.parser import parse_program
from repro.errors import DirectiveSemanticError

SOURCE = """
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
MatrixMulCUDA<<<grid, threads, 0, stream>>>(d_C, d_A, d_B, wA, wB);

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+^", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"""


def test_host_code_lowers_init_pragma():
    program = parse_program(SOURCE)
    host = emit_host_code(program)
    assert ("lpcuda_table_t checksumMM = "
            "lpcuda_runtime_init(grid.x*grid.y, 1);") in host
    assert "#pragma nvm lpcuda_init" not in host
    # The launch statement passes through untouched.
    assert "MatrixMulCUDA<<<grid, threads, 0, stream>>>" in host


def test_kernel_gains_checksum_registers_and_updates():
    out = compile_program(SOURCE)
    k = out.kernel_code
    assert "unsigned long long __lp_cs[2]" in k
    assert "__lp_cs[0] += __lp_ordered_bits(Csub);" in k
    assert "__lp_cs[1] ^= __lp_ordered_bits(Csub);" in k
    # Updates come immediately before the protected store.
    assert k.index("__lp_cs[0] +=") < k.index("C[c + wB * ty + tx] = Csub;")


def test_kernel_gains_reduce_and_insert_epilogue():
    out = compile_program(SOURCE)
    k = out.kernel_code
    assert "__lp_block_reduce_add(__lp_cs[0])" in k
    assert "__lp_block_reduce_xor(__lp_cs[1])" in k
    assert ("lpcuda_table_insert(&checksumMM, blockIdx.x, blockIdx.y, "
            "__lp_cs);") in k
    assert "threadIdx.x == 0 && threadIdx.y == 0" in k


def test_pragma_lines_removed_from_kernel():
    out = compile_program(SOURCE)
    assert "#pragma nvm" not in out.kernel_code


def test_recovery_kernel_matches_listing7_shape():
    out = compile_program(SOURCE)
    r = out.recovery_code
    assert r.startswith("__global__ void crMatrixMulCUDA(")
    assert "int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;" in r
    assert ("lpcuda_validate(C[c + wB * ty + tx], checksumMM, "
            "blockIdx.x, blockIdx.y)") in r
    assert "recovery_MatrixMulCUDA(C, A, B, wA, wB);" in r


def test_undeclared_table_rejected():
    bad = SOURCE.replace("lpcuda_init(checksumMM", "lpcuda_init(otherTab")
    with pytest.raises(DirectiveSemanticError):
        compile_program(bad)


def test_kernel_without_directives_passes_through():
    source = """
__global__ void plain(int *p) {
    p[threadIdx.x] = 1;
}
"""
    program = parse_program(source)
    out = emit_instrumented_kernel(program.kernels[0])
    assert "__lp_cs" not in out
    assert "p[threadIdx.x] = 1;" in out


def test_single_checksum_type_emits_one_lane():
    source = SOURCE.replace('"+^"', '"+"')
    out = compile_program(source)
    assert "unsigned long long __lp_cs[1]" in out.kernel_code
    assert "__lp_cs[0] +=" in out.kernel_code
    assert "^=" not in out.kernel_code


def test_compiled_program_carries_directives():
    out = compile_program(SOURCE)
    assert len(out.inits) == 1
    assert len(out.checksums) == 1
    assert out.checksums[0].keys == ("blockIdx.x", "blockIdx.y")


def test_two_protected_stores_in_one_kernel():
    """A kernel may annotate several stores (e.g. MRI-Q's Qr and Qi)."""
    source = """
#pragma nvm lpcuda_init(csQ, grid.x, 2)
computeQ<<<grid, threads>>>(d);

__global__ void computeQ(float *Qr, float *Qi, int n) {
    int i = blockIdx.x;
    float re = 1.0f;
    float im = 2.0f;
#pragma nvm lpcuda_checksum("+^", csQ, blockIdx.x)
    Qr[i] = re;
#pragma nvm lpcuda_checksum("+^", csQ, blockIdx.x)
    Qi[i] = im;
}
"""
    out = compile_program(source)
    k = out.kernel_code
    assert k.count("__lp_cs[0] +=") == 2
    assert k.count("__lp_cs[1] ^=") == 2
    assert "__lp_ordered_bits(re)" in k and "__lp_ordered_bits(im)" in k
    # One recovery kernel per protected store.
    assert out.recovery_code.count("__global__ void crComputeQ") == 2
    assert "lpcuda_validate(Qr[i]" in out.recovery_code
    assert "lpcuda_validate(Qi[i]" in out.recovery_code
