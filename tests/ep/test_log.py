"""Unit tests for the EP undo log."""

import numpy as np
import pytest

import repro
from repro.ep.log import COMMITTED, UndoLog, _value_bits
from repro.errors import TableError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, LaunchConfig


def make_env(n_blocks=4, capacity=8):
    device = repro.Device(cache_capacity_lines=256)
    data = device.alloc("data", (64,), np.int32,
                        init=np.arange(64, dtype=np.int32))
    log = UndoLog(device.memory, "t", n_blocks, capacity)
    ctx = BlockContext(device.memory, AtomicUnit(device.memory),
                       LaunchConfig.linear(n_blocks, 16), 0)
    return device, data, log, ctx


def test_geometry_validation():
    device = repro.Device()
    with pytest.raises(TableError):
        UndoLog(device.memory, "t", 0, 4)
    with pytest.raises(TableError):
        UndoLog(device.memory, "t", 4, 0)


def test_append_records_old_values():
    device, data, log, ctx = make_env()
    idx = np.array([3, 4, 5])
    log.append(ctx, data, idx)
    assert int(log.cursors.array[0]) == 3
    # Entries hold the (address, old-bits) pairs.
    entries = log.entries.array
    addr0 = int(entries[0])
    assert addr0 == data.base_addr + 3 * 4
    assert int(entries[1]) == 3  # old value bits of data[3]


def test_append_overflow_rejected():
    device, data, log, ctx = make_env(capacity=2)
    log.append(ctx, data, np.array([0, 1]))
    with pytest.raises(TableError):
        log.append(ctx, data, np.array([2]))


def test_append_flushes_log_lines():
    device, data, log, ctx = make_env()
    before = device.memory.write_stats.total_lines
    log.append(ctx, data, np.array([0]))
    assert device.memory.write_stats.total_lines > before
    assert ctx.tally.serial_cycles > 0  # the persist barrier


def test_commit_and_reset():
    device, data, log, ctx = make_env()
    assert not log.is_committed(0)
    log.commit(ctx)
    assert log.is_committed(0)
    log.reset_block(ctx, 0)
    assert not log.is_committed(0)
    assert int(log.cursors.array[0]) == 0


def test_rollback_restores_in_reverse():
    device, data, log, ctx = make_env()
    # Two writes to the same element: log 7 (original), then 100.
    log.append(ctx, data, np.array([7]))
    ctx.st(data, 7, np.int32(100))
    log.append(ctx, data, np.array([7]))
    ctx.st(data, 7, np.int32(200))
    assert data.array[7] == 200
    undone = log.rollback(0)
    assert undone == 2
    # Reverse order: 100 first, then the original 7 last.
    assert data.array[7] == 7


def test_rollback_is_idempotent():
    device, data, log, ctx = make_env()
    log.append(ctx, data, np.array([1, 2]))
    ctx.st(data, np.array([1, 2]), np.array([50, 60], np.int32))
    log.rollback(0)
    log.rollback(0)
    assert data.array[1] == 1 and data.array[2] == 2


def test_rollback_survives_the_persistence_domain():
    """Rollback writes are themselves ordinary (lazy) stores."""
    device, data, log, ctx = make_env()
    log.append(ctx, data, np.array([9]))
    ctx.st(data, 9, np.int32(999))
    device.drain()
    log.rollback(0)
    assert data.array[9] == 9
    device.drain()
    assert data.nvm_array[9] == 9


def test_value_bits_roundtrip_dtypes():
    for dtype, vals in (
        (np.int32, [-1, 0, 7]),
        (np.float32, [3.5, -2.25]),
        (np.uint64, [2**63, 1]),
        (np.uint8, [255, 0]),
    ):
        arr = np.array(vals, dtype=dtype)
        bits = _value_bits(arr)
        back = np.array([
            np.frombuffer(np.uint64(b).tobytes()[:arr.dtype.itemsize],
                          dtype=dtype)[0]
            for b in bits
        ], dtype=dtype)
        assert np.array_equal(back, arr)


def test_ep_buffers_are_prefixed_for_attribution():
    device, data, log, ctx = make_env()
    for buf in (log.entries, log.cursors, log.commits):
        assert buf.name.startswith("__ep_")
        assert buf.persistent
