"""Integration tests for the Eager Persistency runtime."""

import numpy as np
import pytest

import repro
from repro.ep import EPRecoveryManager, EPRuntime
from repro.errors import ConfigError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, ExecMode
from repro.workloads.tmm import TMMWorkload


def build(cache_lines=8, scale="tiny"):
    device = repro.Device(cache_capacity_lines=cache_lines)
    work = TMMWorkload(scale=scale)
    kernel = work.setup(device)
    ep_kernel = EPRuntime(device).instrument(kernel)
    return device, work, ep_kernel


def test_clean_run_matches_reference_and_commits():
    device, work, ep_kernel = build(cache_lines=1024)
    device.launch(ep_kernel)
    work.verify(device)
    n_blocks = ep_kernel.launch_config().n_blocks
    assert all(ep_kernel.log.is_committed(b) for b in range(n_blocks))


def test_committed_regions_are_durable_without_drain():
    """EP's whole point: no reliance on natural eviction."""
    device, work, ep_kernel = build(cache_lines=4)
    device.launch(ep_kernel)
    device.memory.crash()  # no drain!
    # Data was flushed before each commit, so NVM already has it all.
    work.verify(device)


def test_crash_mid_launch_recovers():
    device, work, ep_kernel = build()
    device.launch(ep_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=7, seed=3))
    report = EPRecoveryManager(device, ep_kernel).recover()
    assert report.recovered
    assert report.uncommitted_blocks  # the blocks that never ran
    work.verify(device)


def test_intra_region_crash_rolls_back_torn_writes():
    """The undo log's real job: a region died between its data writes
    and its commit. (The device crashes only at block boundaries, so
    the torn state is constructed explicitly.)"""
    device, work, ep_kernel = build(cache_lines=2048)
    n_blocks = ep_kernel.launch_config().n_blocks
    # Run all but the last block normally.
    device.launch(ep_kernel, block_ids=list(range(n_blocks - 1)))

    # Manually execute the last block's logged stores WITHOUT the
    # commit: log entries + torn data, then power failure.
    torn = n_blocks - 1
    ctx = BlockContext(device.memory, AtomicUnit(device.memory),
                       ep_kernel.launch_config(), torn)
    from repro.ep.runtime import _EPInterceptor

    ctx.ep_interceptor = _EPInterceptor(
        ep_kernel.log, frozenset(ep_kernel.protected_buffers)
    )
    ep_kernel.inner.run_block(ctx)
    # Flush the torn data so the "bad" state is what NVM would hold.
    device.drain()
    device.memory.crash()

    assert not ep_kernel.log.is_committed(torn)
    report = EPRecoveryManager(device, ep_kernel).recover()
    assert torn in report.uncommitted_blocks
    assert report.undo_records_applied > 0
    work.verify(device)


def test_recovery_is_noop_when_all_committed():
    device, work, ep_kernel = build(cache_lines=1024)
    device.launch(ep_kernel)
    report = EPRecoveryManager(device, ep_kernel).recover()
    assert report.uncommitted_blocks == []
    assert report.relaunch is None


def test_ep_charges_flush_and_fence_costs():
    device, work, ep_kernel = build(cache_lines=1024)
    base_dev = repro.Device(cache_capacity_lines=1024)
    base_work = TMMWorkload(scale="tiny")
    base_kernel = base_work.setup(base_dev)

    ep_result = device.launch(ep_kernel)
    base_result = base_dev.launch(base_kernel)
    assert ep_result.tally.serial_cycles > 0
    assert ep_result.total_cycles > base_result.total_cycles


def test_ep_write_amplification_exceeds_lp():
    def lines(mode):
        device = repro.Device()
        work = TMMWorkload(scale="tiny")
        kernel = work.setup(device)
        if mode == "lp":
            kernel = repro.LPRuntime(device).instrument(kernel)
        elif mode == "ep":
            kernel = EPRuntime(device).instrument(kernel)
        device.launch(kernel)
        device.drain()
        return device.memory.write_stats.total_lines

    base, lp, ep = lines("base"), lines("lp"), lines("ep")
    assert base < lp < ep
    assert (ep - base) > 5 * (lp - base)


def test_ep_rejects_unprotected_kernels():
    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    kernel.protected_buffers = ()
    with pytest.raises(ConfigError):
        EPRuntime(device).instrument(kernel)


def test_recover_mode_resets_log_then_reruns():
    device, work, ep_kernel = build()
    device.launch(ep_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=3, seed=9))
    device.restart()
    device.launch(ep_kernel, block_ids=[10], mode=ExecMode.RECOVER)
    assert ep_kernel.log.is_committed(10)
