"""Per-workload behaviours beyond the generic reference checks."""

import numpy as np
import pytest

import repro
from repro.workloads.generators import (
    byte_frames,
    key_value_records,
    small_ints,
    sparse_csr,
    unit_floats,
)
from repro.workloads.histo import SATURATION, HISTOWorkload
from repro.workloads.sad import MB, SADKernel
from repro.workloads.tmm import TiledMatMulKernel, TMMWorkload
from repro.workloads.tpacf import TPACFWorkload


# -- generators ---------------------------------------------------------------

def test_small_ints_bounds():
    vals = small_ints(np.random.default_rng(0), (100,))
    assert vals.dtype == np.int32
    assert vals.min() >= -8 and vals.max() <= 8


def test_unit_floats_range():
    vals = unit_floats(np.random.default_rng(0), 1000)
    assert vals.dtype == np.float32
    assert np.all(np.abs(vals) <= 1.0)


def test_sparse_csr_structure():
    row_ptr, cols, vals = sparse_csr(np.random.default_rng(0), 10, 20, 4)
    assert row_ptr[-1] == 40
    assert cols.max() < 20
    # No duplicate columns within a row.
    for r in range(10):
        row_cols = cols[row_ptr[r]:row_ptr[r + 1]]
        assert len(set(row_cols.tolist())) == 4


def test_byte_frames_shape():
    frames = byte_frames(np.random.default_rng(0), 2, 16, 16)
    assert frames.shape == (2, 16, 16)
    assert frames.dtype == np.uint8


def test_key_value_records_nonzero_unique():
    keys, vals = key_value_records(np.random.default_rng(0), 500)
    assert np.all(keys != 0)
    assert np.all(vals != 0)
    assert len(set(keys.tolist())) == 500


# -- TMM -----------------------------------------------------------------------

def test_tmm_rejects_non_tile_multiple():
    from repro.errors import LaunchError

    with pytest.raises(LaunchError):
        TiledMatMulKernel(n=10, tile=4)


def test_tmm_identity_matrix():
    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    n = work.n
    work._a = np.eye(n, dtype=np.int32)
    work._b = small_ints(np.random.default_rng(1), (n, n))
    kernel = work.setup(device)
    device.launch(kernel)
    assert np.array_equal(device.memory["tmm_C"].array, work._b)


# -- TPACF ----------------------------------------------------------------------

def test_tpacf_histogram_totals_all_pairs():
    device = repro.Device()
    work = TPACFWorkload(scale="tiny")
    device.launch(work.setup(device))
    merged = work.merged_histogram(device)
    assert merged.sum() == work.n_points * work.n_points


# -- SAD ---------------------------------------------------------------------------

def test_sad_zero_displacement_of_identical_frames():
    device = repro.Device()
    from repro.workloads.sad import SADWorkload

    work = SADWorkload(scale="tiny")
    work._ref = work._cur.copy()
    kernel = work.setup(device)
    device.launch(kernel)
    out = device.memory["sad_out"].array.reshape(-1, kernel.n_disp)
    center = kernel.n_disp // 2  # displacement (0, 0)
    assert np.all(out[:, center] == 0)


def test_sad_displacement_grid():
    kernel = SADKernel(32, 32, radius=1)
    disps = kernel._displacements()
    assert disps.shape == (9, 2)
    assert (disps == 0).all(axis=1).any()
    assert kernel.launch_config().threads_per_block == 9
    assert MB == 8


# -- HISTO ----------------------------------------------------------------------------

def test_histo_partials_sum_to_full_histogram():
    device = repro.Device()
    work = HISTOWorkload(scale="tiny")
    device.launch(work.setup(device))
    partials = device.memory["histo_partial"].array
    total = partials.reshape(-1, work.n_bins).sum(axis=0)
    direct = np.bincount(work._samples, minlength=work.n_bins)
    assert np.array_equal(total, direct)


def test_histo_merge_saturates():
    device = repro.Device()
    # "small" has enough samples for the Zipf head bin to saturate.
    work = HISTOWorkload(scale="small")
    device.launch(work.setup(device))
    merged = work.merged_histogram(device)
    assert merged.dtype == np.uint8
    assert merged.max() <= SATURATION
    # The Zipf skew guarantees bin 1 saturates at this scale.
    direct = np.bincount(work._samples, minlength=work.n_bins)
    assert np.any(direct > SATURATION)
    assert merged[np.argmax(direct)] == SATURATION


# -- reference invariances ---------------------------------------------------------------

def test_cutcp_potential_is_finite():
    device = repro.Device()
    from repro.workloads.cutcp import CUTCPWorkload

    work = CUTCPWorkload(scale="tiny")
    device.launch(work.setup(device))
    pot = device.memory["cutcp_pot"].array
    assert np.all(np.isfinite(pot))
    assert np.any(pot != 0)


def test_mriq_outputs_bounded_by_total_magnitude():
    device = repro.Device()
    from repro.workloads.mri_q import MRIQWorkload

    work = MRIQWorkload(scale="tiny")
    device.launch(work.setup(device))
    bound = work._k[:, 3].sum() + 1e-3
    assert np.all(np.abs(device.memory["mriq_qr"].array) <= bound)
    assert np.all(np.abs(device.memory["mriq_qi"].array) <= bound)


def test_spmv_zero_vector_gives_zero():
    device = repro.Device()
    from repro.workloads.spmv import SPMVWorkload

    work = SPMVWorkload(scale="tiny")
    work._x[:] = 0
    device.launch(work.setup(device))
    assert np.all(device.memory["spmv_y"].array == 0)


def test_mri_gridding_total_mass_conserved_within_window():
    device = repro.Device()
    from repro.workloads.mri_gridding import MRIGriddingWorkload

    work = MRIGriddingWorkload(scale="tiny")
    device.launch(work.setup(device))
    grid = device.memory["mrig_grid"].array
    assert np.all(np.isfinite(grid))
    assert np.any(grid != 0)
