"""Cross-workload correctness tests (all eight paper benchmarks)."""

import numpy as np
import pytest

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.workloads import WORKLOADS, make_workload

ALL = sorted(WORKLOADS)


@pytest.mark.parametrize("name", ALL)
def test_baseline_matches_reference_tiny(name):
    device = repro.Device()
    work = make_workload(name, scale="tiny")
    device.launch(work.setup(device))
    work.verify(device)


@pytest.mark.parametrize("name", ALL)
def test_baseline_matches_reference_small(name):
    device = repro.Device()
    work = make_workload(name, scale="small")
    device.launch(work.setup(device))
    work.verify(device)


@pytest.mark.parametrize("name", ALL)
def test_lp_instrumentation_preserves_output(name):
    device = repro.Device()
    work = make_workload(name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    work.verify(device)


@pytest.mark.parametrize("name", ALL)
def test_lp_validation_passes_after_clean_run(name):
    device = repro.Device()
    work = make_workload(name, scale="tiny")
    lp_kernel = LPRuntime(device).instrument(work.setup(device))
    device.launch(lp_kernel)
    device.drain()
    report = RecoveryManager(device, lp_kernel).validate()
    assert report.all_passed


@pytest.mark.parametrize("name", ALL)
def test_lp_crash_recovery_restores_output(name):
    device = repro.Device(cache_capacity_lines=16)
    work = make_workload(name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 2),
                                   persist_fraction=0.3, seed=5),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)


@pytest.mark.parametrize("name", ALL)
def test_workload_is_seed_deterministic(name):
    outs = []
    for _ in range(2):
        device = repro.Device()
        work = make_workload(name, scale="tiny", seed=9)
        kernel = work.setup(device)
        device.launch(kernel)
        outs.append({
            b: device.memory[b].array.copy()
            for b in kernel.protected_buffers
        })
    for buf in outs[0]:
        assert np.array_equal(outs[0][buf], outs[1][buf])


@pytest.mark.parametrize("name", ALL)
def test_blocks_write_disjoint_outputs(name):
    """The associativity precondition: no two blocks share an output.

    Run each block alone and check the union of touched elements is
    disjoint (touched = differs from a sentinel prefill).
    """
    work = make_workload(name, scale="tiny")
    device = repro.Device()
    kernel = work.setup(device)
    touched = {}
    for buf_name in kernel.protected_buffers:
        touched[buf_name] = np.zeros(device.memory[buf_name].size, bool)

    n_blocks = kernel.launch_config().n_blocks
    for block in range(n_blocks):
        dev = repro.Device()
        w = make_workload(name, scale="tiny")
        k = w.setup(dev)
        before = {b: dev.memory[b].array.copy()
                  for b in k.protected_buffers}
        dev.launch(k, block_ids=[block])
        for b in k.protected_buffers:
            now = dev.memory[b].array
            wrote = (now.reshape(-1) != before[b].reshape(-1))
            # HISTO-like kernels may legitimately write zeros over
            # zeros; treat "could have written" conservatively by using
            # inequality only — overlap of *changed* cells must be nil.
            assert not np.any(touched[b] & wrote), (
                f"block {block} overlaps earlier writes in {b}"
            )
            touched[b] |= wrote


def test_unknown_workload_name():
    with pytest.raises(KeyError):
        make_workload("nonesuch")


def test_scales_are_validated():
    from repro.errors import LaunchError

    with pytest.raises(LaunchError):
        make_workload("tmm", scale="huge")
