"""Tests for the store-address slices (fast Listing-7 validation)."""

import numpy as np
import pytest

import repro
from repro.core.fusion import fuse_blocks
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.gpu.kernel import ExecMode
from repro.workloads import WORKLOADS, make_workload


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_output_map_matches_actual_stores(name):
    """The address slice must cover exactly the elements each block
    stores — the correctness contract of the fast validation path."""
    device = repro.Device()
    work = make_workload(name, scale="tiny")
    kernel = work.setup(device)
    sentinel_before = {
        b: device.memory[b].array.copy() for b in kernel.protected_buffers
    }
    for block in range(kernel.launch_config().n_blocks):
        output_map = kernel.block_output_map(block)
        assert output_map is not None, f"{name} lacks an output map"
        assert set(output_map) == set(kernel.protected_buffers)
        dev = repro.Device()
        w = make_workload(name, scale="tiny")
        k = w.setup(dev)
        dev.launch(k, block_ids=[block])
        for buf_name, idx in output_map.items():
            now = dev.memory[buf_name].array.reshape(-1)
            before = sentinel_before[buf_name].reshape(-1)
            changed = np.flatnonzero(now != before)
            # Every changed element is inside the declared slice. (The
            # reverse need not hold bitwise: a store may write a value
            # equal to the initial contents.)
            assert set(changed.tolist()) <= set(np.asarray(idx).tolist())
            assert len(set(np.asarray(idx).tolist())) == np.asarray(idx).size


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fast_validation_agrees_with_replay(name):
    """Slice-based validation must reach the same verdicts as replay."""
    device = repro.Device()
    work = make_workload(name, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    device.drain()

    # Clean state: both paths pass.
    lp_kernel.reset_validation()
    device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    assert lp_kernel.validation_failures == []

    # Corrupt one element; both paths must flag exactly its block.
    buf = kernel.protected_buffers[0]
    repro.FaultInjector().flip_bit(device.memory, buf, 0, 2)
    lp_kernel.reset_validation()
    device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    fast_verdict = list(lp_kernel.validation_failures)

    original_map = kernel.block_output_map
    kernel.block_output_map = lambda block_id: None  # force replay
    try:
        lp_kernel.reset_validation()
        device.launch(lp_kernel, mode=ExecMode.VALIDATE)
        replay_verdict = list(lp_kernel.validation_failures)
    finally:
        kernel.block_output_map = original_map
    assert fast_verdict == replay_verdict
    assert len(fast_verdict) == 1


def test_fast_validation_is_cheaper_than_replay():
    device = repro.Device()
    work = make_workload("tmm", scale="small")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    device.drain()

    lp_kernel.reset_validation()
    fast = device.launch(lp_kernel, mode=ExecMode.VALIDATE)

    original_map = kernel.block_output_map
    kernel.block_output_map = lambda block_id: None
    try:
        lp_kernel.reset_validation()
        replay = device.launch(lp_kernel, mode=ExecMode.VALIDATE)
    finally:
        kernel.block_output_map = original_map
    # The slice path skips the matmul entirely.
    assert fast.tally.alu_ops < 0.25 * replay.tally.alu_ops
    assert fast.total_cycles < replay.total_cycles


def test_fused_kernel_composes_output_maps():
    device = repro.Device()
    work = make_workload("tmm", scale="tiny")
    kernel = work.setup(device)
    fused = fuse_blocks(kernel, 4)
    fused_map = fused.block_output_map(0)
    singles = [kernel.block_output_map(i)["tmm_C"] for i in range(4)]
    assert np.array_equal(fused_map["tmm_C"], np.concatenate(singles))


def test_fast_validation_through_full_recovery():
    device = repro.Device(cache_capacity_lines=8)
    work = make_workload("cutcp", scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=7,
                                             persist_fraction=0.4, seed=2))
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)
