"""Property-based end-to-end: any crash point, any persistence lottery,
any table kind — recovery must restore the reference output."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.workloads.tmm import TMMWorkload

configs = st.sampled_from([
    repro.LPConfig.paper_best(),
    repro.LPConfig.naive_quadratic(),
    repro.LPConfig.naive_cuckoo(),
])


@given(
    config=configs,
    after_blocks=st.integers(0, 16),
    persist_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 1000),
    cache_lines=st.integers(1, 64),
)
@settings(max_examples=40, deadline=None)
def test_tmm_recovers_from_any_crash(config, after_blocks,
                                     persist_fraction, seed, cache_lines):
    device = repro.Device(cache_capacity_lines=cache_lines)
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device, config).instrument(kernel)
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=after_blocks,
                                   persist_fraction=persist_fraction,
                                   seed=seed),
    )
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    work.verify(device)


@given(seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_double_crash_still_recovers(seed):
    """Crash during the original run AND during recovery re-execution."""
    device = repro.Device(cache_capacity_lines=8)
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel,
                  crash_plan=repro.CrashPlan(after_blocks=7, seed=seed))
    device.restart()

    # First recovery round interrupted by a second crash.
    manager = RecoveryManager(device, lp_kernel)
    report1 = manager.validate()
    if report1.failed_blocks:
        device.launch(
            lp_kernel,
            block_ids=report1.failed_blocks,
            mode=repro.ExecMode.RECOVER,
            crash_plan=repro.CrashPlan(
                after_blocks=max(0, len(report1.failed_blocks) // 2),
                seed=seed + 1,
            ),
        )
    # Eager recovery from whatever state that left behind.
    final = manager.recover()
    assert final.recovered
    work.verify(device)
