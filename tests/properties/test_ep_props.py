"""Property-based end-to-end for Eager Persistency."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.ep import EPRecoveryManager, EPRuntime
from repro.workloads.tmm import TMMWorkload


@given(
    after_blocks=st.integers(0, 16),
    cache_lines=st.integers(1, 64),
    seed=st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_ep_recovers_from_any_crash_point(after_blocks, cache_lines, seed):
    device = repro.Device(cache_capacity_lines=cache_lines)
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    ep_kernel = EPRuntime(device).instrument(kernel)
    device.launch(
        ep_kernel,
        crash_plan=repro.CrashPlan(after_blocks=after_blocks, seed=seed),
    )
    report = EPRecoveryManager(device, ep_kernel).recover()
    assert report.recovered
    work.verify(device)
    # Every region ends committed after recovery.
    n_blocks = kernel.launch_config().n_blocks
    assert all(ep_kernel.log.is_committed(b) for b in range(n_blocks))


@given(after_blocks=st.integers(0, 16), seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_ep_committed_data_survives_without_drain(after_blocks, seed):
    """EP's guarantee: commit implies durable, eviction or not."""
    device = repro.Device(cache_capacity_lines=2)
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    ep_kernel = EPRuntime(device).instrument(kernel)
    result = device.launch(
        ep_kernel,
        crash_plan=repro.CrashPlan(after_blocks=after_blocks, seed=seed),
    )
    ref = work.reference()["tmm_C"].reshape(-1)
    out = device.memory["tmm_C"].array.reshape(-1)
    tile = work.tile
    n = work.n
    for block in result.completed_blocks:
        if not ep_kernel.log.is_committed(block):
            continue
        by, bx = divmod(block, n // tile)
        rows = slice(by * tile, (by + 1) * tile)
        cols = slice(bx * tile, (bx + 1) * tile)
        assert np.array_equal(
            out.reshape(n, n)[rows, cols], ref.reshape(n, n)[rows, cols]
        )
