"""Model-based testing: the MEGA-KV store vs a Python dict.

A hypothesis rule-based state machine drives the LP-protected batch
session with arbitrary interleavings of insert / update / delete /
search batches — some of them struck by crashes — and checks after
every step that the store's contents equal a shadow ``dict`` model.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

import repro
from repro.megakv import KVBatchSession, MegaKVStore

KEY_POOL = [int(k) for k in range(1, 64)]


class MegaKVModel(RuleBasedStateMachine):
    """Drive the store and a dict model through the same operations."""

    @initialize()
    def setup(self):
        self.device = repro.Device(cache_capacity_lines=8)
        self.store = MegaKVStore(self.device, capacity=128)
        self.session = KVBatchSession(self.device, self.store,
                                      threads_per_block=8)
        self.model: dict[int, int] = {}
        self.next_value = 1

    def _values_for(self, keys):
        vals = np.arange(self.next_value,
                         self.next_value + len(keys)).astype(np.uint64)
        self.next_value += len(keys)
        return vals

    def _crash_plan(self, crash, n_requests):
        if not crash:
            return None
        n_blocks = max(1, -(-n_requests // 8))
        return repro.CrashPlan(after_blocks=n_blocks // 2,
                               persist_fraction=0.4,
                               seed=self.next_value)

    @rule(keys=st.lists(st.sampled_from(KEY_POOL), min_size=1,
                        max_size=12, unique=True),
          crash=st.booleans())
    def insert_batch(self, keys, crash):
        vals = self._values_for(keys)
        arr = np.array(keys, dtype=np.uint64)
        self.session.insert(
            arr, vals, crash_plan=self._crash_plan(crash, len(keys))
        )
        self.model.update(zip(keys, map(int, vals)))

    @rule(keys=st.lists(st.sampled_from(KEY_POOL), min_size=1,
                        max_size=12, unique=True),
          crash=st.booleans())
    def delete_batch(self, keys, crash):
        arr = np.array(keys, dtype=np.uint64)
        self.session.delete(
            arr, crash_plan=self._crash_plan(crash, len(keys))
        )
        for k in keys:
            self.model.pop(k, None)

    @rule(keys=st.lists(st.sampled_from(KEY_POOL), min_size=1,
                        max_size=12, unique=True))
    def search_batch(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        outcome = self.session.search(arr)
        expect = np.array([self.model.get(k, 0) for k in keys],
                          dtype=np.uint64)
        assert np.array_equal(outcome.results, expect)

    @invariant()
    def store_matches_model(self):
        if not hasattr(self, "store"):
            return
        assert self.store.contents() == self.model


MegaKVModelTest = MegaKVModel.TestCase
MegaKVModelTest.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
