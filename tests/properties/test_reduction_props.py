"""Property-based tests: reductions agree with the direct fold."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.checksum import ChecksumSet
from repro.core.config import PAPER_CHECKSUM_PAIR
from repro.core.reduction import reduce_parallel, reduce_sequential
from repro.gpu.warp import warp_reduce

values = hnp.arrays(
    np.uint64,
    st.integers(1, 300),
    elements=st.integers(0, (1 << 64) - 1),
)


@given(values, st.integers(1, 130))
@settings(max_examples=60)
def test_parallel_equals_sequential_equals_reference(vals, n_threads):
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    state = cset.new_block_state(n_threads)
    state.update(vals.view(np.float64), np.arange(vals.size) % n_threads)
    expect = state.lane_values_reference()
    assert np.array_equal(reduce_parallel(state), expect)
    assert np.array_equal(reduce_sequential(state), expect)


@given(values)
@settings(max_examples=60)
def test_warp_reduce_add_always_matches_numpy(vals):
    reduced, _ = warp_reduce(vals, "add")
    n_warps = -(-vals.size // 32)
    padded = np.zeros(n_warps * 32, dtype=np.uint64)
    padded[:vals.size] = vals
    with np.errstate(over="ignore"):
        expect = padded.reshape(n_warps, 32).sum(axis=1, dtype=np.uint64)
    assert np.array_equal(reduced, expect)


@given(values)
@settings(max_examples=60)
def test_warp_reduce_xor_always_matches_numpy(vals):
    reduced, _ = warp_reduce(vals, "xor")
    n_warps = -(-vals.size // 32)
    padded = np.zeros(n_warps * 32, dtype=np.uint64)
    padded[:vals.size] = vals
    expect = np.bitwise_xor.reduce(padded.reshape(n_warps, 32), axis=1)
    assert np.array_equal(reduced, expect)
