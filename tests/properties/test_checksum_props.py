"""Property-based tests for checksum algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.checksum import (
    ChecksumSet,
    ModularChecksum,
    ParityChecksum,
    float_bits,
    float_to_ordered_int,
    to_lane_words,
)
from repro.core.config import PAPER_CHECKSUM_PAIR

words = hnp.arrays(
    np.uint64,
    st.integers(1, 64),
    elements=st.integers(0, (1 << 64) - 1),
)

floats32 = hnp.arrays(
    np.float32,
    st.integers(1, 64),
    elements=st.floats(-(2.0 ** 100), 2.0 ** 100, width=32, allow_nan=False,
                       allow_subnormal=False),
)


@given(words)
def test_modular_fold_is_order_invariant(ws):
    f = ModularChecksum()
    shuffled = ws.copy()
    np.random.default_rng(0).shuffle(shuffled)
    assert f.fold_all(ws) == f.fold_all(shuffled)


@given(words)
def test_parity_fold_is_order_invariant(ws):
    f = ParityChecksum()
    assert f.fold_all(ws) == f.fold_all(ws[::-1].copy())


@given(words, words)
def test_combine_is_commutative_and_merges_folds(a, b):
    for f in (ModularChecksum(), ParityChecksum()):
        fa, fb = f.fold_all(a), f.fold_all(b)
        assert f.combine(np.uint64(fa), np.uint64(fb)) == f.combine(
            np.uint64(fb), np.uint64(fa)
        )
        joint = f.fold_all(np.concatenate([a, b]))
        assert f.combine(np.uint64(fa), np.uint64(fb)) == joint


@given(words)
def test_parity_self_inverse(ws):
    f = ParityChecksum()
    doubled = np.concatenate([ws, ws])
    assert f.fold_all(doubled) == 0


@given(floats32)
def test_float_bits_injective_on_distinct_bit_patterns(vals):
    ws = float_bits(vals)
    raw = vals.view(np.uint32)
    # Equal words iff equal bit patterns.
    assert np.array_equal(ws[:, None] == ws[None, :],
                          raw[:, None] == raw[None, :])


@given(st.floats(-(2.0 ** 100), 2.0 ** 100, width=32, allow_nan=False,
                 allow_subnormal=False),
       st.floats(-(2.0 ** 100), 2.0 ** 100, width=32, allow_nan=False,
                 allow_subnormal=False))
def test_ordered_int_preserves_order(a, b):
    fa, fb = np.float32([a]), np.float32([b])
    oa = int(float_to_ordered_int(fa)[0])
    ob = int(float_to_ordered_int(fb)[0])
    if a < b:
        assert oa < ob
    elif a > b:
        assert oa > ob


@given(floats32, st.integers(1, 16))
@settings(max_examples=50)
def test_block_state_any_slotting_same_checksum(vals, n_threads):
    """Per-thread accumulation must not depend on which thread folded
    which value — the property that makes the reduction correct."""
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    rng = np.random.default_rng(42)

    s1 = cset.new_block_state(n_threads)
    s1.update(vals, np.arange(vals.size) % n_threads)
    s2 = cset.new_block_state(n_threads)
    s2.update(vals, rng.integers(0, n_threads, vals.size))
    assert np.array_equal(
        s1.lane_values_reference(), s2.lane_values_reference()
    )


@given(floats32)
def test_checksum_detects_single_element_change(vals):
    """Changing one element to a different bit pattern flips at least
    one lane (no false negative for single-point corruption)."""
    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    before = cset.checksum_of(vals)
    mutated = vals.copy().view(np.uint32)
    mutated[0] ^= 1
    after = cset.checksum_of(mutated.view(np.float32))
    assert not np.array_equal(before, after)


@given(words)
def test_to_lane_words_is_stable(ws):
    assert np.array_equal(
        to_lane_words(ws.view(np.float64)), to_lane_words(ws.view(np.float64))
    )
