"""Property-based tests for checksum tables."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LPConfig
from repro.core.tables import make_table
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory

configs = st.sampled_from([
    LPConfig.naive_quadratic(),
    LPConfig.naive_cuckoo(),
    LPConfig.paper_best(),
])


def make_ctx(mem):
    return BlockContext(mem, AtomicUnit(mem),
                        LaunchConfig.linear(4, 32), 0)


@given(configs, st.integers(1, 200), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_insert_then_lookup_every_key(config, n_keys, salt):
    mem = GlobalMemory(cache_capacity_lines=4096)
    ctx = make_ctx(mem)
    table = make_table(mem, "t", n_keys, 2, config)
    for key in range(n_keys):
        lanes = np.array([key ^ salt, key + salt], dtype=np.uint64)
        table.insert(ctx, key, lanes)
    for key in range(n_keys):
        lanes = table.lookup(key)
        assert lanes is not None
        assert lanes[0] == np.uint64(key ^ salt)
        assert lanes[1] == np.uint64(key) + np.uint64(salt)


@given(configs, st.integers(2, 100),
       st.lists(st.integers(0, 99), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_reinsertion_is_idempotent(config, n_keys, reinserts):
    """Recovery may re-insert any subset of keys, any number of times;
    the table must end up exactly as after a single pass."""
    mem = GlobalMemory(cache_capacity_lines=4096)
    ctx = make_ctx(mem)
    table = make_table(mem, "t", n_keys, 2, config)

    def lanes_of(key):
        return np.array([key * 3 + 1, key * 5 + 2], dtype=np.uint64)

    for key in range(n_keys):
        table.insert(ctx, key, lanes_of(key))
    for r in reinserts:
        table.insert(ctx, r % n_keys, lanes_of(r % n_keys))
    for key in range(n_keys):
        assert np.array_equal(table.lookup(key), lanes_of(key))


@given(st.integers(1, 400))
@settings(max_examples=30, deadline=None)
def test_quadratic_probe_accounting_invariant(n_keys):
    """probes == inserts + collisions, always."""
    mem = GlobalMemory(cache_capacity_lines=4096)
    ctx = make_ctx(mem)
    table = make_table(mem, "t", n_keys, 2, LPConfig.naive_quadratic())
    lanes = np.zeros(2, dtype=np.uint64)
    for key in range(n_keys):
        table.insert(ctx, key, lanes)
    assert table.stats.probes == n_keys + table.stats.collisions
