"""Property-based tests for the persistence domain."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import GlobalMemory

write_sequences = st.lists(
    st.tuples(st.integers(0, 255), st.integers(1, 16),
              st.integers(-1000, 1000)),
    min_size=1,
    max_size=60,
)


@given(write_sequences, st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_drain_then_crash_is_lossless(writes, capacity):
    mem = GlobalMemory(cache_capacity_lines=capacity)
    buf = mem.alloc("a", (272,), np.int32)
    for start, length, value in writes:
        idx = np.arange(start, min(start + length, 272))
        mem.write(buf, idx, np.full(idx.size, value, np.int32))
    snapshot = buf.array.copy()
    mem.drain()
    mem.crash()
    assert np.array_equal(buf.array, snapshot)


@given(write_sequences, st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_crash_yields_prefix_consistent_state(writes, capacity):
    """After a crash every element equals either its initial value or
    some value that was actually written there — never garbage."""
    mem = GlobalMemory(cache_capacity_lines=capacity)
    init = np.arange(272, dtype=np.int32)
    buf = mem.alloc("a", (272,), np.int32, init=init)
    legal = {i: {int(init[i])} for i in range(272)}
    for start, length, value in writes:
        idx = np.arange(start, min(start + length, 272))
        mem.write(buf, idx, np.full(idx.size, value, np.int32))
        for i in idx:
            legal[int(i)].add(int(value))
    mem.crash()
    for i in range(272):
        assert int(buf.array[i]) in legal[i]


@given(write_sequences)
@settings(max_examples=30, deadline=None)
def test_nvm_image_never_ahead_of_volatile_after_quiesce(writes):
    """With no concurrent writers, after any sequence the NVM image of
    each element equals some previously-written (or initial) value."""
    mem = GlobalMemory(cache_capacity_lines=4)
    buf = mem.alloc("a", (272,), np.int32)
    seen = {i: {0} for i in range(272)}
    for start, length, value in writes:
        idx = np.arange(start, min(start + length, 272))
        mem.write(buf, idx, np.full(idx.size, value, np.int32))
        for i in idx:
            seen[int(i)].add(int(value))
    for i in range(272):
        assert int(buf.nvm_array[i]) in seen[i]
