"""Property: the mapped heap is indistinguishable from the in-memory
shadow.

For an arbitrary store sequence, any cache capacity, and every dtype
the workloads and checksum tables allocate, draining through a
:class:`MappedShadow` and reopening the file cold must reproduce the
in-memory ``Buffer.shadow`` image bit for bit. This is the contract
that lets the whole LP pipeline run unchanged on top of the durable
heap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import GlobalMemory
from repro.nvm.mapped import MappedShadow

#: Every dtype allocated anywhere in the workloads or checksum tables.
WORKLOAD_DTYPES = (
    np.uint8, np.int32, np.uint32, np.int64, np.uint64,
    np.float32, np.float64,
)

N_ELEMS = 300

write_sequences = st.lists(
    st.tuples(
        st.integers(0, N_ELEMS - 1),          # start index
        st.integers(1, 24),                    # run length
        st.integers(-(2 ** 31), 2 ** 31 - 1),  # raw value
    ),
    min_size=1,
    max_size=40,
)


def _apply(mem, buf, writes):
    for start, length, raw in writes:
        idx = np.arange(start, min(start + length, N_ELEMS))
        # Cast through the buffer dtype: unsigned wraps, floats round —
        # both sides of the comparison get identical bit patterns.
        values = np.full(idx.size, raw).astype(buf.dtype)
        mem.write(buf, idx, values)


@pytest.mark.parametrize("dtype", WORKLOAD_DTYPES,
                         ids=lambda d: np.dtype(d).name)
@given(writes=write_sequences, capacity=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_store_drain_reopen_matches_in_memory_shadow(
    tmp_path_factory, dtype, writes, capacity
):
    # In-memory reference.
    ref_mem = GlobalMemory(cache_capacity_lines=capacity)
    ref_buf = ref_mem.alloc("x", (N_ELEMS,), dtype)
    _apply(ref_mem, ref_buf, writes)
    ref_mem.drain()

    # Mapped run: same stores, drained into a heap file.
    path = tmp_path_factory.mktemp("heap") / "heap.lpnv"
    heap = MappedShadow.create(path)
    mem = GlobalMemory(cache_capacity_lines=capacity, shadow=heap)
    buf = mem.alloc("x", (N_ELEMS,), dtype)
    _apply(mem, buf, writes)
    mem.drain()
    heap.close()

    with MappedShadow.open(path) as reopened:
        view = reopened.view("x")
        assert view.dtype == np.dtype(dtype)
        assert view.tobytes() == ref_buf.shadow.tobytes()


@given(writes=write_sequences, capacity=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_undrained_lines_are_the_only_divergence(tmp_path_factory,
                                                 writes, capacity):
    """Without a drain, the heap may lag the volatile image but must
    still equal the in-memory shadow (same eviction sequence)."""
    ref_mem = GlobalMemory(cache_capacity_lines=capacity)
    ref_buf = ref_mem.alloc("x", (N_ELEMS,), np.int64)
    _apply(ref_mem, ref_buf, writes)

    path = tmp_path_factory.mktemp("heap") / "heap.lpnv"
    heap = MappedShadow.create(path)
    mem = GlobalMemory(cache_capacity_lines=capacity, shadow=heap)
    buf = mem.alloc("x", (N_ELEMS,), np.int64)
    _apply(mem, buf, writes)
    heap.close()

    with MappedShadow.open(path) as reopened:
        assert reopened.view("x").tobytes() == ref_buf.shadow.tobytes()
