"""Property-based tests for the directive compiler."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.parser import parse_pragma, split_args
from repro.compiler.transform import compile_program

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)
exprs = st.from_regex(r"[A-Za-z0-9_.*+ ]{1,20}", fullmatch=True).map(
    str.strip
).filter(lambda s: s and "," not in s and "(" not in s and ")" not in s)


@given(st.lists(exprs, min_size=1, max_size=6))
def test_split_args_roundtrip(args):
    joined = ", ".join(args)
    assert split_args(joined) == [a for a in args]


@given(identifiers, exprs, exprs)
def test_init_pragma_roundtrip(table, nelems, selem):
    line = f"#pragma nvm lpcuda_init({table}, {nelems}, {selem})"
    d = parse_pragma(line, 1)
    assert d.table == table
    assert d.nelems_expr == nelems
    assert d.selem_expr == selem


@given(
    table=identifiers,
    keys=st.lists(identifiers, min_size=1, max_size=4),
    types=st.sampled_from(['"+"', '"^"', '"+^"', '"^+"']),
)
def test_checksum_pragma_roundtrip(table, keys, types):
    line = (f"#pragma nvm lpcuda_checksum({types}, {table}, "
            f"{', '.join(keys)})")
    d = parse_pragma(line, 1)
    assert d.table == table
    assert d.keys == tuple(keys)
    assert len(d.checksum_types) == len(types) - 2  # minus quotes


@given(
    kernel_name=identifiers,
    array=identifiers,
    value_var=identifiers,
    table=identifiers,
)
@settings(max_examples=40)
def test_compile_arbitrary_single_store_kernel(kernel_name, array,
                                               value_var, table):
    """Any well-formed single-store kernel compiles into the full
    triple (host, instrumented kernel, recovery kernel)."""
    names = {kernel_name, array, value_var, table}
    if len(names) < 4 or names & {"i", "grid", "threads", "d", "void",
                                  "float", "int"}:
        return  # identifiers must be distinct and non-reserved
    source = f"""
#pragma nvm lpcuda_init({table}, grid.x, 1)
{kernel_name}<<<grid, threads>>>(d);

__global__ void {kernel_name}(float *{array}) {{
    int i = blockIdx.x;
    float {value_var} = 1.0f;
#pragma nvm lpcuda_checksum("+^", {table}, blockIdx.x)
    {array}[i] = {value_var};
}}
"""
    out = compile_program(source)
    assert f"cr{kernel_name[0].upper()}{kernel_name[1:]}" in out.recovery_code
    assert "__lp_cs[0] +=" in out.kernel_code
    assert re.search(rf"lpcuda_table_insert\(&{table},", out.kernel_code)
