"""Unit tests for the offline read-only heap inspector."""

import numpy as np
import pytest

from repro.errors import (
    HeapCorruptError,
    HeapFormatError,
    HeapTruncatedError,
)
from repro.gpu.memory import GlobalMemory
from repro.nvm.inspect import diff_heaps, inspect_heap
from repro.nvm.layout import DIR_OFFSET, JOURNAL_CAPACITY
from repro.nvm.mapped import MappedShadow
from repro.obs.schema import load_schema, validate


@pytest.fixture
def heap_path(tmp_path):
    return tmp_path / "heap.lpnv"


def _heap_with_data(path, names=("x",)):
    heap = MappedShadow.create(path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    for i, name in enumerate(names):
        buf = mem.alloc(name, (300,), np.float64)
        mem.write(buf, np.arange(300),
                  np.arange(300, dtype=np.float64) * (i + 1.5))
    mem.drain()
    return heap, mem


def test_report_decodes_header_directory_occupancy(heap_path):
    heap, _ = _heap_with_data(heap_path, names=("x", "y"))
    heap.close()

    report = inspect_heap(heap_path)
    assert report.header.version == 1
    assert report.header.line_size == heap.line_size
    assert [e.name for e in report.entries] == ["x", "y"]
    assert not report.journal.armed
    buffers = [s for s in report.occupancy if s.kind == "buffer"]
    assert [s.name for s in buffers] == ["x", "y"]
    # drained data: every line of both buffers holds nonzero bytes
    assert all(s.nonzero_lines == s.n_lines for s in buffers)
    validate(report.to_dict(), load_schema("heap_inspect"))


def test_freed_buffer_leaves_a_gap_segment(heap_path):
    heap, mem = _heap_with_data(heap_path, names=("x", "y"))
    mem.free("x")
    heap.close()

    report = inspect_heap(heap_path)
    kinds = [s.kind for s in report.occupancy]
    assert kinds == ["gap", "buffer"]
    assert report.occupancy[1].name == "y"
    validate(report.to_dict(), load_schema("heap_inspect"))


def test_armed_exact_journal_is_reported_and_never_cleared(heap_path):
    heap, _ = _heap_with_data(heap_path)
    heap.arm([0, 1, 5])
    heap.sync()

    report = inspect_heap(heap_path)
    assert report.journal.armed and report.journal.mode_name == "EXACT"
    assert report.torn.by_buffer == {"x": 3}
    assert report.torn.unattributed == 0

    # the inspector is read-only: a second inspect still sees the arm,
    # and MappedShadow.open still surfaces (and then clears) it
    assert inspect_heap(heap_path).torn.armed
    heap.close()
    reopened = MappedShadow.open(heap_path)
    assert reopened.torn is not None
    assert reopened.torn_by_buffer() == {"x": 3}
    reopened.close()


def test_range_journal_mode(heap_path):
    heap, _ = _heap_with_data(heap_path)
    heap.arm(list(range(JOURNAL_CAPACITY + 7)))
    heap.sync()
    heap.close()

    report = inspect_heap(heap_path)
    assert report.journal.mode_name == "RANGE"
    assert not report.torn.exact
    assert report.torn.n_lines == JOURNAL_CAPACITY + 7
    # lines beyond the buffer's extent are unattributed suspects
    assert report.torn.unattributed > 0
    validate(report.to_dict(), load_schema("heap_inspect"))


def test_torn_lines_match_whatever_open_reports(heap_path):
    """Inspector and writer agree on the armed set, by construction."""
    heap, _ = _heap_with_data(heap_path)
    heap.arm([2, 3, 11])
    heap.sync()

    report = inspect_heap(heap_path)
    heap.close()
    reopened = MappedShadow.open(heap_path)
    assert list(report.torn.lines_sample) == sorted(reopened.torn_lines())
    assert report.torn.by_buffer == reopened.torn_by_buffer()
    reopened.close()


def test_rejects_truncated_and_corrupt_files(tmp_path):
    short = tmp_path / "short.lpnv"
    short.write_bytes(b"LPNVHEAP" + b"\0" * 64)
    with pytest.raises(HeapTruncatedError):
        inspect_heap(short)

    bad_magic = tmp_path / "bad.lpnv"
    bad_magic.write_bytes(b"NOTAHEAP" + b"\0" * (DIR_OFFSET + 64))
    with pytest.raises(HeapFormatError):
        inspect_heap(bad_magic)

    heap, _ = _heap_with_data(tmp_path / "heap.lpnv")
    heap.close()
    raw = bytearray((tmp_path / "heap.lpnv").read_bytes())
    raw[DIR_OFFSET] ^= 0xFF
    corrupt = tmp_path / "corrupt.lpnv"
    corrupt.write_bytes(raw)
    with pytest.raises(HeapCorruptError):
        inspect_heap(corrupt)

    missing = tmp_path / "missing.lpnv"
    with pytest.raises(HeapTruncatedError):
        inspect_heap(missing)


def test_diff_identical_copies(heap_path, tmp_path):
    heap, _ = _heap_with_data(heap_path)
    heap.close()
    copy = tmp_path / "copy.lpnv"
    copy.write_bytes(heap_path.read_bytes())

    diff = diff_heaps(heap_path, copy)
    assert diff.identical
    validate(diff.to_dict(), load_schema("heap_inspect"))


def test_diff_reports_changed_lines(heap_path, tmp_path):
    heap, _ = _heap_with_data(heap_path)
    heap.close()
    copy = tmp_path / "copy.lpnv"
    copy.write_bytes(heap_path.read_bytes())

    heap = MappedShadow.open(heap_path)
    view = heap.view("x")
    view[0] = -1.0      # line 0
    view[128 // 8] = -2.0  # line 1 (float64 lines hold 16 elements)
    heap.sync()
    heap.close()

    diff = diff_heaps(heap_path, copy)
    assert not diff.identical
    (buf,) = [b for b in diff.buffers if b.n_differing]
    assert buf.name == "x"
    assert buf.n_differing == 2
    assert list(buf.differing_sample) == [0, 1]
    validate(diff.to_dict(), load_schema("heap_inspect"))


def test_diff_reports_directory_divergence(heap_path, tmp_path):
    heap, _ = _heap_with_data(heap_path, names=("x", "y"))
    heap.close()
    other_path = tmp_path / "other.lpnv"
    other, _ = _heap_with_data(other_path, names=("x",))
    other.close()

    diff = diff_heaps(heap_path, other_path)
    assert not diff.identical
    assert diff.only_in_a == ("y",)
    assert diff.only_in_b == ()
    rendered = diff.render_text()
    assert "only in A" in rendered
