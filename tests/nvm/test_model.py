"""Unit tests for NVM write statistics."""

import pytest

from repro.nvm.model import WritebackReason, WriteStats, write_amplification


def test_record_and_totals():
    stats = WriteStats(line_size=128)
    stats.record(WritebackReason.EVICTION, "a", 3)
    stats.record(WritebackReason.DRAIN, "b", 2)
    assert stats.total_lines == 5
    assert stats.total_bytes == 5 * 128
    assert stats.by_reason[WritebackReason.EVICTION] == 3


def test_per_buffer_attribution():
    stats = WriteStats()
    stats.record(WritebackReason.EVICTION, "data", 10)
    stats.record(WritebackReason.EVICTION, "__lp_t_keys", 2)
    stats.record(WritebackReason.DRAIN, "__lp_t_lanes", 1)
    assert stats.lines_for_buffer("data") == 10
    assert stats.lines_for_buffers("__lp_") == 3
    assert stats.lines_for_buffer("ghost") == 0


def test_negative_count_rejected():
    stats = WriteStats()
    with pytest.raises(ValueError):
        stats.record(WritebackReason.EVICTION, "a", -1)


def test_reset():
    stats = WriteStats()
    stats.record(WritebackReason.EVICTION, "a", 3)
    stats.reset()
    assert stats.total_lines == 0


def test_write_amplification():
    base = WriteStats()
    base.record(WritebackReason.EVICTION, "data", 1000)
    lp = WriteStats()
    lp.record(WritebackReason.EVICTION, "data", 1000)
    lp.record(WritebackReason.EVICTION, "__lp_t", 22)
    assert write_amplification(lp, base) == pytest.approx(0.022)


def test_write_amplification_needs_baseline():
    with pytest.raises(ValueError):
        write_amplification(WriteStats(), WriteStats())
