"""Unit tests for the durable mmap-backed NVM heap."""

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    HeapCorruptError,
    HeapError,
    HeapFormatError,
    HeapFullError,
    HeapLayoutError,
    HeapTruncatedError,
    HeapVersionError,
)
from repro.gpu.memory import GlobalMemory
from repro.nvm.mapped import (
    _DIR_OFFSET,
    _HEADER,
    JOURNAL_CAPACITY,
    MAGIC,
    MappedShadow,
)


@pytest.fixture
def heap_path(tmp_path):
    return tmp_path / "heap.lpnv"


def _filled_heap(path):
    """A heap with one drained buffer; returns (expected image, path)."""
    heap = MappedShadow.create(path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    buf = mem.alloc("x", (300,), np.float64)
    mem.write(buf, np.arange(300), np.arange(300, dtype=np.float64) * 1.5)
    mem.drain()
    expected = np.asarray(buf.shadow).copy()
    heap.close()
    return expected


# ---------------------------------------------------------------------------
# Round trip
# ---------------------------------------------------------------------------

def test_drain_reopen_roundtrip_is_bit_identical(heap_path):
    expected = _filled_heap(heap_path)
    with MappedShadow.open(heap_path) as heap:
        assert list(heap.entries) == ["x"]
        entry = heap.entries["x"]
        assert entry.dtype == np.float64
        assert entry.shape == (300,)
        assert entry.role == "data"
        assert np.array_equal(heap.view("x"), expected)
        assert heap.torn is None


def test_table_buffers_get_table_role(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(shadow=heap)
    mem.alloc("__lp_k_lanes", (64,), np.uint32)
    mem.alloc("plain", (64,), np.uint32)
    assert heap.entries["__lp_k_lanes"].role == "table"
    assert heap.entries["plain"].role == "data"
    heap.close()


def test_alloc_init_is_persisted_immediately(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(shadow=heap)
    init = np.arange(40, dtype=np.int32)
    mem.alloc("x", (40,), np.int32, init=init)
    heap.close()
    with MappedShadow.open(heap_path) as reopened:
        assert np.array_equal(reopened.view("x"), init)


def test_scratch_buffers_stay_out_of_the_heap(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(shadow=heap)
    mem.alloc("scratch", (32,), np.float32, persistent=False)
    assert "scratch" not in heap.entries
    heap.close()


def test_free_detaches_from_directory(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(shadow=heap)
    mem.alloc("x", (32,), np.int32)
    mem.free("x")
    heap.close()
    with MappedShadow.open(heap_path) as reopened:
        assert "x" not in reopened.entries


def test_duplicate_attach_rejected(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(shadow=heap)
    buf = mem.alloc("x", (32,), np.int32)
    with pytest.raises(AllocationError):
        heap.attach(buf)
    heap.close()


def test_heap_grows_past_initial_capacity(heap_path):
    heap = MappedShadow.create(heap_path, data_capacity=4096)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    big = mem.alloc("big", (100_000,), np.float64)
    mem.write(big, np.arange(100_000),
              np.arange(100_000, dtype=np.float64))
    mem.drain()
    heap.close()
    with MappedShadow.open(heap_path) as reopened:
        assert np.array_equal(reopened.view("big"),
                              np.arange(100_000, dtype=np.float64))


def test_grow_repoints_live_buffer_views(heap_path):
    heap = MappedShadow.create(heap_path, data_capacity=4096)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    first = mem.alloc("first", (16,), np.int64,
                      init=np.arange(16, dtype=np.int64))
    mem.alloc("big", (100_000,), np.float64)
    # first's shadow must now be a view into the *new* mapping.
    mem.write(first, np.arange(16), np.arange(16, dtype=np.int64) * 7)
    mem.drain()
    heap.close()
    with MappedShadow.open(heap_path) as reopened:
        assert np.array_equal(reopened.view("first"),
                              np.arange(16, dtype=np.int64) * 7)


def test_line_size_mismatch_rejected(heap_path):
    heap = MappedShadow.create(heap_path, line_size=256)
    with pytest.raises(AllocationError):
        GlobalMemory(line_size=128, shadow=heap)
    heap.close()


def test_directory_full_raises_and_rolls_back(heap_path):
    heap = MappedShadow.create(heap_path, dir_capacity=16)
    mem = GlobalMemory(shadow=heap)
    with pytest.raises(HeapFullError):
        mem.alloc("x", (32,), np.int32)
    assert "x" not in heap.entries
    heap.close()


def test_closed_heap_refuses_use(heap_path):
    heap = MappedShadow.create(heap_path)
    heap.close()
    heap.close()  # idempotent
    with pytest.raises(HeapError):
        heap.view("x")


# ---------------------------------------------------------------------------
# Typed open() errors — no silent garbage reads
# ---------------------------------------------------------------------------

def test_open_missing_file_is_typed(tmp_path):
    with pytest.raises(HeapTruncatedError):
        MappedShadow.open(tmp_path / "nope.lpnv")


def test_open_short_file_is_typed(heap_path):
    heap_path.write_bytes(b"LPNVHEAP but far too short")
    with pytest.raises(HeapTruncatedError):
        MappedShadow.open(heap_path)


def test_open_bad_magic_is_typed(heap_path):
    _filled_heap(heap_path)
    with open(heap_path, "r+b") as fh:
        fh.write(b"NOTAHEAP")
    with pytest.raises(HeapFormatError):
        MappedShadow.open(heap_path)


def test_open_version_mismatch_is_typed(heap_path):
    _filled_heap(heap_path)
    with open(heap_path, "r+b") as fh:
        fh.seek(len(MAGIC))
        fh.write((99).to_bytes(4, "little"))
    with pytest.raises(HeapVersionError):
        MappedShadow.open(heap_path)


def test_open_corrupt_directory_is_typed(heap_path):
    _filled_heap(heap_path)
    with open(heap_path, "r+b") as fh:
        fh.seek(_DIR_OFFSET + 2)
        fh.write(b"\xff")
    with pytest.raises(HeapCorruptError):
        MappedShadow.open(heap_path)


def test_open_truncated_data_region_is_typed(heap_path):
    _filled_heap(heap_path)
    # Keep the header + directory but cut the data region short.
    with open(heap_path, "r+b") as fh:
        fh.truncate(_DIR_OFFSET + _HEADER.size)
    with pytest.raises(HeapTruncatedError):
        MappedShadow.open(heap_path)


def test_open_nonsensical_geometry_is_typed(heap_path):
    _filled_heap(heap_path)
    # line_size = 0 in the header.
    with open(heap_path, "r+b") as fh:
        fh.seek(len(MAGIC) + 4)
        fh.write((0).to_bytes(4, "little"))
    with pytest.raises(HeapFormatError):
        MappedShadow.open(heap_path)


# ---------------------------------------------------------------------------
# Adopt
# ---------------------------------------------------------------------------

def _layout(shapes):
    mem = GlobalMemory(cache_capacity_lines=4)
    for name, shape, dtype in shapes:
        mem.alloc(name, shape, dtype)
    return mem


def test_adopt_swaps_shadows_and_resets_volatile(heap_path):
    expected = _filled_heap(heap_path)
    heap = MappedShadow.open(heap_path)
    mem = _layout([("x", (300,), np.float64)])
    # Volatile state diverges pre-adopt; adopt is a reboot.
    mem.buffers["x"].data[:] = -1.0
    heap.adopt(mem)
    assert np.array_equal(mem.buffers["x"].data, expected)
    assert mem.shadow_backend is heap
    # Post-adopt write-backs land in the file.
    buf = mem.buffers["x"]
    mem.write(buf, np.arange(10), np.full(10, 9.0))
    mem.drain()
    assert np.array_equal(np.asarray(heap.view("x")[:10]),
                          np.full(10, 9.0))
    heap.close()


@pytest.mark.parametrize("shapes", [
    [],                                         # missing buffer
    [("x", (300,), np.float32)],                # dtype diverged
    [("x", (299,), np.float64)],                # shape diverged
    [("x", (300,), np.float64),
     ("extra", (8,), np.int32)],                # extra persistent buffer
])
def test_adopt_layout_mismatch_is_typed(heap_path, shapes):
    _filled_heap(heap_path)
    with MappedShadow.open(heap_path) as heap:
        with pytest.raises(HeapLayoutError):
            heap.adopt(_layout(shapes))


def test_adopt_line_size_mismatch_is_typed(heap_path):
    _filled_heap(heap_path)
    with MappedShadow.open(heap_path) as heap:
        mem = GlobalMemory(line_size=256, cache_capacity_lines=4)
        mem.alloc("x", (300,), np.float64)
        with pytest.raises(HeapLayoutError):
            heap.adopt(mem)


# ---------------------------------------------------------------------------
# Torn-write journal
# ---------------------------------------------------------------------------

def _abandon(heap):
    """Simulate sudden death: flush the mapping, never commit/close."""
    heap._mm.flush()
    heap._file.close()


def test_armed_journal_surfaces_as_torn_window(heap_path):
    _filled_heap(heap_path)
    heap = MappedShadow.open(heap_path)
    heap.arm([2, 3, 7])
    _abandon(heap)
    with MappedShadow.open(heap_path) as reopened:
        assert reopened.torn is not None
        assert reopened.torn.exact
        assert reopened.torn.lines == (2, 3, 7)
        assert reopened.torn_lines() == [2, 3, 7]
        assert reopened.torn_by_buffer() == {"x": 3}
    # The journal is consumed: a second open sees a clean heap.
    with MappedShadow.open(heap_path) as again:
        assert again.torn is None


def test_committed_writeback_leaves_no_torn_window(heap_path):
    _filled_heap(heap_path)
    heap = MappedShadow.open(heap_path)
    heap.arm([2, 3])
    heap.commit(2)
    assert heap.lines_written == 2
    _abandon(heap)
    with MappedShadow.open(heap_path) as reopened:
        assert reopened.torn is None


def test_oversized_writeback_journals_as_range(heap_path):
    _filled_heap(heap_path)
    heap = MappedShadow.open(heap_path)
    lines = list(range(5, 5 + JOURNAL_CAPACITY + 10))
    heap.arm(lines)
    _abandon(heap)
    with MappedShadow.open(heap_path) as reopened:
        assert reopened.torn is not None
        assert not reopened.torn.exact
        assert reopened.torn.lines[0] == 5
        assert reopened.torn.lines[-1] == lines[-1]


def test_writeback_listener_fires_inside_the_torn_window(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(cache_capacity_lines=2, shadow=heap)
    buf = mem.alloc("x", (512,), np.float64)
    seen = []

    def listener(cumulative):
        # The journal must still be armed while the listener runs —
        # that is what makes a kill here a torn write.
        seen.append((cumulative, heap._read_journal() is not None))

    heap.writeback_listener = listener
    mem.write(buf, np.arange(512), np.arange(512, dtype=np.float64))
    mem.drain()
    assert seen
    assert all(armed for _, armed in seen)
    assert seen[-1][0] == heap.lines_written
    heap.close()


# ---------------------------------------------------------------------------
# Worker mode (pool fork-safety)
# ---------------------------------------------------------------------------

def test_worker_mode_seals_the_heap(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    buf = mem.alloc("x", (64,), np.int64,
                    init=np.arange(64, dtype=np.int64))
    before_shadow = np.asarray(buf.shadow).copy()
    before_heap = np.asarray(heap.view("x")).copy()
    mem.enter_worker_mode()
    assert mem.shadow_backend is None
    mem.write(buf, np.arange(64), np.zeros(64, np.int64))
    mem.drain()
    # Worker stores scribble the volatile image only; the persistence
    # domain — shadow arrays and the heap file — stays the parent's.
    assert np.array_equal(np.asarray(buf.data), np.zeros(64, np.int64))
    assert np.array_equal(np.asarray(buf.shadow), before_shadow)
    assert np.array_equal(np.asarray(heap.view("x")), before_heap)
    heap.close()


def test_sealed_heap_refuses_persistence(heap_path):
    heap = MappedShadow.create(heap_path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    mem.alloc("x", (64,), np.int64)
    mem.enter_worker_mode()
    with pytest.raises(HeapFormatError, match="sealed in a worker"):
        heap.sync()
    with pytest.raises(HeapFormatError, match="sealed in a worker"):
        heap.arm([0])
    with pytest.raises(HeapFormatError, match="sealed in a worker"):
        heap.commit(0)
    # Reads stay valid — workers consume the mapping zero-copy.
    assert np.asarray(heap.view("x")).shape == (64,)
    heap.close()
