"""Tests for the crash-consistency auditor."""

import numpy as np
import pytest

import repro
from repro.nvm.audit import (
    AuditFailure,
    CrashSchedule,
    audit_crash_consistency,
    generate_schedules,
)


def tmm_scenario():
    device = repro.Device(cache_capacity_lines=16)
    work = repro.workloads.TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp_kernel = repro.LPRuntime(device).instrument(kernel)
    return device, lp_kernel, work.verify


def test_schedules_cover_boundaries():
    schedules = generate_schedules(16, 10, seed=1)
    assert len(schedules) == 10
    assert schedules[0] == CrashSchedule(0, 0.0, 1)
    assert schedules[1].after_blocks == 16
    assert schedules[2].persist_fraction == 1.0
    # Deterministic in the seed.
    assert generate_schedules(16, 10, seed=1) == schedules


def test_audit_passes_for_correct_lp_deployment():
    report = audit_crash_consistency(tmm_scenario, n_schedules=8, seed=3)
    assert report.all_passed
    assert report.n_schedules == 8
    assert report.total_regions_recovered > 0
    assert "all recovered" in report.summary()


def test_audit_catches_broken_protection():
    """Leave one output buffer unprotected: some schedule must fail."""

    def broken_scenario():
        device = repro.Device(cache_capacity_lines=4)
        work = repro.workloads.MRIQWorkload(scale="tiny")
        kernel = work.setup(device)
        kernel.protected_buffers = ("mriq_qr",)  # qi left unprotected!
        lp_kernel = repro.LPRuntime(device).instrument(kernel)
        return device, lp_kernel, work.verify

    report = audit_crash_consistency(broken_scenario, n_schedules=12,
                                     seed=1)
    assert not report.all_passed
    assert any(f.stage == "verification" for f in report.failures)
    assert "FAILED" in report.summary()


def test_audit_with_ep_recovery_adapter():
    from repro.ep import EPRecoveryManager, EPRuntime

    def ep_scenario():
        device = repro.Device(cache_capacity_lines=16)
        work = repro.workloads.TMMWorkload(scale="tiny")
        kernel = work.setup(device)
        ep_kernel = EPRuntime(device).instrument(kernel)
        return device, ep_kernel, work.verify

    def ep_recover(device, kernel):
        return EPRecoveryManager(device, kernel).recover()

    report = audit_crash_consistency(ep_scenario, n_schedules=6, seed=5,
                                     recover=ep_recover)
    assert report.all_passed


def test_audit_records_recovery_exceptions():
    def scenario():
        return tmm_scenario()

    def exploding_recover(device, kernel):
        raise RuntimeError("recovery machinery broke")

    report = audit_crash_consistency(scenario, n_schedules=4,
                                     recover=exploding_recover)
    assert len(report.failures) >= 1
    assert all(isinstance(f, AuditFailure) for f in report.failures)
    assert report.failures[0].stage == "recovery"
