"""Unit tests for crash plans and fault injection."""

import numpy as np
import pytest

from repro.gpu.memory import GlobalMemory
from repro.nvm.crash import CrashPlan, FaultInjector


def test_crash_plan_validation():
    with pytest.raises(ValueError):
        CrashPlan(after_blocks=-1)
    with pytest.raises(ValueError):
        CrashPlan(persist_fraction=1.5)


def test_crash_plan_rng_is_deterministic():
    a = CrashPlan(after_blocks=1, seed=9).rng().integers(0, 100, 5)
    b = CrashPlan(after_blocks=1, seed=9).rng().integers(0, 100, 5)
    assert np.array_equal(a, b)


def make_memory():
    mem = GlobalMemory(cache_capacity_lines=64)
    mem.alloc("a", (64,), np.float32,
              init=np.arange(64, dtype=np.float32))
    return mem


def test_flip_bit_changes_one_element():
    mem = make_memory()
    FaultInjector().flip_bit(mem, "a", flat_index=3, bit=0)
    arr = mem["a"].array
    assert arr[3] != 3.0
    assert arr[2] == 2.0
    # Volatile re-synced with NVM after "reboot".
    assert np.array_equal(arr, mem["a"].nvm_array)


def test_flip_bit_is_its_own_inverse():
    mem = make_memory()
    inj = FaultInjector()
    inj.flip_bit(mem, "a", 5, 17)
    inj.flip_bit(mem, "a", 5, 17)
    assert mem["a"].array[5] == 5.0


def test_flip_bit_bounds():
    mem = make_memory()
    inj = FaultInjector()
    with pytest.raises(ValueError):
        inj.flip_bit(mem, "a", 3, 32)   # float32 has 32 bits
    with pytest.raises(ValueError):
        inj.flip_bit(mem, "a", 64, 0)


def test_flip_random_bits_seeded():
    def run(seed):
        mem = make_memory()
        return FaultInjector(seed=seed).flip_random_bits(mem, "a", 5)

    assert run(3) == run(3)
    assert len(run(3)) == 5


def test_overwrite_elements():
    mem = make_memory()
    FaultInjector().overwrite_elements(
        mem, "a", np.array([0, 1]), np.array([100.0, 200.0])
    )
    assert mem["a"].array[0] == 100.0
    assert mem["a"].nvm_array[1] == 200.0


def test_overwrite_bounds():
    mem = make_memory()
    with pytest.raises(ValueError):
        FaultInjector().overwrite_elements(
            mem, "a", np.array([64]), np.array([1.0])
        )
