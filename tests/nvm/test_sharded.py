"""Unit tests for the sharded multi-heap NVM backend.

Covers the manifest format, buffer placement, the per-shard journal
fan-out (torn-write containment), adopt, sealing, the degenerate
configurations (1 shard ≡ MappedShadow; more shards than blocks), and
the read-only sharded inspector + schema v2.
"""

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    HeapCorruptError,
    HeapFormatError,
    HeapLayoutError,
    HeapTruncatedError,
    HeapVersionError,
)
from repro.gpu.memory import GlobalMemory
from repro.nvm import layout
from repro.nvm.layout import ShardManifest
from repro.nvm.mapped import MappedShadow
from repro.nvm.sharded import ShardedShadow, shard_path


@pytest.fixture
def manifest_path(tmp_path):
    return tmp_path / "heap.lpnv"


#: A layout spanning several shards: four data buffers, distinct sizes.
LAYOUT = [
    ("a", (300,), np.float64),
    ("b", (512,), np.float32),
    ("c", (64,), np.int64),
    ("d", (1024,), np.int32),
]


def _fill(mem):
    """Deterministic content for every LAYOUT buffer; returns images."""
    expected = {}
    for i, (name, shape, dtype) in enumerate(LAYOUT):
        buf = mem.buffers[name]
        values = (np.arange(int(np.prod(shape)), dtype=dtype)
                  * (i + 1)).reshape(shape)
        mem.write(buf, np.arange(values.size), values.ravel())
        expected[name] = values.ravel()
    mem.drain()
    return expected


def _filled_sharded(path, n_shards=4):
    """A drained sharded heap; returns the expected per-buffer images."""
    heap = ShardedShadow.create(path, n_shards=n_shards)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    for name, shape, dtype in LAYOUT:
        mem.alloc(name, shape, dtype)
    expected = _fill(mem)
    heap.close()
    return expected


def _layout_memory():
    """A rebuilt memory reproducing LAYOUT's allocation order."""
    mem = GlobalMemory(cache_capacity_lines=4)
    for name, shape, dtype in LAYOUT:
        mem.alloc(name, shape, dtype)
    return mem


def _abandon(heap):
    """Simulate sudden death: flush mappings, never commit/close."""
    for shard in heap.shards:
        shard._mm.flush()
        shard._file.close()


# ---------------------------------------------------------------------------
# Manifest + creation
# ---------------------------------------------------------------------------

def test_create_writes_manifest_and_shard_files(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=4)
    assert heap.n_shards == 4
    manifest = layout.parse_manifest(manifest_path.read_bytes(),
                                     manifest_path)
    assert manifest.n_shards == 4
    for k in range(4):
        assert shard_path(manifest_path, k).exists()
        assert manifest.shard_names[k] == f"heap.lpnv.shard{k}"
    heap.close()


def test_create_rejects_bad_geometry(manifest_path):
    with pytest.raises(HeapFormatError):
        ShardedShadow.create(manifest_path, n_shards=0)
    with pytest.raises(HeapFormatError):
        ShardedShadow.create(manifest_path, n_shards=2, block_lines=0)


def test_manifest_pack_parse_roundtrip(manifest_path):
    manifest = ShardManifest(
        n_shards=3, line_size=128, block_lines=1,
        shard_names=("h.shard0", "h.shard1", "h.shard2"),
        block_map={0: 0, 1: 0, 2: 1, 7: 2, 8: 2},
    )
    parsed = layout.parse_manifest(layout.pack_manifest(manifest),
                                   manifest_path)
    assert parsed == manifest
    assert parsed.shard_of_line(2) == 1
    with pytest.raises(HeapCorruptError):
        parsed.shard_of_line(5)


def test_roundtrip_reopen_is_bit_identical(manifest_path):
    expected = _filled_sharded(manifest_path)
    with ShardedShadow.open(manifest_path) as heap:
        assert sorted(heap.entries) == sorted(n for n, _, _ in LAYOUT)
        # Union directory is allocation-(address-)ordered.
        addrs = [heap.entries[n].base_addr for n in heap.entries]
        assert addrs == sorted(addrs)
        for name, values in expected.items():
            assert np.array_equal(
                np.asarray(heap.view(name)).ravel(), values)
        assert heap.torn is None
        assert heap.torn_by_shard == {}


def test_buffers_spread_across_shards(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=4)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    for name, shape, dtype in LAYOUT:
        mem.alloc(name, shape, dtype)
    owners = {name: heap.shard_of_buffer(name) for name, _, _ in LAYOUT}
    assert len(set(owners.values())) > 1
    for name, shard_id in owners.items():
        # Wholly inside one shard: its entry lives in exactly that
        # shard's directory.
        assert name in heap.shards[shard_id].entries
        for k, shard in enumerate(heap.shards):
            if k != shard_id:
                assert name not in shard.entries
    heap.close()


def test_block_granularity_pins_overlapping_buffers(manifest_path):
    # With coarse blocks, consecutive small buffers share an address
    # block, so the second is pinned to the first buffer's shard.
    heap = ShardedShadow.create(manifest_path, n_shards=2,
                                block_lines=64)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    mem.alloc("x", (16,), np.int32)
    mem.alloc("y", (16,), np.int32)
    assert heap.shard_of_buffer("x") == heap.shard_of_buffer("y")
    heap.close()


def test_duplicate_attach_rejected(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=2)
    mem = GlobalMemory(shadow=heap)
    buf = mem.alloc("x", (32,), np.int32)
    with pytest.raises(AllocationError):
        heap.attach(buf)
    heap.close()


def test_detach_releases_blocks_and_directory(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=2)
    mem = GlobalMemory(shadow=heap)
    mem.alloc("x", (32,), np.int32)
    blocks_with_x = len(heap.manifest().block_map)
    mem.free("x")
    assert "x" not in heap.entries
    assert len(heap.manifest().block_map) < blocks_with_x
    heap.close()
    with ShardedShadow.open(manifest_path) as reopened:
        assert "x" not in reopened.entries


# ---------------------------------------------------------------------------
# Typed open() errors
# ---------------------------------------------------------------------------

def test_open_missing_manifest_is_typed(tmp_path):
    with pytest.raises(HeapTruncatedError):
        ShardedShadow.open(tmp_path / "nope.lpnv")


def test_open_plain_heap_as_manifest_is_typed(manifest_path):
    MappedShadow.create(manifest_path).close()
    with pytest.raises(HeapFormatError, match="plain heap"):
        ShardedShadow.open(manifest_path)


def test_open_corrupt_manifest_body_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    raw = bytearray(manifest_path.read_bytes())
    raw[layout.MANIFEST_BODY_OFFSET + 3] ^= 0xFF
    manifest_path.write_bytes(bytes(raw))
    with pytest.raises(HeapCorruptError):
        ShardedShadow.open(manifest_path)


def test_open_manifest_version_mismatch_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    raw = bytearray(manifest_path.read_bytes())
    raw[len(layout.MANIFEST_MAGIC):len(layout.MANIFEST_MAGIC) + 4] = \
        (99).to_bytes(4, "little")
    manifest_path.write_bytes(bytes(raw))
    with pytest.raises(HeapVersionError):
        ShardedShadow.open(manifest_path)


def test_open_truncated_manifest_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    raw = manifest_path.read_bytes()
    manifest_path.write_bytes(raw[:layout.MANIFEST_BODY_OFFSET + 4])
    with pytest.raises(HeapTruncatedError):
        ShardedShadow.open(manifest_path)


def test_open_manifest_directory_disagreement_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    manifest = layout.parse_manifest(manifest_path.read_bytes(),
                                     manifest_path)
    # Remap every block of shard 0 to shard 1: the manifest now
    # disagrees with shard 0's directory about who owns its buffers.
    remapped = {block: (1 if shard == 0 else shard)
                for block, shard in manifest.block_map.items()}
    manifest_path.write_bytes(layout.pack_manifest(ShardManifest(
        n_shards=manifest.n_shards, line_size=manifest.line_size,
        block_lines=manifest.block_lines,
        shard_names=manifest.shard_names, block_map=remapped,
    )))
    with pytest.raises(HeapCorruptError, match="away from shard"):
        ShardedShadow.open(manifest_path)


# ---------------------------------------------------------------------------
# Journal fan-out + torn-write containment
# ---------------------------------------------------------------------------

def _lines_of(heap, name):
    first, last = heap.entries[name].line_span(heap.line_size)
    return list(range(first, last))


def test_arm_partitions_lines_by_owning_shard(manifest_path):
    _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    name_a, name_b = "a", "b"
    shard_a = heap.shard_of_buffer(name_a)
    shard_b = heap.shard_of_buffer(name_b)
    assert shard_a != shard_b
    heap.arm(_lines_of(heap, name_a)[:2] + _lines_of(heap, name_b)[:3])
    assert heap.shards[shard_a]._read_journal() is not None
    assert heap.shards[shard_b]._read_journal() is not None
    for k, shard in enumerate(heap.shards):
        if k not in (shard_a, shard_b):
            assert shard._read_journal() is None
    heap.commit(5)
    assert all(s._read_journal() is None for s in heap.shards)
    assert heap.lines_written == 5
    heap.close()


def test_kill_mid_writeback_tears_only_the_armed_shard(manifest_path):
    _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    victim = heap.shard_of_buffer("c")
    torn_lines = _lines_of(heap, "c")[:2]
    heap.arm(torn_lines)
    _abandon(heap)
    with ShardedShadow.open(manifest_path) as reopened:
        assert sorted(reopened.torn_by_shard) == [victim]
        assert reopened.torn is not None
        assert list(reopened.torn.lines) == torn_lines
        assert reopened.torn_by_buffer() == {"c": 2}
    # Journals consumed: a second open sees a clean grid.
    with ShardedShadow.open(manifest_path) as again:
        assert again.torn is None


def test_unmapped_line_is_typed(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=2)
    with pytest.raises(HeapLayoutError, match="belongs to no shard"):
        heap.arm([10_000])
    heap.close()


def test_sharded_listener_fires_before_any_shard_commits(manifest_path):
    _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    armed_when_fired = []
    heap.writeback_listener = lambda _total: armed_when_fired.append(
        [k for k, s in enumerate(heap.shards)
         if s._read_journal() is not None])
    lines = _lines_of(heap, "a")[:1] + _lines_of(heap, "b")[:1]
    heap.arm(lines)
    involved = sorted({heap.shard_of_buffer("a"),
                       heap.shard_of_buffer("b")})
    heap.commit(2)
    # The sharded-level listener saw *every* involved journal armed —
    # a kill there is a torn write on all of them.
    assert armed_when_fired == [involved]
    heap.close()


def test_per_shard_listener_fires_inside_its_own_window(manifest_path):
    _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    shard_a = heap.shard_of_buffer("a")
    shard_b = heap.shard_of_buffer("b")
    states = []
    heap.shards[shard_b].writeback_listener = lambda _n: states.append((
        heap.shards[shard_a]._read_journal() is not None,
        heap.shards[shard_b]._read_journal() is not None,
    ))
    heap.arm(_lines_of(heap, "a")[:1] + _lines_of(heap, "b")[:1])
    heap.commit(2)
    # Shards commit in ascending order; when the later shard's
    # listener runs, earlier shards are already clean but its own
    # journal is still armed — the shard-kill containment window.
    assert shard_a < shard_b  # placement is deterministic for LAYOUT
    assert states == [(False, True)]
    heap.close()


# ---------------------------------------------------------------------------
# Adopt + worker sealing
# ---------------------------------------------------------------------------

def test_adopt_swaps_shadows_and_resets_volatile(manifest_path):
    expected = _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    mem = _layout_memory()
    mem.buffers["a"].data[:] = -1.0
    heap.adopt(mem)
    assert np.array_equal(mem.buffers["a"].data.ravel(), expected["a"])
    assert mem.shadow_backend is heap
    # Post-adopt write-backs land in the owning shard's file.
    buf = mem.buffers["a"]
    mem.write(buf, np.arange(10), np.full(10, 9.0))
    mem.drain()
    owner = heap.shard_of_buffer("a")
    assert np.array_equal(
        np.asarray(heap.shards[owner].view("a"))[:10], np.full(10, 9.0))
    heap.close()


def test_adopt_layout_mismatch_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    with ShardedShadow.open(manifest_path) as heap:
        mem = GlobalMemory(cache_capacity_lines=4)
        mem.alloc("a", (300,), np.float32)  # dtype diverged
        with pytest.raises(HeapLayoutError):
            heap.adopt(mem)


def test_worker_mode_seals_every_shard(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=2)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    mem.alloc("x", (64,), np.int64)
    mem.enter_worker_mode()
    assert mem.shadow_backend is None
    with pytest.raises(HeapFormatError, match="sealed in a worker"):
        heap.arm([0])
    with pytest.raises(HeapFormatError, match="sealed in a worker"):
        heap.sync()
    for shard in heap.shards:
        with pytest.raises(HeapFormatError, match="sealed in a worker"):
            shard.arm([0])
    heap.close()


# ---------------------------------------------------------------------------
# Degenerate configurations
# ---------------------------------------------------------------------------

def test_single_shard_heap_is_bit_identical_to_mapped(tmp_path):
    plain_path = tmp_path / "plain.lpnv"
    sharded_path = tmp_path / "sharded.lpnv"

    plain = MappedShadow.create(plain_path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=plain)
    for name, shape, dtype in LAYOUT:
        mem.alloc(name, shape, dtype)
    _fill(mem)
    plain.close()

    _filled_sharded(sharded_path, n_shards=1)

    # The degenerate 1-shard heap IS a MappedShadow heap: same wire
    # format, same bytes.
    assert (shard_path(sharded_path, 0).read_bytes()
            == plain_path.read_bytes())
    # And the shard file opens fine as a plain heap.
    with MappedShadow.open(shard_path(sharded_path, 0)) as as_plain:
        assert sorted(as_plain.entries) == sorted(n for n, _, _ in LAYOUT)


def test_more_shards_than_blocks_cold_open_is_safe(tmp_path):
    path = tmp_path / "wide.lpnv"
    heap = ShardedShadow.create(path, n_shards=8)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    buf = mem.alloc("only", (16,), np.int32)
    mem.write(buf, np.arange(16), np.arange(16, dtype=np.int32))
    mem.drain()
    heap.close()
    # 7 of the 8 shards are empty heaps; the cold open must still
    # reconstruct the grid and adopt cleanly.
    with ShardedShadow.open(path) as reopened:
        assert reopened.n_shards == 8
        assert list(reopened.entries) == ["only"]
        mem2 = GlobalMemory(cache_capacity_lines=4)
        mem2.alloc("only", (16,), np.int32)
        reopened.adopt(mem2)
        assert np.array_equal(mem2.buffers["only"].data,
                              np.arange(16, dtype=np.int32))


def test_shard_of_block_is_modulo(manifest_path):
    heap = ShardedShadow.create(manifest_path, n_shards=3)
    assert [heap.shard_of_block(b) for b in range(6)] == [0, 1, 2, 0, 1, 2]
    assert len(heap.shard_paths()) == 3
    heap.close()


# ---------------------------------------------------------------------------
# shard_id tagging (ValidationReport / forensics, satellite 1)
# ---------------------------------------------------------------------------

def test_validation_and_forensics_carry_shard_id():
    from repro.core.recovery import ValidationReport
    from repro.obs.forensics import BlockForensics, ForensicsReport

    report = ValidationReport(n_blocks=4, failed_blocks=[],
                              missing_checksums=[], launch=None)
    assert report.shard_id == 0  # bit-compatible default

    block = BlockForensics(block_id=1, reason="missing-entry",
                           expected_lanes=None, found_lanes=None,
                           shard_id=2)
    assert block.to_dict()["shard_id"] == 2
    forensics = ForensicsReport(kernel="k", table="global-array",
                                n_blocks=4, failures=[block])
    assert forensics.to_dict()["shard_id"] == 0
    assert forensics.to_dict()["failures"][0]["shard_id"] == 2


# ---------------------------------------------------------------------------
# Read-only sharded inspector + schema v2
# ---------------------------------------------------------------------------

def _validate_schema(doc):
    from repro.obs.schema import load_schema, validate
    return validate(doc, load_schema("heap_inspect"))


def test_inspect_sharded_decodes_manifest_and_all_shards(manifest_path):
    expected = _filled_sharded(manifest_path)
    from repro.nvm.inspect import inspect_sharded

    report = inspect_sharded(manifest_path)
    assert report.n_shards == 4
    assert report.armed_shards() == []
    assert report.merged_torn() == {"torn_lines": 0, "torn_by_buffer": {}}
    names = sorted(e.name for shard in report.shards
                   for e in shard.entries)
    assert names == sorted(expected)
    assert _validate_schema(report.to_dict()) is None
    assert "sharded heap" in report.render_text()


def test_inspect_sharded_sees_armed_shard_without_clearing_it(
        manifest_path):
    _filled_sharded(manifest_path)
    heap = ShardedShadow.open(manifest_path)
    victim = heap.shard_of_buffer("b")
    heap.arm(_lines_of(heap, "b")[:3])
    _abandon(heap)
    from repro.nvm.inspect import inspect_sharded

    report = inspect_sharded(manifest_path)
    assert report.armed_shards() == [victim]
    merged = report.merged_torn()
    assert merged["torn_lines"] == 3
    assert merged["torn_by_buffer"] == {"b": 3}
    assert _validate_schema(report.to_dict()) is None
    # Read-only: a second inspection still sees the armed journal.
    assert inspect_sharded(manifest_path).armed_shards() == [victim]
    # ... and the live reopen still gets its torn window afterwards.
    with ShardedShadow.open(manifest_path) as reopened:
        assert sorted(reopened.torn_by_shard) == [victim]


def test_inspect_path_dispatches_on_magic(manifest_path):
    _filled_sharded(manifest_path)
    from repro.nvm.inspect import (
        HeapReport,
        ShardedHeapReport,
        inspect_path,
    )

    assert isinstance(inspect_path(manifest_path), ShardedHeapReport)
    assert isinstance(inspect_path(shard_path(manifest_path, 0)),
                      HeapReport)


def test_diff_paths_sharded(tmp_path):
    path_a = tmp_path / "a.lpnv"
    path_b = tmp_path / "b.lpnv"
    _filled_sharded(path_a)
    _filled_sharded(path_b)
    from repro.nvm.inspect import diff_paths

    same = diff_paths(path_a, path_b)
    assert same.identical
    assert _validate_schema(same.to_dict()) is None

    # Mutate one buffer in B's owning shard (via the live heap so the
    # directory stays consistent), then diff again.
    with ShardedShadow.open(path_b) as heap:
        view = heap.view("a")
        view[:4] = 123.0
        heap.sync()
    differ = diff_paths(path_a, path_b)
    assert not differ.identical
    assert any(b.n_differing for d in differ.shards for b in d.buffers)
    assert _validate_schema(differ.to_dict()) is None


def test_diff_paths_mixed_kinds_is_typed(manifest_path):
    _filled_sharded(manifest_path)
    from repro.nvm.inspect import diff_paths

    with pytest.raises(HeapFormatError, match="cannot diff"):
        diff_paths(manifest_path, shard_path(manifest_path, 0))
