"""Tests for the paper-scale profiles and the experiment registry."""

import pytest

from repro.bench import paper_data
from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import estimate
from repro.bench.profiles import PROFILES
from repro.core.config import LPConfig


def test_profiles_cover_all_paper_benchmarks():
    assert set(PROFILES) == set(paper_data.BENCHES)


def test_block_counts_match_table3():
    for name, profile in PROFILES.items():
        assert profile.n_blocks == paper_data.TABLE3_SLOWDOWN[name]["blocks"]


def test_bottlenecks_match_table1():
    for name, profile in PROFILES.items():
        assert profile.bottleneck == paper_data.TABLE1_BOTTLENECK[name]


def test_table5_anchor_is_reproduced():
    """The calibration must land the final design on Table V's numbers."""
    for name, profile in PROFILES.items():
        target = paper_data.TABLE5_ARRAY_SHUFFLE[name]["time"]
        measured = estimate(profile, LPConfig.paper_best()).overhead
        assert measured == pytest.approx(target, abs=0.002)


def test_registry_covers_every_table_and_figure():
    expected = {
        "fig5", "table2", "collision_ablation", "atomic_ablation",
        "table3", "table4", "table5", "multi_checksum", "write_amp",
        "megakv", "fig1", "fnr",
        # extensions beyond the paper's tables
        "ep_vs_lp", "fusion", "recovery_cost", "scaling",
    }
    assert set(EXPERIMENTS) == expected


FAST_EXPERIMENTS = [
    "fig5", "table2", "collision_ablation", "atomic_ablation",
    "table3", "table4", "table5", "multi_checksum", "fig1",
]


@pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
def test_fast_experiments_pass_fidelity(exp_id):
    result = EXPERIMENTS[exp_id]()
    assert result.fidelity, f"{exp_id} defines no fidelity checks"
    failing = [k for k, ok in result.fidelity.items() if not ok]
    assert not failing, f"{exp_id} fidelity failed: {failing}"
    assert result.rendered
    assert result.rows


def test_fnr_experiment_small():
    result = EXPERIMENTS["fnr"](n_trials=60)
    assert result.fidelity_ok, result.fidelity


def test_write_amp_experiment_small_scale():
    result = EXPERIMENTS["write_amp"](scale="medium")
    assert result.fidelity_ok, result.fidelity
    for row in result.rows:
        assert row["lp_lines"] > row["baseline_lines"]


def test_megakv_experiment_small_batch():
    result = EXPERIMENTS["megakv"](n_records=4096, threads_per_block=64)
    assert result.fidelity_ok, result.fidelity


def test_extension_experiments_pass_fidelity():
    for exp_id in ("ep_vs_lp", "fusion", "recovery_cost",
                   "scaling"):
        result = EXPERIMENTS[exp_id]()
        failing = [k for k, ok in result.fidelity.items() if not ok]
        assert not failing, f"{exp_id}: {failing}"


def test_rendered_tables_include_paper_columns():
    result = EXPERIMENTS["table5"]()
    assert "paper" in result.rendered
    assert "geomean" in result.rendered
