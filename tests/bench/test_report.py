"""Unit tests for paper-style report formatting."""

from repro.bench.report import (
    fmt_count,
    fmt_pct,
    fmt_slowdown,
    paired_columns,
    render_table,
)


def test_fmt_pct():
    assert fmt_pct(0.021) == "2.1%"
    assert fmt_pct(2.166) == "216.6%"
    assert fmt_pct(44.9187) == "4,492%"
    assert fmt_pct(0.0002) == "0.020%"


def test_fmt_slowdown():
    assert fmt_slowdown(1.07) == "1.07x"
    assert fmt_slowdown(4491.87) == "4,492x"


def test_fmt_count():
    assert fmt_count(60443) == "60,443"
    assert fmt_count(26.0) == "26"


def test_render_table_alignment():
    out = render_table(
        "Demo",
        ["bench", "value"],
        [["tmm", "8.1%"], ["mri-gridding", "216.6%"]],
        note="shape only",
    )
    lines = out.splitlines()
    assert lines[0] == "Demo"
    assert lines[1] == "===="
    assert "note: shape only" in out
    # First column left-aligned, second right-aligned.
    assert lines[4].startswith("tmm")
    assert lines[4].endswith("8.1%")


def test_paired_columns():
    rows = paired_columns({"a": 0.1, "b": 0.2}, {"a": 0.15})
    assert rows == [["a", "10.0%", "15.0%"], ["b", "20.0%", "-"]]


def test_render_bars_basic():
    from repro.bench.report import render_bars

    out = render_bars(
        "Chart",
        {"a": {"x": 0.10, "y": 0.20}, "b": {"x": 0.40, "y": 0.05}},
    )
    lines = out.splitlines()
    assert lines[0] == "Chart"
    assert "10.0%" in out and "40.0%" in out
    # The largest value owns the longest bar.
    bar_lens = {
        line.split("|")[1].split()[0]: line for line in lines[2:] if "|" in line
    }
    longest = max(bar_lens, key=len)
    assert "40.0%" in bar_lens[longest]


def test_render_bars_clips_outliers():
    from repro.bench.report import render_bars

    out = render_bars("C", {"a": {"v": 5.0}, "b": {"v": 0.1}}, clip=0.6)
    assert ">" in out          # clipped marker
    assert "500.0%" in out     # true value still printed


def test_render_bars_rejects_empty():
    import pytest

    from repro.bench.report import render_bars

    with pytest.raises(ValueError):
        render_bars("C", {})
