"""Pinning the host insertion simulator to the functional tables."""

import numpy as np
import pytest

from repro.bench.insertsim import (
    InsertSim,
    simulate_cuckoo,
    simulate_insertions,
    simulate_quadratic,
)
from repro.core.config import LPConfig, TableKind
from repro.core.tables import CuckooTable, QuadraticTable
from repro.gpu.atomics import AtomicUnit
from repro.gpu.kernel import BlockContext, LaunchConfig
from repro.gpu.memory import GlobalMemory


def functional_stats(table_cls, n_keys, config):
    mem = GlobalMemory(cache_capacity_lines=4096)
    ctx = BlockContext(mem, AtomicUnit(mem),
                       LaunchConfig.linear(n_keys, 32), 0)
    table = table_cls(mem, "t", n_keys, 2, config)
    lanes = np.zeros(2, dtype=np.uint64)
    for key in range(n_keys):
        table.insert(ctx, key, lanes)
    return table.stats


@pytest.mark.parametrize("n_keys", [16, 100, 500])
def test_quadratic_sim_matches_functional_table(n_keys):
    config = LPConfig.naive_quadratic()
    sim = simulate_quadratic(n_keys, config.quad_target_load_factor)
    stats = functional_stats(QuadraticTable, n_keys, config)
    assert sim.collisions == stats.collisions
    assert sim.probes == stats.probes
    assert sim.max_chain == stats.max_chain


@pytest.mark.parametrize("n_keys", [16, 100, 500])
def test_cuckoo_sim_matches_functional_table(n_keys):
    config = LPConfig.naive_cuckoo()
    sim = simulate_cuckoo(n_keys, config.cuckoo_target_load_factor)
    stats = functional_stats(CuckooTable, n_keys, config)
    assert sim.collisions == stats.collisions
    assert sim.probes == stats.probes
    assert sim.rehashes == stats.rehashes


def test_cuckoo_sim_matches_under_rehash_pressure():
    """High load factor forces evictions/rehashes; still must agree."""
    config = LPConfig.naive_cuckoo().with_(cuckoo_target_load_factor=0.5)
    sim = simulate_cuckoo(300, 0.5)
    stats = functional_stats(CuckooTable, 300, config)
    assert sim.collisions == stats.collisions
    assert sim.rehashes == stats.rehashes


def test_perfect_hash_has_zero_collisions():
    assert simulate_quadratic(1000, perfect_hash=True).collisions == 0
    assert simulate_cuckoo(1000, perfect_hash=True).collisions == 0


def test_collisions_scale_with_keys():
    small = simulate_quadratic(1000)
    big = simulate_quadratic(100000)
    assert big.collisions > 10 * small.collisions


def test_simulate_insertions_is_memoized():
    config = LPConfig.naive_quadratic()
    a = simulate_insertions(config, 5000)
    b = simulate_insertions(config, 5000)
    assert a is b


def test_global_array_sim_is_trivial():
    sim = simulate_insertions(LPConfig.paper_best(), 1234)
    assert sim.kind is TableKind.GLOBAL_ARRAY
    assert sim.collisions == 0
    assert sim.capacity == 1234


def test_insert_sim_properties():
    sim = InsertSim(TableKind.QUADRATIC, 100, 256, 150, 50, 0, 5)
    assert sim.load_factor == pytest.approx(100 / 256)
    assert sim.collisions_per_insert == pytest.approx(0.5)
