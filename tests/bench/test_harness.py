"""Unit tests for the analytic overhead harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    dilation_weight,
    estimate,
    geomean_overhead,
    geomean_slowdown,
    lp_update_and_reduction_tally,
    table_space_bytes,
)
from repro.bench.profiles import BANDWIDTH, INST, BenchProfile, PROFILES
from repro.core.config import (
    ChecksumKind,
    LockMode,
    LPConfig,
    ReductionMode,
)
from repro.core.tables import make_table
from repro.gpu.costs import CostModel
from repro.gpu.memory import GlobalMemory


def test_update_tally_matches_functional_charges():
    """The analytic per-store/reduction costs mirror the runtime's."""
    import repro
    from repro.core.runtime import LPRuntime
    from repro.workloads.tmm import TMMWorkload

    device = repro.Device()
    work = TMMWorkload(scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)

    base_dev = repro.Device()
    base_kernel = TMMWorkload(scale="tiny").setup(base_dev)
    base = base_dev.launch(base_kernel)
    lp = device.launch(lp_kernel)

    cfg = kernel.launch_config()
    predicted = lp_update_and_reduction_tally(
        cfg.n_blocks, cfg.threads_per_block,
        stores_per_thread=1.0, config=LPConfig.paper_best(),
    )
    measured_alu = lp.tally.alu_ops - base.tally.alu_ops
    measured_shfl = lp.tally.shuffle_ops - base.tally.shuffle_ops
    assert measured_shfl == predicted.shuffle_ops
    assert measured_alu == pytest.approx(predicted.alu_ops)


def test_table_space_matches_functional_tables():
    model = CostModel()
    for config in (LPConfig.paper_best(), LPConfig.naive_quadratic(),
                   LPConfig.naive_cuckoo()):
        mem = GlobalMemory(cache_capacity_lines=64)
        table = make_table(mem, "t", 100, 2, config, model)
        assert table_space_bytes(config, 100) == table.space_bytes


def test_estimate_lp_never_faster_than_baseline():
    for profile in PROFILES.values():
        for config in (LPConfig.paper_best(), LPConfig.naive_quadratic(),
                       LPConfig.naive_cuckoo()):
            e = estimate(profile, config)
            assert e.overhead >= 0


def test_lock_based_dominates_lock_free():
    for profile in PROFILES.values():
        free = estimate(profile, LPConfig.naive_quadratic())
        lock = estimate(
            profile,
            LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED),
        )
        assert lock.slowdown > free.slowdown


def test_global_array_is_the_cheapest_table():
    for profile in PROFILES.values():
        ga = estimate(profile, LPConfig.paper_best())
        quad = estimate(profile, LPConfig.naive_quadratic())
        assert ga.overhead <= quad.overhead + 1e-9


def test_sequential_reduction_never_cheaper():
    for profile in PROFILES.values():
        shfl = estimate(profile, LPConfig.naive_quadratic())
        noshfl = estimate(
            profile,
            LPConfig.naive_quadratic().with_(
                reduction=ReductionMode.SEQUENTIAL_MEMORY
            ),
        )
        assert noshfl.overhead >= shfl.overhead - 1e-9


def test_estimate_space_overhead():
    e = estimate(PROFILES["tmm"], LPConfig.paper_best())
    # 16384 blocks x 2 lanes x 8 B over 16384x1024 int32 outputs.
    assert e.space_overhead == pytest.approx(
        (16384 * 16) / (16384 * 1024 * 4)
    )


def test_geomean_helpers():
    assert geomean_overhead([0.0, 0.0]) == pytest.approx(0.0)
    assert geomean_slowdown([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean_overhead([1.0, 0.0]) == pytest.approx(2 ** 0.5 - 1)
    with pytest.raises(ValueError):
        geomean_overhead([])


def test_dilation_weight_scales_with_lanes():
    one = dilation_weight(LPConfig(checksums=(ChecksumKind.MODULAR,)))
    two = dilation_weight(LPConfig.paper_best())
    assert one < two == 1.0


def test_baseline_tally_respects_bottleneck():
    model = CostModel()
    for profile in PROFILES.values():
        t = model.time_of(profile.baseline_tally(model))
        if profile.bottleneck == BANDWIDTH:
            assert t.memory_cycles >= t.compute_cycles
        else:
            assert t.compute_cycles >= t.memory_cycles
        assert t.total_cycles == pytest.approx(profile.baseline_cycles,
                                               rel=0.01)


def test_profile_validation():
    with pytest.raises(ValueError):
        BenchProfile("x", 10, 32, 1.0, 4, 1e6, "quantum")
