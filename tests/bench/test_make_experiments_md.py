"""Tests for the EXPERIMENTS.md generator."""

from repro.bench.make_experiments_md import generate, main


def test_generate_contains_every_experiment():
    text = generate()
    from repro.bench.experiments import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        assert f"## `{exp_id}`" in text
    assert "Known deviations" in text
    assert "FAIL" not in text  # every fidelity check passes


def test_main_writes_given_path(tmp_path, capsys):
    out = tmp_path / "X.md"
    main(str(out))
    assert out.exists()
    assert "paper vs. measured" in out.read_text()
    assert str(out) in capsys.readouterr().out
