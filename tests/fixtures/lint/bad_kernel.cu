// Seeded lplint offender: every CUDA front-end rule fires here.
//
//   LP004 - the table declares 4 elements for a 16-block launch
//   LP001 - the accumulation store is not covered by any checksum
//   LP002 - acc[i] = acc[i] + in[i] is not idempotent, yet the default
//           recovery kernel would re-execute the region
//   LP003 - the covered store indexes by threadIdx.x only, so every
//           block writes the same elements
//   LP006 - that store is float data under a parity-only checksum

dim3 grid(16, 1);

#pragma nvm lpcuda_init(tab, 4, 1)
badkernel<<<grid, 64>>>(acc, out, in);

__global__ void badkernel(float *acc, float *out, float *in) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    acc[i] = acc[i] + in[i];
#pragma nvm lpcuda_checksum("^", tab, blockIdx.x)
    out[threadIdx.x] = in[i] * 2.0f;
}
