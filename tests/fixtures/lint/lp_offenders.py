"""Seeded Python-DSL lplint offenders for the persistency race rules.

Each class trips exactly one of the LP008-LP010 rules; the module is
both a *file-mode* lint fixture (CI negative-checks it like
``bad_kernel.cu``) and a *runnable* case source for the crash-state
model checker — ``make_offender_case`` builds a live, LP-instrumented
launch so ``repro.analysis.crashmc`` can confirm the hazards the static
rules claim (or, for LP010, record the bounded-conservative verdict).

Intentional defects — do not "fix" these kernels:

* ``LP008WrapKernel`` folds block identity through ``% 2`` so blocks
  ``b`` and ``b + 2`` write the same elements: validation can never
  settle (each re-execution of one writer invalidates the other).
* ``LP009FeedbackKernel`` stores ``ld(out) + 1``: after a partial
  persist, default re-execution recovery reads already-new elements
  and double-applies the increment.
* ``LP010SharedEscapeKernel`` calls ``syncthreads`` under a
  thread-dependent branch and then persists a shared-memory value.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig


class LP008WrapKernel(Kernel):
    """Blocks b and b+2 write the same 'race_out' elements (no atomics)."""

    name = "lp008-wrap"
    protected_buffers = ("race_out",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_blocks: int = 4, threads: int = 8) -> None:
        self.n_blocks = n_blocks
        self.threads = threads

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_blocks, self.threads)

    def block_output_map(self, block_id):
        base = (block_id % 2) * self.threads
        return {"race_out": base + np.arange(self.threads)}

    def run_block(self, ctx: BlockContext) -> None:
        base = (ctx.block_id % 2) * self.threads
        ctx.st("race_out", base + ctx.tid,
               np.float32(1.0 + ctx.block_id), slots=ctx.tid)


class LP009FeedbackKernel(Kernel):
    """Stores ld('acc_out') + 1 under default re-execution recovery."""

    name = "lp009-feedback"
    protected_buffers = ("acc_out",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_blocks: int = 4, threads: int = 64) -> None:
        self.n_blocks = n_blocks
        self.threads = threads

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_blocks, self.threads)

    def block_output_map(self, block_id):
        base = block_id * self.threads
        return {"acc_out": base + np.arange(self.threads)}

    def run_block(self, ctx: BlockContext) -> None:
        idx = ctx.block_id * self.threads + ctx.tid
        prev = ctx.ld("acc_out", idx)
        ctx.st("acc_out", idx, prev + np.float32(1.0), slots=ctx.tid)


class LP010SharedEscapeKernel(Kernel):
    """Persists a shared value staged across a divergent barrier."""

    name = "lp010-shared-escape"
    protected_buffers = ("esc_out",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_blocks: int = 2, threads: int = 8) -> None:
        self.n_blocks = n_blocks
        self.threads = threads

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_blocks, self.threads)

    def block_output_map(self, block_id):
        base = block_id * self.threads
        return {"esc_out": base + np.arange(self.threads)}

    def run_block(self, ctx: BlockContext) -> None:
        idx = ctx.block_id * self.threads + ctx.tid
        tile = ctx.shared.alloc("tile", (self.threads,), np.float32)
        tile[:] = ctx.ld("esc_in", idx)
        # The branch condition is thread-derived: on real hardware only
        # part of the block reaches this barrier. (The warp-synchronous
        # simulator executes it uniformly, which is exactly why this
        # hazard needs a static rule.)
        if int(ctx.tid[0]) == 0:
            ctx.syncthreads()
        ctx.st("esc_out", idx, tile * np.float32(2.0), slots=ctx.tid)


# ---------------------------------------------------------------------------
# Live-case construction for the model checker
# ---------------------------------------------------------------------------

OFFENDERS = ("lp008-wrap", "lp009-feedback", "lp010-shared-escape")


def make_offender_case(name: str, shadow=None, engine: str = "serial",
                       cache_lines: int = 4, jobs=None):
    """Build ``(device, lp_kernel)`` for one offender, crashmc-style."""
    import repro

    device = repro.Device(cache_capacity_lines=cache_lines,
                          engine=repro.make_engine(engine, jobs=jobs),
                          shadow=shadow)
    if name == "lp008-wrap":
        kernel = LP008WrapKernel()
        device.alloc("race_out", (2 * kernel.threads,), np.float32,
                     persistent=True)
    elif name == "lp009-feedback":
        kernel = LP009FeedbackKernel()
        device.alloc("acc_out", (kernel.n_blocks * kernel.threads,),
                     np.float32, persistent=True)
    elif name == "lp010-shared-escape":
        kernel = LP010SharedEscapeKernel()
        n = 2 * 8
        rng = np.random.default_rng(7)
        device.alloc("esc_in", (n,), np.float32, persistent=True,
                     init=rng.random(n, dtype=np.float32))
        device.alloc("esc_out", (n,), np.float32, persistent=True)
    else:
        raise ValueError(f"unknown offender {name!r}")
    lp_kernel = repro.LPRuntime(device, repro.LPConfig.paper_best()).instrument(
        kernel
    )
    return device, lp_kernel
