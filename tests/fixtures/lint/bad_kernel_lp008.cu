// Seeded lplint offender for LP008: the covered store folds block
// identity through "% 2" while the launch runs 8 blocks, so blocks b
// and b+2 write the same NVM lines without atomics. The kernel is
// otherwise clean - the store is covered, idempotent, and uses a
// modular checksum - so LP008 is the only error this file produces.

dim3 grid(8, 1);

#pragma nvm lpcuda_init(tab, 8, 1)
wrapkernel<<<grid, 16>>>(out, in);

__global__ void wrapkernel(int *out, int *in) {
    int lane = blockIdx.x % 2;
    int i = lane * blockDim.x + threadIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = in[threadIdx.x] * 2;
}
