"""Telemetry sampler: time series, JSONL stream, Prometheus export."""

import json
import time

from repro.obs import Recorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import load_schema, validate
from repro.obs.telemetry import (
    TelemetrySampler,
    lint_prometheus,
    read_telemetry_jsonl,
    render_sample,
    to_prometheus,
)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_samples_capture_counters_rates_and_gauges():
    reg = MetricsRegistry()
    clock = FakeClock()
    sampler = TelemetrySampler(reg, clock=clock)

    reg.inc("nvm.writeback.lines", 10, buffer="y")
    first = sampler.sample()
    assert first.dt is None and first.rates == {}
    assert first.counters == {"nvm.writeback.lines{buffer=y}": 10.0}

    clock.advance(2.0)
    reg.inc("nvm.writeback.lines", 30, buffer="y")
    reg.set_gauge("engine.shm.segments", 3)
    second = sampler.sample()
    assert second.dt == 2.0
    assert second.rates == {"nvm.writeback.lines{buffer=y}": 15.0}
    assert second.gauges == {"engine.shm.segments": 3.0}

    # unchanged counters produce no rate entry
    clock.advance(1.0)
    third = sampler.sample()
    assert third.rates == {}

    assert sampler.series("counters", "nvm.writeback.lines{buffer=y}") \
        == [(0.0, 10.0), (2.0, 40.0), (3.0, 40.0)]


def test_ring_buffer_caps_history():
    reg = MetricsRegistry()
    clock = FakeClock()
    sampler = TelemetrySampler(reg, capacity=4, clock=clock)
    for i in range(10):
        reg.inc("a")
        clock.advance(1.0)
        sampler.sample()
    assert len(sampler.samples) == 4
    assert sampler.latest().seq == 9
    assert sampler.samples[0].seq == 6


def test_gauge_providers_run_before_each_sample():
    reg = MetricsRegistry()
    calls = []

    def provider(metrics):
        calls.append(True)
        metrics.set_gauge("walked.gauge", len(calls))

    sampler = TelemetrySampler(reg, gauge_providers=[provider],
                               clock=FakeClock())
    sampler.sample()
    sampler.sample()
    assert len(calls) == 2
    assert sampler.latest().gauges["walked.gauge"] == 2.0


def test_jsonl_stream_round_trips_and_validates(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    reg = MetricsRegistry()
    clock = FakeClock()
    sampler = TelemetrySampler(reg, jsonl_path=path, clock=clock)
    reg.inc("harness.rounds", 2, phase="launch")
    reg.observe("time.launch.ms", 4.0)
    sampler.sample()
    clock.advance(1.0)
    reg.inc("harness.rounds", 1, phase="launch")
    sampler.sample()
    sampler.close()

    docs = read_telemetry_jsonl(path)
    assert [d["seq"] for d in docs] == [0, 1]
    schema = load_schema("telemetry")
    for doc in docs:
        validate(doc, schema)
    assert docs[1]["rates"] == {"harness.rounds{phase=launch}": 1.0}


def test_jsonl_reader_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    reg = MetricsRegistry()
    sampler = TelemetrySampler(reg, jsonl_path=path, clock=FakeClock())
    reg.inc("a")
    sampler.sample()
    sampler.close()
    # simulate a SIGKILL mid-write of the next sample
    with open(path, "a") as fh:
        fh.write('{"seq": 1, "t": 2.0, "coun')
    docs = read_telemetry_jsonl(path)
    assert len(docs) == 1 and docs[0]["seq"] == 0


def test_background_thread_samples_and_stops():
    reg = MetricsRegistry()
    sampler = TelemetrySampler(reg, interval=0.01)
    reg.inc("bg.counter", 5)
    with sampler:
        deadline = time.monotonic() + 2.0
        while not sampler.samples and time.monotonic() < deadline:
            time.sleep(0.005)
    assert sampler.samples, "background thread never sampled"
    # stop() takes a final sample and the thread is gone
    n = len(sampler.samples)
    time.sleep(0.05)
    assert len(sampler.samples) == n
    sampler.close()


def test_sampler_retries_racing_snapshot():
    class FlakyRegistry(MetricsRegistry):
        def __init__(self):
            super().__init__()
            self.failures = 2

        def snapshot(self):
            if self.failures:
                self.failures -= 1
                raise RuntimeError("dictionary changed size during "
                                   "iteration")
            return super().snapshot()

    reg = FlakyRegistry()
    reg.inc("a", 3)
    sampler = TelemetrySampler(reg, clock=FakeClock())
    assert sampler.sample().counters == {"a": 3.0}


def test_recorder_carries_optional_sampler():
    rec = Recorder(metrics=MetricsRegistry())
    assert rec.sampler is None
    rec.sampler = TelemetrySampler(rec.metrics, clock=FakeClock())
    rec.metrics.inc("x")
    rec.sampler.sample()
    assert rec.sampler.latest().counters == {"x": 1.0}


# ---------------------------------------------------------------------------
# Prometheus text exposition.


def _sample_snapshot():
    reg = MetricsRegistry()
    reg.inc("nvm.writeback.lines", 12, buffer="spmv_y", reason="eviction")
    reg.inc("device.launches", 2, mode="NORMAL")
    reg.set_gauge("engine.shm.segment_bytes", 4096)
    for v in (1.0, 2.0, 3.0, 10.0):
        reg.observe("time.launch.ms", v)
    return reg.snapshot()


def test_prometheus_rendering_families():
    text = to_prometheus(_sample_snapshot())
    assert "# TYPE repro_nvm_writeback_lines_total counter" in text
    assert ('repro_nvm_writeback_lines_total'
            '{buffer="spmv_y",reason="eviction"} 12.0') in text
    assert "# TYPE repro_engine_shm_segment_bytes gauge" in text
    assert "# TYPE repro_time_launch_ms summary" in text
    assert 'repro_time_launch_ms{quantile="0.5"}' in text
    assert "repro_time_launch_ms_sum 16.0" in text
    assert "repro_time_launch_ms_count 4" in text


def test_prometheus_lint_accepts_own_output():
    assert lint_prometheus(to_prometheus(_sample_snapshot())) == []
    # a TelemetrySample dict renders and lints too
    reg = MetricsRegistry()
    sampler = TelemetrySampler(reg, clock=FakeClock())
    reg.inc("a.b", 1)
    doc = sampler.sample().to_dict()
    assert lint_prometheus(to_prometheus(doc)) == []


def test_prometheus_lint_catches_malformations():
    assert lint_prometheus("repro_orphan_total 1\n")
    assert lint_prometheus("# TYPE repro_x counter\n"
                           "repro_x_total not-a-number\n")
    assert lint_prometheus("# TYPE repro_x bogus-kind\n")
    bad_quantile = ("# TYPE repro_h summary\n"
                    'repro_h{quantile="1.5"} 3.0\n')
    assert lint_prometheus(bad_quantile)
    dup = "# TYPE repro_x counter\n# TYPE repro_x counter\n"
    assert lint_prometheus(dup)


def test_prometheus_sanitizes_names_and_labels():
    snap = {"counters": {"weird.name-with+chars{label-x=v.1}": 1.0},
            "gauges": {}, "histograms": {}}
    text = to_prometheus(snap)
    assert "repro_weird_name_with_chars_total" in text
    assert 'label_x="v.1"' in text
    assert lint_prometheus(text) == []


def test_render_sample_is_humane():
    reg = MetricsRegistry()
    clock = FakeClock()
    sampler = TelemetrySampler(reg, clock=clock)
    reg.inc("a.rate", 10)
    sampler.sample()
    clock.advance(1.0)
    reg.inc("a.rate", 5)
    reg.set_gauge("g.x", 2.5)
    reg.observe("h.ms", 7.0)
    doc = sampler.sample().to_dict()
    text = render_sample(doc)
    assert "a.rate" in text and "g.x" in text and "h.ms" in text
    assert "p95" in text
    assert json.loads(json.dumps(doc)) == doc
