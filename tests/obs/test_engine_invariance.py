"""Metrics engine invariance: commutative counters are bit-identical.

The launch engines already guarantee bit-identical memory, write stats
and table contents (``tests/gpu/test_engines.py``); the flight
recorder extends that contract to metrics. Every *commutative* counter
— write-back lines, table probes/collisions, completed blocks — must
be bit-identical whichever engine ran the launch. The exemptions are
pinned in :data:`repro.obs.metrics.ORDER_SENSITIVE_PREFIXES` (wall
clock, scheduling shape) plus the ``engine`` identity label, and
:func:`repro.obs.metrics.commutative_view` is the enforced projection.
"""

import json

import pytest

import repro
from repro import obs
from repro.obs.metrics import ORDER_SENSITIVE_PREFIXES, commutative_view
from repro.workloads.spmv import SPMVWorkload

ENGINES = ["serial", "parallel", "batched"]


def record_spmv(engine, config, crash_after=None):
    """One launch (+ recovery when crashed) under a fresh registry."""
    with obs.recording(trace=False, metrics=True) as rec:
        device = repro.Device(cache_capacity_lines=64,
                              block_order="shuffled", seed=7,
                              engine=repro.make_engine(engine, jobs=2)
                              if engine == "parallel"
                              else repro.make_engine(engine))
        work = SPMVWorkload(scale="small", seed=3)
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(device, config).instrument(kernel)
        crash_plan = None
        if crash_after is not None:
            crash_plan = repro.CrashPlan(after_blocks=crash_after,
                                         persist_fraction=0.3, seed=5)
        device.launch(lp_kernel, crash_plan=crash_plan)
        if crash_after is not None:
            repro.RecoveryManager(device, lp_kernel).recover()
        return rec.metrics_snapshot()


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "serial"])
def test_clean_launch_commutative_counters_match(engine):
    config = repro.LPConfig.paper_best()
    ref = commutative_view(record_spmv("serial", config))
    got = commutative_view(record_spmv(engine, config))
    assert json.dumps(ref) == json.dumps(got)


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "serial"])
def test_crash_recovery_commutative_counters_match(engine):
    config = repro.LPConfig.paper_best()
    ref = commutative_view(record_spmv("serial", config, crash_after=4))
    got = commutative_view(record_spmv(engine, config, crash_after=4))
    assert json.dumps(ref) == json.dumps(got)


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "serial"])
def test_hash_table_counters_match(engine):
    """Table probe/collision counters replay identically (block order)."""
    config = repro.LPConfig.naive_quadratic()
    ref = commutative_view(record_spmv("serial", config))
    got = commutative_view(record_spmv(engine, config))
    assert json.dumps(ref) == json.dumps(got)
    assert any(k.startswith("table.insert.") for k in ref)


def test_invariant_series_actually_recorded():
    """The projection is not vacuous: core counters are present."""
    view = commutative_view(
        record_spmv("serial", repro.LPConfig.paper_best(), crash_after=4))
    prefixes = {k.split("{")[0] for k in view}
    assert "nvm.writeback.lines" in prefixes
    assert "engine.blocks.completed" in prefixes
    assert "lp.validate.blocks" in prefixes
    assert "lp.recover.blocks" in prefixes
    assert "nvm.crash.lost_lines" in prefixes


def test_exemptions_are_documented_and_narrow():
    """Only wall clock and scheduling shape may differ across engines.

    This pins the exemption list: adding a prefix here must come with a
    justification in docs/observability.md.
    """
    assert ORDER_SENSITIVE_PREFIXES == (
        "time.", "engine.scheduling.", "engine.shm.", "engine.slots.",
        "service.window.ms")


def test_scheduling_series_differ_but_are_exempt():
    """Parallel/batched record scheduling counters serial never emits —
    the projection must be what hides them, not luck."""
    config = repro.LPConfig.paper_best()
    raw_serial = record_spmv("serial", config)["counters"]
    raw_batched = record_spmv("batched", config)["counters"]
    serial_sched = {k for k in raw_serial
                    if k.startswith("engine.scheduling.")}
    batched_sched = {k for k in raw_batched
                     if k.startswith("engine.scheduling.")}
    assert not serial_sched
    assert batched_sched, "batched engine must report its group count"
