"""Tracer semantics: null-sink zero cost, recording, Chrome export."""

import json

import pytest

from repro.obs import load_schema, validate
from repro.obs.trace import (
    TRACE_PID,
    TRACKS,
    MemorySink,
    NullSink,
    Tracer,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import _NULL_SPAN


# ---------------------------------------------------------------------------
# Disabled (null sink) behaviour — the zero-cost contract.


def test_default_tracer_is_disabled():
    tracer = Tracer()
    assert isinstance(tracer.sink, NullSink)
    assert not tracer.enabled


def test_disabled_span_is_the_shared_null_span():
    tracer = Tracer()
    span = tracer.span("device.launch", cat="device", kernel="k")
    assert span is _NULL_SPAN
    with span:
        pass  # no-op, no state


def test_disabled_instant_and_counter_emit_nothing():
    tracer = Tracer()
    tracer.instant("nvm.crash", cat="nvm", lost=3)
    tracer.counter("cache.lines", dirty=7)
    # NullSink has no storage at all; nothing to assert beyond no error.
    assert not tracer.enabled


def test_export_refuses_null_sink():
    with pytest.raises(ValueError, match="MemorySink"):
        export_chrome_trace(Tracer())


# ---------------------------------------------------------------------------
# Recording behaviour.


def test_span_records_complete_event_with_duration():
    tracer = Tracer(MemorySink())
    with tracer.span("lp.phase.validate", cat="lp", track="lp", blocks=4):
        pass
    (event,) = tracer.sink.events
    assert event.ph == "X"
    assert event.name == "lp.phase.validate"
    assert event.tid == TRACKS["lp"]
    assert event.dur is not None and event.dur >= 0
    assert event.args == {"blocks": 4}


def test_span_tags_exceptions():
    tracer = Tracer(MemorySink())
    with pytest.raises(RuntimeError):
        with tracer.span("device.launch", cat="device", track="device"):
            raise RuntimeError("boom")
    (event,) = tracer.sink.events
    assert event.args["error"] == "RuntimeError"


def test_instant_is_thread_scoped_in_json():
    tracer = Tracer(MemorySink())
    tracer.instant("nvm.crash", cat="nvm", track="nvm", lost_lines=9)
    doc = tracer.sink.events[0].to_json()
    assert doc["ph"] == "i"
    assert doc["s"] == "t"
    assert doc["args"] == {"lost_lines": 9}


def test_unknown_tracks_get_stable_fresh_tids():
    tracer = Tracer(MemorySink())
    tid_a = tracer._tid("custom-a")
    tid_b = tracer._tid("custom-b")
    assert tid_a == len(TRACKS)
    assert tid_b == len(TRACKS) + 1
    assert tracer._tid("custom-a") == tid_a  # stable on reuse
    assert "custom-a" in tracer.all_tracks()


# ---------------------------------------------------------------------------
# Chrome-trace export.


def make_recorded_tracer():
    tracer = Tracer(MemorySink())
    with tracer.span("device.launch", cat="device", track="device",
                     kernel="spmv"):
        tracer.instant("nvm.crash", cat="nvm", track="nvm", lost_lines=2)
    tracer.counter("cache.dirty", track="nvm", lines=5)
    return tracer


def test_export_matches_committed_schema():
    doc = export_chrome_trace(make_recorded_tracer(),
                              extra={"workload": "spmv"})
    validate(doc, load_schema("chrome_trace"))
    assert doc["otherData"] == {"workload": "spmv"}


def test_export_names_process_and_tracks():
    doc = export_chrome_trace(make_recorded_tracer())
    meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    names = {ev["args"]["name"] for ev in meta}
    assert "repro LP runtime" in names
    assert set(TRACKS) <= names
    assert all(ev["pid"] == TRACE_PID for ev in doc["traceEvents"])


def test_write_chrome_trace_roundtrips(tmp_path):
    path = write_chrome_trace(tmp_path / "run.trace.json",
                              make_recorded_tracer())
    doc = json.loads(path.read_text())
    validate(doc, load_schema("chrome_trace"))
    phases = {ev["ph"] for ev in doc["traceEvents"]}
    assert {"M", "X", "i", "C"} == phases
