"""CLI observability surface: ``run --json/--trace/--metrics``, ``profile``."""

import json

from repro.__main__ import main
from repro.obs import load_schema, validate


def test_run_json_is_structured(capsys):
    assert main(["run", "spmv", "--scale", "tiny", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "spmv"
    assert doc["verified"] is True
    launch = doc["launch"]
    assert launch["n_completed"] == launch["n_blocks"]
    assert not launch["crashed"]
    assert launch["tally"]["global_write_bytes"] > 0
    assert doc["write_stats"]["total_lines"] >= 0
    assert "by_reason" in doc["write_stats"]
    assert doc["table_stats"]["inserts"] == launch["n_blocks"]
    assert doc["metrics"]["counters"]  # --json implies a live registry
    assert "recovery" not in doc


def test_run_json_with_crash_includes_forensics(capsys):
    assert main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["launch"]["crashed"]
    assert doc["launch"]["crash"]["lost_lines"] >= 0
    recovery = doc["recovery"]
    assert recovery["recovered_blocks"] > 0
    forensics = recovery["forensics"]
    assert forensics is not None
    validate(forensics, load_schema("forensics"))
    assert forensics["n_failed"] == len(forensics["failures"])


def test_run_writes_schema_valid_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    metrics = tmp_path / "run.metrics.json"
    assert main(["run", "spmv", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "trace written to" in out
    assert "metrics written to" in out

    doc = json.loads(trace.read_text())
    validate(doc, load_schema("chrome_trace"))
    names = {ev["name"] for ev in doc["traceEvents"]}
    # One loadable timeline: launch, crash, validate, recover all there.
    assert {"device.launch", "nvm.crash", "lp.phase.validate",
            "lp.phase.recover", "forensics.block"} <= names
    assert doc["otherData"]["workload"] == "spmv"

    snap = json.loads(metrics.read_text())
    assert any(k.startswith("nvm.writeback.lines")
               for k in snap["counters"])
    assert any(k.startswith("lp.recover.blocks")
               for k in snap["counters"])


def test_run_crash_prints_forensics(capsys):
    assert main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8"]) == 0
    out = capsys.readouterr().out
    assert "forensics:" in out
    assert "blocks failed validation" in out


def test_profile_prints_phase_table(capsys):
    assert main(["profile", "spmv", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    for phase in ("launch", "drain", "validate", "verify", "total"):
        assert phase in out
    assert "NVM lines" in out


def test_profile_json_breakdown(capsys):
    assert main(["profile", "spmv", "--scale", "tiny", "--crash-after",
                 "4", "--cache-lines", "8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["crashed"]
    assert doc["validation_failed_blocks"] == 0  # post-recovery check
    names = [row["phase"] for row in doc["phases"]]
    assert names == ["launch", "recover", "drain", "validate", "verify"]
    launch = doc["phases"][0]
    assert launch["cycles"] > 0
    assert launch["nvm_lines"] >= 0


def test_profile_writes_trace_artifact(tmp_path, capsys):
    trace = tmp_path / "profile.trace.json"
    assert main(["profile", "spmv", "--scale", "tiny",
                 "--trace", str(trace)]) == 0
    doc = json.loads(trace.read_text())
    validate(doc, load_schema("chrome_trace"))
    assert doc["otherData"]["command"] == "profile"


def test_run_without_flags_installs_no_recorder(capsys):
    """Plain runs stay on the null recorder (the zero-cost default)."""
    from repro import obs

    assert obs.current() is obs.NULL_RECORDER
    assert main(["run", "spmv", "--scale", "tiny"]) == 0
    assert obs.current() is obs.NULL_RECORDER


# ---------------------------------------------------------------------------
# run --telemetry / --prom
# ---------------------------------------------------------------------------


def test_run_telemetry_stream_and_prom_export(tmp_path, capsys):
    from repro import obs
    from repro.obs import lint_prometheus, read_telemetry_jsonl

    stream = tmp_path / "telemetry.jsonl"
    prom = tmp_path / "metrics.prom"
    assert main(["run", "spmv", "--scale", "tiny",
                 "--telemetry", str(stream), "--prom", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "telemetry stream written to" in out
    assert "prometheus exposition written to" in out
    # the sampler thread was stopped and the recorder restored
    assert obs.current() is obs.NULL_RECORDER

    docs = read_telemetry_jsonl(stream)
    assert docs, "the final flush guarantees at least one sample"
    schema = load_schema("telemetry")
    for doc in docs:
        validate(doc, schema)
    final = docs[-1]
    assert any(k.startswith("device.launches") for k in final["counters"])
    assert any(k.startswith("engine.blocks.completed")
               for k in final["counters"])
    # the shm gauge provider ran before each sample
    assert "engine.shm.segments" in final["gauges"]

    text = prom.read_text()
    assert "repro_device_launches_total" in text
    assert lint_prometheus(text) == []


# ---------------------------------------------------------------------------
# repro inspect
# ---------------------------------------------------------------------------


def _armed_heap(path):
    import numpy as np

    from repro.gpu.memory import GlobalMemory
    from repro.nvm.mapped import MappedShadow

    heap = MappedShadow.create(path)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    buf = mem.alloc("x", (300,), np.float64)
    mem.write(buf, np.arange(300), np.arange(300, dtype=np.float64))
    mem.drain()
    heap.arm([0, 1, 5])
    heap.sync()
    return heap


def test_cli_inspect_human_and_json(tmp_path, capsys):
    path = tmp_path / "heap.lpnv"
    _armed_heap(path)

    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "journal: EXACT" in out
    assert "torn x: 3 line(s)" in out

    assert main(["inspect", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    validate(doc, load_schema("heap_inspect"))
    assert doc["torn"]["armed"] is True
    assert doc["torn"]["by_buffer"] == {"x": 3}

    # inspection never disarmed the journal
    assert main(["inspect", str(path)]) == 0
    assert "journal: EXACT" in capsys.readouterr().out


def test_cli_inspect_diff_exit_codes(tmp_path, capsys):
    from repro.nvm.mapped import MappedShadow

    path = tmp_path / "heap.lpnv"
    _armed_heap(path).close()
    copy = tmp_path / "copy.lpnv"
    copy.write_bytes(path.read_bytes())

    assert main(["inspect", str(path), "--diff", str(copy)]) == 0
    assert "identical" in capsys.readouterr().out

    mutated = MappedShadow.open(copy)
    mutated.view("x")[0] = -1.0
    mutated.sync()
    mutated.close()
    assert main(["inspect", str(path), "--diff", str(copy),
                 "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    validate(doc, load_schema("heap_inspect"))
    assert doc["identical"] is False


def test_cli_inspect_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.lpnv"
    bad.write_bytes(b"NOTAHEAP" * 4)
    assert main(["inspect", str(bad)]) == 2
    assert capsys.readouterr().err


def _armed_sharded_heap(path):
    import numpy as np

    from repro.gpu.memory import GlobalMemory
    from repro.nvm.sharded import ShardedShadow

    heap = ShardedShadow.create(path, n_shards=4)
    mem = GlobalMemory(cache_capacity_lines=4, shadow=heap)
    buf = mem.alloc("x", (300,), np.float64)
    mem.write(buf, np.arange(300), np.arange(300, dtype=np.float64))
    mem.drain()
    first, _ = heap.entries["x"].line_span(heap.line_size)
    heap.arm([first, first + 1])
    heap.sync()
    return heap


def test_cli_inspect_sharded_manifest(tmp_path, capsys):
    path = tmp_path / "heap.lpnv"
    victim = _armed_sharded_heap(path).shard_of_buffer("x")

    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sharded heap" in out
    assert "4 shard(s)" in out

    assert main(["inspect", str(path), "--json", "--shards", "4"]) == 0
    doc = json.loads(capsys.readouterr().out)
    validate(doc, load_schema("heap_inspect"))
    assert doc["n_shards"] == 4
    assert doc["armed_shards"] == [victim]
    assert doc["torn_by_buffer"] == {"x": 2}
    assert len(doc["shards"]) == 4

    # A single shard file is itself a valid v1 heap for the inspector.
    assert main(["inspect", str(tmp_path / f"heap.lpnv.shard{victim}"),
                 "--json"]) == 0
    shard_doc = json.loads(capsys.readouterr().out)
    validate(shard_doc, load_schema("heap_inspect"))
    assert shard_doc["journal"]["armed"] is True


def test_cli_inspect_shards_expectation_mismatch(tmp_path, capsys):
    sharded = tmp_path / "heap.lpnv"
    _armed_sharded_heap(sharded)
    assert main(["inspect", str(sharded), "--shards", "2"]) == 2
    assert "expected a 2-shard manifest" in capsys.readouterr().err

    from repro.nvm.mapped import MappedShadow

    plain = tmp_path / "plain.lpnv"
    MappedShadow.create(plain).close()
    assert main(["inspect", str(plain), "--shards", "4"]) == 2
    assert capsys.readouterr().err


def test_cli_inspect_sharded_diff_and_mixed_kinds(tmp_path, capsys):
    path = tmp_path / "heap.lpnv"
    _armed_sharded_heap(path).close()
    copy = tmp_path / "copy.lpnv"
    copy.write_bytes(path.read_bytes())
    for k in range(4):
        (tmp_path / f"copy.lpnv.shard{k}").write_bytes(
            (tmp_path / f"heap.lpnv.shard{k}").read_bytes())

    assert main(["inspect", str(path), "--diff", str(copy),
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    validate(doc, load_schema("heap_inspect"))
    assert doc["identical"] is True

    # Sharded vs plain shard file is a type error, not a diff.
    assert main(["inspect", str(path), "--diff",
                 str(tmp_path / "heap.lpnv.shard0")]) == 2
    assert "cannot diff" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro watch
# ---------------------------------------------------------------------------


def test_cli_watch_once_renders_latest_sample(tmp_path, capsys):
    from repro.obs import MetricsRegistry, TelemetrySampler

    clock_t = [100.0]
    stream = tmp_path / "telemetry.jsonl"
    reg = MetricsRegistry()
    sampler = TelemetrySampler(reg, jsonl_path=stream,
                               clock=lambda: clock_t[0])
    reg.inc("harness.rounds", 2, phase="launch")
    sampler.sample()
    clock_t[0] += 1.0
    reg.inc("harness.rounds", 3, phase="launch")
    reg.set_gauge("engine.shm.segments", 1)
    sampler.sample()
    sampler.close()

    assert main(["watch", str(stream), "--once"]) == 0
    out = capsys.readouterr().out
    assert "harness.rounds" in out
    assert "engine.shm.segments" in out


def test_cli_watch_empty_stream_fails(tmp_path, capsys):
    stream = tmp_path / "telemetry.jsonl"
    stream.write_text("")
    assert main(["watch", str(stream), "--once"]) == 1
    assert "no samples" in capsys.readouterr().err
