"""CLI observability surface: ``run --json/--trace/--metrics``, ``profile``."""

import json

from repro.__main__ import main
from repro.obs import load_schema, validate


def test_run_json_is_structured(capsys):
    assert main(["run", "spmv", "--scale", "tiny", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "spmv"
    assert doc["verified"] is True
    launch = doc["launch"]
    assert launch["n_completed"] == launch["n_blocks"]
    assert not launch["crashed"]
    assert launch["tally"]["global_write_bytes"] > 0
    assert doc["write_stats"]["total_lines"] >= 0
    assert "by_reason" in doc["write_stats"]
    assert doc["table_stats"]["inserts"] == launch["n_blocks"]
    assert doc["metrics"]["counters"]  # --json implies a live registry
    assert "recovery" not in doc


def test_run_json_with_crash_includes_forensics(capsys):
    assert main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["launch"]["crashed"]
    assert doc["launch"]["crash"]["lost_lines"] >= 0
    recovery = doc["recovery"]
    assert recovery["recovered_blocks"] > 0
    forensics = recovery["forensics"]
    assert forensics is not None
    validate(forensics, load_schema("forensics"))
    assert forensics["n_failed"] == len(forensics["failures"])


def test_run_writes_schema_valid_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    metrics = tmp_path / "run.metrics.json"
    assert main(["run", "spmv", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "trace written to" in out
    assert "metrics written to" in out

    doc = json.loads(trace.read_text())
    validate(doc, load_schema("chrome_trace"))
    names = {ev["name"] for ev in doc["traceEvents"]}
    # One loadable timeline: launch, crash, validate, recover all there.
    assert {"device.launch", "nvm.crash", "lp.phase.validate",
            "lp.phase.recover", "forensics.block"} <= names
    assert doc["otherData"]["workload"] == "spmv"

    snap = json.loads(metrics.read_text())
    assert any(k.startswith("nvm.writeback.lines")
               for k in snap["counters"])
    assert any(k.startswith("lp.recover.blocks")
               for k in snap["counters"])


def test_run_crash_prints_forensics(capsys):
    assert main(["run", "tmm", "--scale", "tiny", "--crash-after", "4",
                 "--cache-lines", "8"]) == 0
    out = capsys.readouterr().out
    assert "forensics:" in out
    assert "blocks failed validation" in out


def test_profile_prints_phase_table(capsys):
    assert main(["profile", "spmv", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    for phase in ("launch", "drain", "validate", "verify", "total"):
        assert phase in out
    assert "NVM lines" in out


def test_profile_json_breakdown(capsys):
    assert main(["profile", "spmv", "--scale", "tiny", "--crash-after",
                 "4", "--cache-lines", "8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["crashed"]
    assert doc["validation_failed_blocks"] == 0  # post-recovery check
    names = [row["phase"] for row in doc["phases"]]
    assert names == ["launch", "recover", "drain", "validate", "verify"]
    launch = doc["phases"][0]
    assert launch["cycles"] > 0
    assert launch["nvm_lines"] >= 0


def test_profile_writes_trace_artifact(tmp_path, capsys):
    trace = tmp_path / "profile.trace.json"
    assert main(["profile", "spmv", "--scale", "tiny",
                 "--trace", str(trace)]) == 0
    doc = json.loads(trace.read_text())
    validate(doc, load_schema("chrome_trace"))
    assert doc["otherData"]["command"] == "profile"


def test_run_without_flags_installs_no_recorder(capsys):
    """Plain runs stay on the null recorder (the zero-cost default)."""
    from repro import obs

    assert obs.current() is obs.NULL_RECORDER
    assert main(["run", "spmv", "--scale", "tiny"]) == 0
    assert obs.current() is obs.NULL_RECORDER
