"""Metrics registry: naming, snapshots, the commutative projection."""

import json

from repro.obs.metrics import (
    MetricsRegistry,
    NullMetrics,
    commutative_view,
    diff_counters,
    format_name,
)


def test_format_name_sorts_labels():
    assert format_name("nvm.writeback.lines",
                       {"reason": "eviction", "buffer": "y"}) \
        == "nvm.writeback.lines{buffer=y,reason=eviction}"
    assert format_name("device.launches", {}) == "device.launches"


def test_counters_accumulate_per_series():
    reg = MetricsRegistry()
    reg.inc("table.insert.count", table="cuckoo")
    reg.inc("table.insert.count", 2, table="cuckoo")
    reg.inc("table.insert.count", table="quadratic")
    assert reg.value("table.insert.count", table="cuckoo") == 3.0
    assert reg.value("table.insert.count", table="quadratic") == 1.0
    assert reg.value("table.insert.count", table="global_array") == 0.0


def test_snapshot_is_sorted_and_deterministic():
    def record(reg):
        reg.inc("b.second")
        reg.inc("a.first", 4)
        reg.set_gauge("cache.dirty", 7, buffer="y")
        reg.observe("time.launch.ms", 1.5)
        reg.observe("time.launch.ms", 2.5)

    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    record(reg_a)
    record(reg_b)
    snap = reg_a.snapshot()
    assert json.dumps(snap) == json.dumps(reg_b.snapshot())
    assert list(snap["counters"]) == ["a.first", "b.second"]
    hist = snap["histograms"]["time.launch.ms"]
    assert hist == {"count": 2, "sum": 4.0, "min": 1.5, "max": 2.5,
                    "mean": 2.0}


def test_null_metrics_drops_everything():
    reg = NullMetrics()
    reg.inc("x")
    reg.set_gauge("y", 1)
    reg.observe("z", 2)
    assert not reg.active
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


# ---------------------------------------------------------------------------
# The engine-invariant projection.


def test_commutative_view_drops_order_sensitive_series():
    reg = MetricsRegistry()
    reg.inc("nvm.writeback.lines", 5, buffer="y", reason="eviction")
    reg.inc("time.launch.us", 120)
    reg.inc("engine.scheduling.chunks", 4, engine="parallel")
    view = commutative_view(reg.snapshot())
    assert view == {
        "nvm.writeback.lines{buffer=y,reason=eviction}": 5.0,
    }


def test_commutative_view_normalizes_engine_label():
    serial, batched = MetricsRegistry(), MetricsRegistry()
    serial.inc("engine.blocks.completed", 16, engine="serial")
    batched.inc("engine.blocks.completed", 16, engine="batched")
    assert commutative_view(serial.snapshot()) \
        == commutative_view(batched.snapshot()) \
        == {"engine.blocks.completed{engine=*}": 16.0}


def test_commutative_view_excludes_gauges_and_histograms():
    reg = MetricsRegistry()
    reg.set_gauge("cache.dirty", 9)
    reg.observe("time.launch.ms", 3.0)
    assert commutative_view(reg.snapshot()) == {}


def test_diff_counters():
    reg = MetricsRegistry()
    reg.inc("a", 2)
    before = reg.snapshot()
    reg.inc("a", 3)
    reg.inc("b", 1)
    assert diff_counters(before, reg.snapshot()) == {"a": 3.0, "b": 1.0}
    assert diff_counters(reg.snapshot(), reg.snapshot()) == {}
