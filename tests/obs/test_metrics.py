"""Metrics registry: naming, snapshots, the commutative projection."""

import json

from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
    commutative_view,
    diff_counters,
    format_name,
)


def test_format_name_sorts_labels():
    assert format_name("nvm.writeback.lines",
                       {"reason": "eviction", "buffer": "y"}) \
        == "nvm.writeback.lines{buffer=y,reason=eviction}"
    assert format_name("device.launches", {}) == "device.launches"


def test_counters_accumulate_per_series():
    reg = MetricsRegistry()
    reg.inc("table.insert.count", table="cuckoo")
    reg.inc("table.insert.count", 2, table="cuckoo")
    reg.inc("table.insert.count", table="quadratic")
    assert reg.value("table.insert.count", table="cuckoo") == 3.0
    assert reg.value("table.insert.count", table="quadratic") == 1.0
    assert reg.value("table.insert.count", table="global_array") == 0.0


def test_snapshot_is_sorted_and_deterministic():
    def record(reg):
        reg.inc("b.second")
        reg.inc("a.first", 4)
        reg.set_gauge("cache.dirty", 7, buffer="y")
        reg.observe("time.launch.ms", 1.5)
        reg.observe("time.launch.ms", 2.5)

    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    record(reg_a)
    record(reg_b)
    snap = reg_a.snapshot()
    assert json.dumps(snap) == json.dumps(reg_b.snapshot())
    assert list(snap["counters"]) == ["a.first", "b.second"]
    hist = snap["histograms"]["time.launch.ms"]
    assert {k: hist[k] for k in ("count", "sum", "min", "max", "mean")} \
        == {"count": 2, "sum": 4.0, "min": 1.5, "max": 2.5, "mean": 2.0}
    assert set(hist) == {"count", "sum", "min", "max", "mean",
                         "p50", "p95", "p99"}


def test_null_metrics_drops_everything():
    reg = NullMetrics()
    reg.inc("x")
    reg.set_gauge("y", 1)
    reg.observe("z", 2)
    assert not reg.active
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


# ---------------------------------------------------------------------------
# The engine-invariant projection.


def test_commutative_view_drops_order_sensitive_series():
    reg = MetricsRegistry()
    reg.inc("nvm.writeback.lines", 5, buffer="y", reason="eviction")
    reg.inc("time.launch.us", 120)
    reg.inc("engine.scheduling.chunks", 4, engine="parallel")
    view = commutative_view(reg.snapshot())
    assert view == {
        "nvm.writeback.lines{buffer=y,reason=eviction}": 5.0,
    }


def test_commutative_view_normalizes_engine_label():
    serial, batched = MetricsRegistry(), MetricsRegistry()
    serial.inc("engine.blocks.completed", 16, engine="serial")
    batched.inc("engine.blocks.completed", 16, engine="batched")
    assert commutative_view(serial.snapshot()) \
        == commutative_view(batched.snapshot()) \
        == {"engine.blocks.completed{engine=*}": 16.0}


def test_commutative_view_excludes_gauges_and_histograms():
    reg = MetricsRegistry()
    reg.set_gauge("cache.dirty", 9)
    reg.observe("time.launch.ms", 3.0)
    assert commutative_view(reg.snapshot()) == {}


def test_diff_counters():
    reg = MetricsRegistry()
    reg.inc("a", 2)
    before = reg.snapshot()
    reg.inc("a", 3)
    reg.inc("b", 1)
    assert diff_counters(before, reg.snapshot()) == {"a": 3.0, "b": 1.0}
    assert diff_counters(reg.snapshot(), reg.snapshot()) == {}


# ---------------------------------------------------------------------------
# Histogram quantiles: bucketed estimates vs exact numpy percentiles.


def _parity_case(data, rel_tol=0.05):
    import numpy as np

    hist = HistogramSummary()
    for v in data:
        hist.observe(float(v))
    span = (hist.maximum - hist.minimum) or 1.0
    for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
        true = float(np.percentile(data, q))
        est = hist.to_dict()[key]
        # 8 %-wide log buckets put the midpoint within ~4 % of the
        # true value; scale by the value (or the range near zero)
        scale = max(abs(true), span / 100)
        assert abs(est - true) <= rel_tol * scale, (
            f"p{q}: estimate {est} vs numpy {true}"
        )
        assert hist.minimum <= est <= hist.maximum


def test_quantiles_match_numpy_uniform():
    import numpy as np

    rng = np.random.default_rng(7)
    _parity_case(rng.uniform(0.5, 100.0, 4000))


def test_quantiles_match_numpy_lognormal():
    import numpy as np

    rng = np.random.default_rng(11)
    _parity_case(rng.lognormal(2.0, 1.5, 4000))


def test_quantiles_match_numpy_negative_and_mixed():
    import numpy as np

    rng = np.random.default_rng(13)
    _parity_case(-rng.lognormal(1.0, 1.0, 4000))
    mixed = np.concatenate([rng.normal(0.0, 50.0, 3000), np.zeros(200)])
    _parity_case(mixed)


def test_quantiles_match_numpy_tiny_magnitudes():
    import numpy as np

    rng = np.random.default_rng(17)
    _parity_case(rng.uniform(1e-9, 1e-6, 2000))


def test_quantile_edge_cases():
    empty = HistogramSummary()
    assert empty.quantile(0.5) == 0.0
    assert empty.to_dict()["p99"] == 0.0

    single = HistogramSummary()
    single.observe(42.0)
    assert single.quantile(0.0) == 42.0
    assert single.quantile(1.0) == 42.0

    zeros = HistogramSummary()
    for _ in range(10):
        zeros.observe(0.0)
    assert zeros.quantile(0.5) == 0.0


# ---------------------------------------------------------------------------
# commutative_view / diff_counters edge cases.


def test_commutative_view_label_normalization_collision():
    """Two engine-labelled series collapse to one: values must sum."""
    reg = MetricsRegistry()
    reg.inc("engine.blocks.completed", 10, engine="serial")
    reg.inc("engine.blocks.completed", 6, engine="parallel")
    view = commutative_view(reg.snapshot())
    assert view == {"engine.blocks.completed{engine=*}": 16.0}


def test_commutative_view_collision_keeps_other_labels_distinct():
    reg = MetricsRegistry()
    reg.inc("table.insert.count", 3, table="cuckoo", engine="serial")
    reg.inc("table.insert.count", 4, table="quadratic", engine="serial")
    view = commutative_view(reg.snapshot())
    assert view == {
        "table.insert.count{engine=*,table=cuckoo}": 3.0,
        "table.insert.count{engine=*,table=quadratic}": 4.0,
    }


def test_diff_counters_negative_delta_after_registry_reset():
    """A fresh registry 'rewinds' counters: deltas go negative, not 0."""
    old = MetricsRegistry()
    old.inc("lp.validate.blocks", 100)
    before = old.snapshot()
    fresh = MetricsRegistry()
    fresh.inc("lp.validate.blocks", 25)
    diff = diff_counters(before, fresh.snapshot())
    assert diff == {"lp.validate.blocks": -75.0}


def test_diff_counters_empty_snapshots():
    reg = MetricsRegistry()
    reg.inc("a", 1)
    empty = MetricsRegistry().snapshot()
    assert diff_counters(empty, empty) == {}
    assert diff_counters(reg.snapshot(), empty) == {}
    assert diff_counters(empty, reg.snapshot()) == {"a": 1.0}
    # diff is also defined on bare dicts missing the "counters" key
    assert diff_counters({}, {}) == {}


def test_diff_counters_vanished_series_is_not_reported():
    """diff iterates *after*: a series absent after simply drops out."""
    before = {"counters": {"gone": 5.0, "kept": 1.0}}
    after = {"counters": {"kept": 4.0}}
    assert diff_counters(before, after) == {"kept": 3.0}
