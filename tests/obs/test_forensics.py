"""Recovery forensics: per-failed-block diagnosis after a real crash."""

import re

import pytest

import repro
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.obs import load_schema, validate
from repro.obs.forensics import LANE_MISMATCH, MISSING_ENTRY, diagnose
from repro.workloads import make_workload

HEX_LANE = re.compile(r"^0x[0-9a-f]{16}$")


def crash_and_validate(config=None, workload="spmv"):
    device = repro.Device(cache_capacity_lines=16, block_order="shuffled",
                          seed=13)
    work = make_workload(workload, scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(
        device, config or repro.LPConfig.paper_best()
    ).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    device.launch(
        lp_kernel,
        crash_plan=repro.CrashPlan(after_blocks=max(1, n_blocks // 3),
                                   persist_fraction=0.35, seed=21),
    )
    device.restart()
    manager = RecoveryManager(device, lp_kernel)
    validation = manager.validate()
    assert not validation.all_passed, "crash must produce failures"
    return device, lp_kernel, validation


def test_diagnose_covers_every_failed_block():
    device, lp_kernel, validation = crash_and_validate()
    report = diagnose(lp_kernel, validation, device)
    assert [f.block_id for f in report.failures] == validation.failed_blocks
    assert report.n_failed == validation.n_failed
    assert report.n_blocks == validation.n_blocks
    assert report.kernel == lp_kernel.name
    assert report.table == "global_array"


def test_reasons_match_lane_evidence():
    # tmm under these seeds loses both table lines and data lines, so
    # the diagnosis exercises missing-entry AND lane-mismatch.
    device, lp_kernel, validation = crash_and_validate(workload="tmm")
    report = diagnose(lp_kernel, validation, device)
    assert {f.reason for f in report.failures} \
        == {MISSING_ENTRY, LANE_MISMATCH}
    for failure in report.failures:
        assert failure.reason in (MISSING_ENTRY, LANE_MISMATCH)
        if failure.reason == MISSING_ENTRY:
            # No stored entry: nothing to expect, only the recompute.
            assert failure.expected_lanes is None
        else:
            assert failure.expected_lanes is not None
            assert failure.expected_lanes != failure.found_lanes
        assert failure.found_lanes is not None
        for lane in failure.found_lanes:
            assert HEX_LANE.match(lane), lane
    missing = {f.block_id for f in report.failures
               if f.reason == MISSING_ENTRY}
    assert missing == set(validation.missing_checksums)


def test_losses_use_exact_block_slices():
    """tmm provides block_output_map, so attribution is per-slice."""
    device, lp_kernel, validation = crash_and_validate(workload="tmm")
    report = diagnose(lp_kernel, validation, device)
    exact_losses = [loss for f in report.failures for loss in f.losses]
    assert exact_losses, "a lossy crash must attribute some lines"
    for loss in exact_losses:
        assert loss.exact
        assert 0 < loss.lines_lost <= loss.lines_in_slice
        assert loss.buffer in lp_kernel.protected_buffers


def test_loss_split_accounts_all_lost_lines():
    device, lp_kernel, validation = crash_and_validate()
    report = diagnose(lp_kernel, validation, device)
    crash = device.last_crash_report
    assert report.lost_by_buffer == dict(crash.lost_by_buffer)
    assert (report.table_lines_lost + report.data_lines_lost
            == sum(crash.lost_by_buffer.values()))
    assert report.table_lines_lost == sum(
        n for name, n in crash.lost_by_buffer.items()
        if name.startswith("__lp_")
    )


def test_report_matches_committed_schema():
    device, lp_kernel, validation = crash_and_validate()
    report = diagnose(lp_kernel, validation, device)
    validate(report.to_dict(), load_schema("forensics"))


def test_render_text_summarizes_failure_split():
    device, lp_kernel, validation = crash_and_validate()
    text = diagnose(lp_kernel, validation, device).render_text()
    assert "blocks failed validation" in text
    assert "failure split:" in text
    for block_id in validation.failed_blocks:
        assert f"block {block_id}:" in text


def test_recover_attaches_forensics():
    device, lp_kernel, _ = crash_and_validate()
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert report.forensics is not None
    assert [f.block_id for f in report.forensics.failures] \
        == report.initial.failed_blocks
    validate(report.forensics.to_dict(), load_schema("forensics"))


def test_clean_run_has_no_forensics():
    device = repro.Device()
    work = make_workload("spmv", scale="tiny")
    kernel = work.setup(device)
    lp_kernel = LPRuntime(device).instrument(kernel)
    device.launch(lp_kernel)
    device.drain()
    report = RecoveryManager(device, lp_kernel).recover()
    assert report.recovered
    assert report.forensics is None


@pytest.mark.parametrize("config_name,config", [
    ("quadratic", repro.LPConfig.naive_quadratic()),
    ("cuckoo", repro.LPConfig.naive_cuckoo()),
])
def test_table_kind_reported(config_name, config):
    device, lp_kernel, validation = crash_and_validate(config=config)
    report = diagnose(lp_kernel, validation, device)
    assert report.table == config_name
