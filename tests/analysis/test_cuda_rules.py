"""CUDA front-end lint rules (LP001-LP004, LP006)."""

from pathlib import Path

from repro.analysis.cuda_rules import lint_cuda_text

FIXTURE = Path(__file__).parent.parent / "fixtures" / "lint" / "bad_kernel.cu"


def rules_of(findings):
    return {f.rule for f in findings}


def test_seeded_bad_kernel_trips_every_rule():
    findings = lint_cuda_text(FIXTURE.read_text(), path=str(FIXTURE))
    assert rules_of(findings) == {"LP001", "LP002", "LP003", "LP004", "LP006"}
    by_rule = {f.rule: f for f in findings}
    # Line numbers anchor to the offending source constructs.
    assert by_rule["LP004"].line == 13      # the lpcuda_init
    assert by_rule["LP001"].line == 18      # the uncovered store
    assert by_rule["LP003"].line == 20      # the covered store
    assert all(f.kernel == "badkernel" for f in findings)
    assert all(f.file == str(FIXTURE) for f in findings)


CLEAN = """
dim3 grid(4, 4);
#pragma nvm lpcuda_init(tab, grid.x*grid.y, 1)
mm<<<grid, 64>>>(C, A, B, 16);

__global__ void mm(float *C, float *A, float *B, int wA) {
    int tx = threadIdx.x;
    int row = blockIdx.x * wA + tx;
    float acc = A[row] + B[row];
#pragma nvm lpcuda_checksum("+^", tab, blockIdx.x, blockIdx.y)
    C[row] = acc;
}
"""


def test_clean_lp_program_has_no_findings():
    assert lint_cuda_text(CLEAN) == []


def test_paper_demo_listing_is_clean():
    from examples.directive_compiler_demo import PAPER_LISTING

    assert lint_cuda_text(PAPER_LISTING) == []


def test_plain_cuda_without_directives_is_exempt_from_lp001():
    # A file that never opts into LP is not required to cover stores.
    text = """
__global__ void plain(float *out, float *in) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    out[i] = in[i];
}
"""
    assert lint_cuda_text(text) == []


def test_lp004_oversized_table_is_a_warning():
    text = CLEAN.replace("lpcuda_init(tab, grid.x*grid.y, 1)",
                         "lpcuda_init(tab, 1000, 1)")
    findings = lint_cuda_text(text)
    assert rules_of(findings) == {"LP004"}
    assert findings[0].severity.value == "warning"


def test_lp004_skips_symbolic_grids():
    # An unresolvable launch size must not produce a guess.
    text = CLEAN.replace("dim3 grid(4, 4);", "dim3 grid(n_tiles, 4);")
    assert rules_of(lint_cuda_text(text)) == set()


def test_lp006_exempts_integer_stores_and_combined_checksums():
    int_store = CLEAN.replace("float *C", "int *C").replace('"+^"', '"^"')
    assert rules_of(lint_cuda_text(int_store)) == set()
    parity_float = CLEAN.replace('"+^"', '"^"')
    assert rules_of(lint_cuda_text(parity_float)) == {"LP006"}


def test_lp002_fires_on_compound_update_under_checksum():
    text = CLEAN.replace("C[row] = acc;", "C[row] += acc;")
    findings = lint_cuda_text(text)
    assert "LP002" in rules_of(findings)
    lp002 = [f for f in findings if f.rule == "LP002"]
    assert all(f.severity.value == "error" for f in lp002)
