"""The persistency race rules (LP008-LP010) across both front-ends."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.cuda_rules import lint_cuda_text
from repro.analysis.findings import Finding, Severity, finalize_findings
from repro.analysis.py_rules import (
    _unwrap,
    kernel_effects,
    lint_kernel_object,
    lint_python_text,
)
from repro.errors import LaunchError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.engine import RecordingBlockContext
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory

FIXTURES = Path(__file__).parent.parent / "fixtures" / "lint"


def _offenders():
    spec = importlib.util.spec_from_file_location(
        "lp_offenders", FIXTURES / "lp_offenders.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _rules(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Object mode (live kernels, full buffer resolution)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name, rule", [
    ("lp008-wrap", "LP008"),
    ("lp009-feedback", "LP009"),
    ("lp010-shared-escape", "LP010"),
])
def test_offender_trips_its_rule(name, rule):
    module = _offenders()
    device, lp_kernel = module.make_offender_case(name)
    findings = lint_kernel_object(lp_kernel, device=device)
    hits = [f for f in findings if f.rule == rule]
    assert hits, f"{name} should trip {rule}: {[f.rule for f in findings]}"
    assert all(f.severity is Severity.ERROR for f in hits)


def test_lp008_names_the_clashing_blocks():
    module = _offenders()
    device, lp_kernel = module.make_offender_case("lp008-wrap")
    (hit,) = [f for f in lint_kernel_object(lp_kernel, device=device)
              if f.rule == "LP008"]
    assert "block" in hit.message


def test_workload_kernels_stay_clean_of_race_rules():
    from repro.compiler.pydsl import lazy_persistent
    from repro.gpu.device import Device
    from repro.workloads import WORKLOADS, make_workload

    for name in WORKLOADS:
        device = Device()
        kernel = make_workload(name, scale="tiny", seed=0).setup(device)
        lp_kernel = lazy_persistent(device, kernel)
        findings = lint_kernel_object(lp_kernel, device=device)
        assert not (_rules(findings) & {"LP008", "LP009", "LP010"}), name


# ---------------------------------------------------------------------------
# File mode (conservative, no live buffers)
# ---------------------------------------------------------------------------

def test_file_mode_flags_python_offenders():
    text = (FIXTURES / "lp_offenders.py").read_text()
    findings = lint_python_text(text, path="lp_offenders.py")
    assert {"LP009", "LP010"} <= _rules(findings)


def test_cuda_front_end_flags_lp008_wrap():
    text = (FIXTURES / "bad_kernel_lp008.cu").read_text()
    findings = lint_cuda_text(text, path="bad_kernel_lp008.cu")
    active = [f for f in findings if not f.suppressed]
    assert [f.rule for f in active] == ["LP008"]
    assert active[0].severity is Severity.ERROR


# ---------------------------------------------------------------------------
# The AST facts behind the rules
# ---------------------------------------------------------------------------

def test_effects_capture_store_value_provenance():
    module = _offenders()
    effects = kernel_effects(module.LP009FeedbackKernel())
    (store,) = [s for s in effects.stores if s.buffer == "acc_out"]
    assert "acc_out" in store.value_buffers


def test_effects_mark_divergent_syncthreads():
    module = _offenders()
    effects = kernel_effects(module.LP010SharedEscapeKernel())
    assert effects.divergent_sync_lines
    (store,) = [s for s in effects.stores if s.buffer == "esc_out"]
    assert store.value_uses_shared


def test_uniform_syncthreads_is_not_divergent():
    from repro.gpu.device import Device
    from repro.workloads import make_workload

    device = Device()
    kernel = make_workload("tmm", scale="tiny", seed=0).setup(device)
    base, _ = _unwrap(kernel)
    effects = kernel_effects(base)
    assert effects.sync_lines
    assert not effects.divergent_sync_lines


# ---------------------------------------------------------------------------
# Deterministic report finalization
# ---------------------------------------------------------------------------

def test_finalize_dedupes_and_sorts():
    a = Finding(rule="LP002", severity=Severity.ERROR, message="m",
                file="b.cu", line=9)
    dup = Finding(rule="LP002", severity=Severity.ERROR, message="m",
                  file="b.cu", line=9)
    earlier = Finding(rule="LP001", severity=Severity.NOTE, message="n",
                      file="a.cu", line=2)
    out = finalize_findings([a, dup, earlier])
    assert out == [earlier, a]


def test_finalize_keeps_distinct_suppression_states():
    shown = Finding(rule="LP002", severity=Severity.ERROR, message="m")
    hidden = Finding(rule="LP002", severity=Severity.ERROR, message="m",
                     suppressed=True, suppress_reason="known")
    assert len(finalize_findings([shown, hidden])) == 2


# ---------------------------------------------------------------------------
# Worker-mode guards pair with the static rule (LP005)
# ---------------------------------------------------------------------------

class _CasKernel(Kernel):
    name = "cas-under-parallel"
    protected_buffers = ("out",)
    idempotent = True
    parallel_safe = True  # the lie LP005 exists to catch

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(2, 4)

    def run_block(self, ctx: BlockContext) -> None:
        ctx.atomic_cas("out", 0, np.float32(0.0), np.float32(1.0))


def test_cas_under_parallel_safe_is_flagged_before_launch():
    import repro

    device = repro.Device()
    device.alloc("out", (8,), np.float32, persistent=True)
    findings = lint_kernel_object(_CasKernel(), device=device)
    hits = [f for f in findings if f.rule == "LP005"]
    assert hits and all(not f.suppressed for f in hits)


@pytest.mark.parametrize("op", ["atomic_cas", "atomic_exch", "clwb"])
def test_worker_mode_guard_cites_the_lint_rule(op):
    memory = GlobalMemory(cache_capacity_lines=4)
    buf = memory.alloc("out", (8,), np.float32, persistent=True)
    ctx = RecordingBlockContext(memory, AtomicUnit(memory),
                                LaunchConfig.linear(1, 4), 0)
    args = {
        "atomic_cas": (buf, 0, np.float32(0.0), np.float32(1.0)),
        "atomic_exch": (buf, 0, np.float32(1.0)),
        "clwb": (buf, np.arange(1)),
    }[op]
    with pytest.raises(LaunchError, match="LP005"):
        getattr(ctx, op)(*args)
