"""The bounded crash-state model checker (repro.analysis.crashmc)."""

import importlib.util
import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis.crashmc import (
    MCOptions,
    check_case,
    check_workload,
    cross_check_mc,
    fixture_dict,
    replay_fixture,
    run_mc,
)
from repro.analysis.py_rules import lint_kernel_object

FIXTURES = Path(__file__).parent.parent / "fixtures"

#: Quick settings: cache capacity 1 maximizes eviction events at tiny
#: scale, so even a small budget covers a meaningful slice of space.
QUICK = MCOptions(scale="tiny", cache_lines=1, budget=300)


def _offenders():
    spec = importlib.util.spec_from_file_location(
        "lp_offenders", FIXTURES / "lint" / "lp_offenders.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _offender_build(name):
    module = _offenders()

    def build(shadow):
        return module.make_offender_case(name, shadow=shadow, cache_lines=2)

    return build


# ---------------------------------------------------------------------------
# Convergence on correct workloads
# ---------------------------------------------------------------------------

def test_spmv_every_reachable_state_converges():
    report = check_workload("spmv", QUICK)
    assert report.n_events > 0
    assert report.states_explored > 0
    assert report.converged, [c.to_dict() for c in report.counterexamples]


def test_small_grid_workload_exceeds_thousand_distinct_states():
    # The acceptance bar: a small-grid workload must reach >= 1000
    # distinct crash states within the default budget.
    report = check_workload("spmv", MCOptions(cache_lines=2))
    assert report.states_explored >= 1000
    assert not report.budget_exhausted
    assert report.converged


def test_enumeration_is_deterministic():
    a = check_workload("spmv", QUICK).to_dict()
    b = check_workload("spmv", QUICK).to_dict()
    a.pop("elapsed_s")
    b.pop("elapsed_s")
    assert a == b


def test_budget_caps_candidates():
    report = check_workload("spmv", MCOptions(scale="tiny", cache_lines=1,
                                              budget=10))
    assert report.candidates == 10
    assert report.budget_exhausted


def test_run_mc_summary_document():
    doc = run_mc(["spmv"], QUICK)
    assert doc["schema"] == 1
    assert doc["converged"] is True
    assert doc["cases"][0]["case"] == "spmv"
    assert doc["total"]["states_explored"] == \
        doc["cases"][0]["states_explored"]
    json.dumps(doc)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# Seeded offenders: the checker finds what the rules claim
# ---------------------------------------------------------------------------

def test_lp008_offender_fails_to_converge():
    report = check_case(_offender_build("lp008-wrap"), "lp008-wrap",
                        MCOptions(cache_lines=2, budget=400))
    assert not report.converged
    assert "recovery failed" in report.counterexamples[0].reason


def test_lp009_offender_diverges_from_reference():
    report = check_case(_offender_build("lp009-feedback"), "lp009-feedback",
                        MCOptions(cache_lines=2, budget=400))
    assert not report.converged
    ce = report.counterexamples[0]
    assert "differs from the crash-free reference" in ce.reason
    # Minimization landed on a torn-write window (the double-apply
    # needs a partially persisted line to show).
    assert ce.state.armed is not None or ce.state.extras


def test_lp010_offender_converges_under_uniform_simulator():
    # The warp-synchronous simulator executes the divergent barrier
    # uniformly, so enumeration cannot reproduce the hazard — exactly
    # the case the conservative static rule exists for.
    report = check_case(_offender_build("lp010-shared-escape"),
                        "lp010-shared-escape",
                        MCOptions(cache_lines=2, budget=400))
    assert report.converged


# ---------------------------------------------------------------------------
# Static <-> dynamic cross-check
# ---------------------------------------------------------------------------

def test_cross_check_confirms_static_verdict_silently():
    module = _offenders()
    device, lp_kernel = module.make_offender_case("lp008-wrap")
    findings = lint_kernel_object(lp_kernel, device=device)
    report = check_case(_offender_build("lp008-wrap"), "lp008-wrap",
                        MCOptions(cache_lines=2, budget=400))
    # Static flagged it AND the checker confirmed it: agreement, no
    # LP007 escalation either way.
    assert any(f.rule == "LP008" for f in findings)
    assert cross_check_mc("lp008-wrap", findings, report) == []


def test_cross_check_errors_when_static_misses_a_counterexample():
    report = check_case(_offender_build("lp009-feedback"), "lp009-feedback",
                        MCOptions(cache_lines=2, budget=400))
    out = cross_check_mc("lp009-feedback", [], report)
    assert len(out) == 1
    assert out[0].rule == "LP007"
    assert out[0].severity.value == "error"
    assert "less conservative" in out[0].message


def test_cross_check_notes_unreproduced_static_verdict():
    module = _offenders()
    device, lp_kernel = module.make_offender_case("lp010-shared-escape")
    findings = lint_kernel_object(lp_kernel, device=device)
    assert any(f.rule == "LP010" for f in findings)
    report = check_case(_offender_build("lp010-shared-escape"),
                        "lp010-shared-escape",
                        MCOptions(cache_lines=2, budget=400))
    out = cross_check_mc("lp010-shared-escape", findings, report)
    assert len(out) == 1
    assert out[0].rule == "LP007"
    assert out[0].severity.value == "note"
    assert "conservative" in out[0].message


# ---------------------------------------------------------------------------
# Counterexample fixtures
# ---------------------------------------------------------------------------

def test_fixture_roundtrip_reproduces_counterexample():
    options = MCOptions(cache_lines=2, budget=400)
    report = check_case(_offender_build("lp009-feedback"), "lp009-feedback",
                        options)
    ce = report.counterexamples[0]
    data = fixture_dict(ce, options, kind="offender")
    result = replay_fixture(data, _offender_build("lp009-feedback"))
    assert result["converged"] is False
    assert result["image_digest"] == ce.image_digest
    assert result["reason"] == ce.reason


def test_committed_lp009_fixture_still_reproduces():
    # The minimized counterexample committed under fixtures/crashmc is
    # the worked example in docs/analysis.md; it must keep reproducing
    # byte-for-byte until the offender kernel is fixed.
    path = FIXTURES / "crashmc" / "lp009-feedback-0.json"
    data = json.loads(path.read_text())
    result = replay_fixture(data, _offender_build(data["case"]))
    assert result["converged"] is False
    assert result["image_digest"] == data["image_digest"]
    assert result["reason"] == data["reason"]


# ---------------------------------------------------------------------------
# Observability + CLI
# ---------------------------------------------------------------------------

def test_mc_emits_metrics():
    from repro import obs

    with obs.recording() as rec:
        check_workload("spmv", QUICK)
        counters = rec.metrics_snapshot()["counters"]
    assert any(k.startswith("mc.states_explored") for k in counters)
    assert any(k.startswith("mc.counterexamples") for k in counters)


def test_cli_mc_json(capsys):
    rc = main(["mc", "--workloads", "spmv", "--scale", "tiny",
               "--cache-lines", "1", "--budget", "120", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["converged"] is True
    assert doc["cases"][0]["states_explored"] > 0


def test_cli_mc_text(capsys):
    rc = main(["mc", "--workloads", "spmv", "--scale", "tiny",
               "--cache-lines", "1", "--budget", "120"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "distinct states" in out
