"""Python-DSL (object-mode) lint rules: LP001-LP006."""

import numpy as np
import pytest

import repro
from repro.analysis.py_rules import lint_kernel_object, lint_python_text
from repro.compiler.pydsl import kernel_from_function, lazy_persistent
from repro.core.config import ChecksumKind, LPConfig
from repro.core.runtime import LazyPersistentKernel
from repro.core.tables import make_table
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig


def rules_of(findings):
    return {f.rule for f in findings if not f.suppressed}


def make_device(*buffers, n=32):
    device = repro.Device()
    for name, persistent in buffers:
        device.alloc(name, (n,), np.float32, persistent=persistent)
    return device


# ---------------------------------------------------------------------------
# LP001 — uncovered persistent stores
# ---------------------------------------------------------------------------

def test_lp001_store_to_unprotected_persistent_buffer():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def leaky(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)
        ctx.st("extra", idx, 2.0)   # persistent but not protected

    device = make_device(("out", True), ("extra", True))
    findings = lint_kernel_object(leaky, device=device)
    assert rules_of(findings) == {"LP001"}
    (f,) = findings
    assert f.severity.value == "error"
    assert "'extra'" in f.message


def test_lp001_scratch_buffers_are_exempt():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def scratchy(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)
        ctx.st("tmp", idx, 2.0)     # scratch: no coverage required

    device = make_device(("out", True), ("tmp", False))
    assert lint_kernel_object(scratchy, device=device) == []


def test_lp001_without_device_downgrades_to_warning():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def maybe_leaky(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)
        ctx.st("extra", idx, 2.0)

    findings = lint_kernel_object(maybe_leaky)
    assert rules_of(findings) == {"LP001"}
    assert findings[0].severity.value == "warning"


def test_lp001_resolves_buffer_names_through_closures():
    target = "closed_over"

    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def via_closure(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)
        ctx.st(target, idx, 2.0)

    device = make_device(("out", True), ("closed_over", True))
    findings = lint_kernel_object(via_closure, device=device)
    assert rules_of(findings) == {"LP001"}
    assert "'closed_over'" in findings[0].message


# ---------------------------------------------------------------------------
# LP002 — non-idempotent region behind default re-execution recovery
# ---------------------------------------------------------------------------

def _accumulator(**kwargs):
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",),
                          **kwargs)
    def accumulate(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        v = ctx.ld("out", idx)
        ctx.st("out", idx, v + 1.0)

    return accumulate


def test_lp002_read_write_overlap_with_default_recovery():
    findings = lint_kernel_object(_accumulator())
    assert "LP002" in rules_of(findings)
    assert "'out'" in next(
        f.message for f in findings if f.rule == "LP002"
    )


def test_lp002_silenced_by_idempotent_false():
    # Declaring non-idempotence makes default recovery raise instead of
    # silently re-executing, so the hazard is acknowledged.
    assert "LP002" not in rules_of(lint_kernel_object(
        _accumulator(idempotent=False)
    ))


def test_lp002_silenced_by_custom_recovery():
    kernel = _accumulator()
    kernel._recover_fn = lambda ctx: None
    assert "LP002" not in rules_of(lint_kernel_object(kernel))


def test_lp002_atomic_add_accumulates():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def atomic_acc(ctx):
        ctx.atomic_add("out", ctx.block_id, 1.0)

    findings = lint_kernel_object(atomic_acc)
    assert "LP002" in rules_of(findings)
    assert "atomic read-modify-write" in next(
        f.message for f in findings if f.rule == "LP002"
    )


# ---------------------------------------------------------------------------
# LP003 — cross-block write race on a protected buffer
# ---------------------------------------------------------------------------

def test_lp003_block_independent_index_races():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def racy(ctx):
        ctx.st("out", ctx.tid, 1.0)   # every block writes slots 0..7

    findings = lint_kernel_object(racy)
    assert rules_of(findings) == {"LP003"}


def test_lp003_block_derived_index_is_clean():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def disjoint(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)

    assert lint_kernel_object(disjoint) == []


def test_lp003_taint_propagates_through_locals():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def derived(ctx):
        base = ctx.block_id * ctx.n_threads
        off = base + 1
        ctx.st("out", off + ctx.tid, 1.0)

    assert lint_kernel_object(derived) == []


def test_lp003_single_block_grids_cannot_race():
    @kernel_from_function(grid=(1, 1), block=(8, 1), protected=("out",))
    def solo(ctx):
        ctx.st("out", ctx.tid, 1.0)

    assert lint_kernel_object(solo) == []


# ---------------------------------------------------------------------------
# LP005 — parallel_safe vs. the engine's replay constraints
# ---------------------------------------------------------------------------

class _CasKernel(Kernel):
    name = "cas-kernel"
    protected_buffers = ("out",)
    idempotent = True
    parallel_safe = True   # the lie LP005 catches

    def launch_config(self):
        return LaunchConfig.linear(4, 8)

    def run_block(self, ctx: BlockContext) -> None:
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.atomic_cas("out", idx, 0.0, 1.0)

    def recover_block(self, ctx: BlockContext) -> None:
        self.run_block(ctx)


def test_lp005_cas_with_parallel_safe_true():
    findings = lint_kernel_object(_CasKernel())
    assert rules_of(findings) == {"LP005"}
    assert "atomic_cas" in findings[0].message


def test_lp005_silent_when_parallel_safe_false():
    class Honest(_CasKernel):
        parallel_safe = False

    assert lint_kernel_object(Honest()) == []


class _HostMutator(Kernel):
    name = "host-mutator"
    protected_buffers = ("out",)
    parallel_safe = True

    def __init__(self):
        self.counter = 0

    def launch_config(self):
        return LaunchConfig.linear(4, 8)

    def run_block(self, ctx: BlockContext) -> None:
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        self.counter += 1   # host-visible effect a replay cannot redo
        ctx.st("out", idx, 1.0)


def test_lp005_host_state_mutation():
    findings = lint_kernel_object(_HostMutator())
    assert rules_of(findings) == {"LP005"}
    assert "host-visible" in findings[0].message


# ---------------------------------------------------------------------------
# LP004/LP006 — LazyPersistentKernel configuration rules
# ---------------------------------------------------------------------------

def _lp_case(n=32):
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def clean(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1.0)

    device = make_device(("out", True), n=n)
    return device, clean


def test_lp004_correctly_sized_table_is_clean():
    device, kernel = _lp_case()
    assert lint_kernel_object(lazy_persistent(device, kernel),
                              device=device) == []


def test_lp004_undersized_table_is_an_error():
    device, kernel = _lp_case()
    config = LPConfig.naive_quadratic()
    table = make_table(device.memory, "tiny-table", 2, config.n_lanes,
                       config)
    findings = lint_kernel_object(
        LazyPersistentKernel(kernel, config, table), device=device
    )
    assert rules_of(findings) == {"LP004"}
    assert findings[0].severity.value == "error"


def test_lp006_raw_float_parity_is_an_error():
    device, kernel = _lp_case()
    config = LPConfig(
        checksums=(ChecksumKind.MODULAR, ChecksumKind.PARITY),
        ordered_int_parity=False,
    )
    table = make_table(device.memory, "float-parity", 4, config.n_lanes,
                       config)
    findings = lint_kernel_object(
        LazyPersistentKernel(kernel, config, table), device=device
    )
    assert rules_of(findings) == {"LP006"}
    assert "'out'" in findings[0].message


def test_lp006_integer_buffers_are_exempt():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def int_kernel(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, 1)

    device = repro.Device()
    device.alloc("out", (32,), np.int64, persistent=True)
    config = LPConfig(
        checksums=(ChecksumKind.MODULAR, ChecksumKind.PARITY),
        ordered_int_parity=False,
    )
    table = make_table(device.memory, "int-parity", 4, config.n_lanes,
                       config)
    assert lint_kernel_object(
        LazyPersistentKernel(int_kernel, config, table), device=device
    ) == []


# ---------------------------------------------------------------------------
# Suppressions and helper-method inlining
# ---------------------------------------------------------------------------

class _Suppressed(Kernel):
    name = "suppressed"
    protected_buffers = ("out",)
    idempotent = True
    lint_suppressions = {
        "LP002": "re-stores identical words",
        "LP009": "re-stores identical words",
    }

    def launch_config(self):
        return LaunchConfig.linear(4, 8)

    def run_block(self, ctx: BlockContext) -> None:
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        v = ctx.ld("out", idx)
        ctx.st("out", idx, v)


def test_documented_suppression_reports_but_does_not_gate():
    findings = lint_kernel_object(_Suppressed())
    assert findings, "the finding must still be reported"
    assert all(f.suppressed for f in findings)
    assert findings[0].suppress_reason == "re-stores identical words"
    assert rules_of(findings) == set()


class _Helper(Kernel):
    name = "helper-inline"
    protected_buffers = ("out",)
    idempotent = True

    def launch_config(self):
        return LaunchConfig.linear(4, 8)

    def _bump(self, ctx, idx):
        v = ctx.ld("out", idx)
        ctx.st("out", idx, v + 1.0)

    def run_block(self, ctx: BlockContext) -> None:
        self._bump(ctx, ctx.block_id * ctx.n_threads + ctx.tid)


def test_helper_methods_are_inlined():
    assert "LP002" in rules_of(lint_kernel_object(_Helper()))


def test_megakv_kernels_only_carry_documented_suppressions():
    from repro.megakv import MegaKVStore
    from repro.megakv.kernels import KVDeleteKernel, KVInsertKernel
    from repro.workloads.generators import key_value_records

    device = repro.Device()
    store = MegaKVStore(device, capacity=256)
    keys, vals = key_value_records(np.random.default_rng(0), 64)
    for kernel in (
        KVInsertKernel(store, keys, vals, threads_per_block=16),
        KVDeleteKernel(store, keys, threads_per_block=16),
    ):
        findings = lint_kernel_object(kernel, device=device)
        assert findings, "conservative LP002 findings are expected"
        assert rules_of(findings) == set()
        assert all(f.rule == "LP002" and f.suppress_reason
                   for f in findings)


# ---------------------------------------------------------------------------
# File mode
# ---------------------------------------------------------------------------

FILE_MODE_SOURCE = '''
class Accumulating(Kernel):
    idempotent = True

    def run_block(self, ctx):
        v = ctx.ld("out", ctx.tid)
        ctx.st("out", ctx.tid, v + 1.0)


class LyingAboutSafety(Kernel):
    parallel_safe = True

    def run_block(self, ctx):
        ctx.atomic_cas("slots", ctx.tid, 0, 1)


class WithCustomRecovery(Kernel):
    def run_block(self, ctx):
        v = ctx.ld("out", ctx.tid)
        ctx.st("out", ctx.tid, v + 1.0)

    def recover_block(self, ctx):
        pass
'''


def test_file_mode_flags_literal_declarations_only():
    findings = lint_python_text(FILE_MODE_SOURCE, path="kern.py")
    by_kernel = {}
    for f in findings:
        by_kernel.setdefault(f.kernel, set()).add(f.rule)
    assert by_kernel == {
        "Accumulating": {"LP002"},
        # The CAS kernel gets both: the safety lie (LP005) and the
        # conservative atomic-under-default-recovery hazard (LP002).
        "LyingAboutSafety": {"LP002", "LP005"},
    }
    assert all(f.file == "kern.py" for f in findings)


def test_file_mode_tolerates_syntax_errors():
    findings = lint_python_text("def broken(:", path="oops.py")
    assert len(findings) == 1
    assert findings[0].severity.value == "note"
