"""Dynamic oracle and the static-vs-dynamic cross-check contract."""

import numpy as np
import pytest

import repro
from repro.analysis.oracle import (
    OracleVerdict,
    cross_check,
    dynamic_oracle,
    sample_blocks,
)
from repro.analysis.runner import builtin_cases, static_hazards
from repro.compiler.pydsl import kernel_from_function


def _clean_case():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def clean(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        ctx.st("out", idx, idx + 0.0)

    device = repro.Device()
    device.alloc("out", (32,), np.float32, persistent=True)
    return device, clean


def _dirty_case():
    @kernel_from_function(grid=(4, 1), block=(8, 1), protected=("out",))
    def dirty(ctx):
        idx = ctx.block_id * ctx.n_threads + ctx.tid
        v = ctx.ld("out", idx)
        ctx.st("out", idx, v + 1.0)

    device = repro.Device()
    device.alloc("out", (32,), np.float32, persistent=True)
    return device, dirty


def test_oracle_passes_idempotent_kernel():
    verdict = dynamic_oracle(_clean_case)
    assert verdict.idempotent
    assert verdict.tested_blocks == [0, 1, 2, 3]
    assert verdict.failed_blocks == []


def test_oracle_catches_accumulation():
    verdict = dynamic_oracle(_dirty_case)
    assert not verdict.idempotent
    assert verdict.failed_blocks == verdict.tested_blocks


def test_sample_blocks_is_deterministic_and_covers_endpoints():
    blocks = sample_blocks(100, limit=8)
    assert blocks[0] == 0 and blocks[-1] == 99
    assert blocks == sample_blocks(100, limit=8)
    assert sample_blocks(3, limit=8) == [0, 1, 2]


def test_cross_check_forbidden_direction_is_an_error():
    verdict = OracleVerdict("k", idempotent=False,
                            tested_blocks=[0, 1], failed_blocks=[1])
    findings = cross_check("k", [], verdict)
    assert len(findings) == 1
    assert findings[0].rule == "LP007"
    assert findings[0].severity.value == "error"


def test_cross_check_conservative_direction_is_a_note():
    verdict = OracleVerdict("k", idempotent=True, tested_blocks=[0])
    findings = cross_check("k", ["some hazard"], verdict)
    assert len(findings) == 1
    assert findings[0].rule == "LP007"
    assert findings[0].severity.value == "note"


def test_cross_check_agreement_is_silent():
    passed = OracleVerdict("k", idempotent=True, tested_blocks=[0])
    failed = OracleVerdict("k", idempotent=False,
                           tested_blocks=[0], failed_blocks=[0])
    assert cross_check("k", [], passed) == []
    assert cross_check("k", ["hazard"], failed) == []


@pytest.mark.parametrize(
    "case", builtin_cases(), ids=lambda c: c.name
)
def test_every_builtin_static_verdict_is_confirmed_by_the_oracle(case):
    """The acceptance contract: lplint is never less conservative than
    the machine on any built-in kernel."""
    _device, kernel = case.make_case()
    hazards = static_hazards(kernel)
    verdict = dynamic_oracle(case.make_case, sample=4)
    findings = cross_check(case.name, hazards, verdict)
    errors = [f for f in findings if f.severity.value == "error"]
    assert errors == [], (
        f"{case.name}: static analysis certified idempotence the "
        f"oracle disproved: {[f.message for f in errors]}"
    )
    if not hazards:
        assert verdict.idempotent
