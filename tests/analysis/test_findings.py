"""Finding model, JSON payload schema, suppressions, rendering."""

import pytest

from repro.analysis.findings import (
    PAYLOAD_VERSION,
    Finding,
    LintReport,
    RULES,
    Severity,
    apply_suppressions,
    findings_to_payload,
    payload_to_findings,
    render_text,
    validate_payload,
)


def _finding(**overrides):
    base = dict(
        rule="LP001",
        severity=Severity.ERROR,
        message="store to persistent buffer 'x' is uncovered",
        file="kernel.cu",
        line=12,
        kernel="k",
        fix_hint="cover it",
    )
    base.update(overrides)
    return Finding(**base)


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown lint rule"):
        _finding(rule="LP999")


def test_every_rule_has_a_description():
    assert set(RULES) == {f"LP{i:03d}" for i in range(1, 11)}
    assert all(desc for desc in RULES.values())


def test_location_renders_file_and_line():
    assert _finding().location == "kernel.cu:12"
    assert _finding(file=None, line=None).location == "<builtin>"


def test_payload_round_trip_is_lossless():
    report = LintReport(targets=["kernel.cu", "builtin:tmm"])
    report.findings = [
        _finding(),
        _finding(rule="LP002", severity=Severity.WARNING, line=None),
        _finding(rule="LP007", severity=Severity.NOTE, suppressed=True,
                 suppress_reason="documented"),
    ]
    payload = findings_to_payload(report)
    assert payload["version"] == PAYLOAD_VERSION
    back = payload_to_findings(payload)
    assert back.targets == report.targets
    assert [f.to_dict() for f in back.findings] == [
        f.to_dict() for f in report.findings
    ]
    # Round-tripping the regenerated payload is also stable.
    assert findings_to_payload(back) == payload


def test_payload_counts_and_exit_code():
    report = LintReport(targets=["t"])
    report.findings = [
        _finding(),
        _finding(severity=Severity.NOTE),
        _finding(suppressed=True, suppress_reason="r"),
    ]
    payload = findings_to_payload(report)
    assert payload["summary"] == {
        "error": 1, "warning": 0, "note": 1, "suppressed": 1,
    }
    assert payload["exit_code"] == 1
    assert report.active == [report.findings[0]]


def test_notes_and_suppressed_do_not_gate():
    report = LintReport()
    report.findings = [
        _finding(severity=Severity.NOTE),
        _finding(suppressed=True, suppress_reason="r"),
    ]
    assert report.exit_code == 0


@pytest.mark.parametrize("mutate", [
    lambda p: p.update(version=99),
    lambda p: p.pop("summary"),
    lambda p: p.pop("findings"),
    lambda p: p["findings"].append({"rule": "LP999", "severity": "error",
                                    "message": "x"}),
    lambda p: p["findings"].append({"rule": "LP001", "severity": "fatal",
                                    "message": "x"}),
    lambda p: p["findings"].append({"rule": "LP001", "severity": "error",
                                    "message": ""}),
    lambda p: p["findings"].append({"rule": "LP001", "severity": "error",
                                    "message": "x", "line": "12"}),
    lambda p: p["summary"].pop("suppressed"),
])
def test_validate_payload_rejects_schema_deviations(mutate):
    report = LintReport(targets=["t"])
    report.findings = [_finding()]
    payload = findings_to_payload(report)
    mutate(payload)
    with pytest.raises(ValueError):
        validate_payload(payload)


def test_apply_suppressions_attaches_reason():
    findings = [_finding(), _finding(rule="LP003")]
    apply_suppressions(findings, {"LP001": "known-safe"})
    assert findings[0].suppressed and findings[0].suppress_reason == "known-safe"
    assert not findings[1].suppressed


def test_render_text_orders_errors_first_and_summarizes():
    report = LintReport(targets=["t"])
    report.findings = [
        _finding(rule="LP006", severity=Severity.WARNING, line=1),
        _finding(line=50),
        _finding(rule="LP002", suppressed=True, suppress_reason="why"),
    ]
    text = render_text(report)
    lines = text.splitlines()
    assert "LP001" in lines[0]          # errors before warnings
    assert "fix: cover it" in lines[1]
    assert "LP006" in lines[2]
    assert "reason: why" in lines[-2]   # suppressed sink to the bottom
    assert lines[-1].startswith("lplint: 2 finding(s), 1 suppressed")
