"""Tests for the lplint static analyzer (repro.analysis)."""
