"""lplint target dispatch and the ``python -m repro lint`` CLI."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.findings import validate_payload
from repro.analysis.runner import expand_targets, lint_builtin, run_lint

FIXTURE = Path(__file__).parent.parent / "fixtures" / "lint" / "bad_kernel.cu"


def test_builtins_report_only_documented_suppressions():
    report, _, _ = lint_builtin()
    assert report.exit_code == 0
    assert report.findings, "MegaKV's conservative LP002s are expected"
    assert all(f.suppressed and f.suppress_reason for f in report.findings)
    assert len(report.targets) == 11  # 8 workloads + 3 MegaKV kernels


def test_run_lint_flags_seeded_bad_kernel():
    report, _, _ = run_lint([str(FIXTURE)])
    assert report.exit_code == 1
    rules = {f.rule for f in report.findings}
    # The acceptance criterion names LP001 + LP002; the fixture seeds
    # the sizing, race, and parity rules too.
    assert {"LP001", "LP002"} <= rules
    assert rules == {"LP001", "LP002", "LP003", "LP004", "LP006"}


def test_run_lint_missing_target_raises():
    with pytest.raises(FileNotFoundError):
        run_lint(["no/such/file.cu"])


def test_expand_targets_recurses_and_skips_pycache(tmp_path):
    (tmp_path / "a.cu").write_text("// cuda")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text("x = 1")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "c.py").write_text("x = 1")
    files = expand_targets([str(tmp_path)])
    assert [f.name for f in files] == ["a.cu", "b.py"]


def test_workload_and_example_sources_lint_clean():
    report, _, _ = run_lint(["src/repro/workloads", "examples"])
    assert report.exit_code == 0
    assert report.findings == []


def test_cli_lint_bad_kernel_exits_nonzero(capsys):
    rc = main(["lint", str(FIXTURE)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "LP001" in out and "LP002" in out
    assert "fix:" in out


def test_cli_lint_json_payload_validates(capsys):
    rc = main(["lint", str(FIXTURE), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    validate_payload(payload)
    assert rc == 1
    assert payload["exit_code"] == 1
    assert payload["targets"] == [str(FIXTURE)]


def test_cli_lint_builtin_is_green(capsys):
    rc = main(["lint", "builtin"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "suppressed" in out


def test_cli_lint_unknown_target_exits_2(capsys):
    rc = main(["lint", "no/such/path"])
    assert rc == 2
    assert "not found" in capsys.readouterr().err
