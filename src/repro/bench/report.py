"""Paper-style ASCII reporting for the experiment harness.

Formats experiment rows as fixed-width tables with paper-vs-measured
columns, the way the benchmark suite prints them and EXPERIMENTS.md
records them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def fmt_pct(value: float) -> str:
    """``0.021`` → ``'2.1%'`` (one decimal; more for tiny values)."""
    pct = value * 100.0
    if abs(pct) >= 1000:
        return f"{pct:,.0f}%"
    if abs(pct) >= 0.1:
        return f"{pct:.1f}%"
    return f"{pct:.3f}%"


def fmt_slowdown(value: float) -> str:
    """``1.07`` → ``'1.07x'``; large values get thousands separators."""
    if value >= 100:
        return f"{value:,.0f}x"
    return f"{value:.2f}x"


def fmt_count(value: int | float) -> str:
    """Collision-count style integer formatting."""
    return f"{int(round(value)):,}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    note: str | None = None,
) -> str:
    """Render one fixed-width table with a title rule."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        )

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, "=" * len(title), line(headers), rule]
    out += [line(r) for r in rows]
    if note:
        out += ["", f"note: {note}"]
    return "\n".join(out)


def render_bars(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    width: int = 46,
    clip: float | None = None,
    fmt=fmt_pct,
) -> str:
    """ASCII horizontal bar chart, one group of bars per key.

    ``series`` maps a row label to ``{series name: value}``. Values are
    scaled to the widest bar; ``clip`` truncates outliers the way the
    paper truncates MRI-GRIDDING's and SAD's bars off Figure 5's axis
    (clipped bars are marked with ``>``).
    """
    all_values = [v for group in series.values() for v in group.values()]
    if not all_values:
        raise ValueError("nothing to chart")
    scale_max = max(
        min(v, clip) if clip is not None else v for v in all_values
    )
    scale_max = max(scale_max, 1e-12)
    label_w = max(len(k) for k in series)
    name_w = max(len(n) for g in series.values() for n in g)

    lines = [title, "=" * len(title)]
    for label, group in series.items():
        for i, (name, value) in enumerate(group.items()):
            shown = min(value, clip) if clip is not None else value
            bar = "#" * max(1, int(round(width * shown / scale_max)))
            marker = ">" if clip is not None and value > clip else ""
            row_label = label if i == 0 else ""
            lines.append(
                f"{row_label:<{label_w}}  {name:<{name_w}} "
                f"|{bar}{marker} {fmt(value)}"
            )
        lines.append("")
    return "\n".join(lines[:-1])


def paired_columns(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    fmt=fmt_pct,
) -> list[list[str]]:
    """Rows of (name, measured, paper) in measured's key order."""
    rows = []
    for name, value in measured.items():
        paper_val = paper.get(name)
        rows.append([
            name,
            fmt(value),
            fmt(paper_val) if paper_val is not None else "-",
        ])
    return rows
