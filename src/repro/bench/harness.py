"""Analytic benchmark harness: baseline vs LP-variant overheads.

Given a paper-scale :class:`~repro.bench.profiles.BenchProfile` and an
:class:`~repro.core.config.LPConfig`, :func:`estimate` produces the
modeled execution-time overhead of that LP variant, decomposed into the
mechanisms DESIGN.md §5 describes:

* checksum updates + block reduction (table-independent; exactly the
  operation counts the functional runtime charges),
* checksum-table insertion: measured probe/collision counts (from
  :mod:`repro.bench.insertsim`) fed into the contention sub-models —
  same-region atomic saturation for lock-free hash tables, convoy
  serialization for lock-based ones, dependent-round-trip storms for
  the emulated-atomics ablation, and a single plain store for the
  global array.

The same functions drive every table/figure reproduction in
:mod:`repro.bench.experiments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.bench.insertsim import InsertSim, simulate_insertions
from repro.core.checksum import ChecksumSet
from repro.core.config import (
    AtomicMode,
    LockMode,
    LPConfig,
    ReductionMode,
    TableKind,
)
from repro.core.reduction import reduction_tally
from repro.core.tables.base import pow2_ceil
from repro.gpu.costs import CostModel, Tally, TimeBreakdown

#: Bytes per checksum-table word (key or lane).
_WORD = 8


@lru_cache(maxsize=None)
def cached_checksum_set(kinds) -> ChecksumSet:
    """One :class:`ChecksumSet` per checksum-kind tuple.

    ``estimate`` runs per (profile, config) pair across whole design
    spaces; the lane functions are stateless, so rebuilding the set on
    every call was pure allocation churn. ``LPConfig.checksums`` tuples
    hash by value, making them ideal cache keys.
    """
    return ChecksumSet(kinds)


def lp_update_and_reduction_tally(
    n_blocks: int,
    threads_per_block: int,
    stores_per_thread: float,
    config: LPConfig,
) -> Tally:
    """Tally of LP's table-independent work for a whole launch.

    Checksum updates per protected store plus the per-block reduction,
    using the same per-operation counts as the functional runtime
    (pinned by tests against :mod:`repro.core.reduction`).
    """
    cset = cached_checksum_set(config.checksums)
    tally = Tally(n_blocks=n_blocks, threads_per_block=threads_per_block)
    total_stores = n_blocks * threads_per_block * stores_per_thread
    tally.alu_ops += total_stores * cset.ops_per_update

    n_comm = sum(1 for k in config.checksums if k.commutative)
    red = reduction_tally(config.reduction, threads_per_block, n_comm)
    tally.alu_ops += red.alu_ops * n_blocks
    tally.shuffle_ops += red.shuffle_ops * n_blocks
    tally.shared_bytes += red.shared_bytes * n_blocks
    tally.global_read_bytes += red.global_bytes / 2 * n_blocks
    tally.global_write_bytes += red.global_bytes / 2 * n_blocks
    tally.syncthreads += red.syncthreads * n_blocks

    if config.reduction is ReductionMode.SEQUENTIAL_MEMORY:
        # The no-shuffle variant additionally stages every checksum
        # update through shared/global memory ("we store data to these
        # memories and calculate checksums sequentially", §IV-D-5),
        # which is what crushes the bandwidth-bound benchmarks.
        staged = total_stores * _WORD * n_comm
        tally.shared_bytes += 2 * staged
        tally.global_read_bytes += staged
        tally.global_write_bytes += staged
    return tally


def lp_added_cycles(
    n_blocks: int,
    threads_per_block: int,
    stores_per_thread: float,
    config: LPConfig,
    model: CostModel,
) -> float:
    """Standalone time of LP's table-independent work (coarse anchor)."""
    tally = lp_update_and_reduction_tally(
        n_blocks, threads_per_block, stores_per_thread, config
    )
    return model.time_of(tally).total_cycles


@dataclass(frozen=True)
class LPEstimate:
    """Modeled cost of one LP variant on one paper-scale benchmark."""

    profile_name: str
    config: LPConfig
    baseline: TimeBreakdown
    lp: TimeBreakdown
    insert_sim: InsertSim
    table_bytes: float
    protected_bytes: float

    @property
    def overhead(self) -> float:
        """Fractional execution-time overhead (0.021 = 2.1 %)."""
        return self.lp.overhead_vs(self.baseline)

    @property
    def slowdown(self) -> float:
        """Multiplicative slowdown (Table III's unit)."""
        return self.lp.slowdown_vs(self.baseline)

    @property
    def space_overhead(self) -> float:
        """Checksum-table bytes / protected data bytes (Table V)."""
        return self.table_bytes / self.protected_bytes


def table_space_bytes(config: LPConfig, n_keys: int) -> float:
    """Device footprint of the checksum table a config would allocate.

    Mirrors the sizing logic of :mod:`repro.core.tables` (pinned by a
    test against the functional tables' ``space_bytes``).
    """
    lanes = len(config.checksums)
    if config.table is TableKind.GLOBAL_ARRAY:
        return n_keys * lanes * _WORD
    if config.table is TableKind.QUADRATIC:
        cap = pow2_ceil(int(math.ceil(n_keys / config.quad_target_load_factor)))
        return cap * (1 + lanes) * _WORD
    per_table = pow2_ceil(
        int(math.ceil(n_keys / (2 * config.cuckoo_target_load_factor)))
    )
    return 2 * per_table * (1 + lanes) * _WORD


def insertion_tally(
    config: LPConfig,
    n_blocks: int,
    threads_per_block: int,
    sim: InsertSim,
    model: CostModel,
    baseline: TimeBreakdown,
) -> Tally:
    """Tally of the checksum-table insertion phase for a launch.

    The contention model: block leaders' insertions all target the same
    small table region, whose atomic units serve one operation per
    :attr:`~repro.gpu.costs.CostCoefficients.table_region_interval_cycles`.
    While that demand fits inside the kernel's own runtime it hides
    behind the computation; the excess serializes at the tail. This
    saturation is what separates MRI-GRIDDING and SAD (short kernels,
    huge grids) from everything else in Figure 5.
    """
    spec = model.spec
    lanes = len(config.checksums)
    tally = Tally(n_blocks=n_blocks, threads_per_block=1)

    # Entry traffic: every successful insert writes key + lane words;
    # each probe touches a key word.
    tally.global_write_bytes += n_blocks * (1 + lanes) * _WORD
    tally.global_read_bytes += sim.probes * _WORD

    if config.table is TableKind.GLOBAL_ARRAY:
        # One uncontended store per block; no key, no probes, no atomics.
        tally.global_read_bytes = 0.0
        tally.global_write_bytes = n_blocks * lanes * _WORD
        return tally

    slack = baseline.overlapped_cycles
    if config.atomics is AtomicMode.EMULATED:
        # The plain load/store sequences still hit the same contended
        # lines; their L2 service is no cheaper than the atomics they
        # replace, so the atomic-unit floor applies either way.
        tally.atomic_ops += sim.probes
        if config.table is TableKind.QUADRATIC:
            tally.serial_cycles += model.emulated_cas_cycles(
                sim.collisions, n_blocks, threads_per_block,
                slack_cycles=slack,
            )
        else:
            tally.serial_cycles += model.emulated_swap_cycles(
                sim.collisions, n_blocks, threads_per_block,
                slack_cycles=slack,
            )
    else:
        tally.atomic_ops += sim.probes
        factor = (model.coeff.cuckoo_exch_factor
                  if config.table is TableKind.CUCKOO else 1.0)
        demand = (sim.collisions * factor
                  * model.coeff.table_region_interval_cycles)
        tally.serial_cycles += max(0.0, demand - slack)

    if config.locks is LockMode.LOCK_BASED:
        avg_chain = sim.probes / max(sim.n_keys, 1)
        cs_extra = avg_chain * spec.global_latency_cycles
        tally.serial_cycles += model.lock_convoy_cycles(
            n_blocks,
            cs_extra_cycles=cs_extra,
            population=n_blocks,
            threads_per_block=threads_per_block,
        )
    return tally


def dilation_weight(config: LPConfig) -> float:
    """Scale of the occupancy-dilation anchor with the checksum choice.

    LP instrumentation costs registers and scheduling slots roughly in
    proportion to the checksum lanes each thread carries and the work
    each update performs. The paper's recommendation — two lanes, three
    ops per update — is the anchor point (weight 1.0); single-checksum
    variants dilute slightly less (Section VII-2's "minor additional
    overheads" for the second checksum) and Adler-32's eight-op updates
    dilute substantially more ("significantly more expensive",
    Section IV-B).
    """
    cset = cached_checksum_set(config.checksums)
    return 0.5 + 0.125 * cset.n_lanes + (0.25 / 3.0) * cset.ops_per_update


def estimate(
    profile,
    config: LPConfig,
    model: CostModel | None = None,
    perfect_hash: bool = False,
) -> LPEstimate:
    """Modeled overhead of one LP variant on one benchmark profile."""
    model = model or CostModel()
    base_tally = profile.baseline_tally(model)
    baseline = model.time_of(base_tally)

    lp_tally = base_tally.copy()
    lp_tally.merge(
        lp_update_and_reduction_tally(
            profile.n_blocks,
            profile.threads_per_block,
            profile.stores_per_thread,
            config,
        )
    )
    sim = simulate_insertions(config, profile.n_blocks,
                              perfect_hash=perfect_hash)
    lp_tally.merge(
        insertion_tally(config, profile.n_blocks,
                        profile.threads_per_block, sim, model, baseline)
    )

    # Occupancy dilation: the calibrated per-benchmark anchor (see
    # profiles.py) applied to the dominant pipe.
    dilation = getattr(profile, "lp_dilation", 0.0) * dilation_weight(config)
    if dilation > 0.0:
        if profile.bottleneck == "bw":
            extra = dilation * base_tally.global_bytes
            lp_tally.global_read_bytes += extra
        else:
            lp_tally.alu_ops += dilation * base_tally.alu_ops

    if config.reduction is ReductionMode.SEQUENTIAL_MEMORY:
        # One thread folds the whole block's staged checksums while the
        # block waits; the exposed shared-memory latency extends every
        # resident wave's critical path.
        n_comm = sum(1 for k in config.checksums if k.commutative)
        per_block = (profile.threads_per_block * n_comm
                     * model.coeff.shared_read_latency_cycles)
        waiters = model.concurrent_waiters(
            profile.n_blocks, profile.threads_per_block
        )
        waves = math.ceil(profile.n_blocks / waiters)
        lp_tally.serial_cycles += per_block * waves

    lp_time = model.time_of(lp_tally)

    n_keys = profile.n_blocks
    if perfect_hash and config.table is not TableKind.GLOBAL_ARRAY:
        table_bytes = float(
            pow2_ceil(n_keys) * (1 + len(config.checksums)) * _WORD
        )
        if config.table is TableKind.CUCKOO:
            table_bytes *= 2
    else:
        table_bytes = table_space_bytes(config, n_keys)

    return LPEstimate(
        profile_name=profile.name,
        config=config,
        baseline=baseline,
        lp=lp_time,
        insert_sim=sim,
        table_bytes=table_bytes,
        protected_bytes=profile.protected_data_bytes,
    )


def geomean_overhead(overheads) -> float:
    """Geometric-mean overhead of a set of fractional overheads.

    Matches the paper's convention: the geometric mean is taken over
    slowdowns (``1 + overhead``), then converted back to an overhead.
    """
    overheads = list(overheads)
    if not overheads:
        raise ValueError("no overheads to aggregate")
    log_sum = sum(math.log(1.0 + o) for o in overheads)
    return math.exp(log_sum / len(overheads)) - 1.0


def geomean_slowdown(slowdowns) -> float:
    """Geometric mean of multiplicative slowdowns (Table III's row)."""
    slowdowns = list(slowdowns)
    if not slowdowns:
        raise ValueError("no slowdowns to aggregate")
    return math.exp(sum(math.log(s) for s in slowdowns) / len(slowdowns))
