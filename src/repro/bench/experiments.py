"""Experiment registry: one reproduction per paper table / figure.

Each experiment returns an :class:`ExperimentResult` holding structured
rows (for assertions in the benchmark suite), a rendered paper-style
table (printed by the benches, recorded in EXPERIMENTS.md), and a
``fidelity`` dict of named shape checks — the claims of the paper that
the reproduction is expected to preserve (who wins, what explodes,
where the crossovers are).

Registry:

====================  =====================================================
``fig5``              hash-table overheads, Quad vs Cuckoo
``table2``            collision counts
``collision_ablation``  §IV-D-2, collisions removed
``atomic_ablation``   §IV-D-3, emulated (non-atomic) primitives
``table3``            lock-based vs lock-free slowdowns
``table4``            parallel vs sequential reduction
``table5``            the global array: time + space overheads
``multi_checksum``    §VII-2, one vs two simultaneous checksums
``write_amp``         §VII-3, NVM write amplification (functional)
``megakv``            §VII-4, key-value store op overheads (functional)
``fig1``              warp shuffle reduction: O(log N) steps, exactness
``fnr``               §IV-B, checksum false negatives under injection
``ep_vs_lp``          extension: Eager Persistency baseline comparison
``fusion``            extension: thread-block fusion of LP regions
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench import paper_data
from repro.bench.harness import (
    LPEstimate,
    estimate,
    geomean_overhead,
    geomean_slowdown,
)
from repro.bench.insertsim import simulate_insertions
from repro.bench.profiles import PROFILES
from repro.bench.report import (
    fmt_count,
    fmt_pct,
    fmt_slowdown,
    render_bars,
    render_table,
)
from repro.core.config import (
    AtomicMode,
    ChecksumKind,
    LockMode,
    LPConfig,
    ReductionMode,
)

#: Benchmarks in paper row order.
BENCHES = paper_data.BENCHES


@dataclass
class ExperimentResult:
    """Output of one experiment reproduction."""

    exp_id: str
    title: str
    rows: list[dict]
    rendered: str
    fidelity: dict[str, bool] = field(default_factory=dict)

    @property
    def fidelity_ok(self) -> bool:
        """True when every shape check held."""
        return all(self.fidelity.values())


def _estimates(config: LPConfig, **kw) -> dict[str, LPEstimate]:
    return {name: estimate(PROFILES[name], config, **kw) for name in BENCHES}


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

def fig5() -> ExperimentResult:
    """Naive LP overheads: quadratic probing vs cuckoo hashing."""
    quad = _estimates(LPConfig.naive_quadratic())
    cuckoo = _estimates(LPConfig.naive_cuckoo())
    rows = []
    for name in BENCHES:
        rows.append({
            "bench": name,
            "quad": quad[name].overhead,
            "quad_paper": paper_data.FIG5_QUAD[name],
            "cuckoo": cuckoo[name].overhead,
            "cuckoo_paper": paper_data.FIG5_CUCKOO[name],
        })
    gm_q = geomean_overhead(r["quad"] for r in rows)
    gm_c = geomean_overhead(r["cuckoo"] for r in rows)
    rows.append({
        "bench": "geomean", "quad": gm_q,
        "quad_paper": paper_data.FIG5_GEOMEAN["quad"],
        "cuckoo": gm_c, "cuckoo_paper": paper_data.FIG5_GEOMEAN["cuckoo"],
    })

    quad_sorted = sorted(BENCHES, key=lambda n: quad[n].overhead)
    fidelity = {
        # The two huge-grid benchmarks dominate the quad overheads.
        "quad_worst_are_big_grids": set(quad_sorted[-2:]) == {
            "mri-gridding", "sad"
        },
        "quad_geomean_band": 0.10 <= gm_q <= 0.60,
        "cuckoo_beats_quad_on_gridding": (
            cuckoo["mri-gridding"].overhead < quad["mri-gridding"].overhead
        ),
        "small_grids_cheap": all(
            quad[n].overhead < 0.10
            for n in ("tpacf", "histo", "cutcp", "mri-q")
        ),
    }
    rendered = render_table(
        "Figure 5 — naive LP overhead vs baseline (lock-free, shuffle)",
        ["bench", "quad", "paper", "cuckoo", "paper"],
        [[r["bench"], fmt_pct(r["quad"]), fmt_pct(r["quad_paper"]),
          fmt_pct(r["cuckoo"]), fmt_pct(r["cuckoo_paper"])] for r in rows],
    )
    # The paper presents this as a bar chart with the two outliers
    # truncated off the axis; do the same.
    rendered += "\n\n" + render_bars(
        "Figure 5 (as bars; clipped at 60% like the paper's axis)",
        {r["bench"]: {"quad": r["quad"], "cuckoo": r["cuckoo"]}
         for r in rows if r["bench"] != "geomean"},
        clip=0.60,
    )
    return ExperimentResult("fig5", "Hash-table LP overheads", rows,
                            rendered, fidelity)


# ---------------------------------------------------------------------------
# Table II + the collision ablation
# ---------------------------------------------------------------------------

def table2() -> ExperimentResult:
    """Collision counts of the two hash tables at paper-scale grids."""
    rows = []
    for name in BENCHES:
        blocks = PROFILES[name].n_blocks
        q = simulate_insertions(LPConfig.naive_quadratic(), blocks)
        c = simulate_insertions(LPConfig.naive_cuckoo(), blocks)
        rows.append({
            "bench": name,
            "blocks": blocks,
            "quad": q.collisions,
            "quad_paper": paper_data.TABLE2_COLLISIONS[name]["quad"],
            "cuckoo": c.collisions,
            "cuckoo_paper": paper_data.TABLE2_COLLISIONS[name]["cuckoo"],
        })
    big = {"tmm", "mri-gridding", "sad"}
    small_max = max(r["quad"] for r in rows if r["bench"] not in big)
    big_min = min(r["quad"] for r in rows if r["bench"] in big)
    fidelity = {
        "collisions_concentrate_on_big_grids": big_min > 5 * small_max,
        "collisions_grow_with_blocks": (
            sorted(rows, key=lambda r: r["blocks"])[-1]["quad"]
            == max(r["quad"] for r in rows)
        ),
    }
    rendered = render_table(
        "Table II — hash-table collisions",
        ["bench", "blocks", "quad", "paper", "cuckoo", "paper"],
        [[r["bench"], fmt_count(r["blocks"]), fmt_count(r["quad"]),
          fmt_count(r["quad_paper"]), fmt_count(r["cuckoo"]),
          fmt_count(r["cuckoo_paper"])] for r in rows],
        note="absolute counts depend on hash functions and sizing; the "
             "paper's key observation — collisions concentrate on the "
             "huge-grid benchmarks — is the reproduced shape",
    )
    return ExperimentResult("table2", "Collision counts", rows, rendered,
                            fidelity)


def collision_ablation() -> ExperimentResult:
    """§IV-D-2: remove collisions from MRI-GRIDDING's insertions."""
    profile = PROFILES["mri-gridding"]
    rows = []
    for label, config in (
        ("quad", LPConfig.naive_quadratic()),
        ("cuckoo", LPConfig.naive_cuckoo()),
    ):
        with_col = estimate(profile, config)
        without = estimate(profile, config, perfect_hash=True)
        rows.append({
            "table": label,
            "with_collisions": with_col.overhead,
            "collision_free": without.overhead,
            "paper_collision_free": paper_data.COLLISION_ABLATION[label],
        })
    fidelity = {
        "overhead_collapses_without_collisions": all(
            r["collision_free"] < 0.15 * max(r["with_collisions"], 1e-9)
            or r["collision_free"] < 0.05
            for r in rows
        ),
    }
    rendered = render_table(
        "Collision ablation — MRI-GRIDDING (SS IV-D-2)",
        ["table", "with collisions", "collision-free", "paper (c-free)"],
        [[r["table"], fmt_pct(r["with_collisions"]),
          fmt_pct(r["collision_free"]),
          fmt_pct(r["paper_collision_free"])] for r in rows],
        note="the paper's conclusion: 'much of the slowdown comes from "
             "hash table collision'",
    )
    return ExperimentResult("collision_ablation",
                            "Collision-free MRI-GRIDDING", rows, rendered,
                            fidelity)


def atomic_ablation() -> ExperimentResult:
    """§IV-D-3: replace atomics with plain load/store sequences."""
    rows = []
    for name in BENCHES:
        p = PROFILES[name]
        q_hw = estimate(p, LPConfig.naive_quadratic())
        q_em = estimate(
            p, LPConfig.naive_quadratic().with_(atomics=AtomicMode.EMULATED)
        )
        c_hw = estimate(p, LPConfig.naive_cuckoo())
        c_em = estimate(
            p, LPConfig.naive_cuckoo().with_(atomics=AtomicMode.EMULATED)
        )
        rows.append({
            "bench": name,
            "quad_hw": q_hw.overhead, "quad_emulated": q_em.slowdown,
            "cuckoo_hw": c_hw.overhead, "cuckoo_emulated": c_em.overhead,
        })
    gm_q = geomean_slowdown(r["quad_emulated"] for r in rows)
    gm_c = geomean_overhead(r["cuckoo_emulated"] for r in rows)
    fidelity = {
        "quad_emulated_blows_up": gm_q >= 8.0,
        "cuckoo_emulated_mild": 0.1 <= gm_c <= 1.5,
        "atomics_never_slower": all(
            r["quad_hw"] + 1.0 <= r["quad_emulated"] + 1e-9
            and r["cuckoo_hw"] <= r["cuckoo_emulated"] + 1e-9
            for r in rows
        ),
    }
    rendered = render_table(
        "Atomic ablation (SS IV-D-3) — hardware atomics vs emulation",
        ["bench", "quad hw", "quad emul", "cuckoo hw", "cuckoo emul"],
        [[r["bench"], fmt_pct(r["quad_hw"]),
          fmt_slowdown(r["quad_emulated"]), fmt_pct(r["cuckoo_hw"]),
          fmt_pct(r["cuckoo_emulated"])] for r in rows]
        + [["geomean", "-", fmt_slowdown(gm_q), "-", fmt_pct(gm_c)]],
        note=f"paper: cuckoo 41.9% and quad >16x without atomics; "
             f"measured geomeans {gm_q:.1f}x (quad), {gm_c * 100:.1f}% "
             "(cuckoo) — using atomics improves performance",
    )
    return ExperimentResult("atomic_ablation", "Atomics vs emulation",
                            rows, rendered, fidelity)


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

def table3() -> ExperimentResult:
    """Lock-based vs lock-free insertion slowdowns."""
    rows = []
    for name in BENCHES:
        p = PROFILES[name]
        qf = estimate(p, LPConfig.naive_quadratic())
        ql = estimate(
            p, LPConfig.naive_quadratic().with_(locks=LockMode.LOCK_BASED)
        )
        cf = estimate(p, LPConfig.naive_cuckoo())
        cl = estimate(
            p, LPConfig.naive_cuckoo().with_(locks=LockMode.LOCK_BASED)
        )
        paper_row = paper_data.TABLE3_SLOWDOWN[name]
        rows.append({
            "bench": name, "blocks": p.n_blocks,
            "quad_free": qf.slowdown, "quad_lock": ql.slowdown,
            "cuckoo_free": cf.slowdown, "cuckoo_lock": cl.slowdown,
            "paper_quad_lock": paper_row["quad_lock"],
            "paper_cuckoo_lock": paper_row["cuckoo_lock"],
        })
    gm = {
        "quad_free": geomean_slowdown(r["quad_free"] for r in rows),
        "quad_lock": geomean_slowdown(r["quad_lock"] for r in rows),
        "cuckoo_free": geomean_slowdown(r["cuckoo_free"] for r in rows),
        "cuckoo_lock": geomean_slowdown(r["cuckoo_lock"] for r in rows),
    }
    by_blocks = sorted(rows, key=lambda r: r["blocks"])
    fidelity = {
        "lock_always_worse": all(
            r["quad_lock"] > r["quad_free"]
            and r["cuckoo_lock"] > r["cuckoo_free"] for r in rows
        ),
        "big_grids_catastrophic": all(
            r["quad_lock"] > 500 for r in rows
            if r["bench"] in ("mri-gridding", "sad")
        ),
        "small_grid_mild": by_blocks[0]["quad_lock"] < 2.0,
        "lock_geomean_tens_x": 5.0 <= gm["quad_lock"] <= 120.0,
    }
    rendered = render_table(
        "Table III — lock-based vs lock-free slowdowns",
        ["bench", "q free", "q lock", "paper", "c free", "c lock",
         "paper", "blocks"],
        [[r["bench"], fmt_slowdown(r["quad_free"]),
          fmt_slowdown(r["quad_lock"]), fmt_slowdown(r["paper_quad_lock"]),
          fmt_slowdown(r["cuckoo_free"]), fmt_slowdown(r["cuckoo_lock"]),
          fmt_slowdown(r["paper_cuckoo_lock"]), fmt_count(r["blocks"])]
         for r in rows]
        + [["geomean", fmt_slowdown(gm["quad_free"]),
            fmt_slowdown(gm["quad_lock"]), "36.62x",
            fmt_slowdown(gm["cuckoo_free"]),
            fmt_slowdown(gm["cuckoo_lock"]), "31.73x", "-"]],
    )
    return ExperimentResult("table3", "Locks vs lock-free", rows, rendered,
                            fidelity)


# ---------------------------------------------------------------------------
# Table IV
# ---------------------------------------------------------------------------

def table4() -> ExperimentResult:
    """Parallel (shuffle) vs sequential (through-memory) reduction."""
    rows = []
    for name in BENCHES:
        p = PROFILES[name]
        entries = {}
        for table_label, base_cfg in (
            ("quad", LPConfig.naive_quadratic()),
            ("cuckoo", LPConfig.naive_cuckoo()),
        ):
            entries[f"{table_label}_shfl"] = estimate(p, base_cfg).overhead
            entries[f"{table_label}_no"] = estimate(
                p, base_cfg.with_(reduction=ReductionMode.SEQUENTIAL_MEMORY)
            ).overhead
        entries["bench"] = name
        entries["paper"] = paper_data.TABLE4_REDUCTION[name]
        rows.append(entries)
    gm = {
        key: geomean_overhead(r[key] for r in rows)
        for key in ("quad_shfl", "quad_no", "cuckoo_shfl", "cuckoo_no")
    }
    bw = ("spmv", "sad", "histo")
    inst = ("tpacf", "cutcp", "mri-q")

    def rel_increase(r, t):  # no-shuffle penalty relative to baseline
        return r[f"{t}_no"] - r[f"{t}_shfl"]

    bw_penalty = np.mean([rel_increase(r, "quad") for r in rows
                          if r["bench"] in bw])
    inst_penalty = np.mean([rel_increase(r, "quad") for r in rows
                            if r["bench"] in inst])
    fidelity = {
        "no_shuffle_never_faster": all(
            r["quad_no"] >= r["quad_shfl"] - 1e-9
            and r["cuckoo_no"] >= r["cuckoo_shfl"] - 1e-9 for r in rows
        ),
        "geomean_increases": gm["quad_no"] > gm["quad_shfl"]
        and gm["cuckoo_no"] > gm["cuckoo_shfl"],
        "bandwidth_bound_suffer_more": bw_penalty > 3 * inst_penalty,
    }
    rendered = render_table(
        "Table IV — with vs without parallel (shuffle) reduction",
        ["bench", "quad+shfl", "paper", "quad+no", "paper",
         "cuckoo+shfl", "cuckoo+no"],
        [[r["bench"], fmt_pct(r["quad_shfl"]),
          fmt_pct(r["paper"]["quad_shfl"]), fmt_pct(r["quad_no"]),
          fmt_pct(r["paper"]["quad_no"]), fmt_pct(r["cuckoo_shfl"]),
          fmt_pct(r["cuckoo_no"])] for r in rows]
        + [["geomean", fmt_pct(gm["quad_shfl"]), "29.4%",
            fmt_pct(gm["quad_no"]), "63.3%", fmt_pct(gm["cuckoo_shfl"]),
            fmt_pct(gm["cuckoo_no"])]],
        note="SPMV's paper value (437.6%) is far above the traffic this "
             "model can attribute to reduction staging; the direction "
             "(bandwidth-bound kernels hurt most) reproduces",
    )
    return ExperimentResult("table4", "Reduction ablation", rows, rendered,
                            fidelity)


# ---------------------------------------------------------------------------
# Table V
# ---------------------------------------------------------------------------

def table5() -> ExperimentResult:
    """The paper's final design: global array + shuffle."""
    best = _estimates(LPConfig.paper_best())
    rows = []
    for name in BENCHES:
        e = best[name]
        paper_row = paper_data.TABLE5_ARRAY_SHUFFLE[name]
        rows.append({
            "bench": name,
            "time": e.overhead, "time_paper": paper_row["time"],
            "space": e.space_overhead, "space_paper": paper_row["space"],
        })
    gm_time = geomean_overhead(r["time"] for r in rows)
    gm_space = geomean_overhead(r["space"] for r in rows)
    quad = _estimates(LPConfig.naive_quadratic())
    fidelity = {
        "geomean_time_near_paper": abs(gm_time - 0.021) < 0.01,
        "always_beats_hash_tables": all(
            best[n].overhead <= quad[n].overhead + 1e-9 for n in BENCHES
        ),
        "space_overhead_small": gm_space < 0.06,
        "sad_has_largest_space": max(
            rows, key=lambda r: r["space"]
        )["bench"] == "sad",
    }
    rendered = render_table(
        "Table V — array+shuffle (the paper's final design)",
        ["bench", "time", "paper", "space", "paper"],
        [[r["bench"], fmt_pct(r["time"]), fmt_pct(r["time_paper"]),
          fmt_pct(r["space"]), fmt_pct(r["space_paper"])] for r in rows]
        + [["geomean", fmt_pct(gm_time), "2.1%", fmt_pct(gm_space),
            "1.63%"]],
        note="time column anchors the per-benchmark calibration "
             "(DESIGN.md SS2); space is predicted, not anchored",
    )
    return ExperimentResult("table5", "Global array design", rows, rendered,
                            fidelity)


# ---------------------------------------------------------------------------
# §VII-2 — multiple checksums
# ---------------------------------------------------------------------------

def multi_checksum() -> ExperimentResult:
    """One vs two simultaneous checksums on TMM with quadratic probing.

    Adler-32 — the checksum the paper rejects — is included for the
    record: it is order-sensitive, so it forfeits the shuffle reduction
    (sequential through-memory instead) on top of its higher per-update
    cost, which is exactly why it loses on GPUs (Section IV-B).
    """
    profile = PROFILES["tmm"]
    variants = {
        "parity": LPConfig.naive_quadratic().with_(
            checksums=(ChecksumKind.PARITY,)
        ),
        "modular": LPConfig.naive_quadratic().with_(
            checksums=(ChecksumKind.MODULAR,)
        ),
        "both": LPConfig.naive_quadratic(),
        "adler32": LPConfig.naive_quadratic().with_(
            checksums=(ChecksumKind.ADLER32,),
            reduction=ReductionMode.SEQUENTIAL_MEMORY,
        ),
    }
    rows = [
        {
            "variant": label,
            "overhead": estimate(profile, cfg).overhead,
            "paper": paper_data.MULTI_CHECKSUM_TMM.get(label),
        }
        for label, cfg in variants.items()
    ]
    by = {r["variant"]: r["overhead"] for r in rows}
    fidelity = {
        "both_costs_more_than_one": by["both"] > max(by["parity"],
                                                     by["modular"]),
        "second_checksum_is_cheap": (
            by["both"] <= 1.5 * max(by["parity"], by["modular"])
        ),
        # "Adler-32 is significantly more expensive than modular."
        "adler32_most_expensive": by["adler32"] > by["both"],
    }
    rendered = render_table(
        "Multiple checksums on TMM + quadratic probing (SS VII-2)",
        ["variant", "overhead", "paper"],
        [[r["variant"], fmt_pct(r["overhead"]),
          fmt_pct(r["paper"]) if r["paper"] is not None else "-"]
         for r in rows],
        note="combining modular and parity drives the false-negative "
             "bound below 1e-12 for a small bump in overhead; Adler-32 "
             "(no paper column) additionally loses the shuffle "
             "reduction because it is order-sensitive",
    )
    return ExperimentResult("multi_checksum", "Checksum combinations",
                            rows, rendered, fidelity)


# ---------------------------------------------------------------------------
# §VII-3 — write amplification (functional, on the simulator)
# ---------------------------------------------------------------------------

def write_amplification(scale: str = "medium") -> ExperimentResult:
    """NVM line writes, LP vs baseline, on the functional simulator.

    Runs each workload twice on an NVM-timed device (the paper's
    GPGPU-sim setup: 326.4 GB/s, 160/480 ns) and counts persistence-
    domain line writes. LP's only extra writes are the checksum stores,
    so amplification scales as (checksum bytes)/(data bytes); the
    functional scale has smaller blocks than the paper's, so the
    analytic paper-scale ratio is reported alongside.
    """
    from repro.core.runtime import LPRuntime
    from repro.gpu.device import Device
    from repro.gpu.spec import NVMSpec
    from repro.nvm.model import write_amplification as amp
    from repro.workloads import make_workload

    rows = []
    for name in ("spmv", "tmm", "sad"):
        baseline_dev = Device(nvm=NVMSpec.paper_nvm())
        work = make_workload(name, scale=scale)
        kernel = work.setup(baseline_dev)
        baseline_dev.launch(kernel)
        baseline_dev.drain()

        lp_dev = Device(nvm=NVMSpec.paper_nvm())
        work2 = make_workload(name, scale=scale)
        kernel2 = work2.setup(lp_dev)
        lp_kernel = LPRuntime(lp_dev, LPConfig.paper_best()).instrument(
            kernel2
        )
        lp_dev.launch(lp_kernel)
        lp_dev.drain()

        measured = amp(lp_dev.memory.write_stats,
                       baseline_dev.memory.write_stats)
        profile = PROFILES[name]
        analytic = (
            profile.n_blocks * 2 * 8 / profile.protected_data_bytes
        )
        rows.append({
            "bench": name,
            "measured": measured,
            "paper_scale_analytic": analytic,
            "baseline_lines": baseline_dev.memory.write_stats.total_lines,
            "lp_lines": lp_dev.memory.write_stats.total_lines,
        })
    fidelity = {
        "amplification_small": all(r["measured"] < 0.25 for r in rows),
        "analytic_small": all(
            r["paper_scale_analytic"] < 0.15 for r in rows
        ),
        "lp_writes_strictly_more": all(
            r["lp_lines"] > r["baseline_lines"] for r in rows
        ),
    }
    rendered = render_table(
        "Write amplification (SS VII-3) — NVM line writes, LP vs baseline",
        ["bench", "measured", "paper-scale analytic", "paper band"],
        [[r["bench"], fmt_pct(r["measured"]),
          fmt_pct(r["paper_scale_analytic"]), "0.5% - 2.2%"]
         for r in rows],
        note="functional scale uses smaller blocks, so the checksum/"
             "data byte ratio (and thus amplification) is higher than "
             "at paper scale; LP writes only checksums extra — no "
             "flushes, no logs",
    )
    return ExperimentResult("write_amp", "Write amplification", rows,
                            rendered, fidelity)


# ---------------------------------------------------------------------------
# §VII-4 — MEGA-KV (functional, on the simulator)
# ---------------------------------------------------------------------------

def megakv_overheads(n_records: int = 16384,
                     threads_per_block: int = 64) -> ExperimentResult:
    """LP overhead of MEGA-KV insert / search / delete batches.

    The paper's real-world evaluation: batches of 16K records. Modeled
    kernel cycles of the LP-instrumented batch vs the plain batch.
    """
    from repro.gpu.device import Device
    from repro.megakv import KVBatchSession, MegaKVStore
    from repro.megakv.kernels import (
        KVDeleteKernel,
        KVInsertKernel,
        KVSearchKernel,
        alloc_results,
    )
    from repro.workloads.generators import key_value_records

    rng = np.random.default_rng(42)
    keys, vals = key_value_records(rng, n_records)

    # Baseline: plain kernels, no LP.
    base_dev = Device()
    base_store = MegaKVStore(base_dev, capacity=n_records)
    base_cycles = {}
    ins = KVInsertKernel(base_store, keys, vals, threads_per_block)
    base_cycles["insert"] = base_dev.launch(ins).total_cycles
    alloc_results(base_dev, "base_results", n_records)
    srch = KVSearchKernel(base_store, keys, "base_results",
                          threads_per_block)
    base_cycles["search"] = base_dev.launch(srch).total_cycles
    dele = KVDeleteKernel(base_store, keys, threads_per_block)
    base_cycles["delete"] = base_dev.launch(dele).total_cycles

    # LP: the same batches through an instrumented session.
    lp_dev = Device()
    lp_store = MegaKVStore(lp_dev, capacity=n_records)
    session = KVBatchSession(lp_dev, lp_store,
                             threads_per_block=threads_per_block)
    lp_cycles = {
        "insert": session.insert(keys, vals).launch.total_cycles,
        "search": session.search(keys).launch.total_cycles,
        "delete": session.delete(keys).launch.total_cycles,
    }

    rows = [
        {
            "op": op,
            "overhead": lp_cycles[op] / base_cycles[op] - 1.0,
            "paper": paper_data.MEGAKV_OVERHEAD[op],
        }
        for op in ("search", "delete", "insert")
    ]
    fidelity = {
        "all_overheads_small": all(r["overhead"] < 0.25 for r in rows),
        "all_overheads_positive": all(r["overhead"] > 0 for r in rows),
    }
    rendered = render_table(
        f"MEGA-KV LP overheads (SS VII-4), {n_records} records/batch",
        ["op", "overhead", "paper"],
        [[r["op"], fmt_pct(r["overhead"]), fmt_pct(r["paper"])]
         for r in rows],
    )
    return ExperimentResult("megakv", "MEGA-KV overheads", rows, rendered,
                            fidelity)


# ---------------------------------------------------------------------------
# Figure 1 — warp shuffle reduction microbenchmark
# ---------------------------------------------------------------------------

def fig1() -> ExperimentResult:
    """Shuffle reduction: log2(32) steps, bit-exact lane values."""
    from repro.core.checksum import ChecksumSet
    from repro.core.config import PAPER_CHECKSUM_PAIR
    from repro.core.reduction import reduce_parallel, reduce_sequential
    from repro.gpu.warp import WARP_SIZE, warp_reduce

    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 32, size=256).astype(np.uint64)
    _, steps = warp_reduce(values, "add")

    cset = ChecksumSet(PAPER_CHECKSUM_PAIR)
    state = cset.new_block_state(256)
    state.update(values.view(np.float64), np.arange(256))
    par = reduce_parallel(state)
    seq = reduce_sequential(state)

    rows = [{
        "warp_size": WARP_SIZE,
        "shuffle_steps": steps,
        "sequential_steps": WARP_SIZE - 1,
        "parallel_equals_sequential": bool(np.array_equal(par, seq)),
    }]
    fidelity = {
        "log_steps": steps == 5,
        "exact": rows[0]["parallel_equals_sequential"],
    }
    rendered = render_table(
        "Figure 1 — warp-level shuffle reduction",
        ["warp size", "shuffle steps", "sequential steps", "bit-exact"],
        [[str(WARP_SIZE), str(steps), str(WARP_SIZE - 1),
          str(rows[0]["parallel_equals_sequential"])]],
        note="O(log N) register-to-register steps replace O(N) "
             "through-memory folding",
    )
    return ExperimentResult("fig1", "Shuffle reduction", rows, rendered,
                            fidelity)


# ---------------------------------------------------------------------------
# §IV-B — false-negative rates
# ---------------------------------------------------------------------------

def false_negative_rates(n_trials: int = 400) -> ExperimentResult:
    """Random error injection vs checksum detection.

    Random single-bit flips are detected by every lane; the interesting
    cases are *engineered* cancellations: a pair of identical flips
    cancels in parity (XOR) but not in the modular sum, and a +x/-x
    value swap cancels in the modular sum but not in parity — which is
    exactly why the paper runs both simultaneously.
    """
    from repro.core.checksum import ChecksumSet, to_lane_words

    rng = np.random.default_rng(7)
    region = 256

    def detects(kinds, mutate) -> bool:
        cset = ChecksumSet(kinds)
        data = rng.integers(1, 1 << 31, size=region).astype(np.int64)
        before = cset.checksum_of(data)
        corrupted = mutate(data.copy())
        after = cset.checksum_of(corrupted)
        return not np.array_equal(before, after)

    def random_flip(data):
        i = int(rng.integers(0, region))
        bit = int(rng.integers(0, 31))
        data[i] ^= 1 << bit
        return data

    def paired_flip_same_state(data):
        # Flip one bit position in two words where both bits are clear:
        # the XOR lane cancels (parity is blind), while the modular sum
        # gains 2**(b+1) (modular detects).
        while True:
            i, j = rng.choice(region, size=2, replace=False)
            bit = int(rng.integers(0, 20))
            mask = 1 << bit
            if not (data[i] & mask) and not (data[j] & mask):
                data[i] ^= mask
                data[j] ^= mask
                return data

    def sum_preserving(data):  # defeats modular; parity sees new bits
        i, j = rng.choice(region, size=2, replace=False)
        delta = int(rng.integers(1, 1 << 10))
        data[i] += delta
        data[j] -= delta
        return data

    def value_swap(data):
        # Exchanging two stored values preserves every order-insensitive
        # fold: an inherent blind spot of associative-region checksums
        # (LP regions assume corruption does not permute values between
        # locations — a lost cache line zeroes or stales data in place).
        i, j = rng.choice(region, size=2, replace=False)
        data[i], data[j] = data[j], data[i]
        return data

    both = (ChecksumKind.MODULAR, ChecksumKind.PARITY)
    single_m = (ChecksumKind.MODULAR,)
    single_p = (ChecksumKind.PARITY,)
    scenarios = {
        "random_flip": random_flip,
        "paired_flip": paired_flip_same_state,
        "sum_preserving": sum_preserving,
        "value_swap": value_swap,
    }
    rows = []
    for label, mutate in scenarios.items():
        for kinds, kname in ((single_m, "modular"), (single_p, "parity"),
                             (both, "both")):
            hits = sum(detects(kinds, mutate) for _ in range(n_trials))
            rows.append({
                "scenario": label, "checksums": kname,
                "detected": hits, "trials": n_trials,
                "rate": hits / n_trials,
            })
    by = {(r["scenario"], r["checksums"]): r["rate"] for r in rows}
    fidelity = {
        "random_flips_always_detected": by[("random_flip", "both")] == 1.0,
        "parity_blind_to_paired_flips": by[("paired_flip", "parity")] == 0.0,
        "modular_blind_to_sum_preserving": (
            by[("sum_preserving", "modular")] == 0.0
        ),
        # A +-2**k transfer between two words with no carries evades
        # both lanes at once (a genuinely correlated two-point
        # corruption), so coverage is high but not 1.0 here.
        "combined_covers_each_others_blind_spot": (
            by[("paired_flip", "both")] == 1.0
            and by[("sum_preserving", "both")] >= 0.90
        ),
        "value_swap_inherently_invisible": by[("value_swap", "both")] == 0.0,
    }
    word_check = to_lane_words(np.float32([3.5]))[0] == 1080033280
    fidelity["fig2_conversion"] = bool(word_check)
    rendered = render_table(
        "Checksum false negatives under error injection (SS IV-B)",
        ["scenario", "checksums", "detected/trials"],
        [[r["scenario"], r["checksums"],
          f"{r['detected']}/{r['trials']}"] for r in rows],
        note="each single checksum has a structured blind spot the "
             "other covers — the paper's rationale for running both "
             "(combined analytic residual 2^-128). Value permutation "
             "is invisible to any order-insensitive checksum; LP's "
             "failure model (lost/stale lines in place) does not "
             "produce it",
    )
    return ExperimentResult("fnr", "False-negative rates", rows, rendered,
                            fidelity)


#: The full registry: experiment id -> callable.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig5": fig5,
    "table2": table2,
    "collision_ablation": collision_ablation,
    "atomic_ablation": atomic_ablation,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "multi_checksum": multi_checksum,
    "write_amp": write_amplification,
    "megakv": megakv_overheads,
    "fig1": fig1,
    "fnr": false_negative_rates,
}


def run_all() -> dict[str, ExperimentResult]:
    """Run every registered experiment (the EXPERIMENTS.md generator)."""
    return {exp_id: fn() for exp_id, fn in EXPERIMENTS.items()}


# ---------------------------------------------------------------------------
# Extensions beyond the paper's tables (see DESIGN.md SS7 / README)
# ---------------------------------------------------------------------------

def ep_vs_lp(scale: str = "small") -> ExperimentResult:
    """Extension: measure LP against an Eager Persistency baseline.

    The paper argues against EP qualitatively (log maintenance, loss of
    locality from flushing, barrier stalls, write amplification; GPUs
    do not even have the instructions). The simulator has the
    primitives, so the comparison can be run: same workloads, three
    builds — baseline, LP (paper-best), and undo-log EP — comparing
    modeled kernel cycles and NVM line writes.
    """
    from repro.core.runtime import LPRuntime
    from repro.ep import EPRuntime
    from repro.gpu.device import Device
    from repro.workloads import make_workload

    def run(name, mode):
        device = Device()
        work = make_workload(name, scale=scale)
        kernel = work.setup(device)
        if mode == "lp":
            kernel = LPRuntime(device, LPConfig.paper_best()).instrument(
                kernel
            )
        elif mode == "ep":
            kernel = EPRuntime(device).instrument(kernel)
        result = device.launch(kernel)
        work.verify(device)
        device.drain()
        return result.total_cycles, device.memory.write_stats.total_lines

    rows = []
    for name in ("tmm", "spmv", "histo"):
        base_cycles, base_lines = run(name, "base")
        lp_cycles, lp_lines = run(name, "lp")
        ep_cycles, ep_lines = run(name, "ep")
        rows.append({
            "bench": name,
            "lp_overhead": lp_cycles / base_cycles - 1.0,
            "ep_overhead": ep_cycles / base_cycles - 1.0,
            "lp_write_amp": lp_lines / base_lines - 1.0,
            "ep_write_amp": ep_lines / base_lines - 1.0,
        })
    fidelity = {
        "ep_slower_than_lp": all(
            r["ep_overhead"] > r["lp_overhead"] for r in rows
        ),
        "ep_write_amp_dominates": all(
            r["ep_write_amp"] > 5 * max(r["lp_write_amp"], 1e-6)
            for r in rows
        ),
        "lp_write_amp_small": all(
            r["lp_write_amp"] < 0.25 for r in rows
        ),
    }
    rendered = render_table(
        "Extension: Lazy vs Eager Persistency (functional simulator)",
        ["bench", "LP time", "EP time", "LP writes", "EP writes"],
        [[r["bench"], fmt_pct(r["lp_overhead"]), fmt_pct(r["ep_overhead"]),
          fmt_pct(r["lp_write_amp"]), fmt_pct(r["ep_write_amp"])]
         for r in rows],
        note="EP = undo log + clwb + persist barriers per region; its "
             "extra NVM writes are the log, the flushed data and the "
             "commit flags — everything LP's checksums replace. EP "
             "needs no validation pass on recovery; LP pays at recovery "
             "time instead (the rare case).",
    )
    return ExperimentResult("ep_vs_lp", "Eager Persistency baseline",
                            rows, rendered, fidelity)


def fusion_ablation() -> ExperimentResult:
    """Extension: LP region granularity, from warps to fused blocks.

    SS II-A's trade-off end to end: smaller regions mean more checksum
    insertions and table pressure (factor 1/32 models warp-granularity
    regions — why the paper picks the thread block, not the warp);
    fusing F consecutive blocks (SS IV-A) divides the key count by F at
    the price of F-times-coarser recovery. Overheads are modeled at
    paper scale (MRI-GRIDDING under quadratic probing, where insertion
    is the bottleneck); recovery cycles are measured functionally (TMM,
    full-grid crash) for the fusable factors.
    """
    import dataclasses

    from repro.core.fusion import fuse_blocks
    from repro.core.recovery import RecoveryManager
    from repro.core.runtime import LPRuntime
    from repro.gpu.device import Device
    from repro.nvm.crash import CrashPlan
    from repro.workloads.tmm import TMMWorkload

    rows = []
    profile = PROFILES["mri-gridding"]
    # Fractional factors model *splitting* regions below a thread block
    # (1/32 = warp-granularity regions), the other end of SS II-A's
    # granularity trade-off: more regions, more checksum insertions.
    for factor in (1 / 32, 1 / 4, 1, 2, 4, 8, 16):
        fused_profile = dataclasses.replace(
            profile,
            n_blocks=max(1, round(profile.n_blocks / factor)),
            stores_per_thread=profile.stores_per_thread * factor,
        )
        est = estimate(fused_profile, LPConfig.naive_quadratic())

        row = {
            "factor": factor,
            "table_entries": fused_profile.n_blocks,
            "modeled_overhead": est.overhead,
            "recovery_cycles": None,
        }
        if factor >= 1:
            device = Device(cache_capacity_lines=8)
            work = TMMWorkload(scale="tiny")
            kernel = fuse_blocks(work.setup(device), int(factor))
            lp_kernel = LPRuntime(device).instrument(kernel)
            device.launch(lp_kernel, crash_plan=CrashPlan(after_blocks=0))
            report = RecoveryManager(device, lp_kernel).recover()
            work.verify(device)
            row["recovery_cycles"] = report.total_recovery_cycles
        rows.append(row)
    functional = [r for r in rows if r["recovery_cycles"] is not None]
    fidelity = {
        "fusion_shrinks_table": all(
            a["table_entries"] > b["table_entries"]
            for a, b in zip(rows, rows[1:])
        ),
        "granularity_monotone": all(
            a["modeled_overhead"] >= b["modeled_overhead"] - 1e-9
            for a, b in zip(rows, rows[1:])
        ),
        # Warp-granularity regions (factor 1/32) are markedly worse
        # than block-granularity: the paper's SS IV-A argument for the
        # thread block as the natural LP region.
        "warp_regions_cost_more_than_blocks": (
            rows[0]["modeled_overhead"] > 2 * rows[2]["modeled_overhead"]
        ),
        "recovery_granularity_coarsens": (
            functional[-1]["recovery_cycles"]
            >= functional[0]["recovery_cycles"] * 0.5
        ),
    }
    rendered = render_table(
        "Extension: LP region granularity — warps to fused blocks (SS II-A / IV-A)",
        ["fusion", "table entries", "modeled overhead (mri-gridding/quad)",
         "recovery cycles (tmm, full crash)"],
        [[("warp (1/32)" if r["factor"] == 1 / 32
           else f"x{r['factor']:g}"),
          fmt_count(r["table_entries"]),
          fmt_pct(r["modeled_overhead"]),
          (f"{r['recovery_cycles']:,.0f}"
           if r["recovery_cycles"] is not None else "-")]
         for r in rows],
        note="bigger regions: fewer checksum insertions (cheaper "
             "normal execution under hash tables) but coarser recovery; "
             "warp-granularity regions are why the paper picks the "
             "thread block as the LP region",
    )
    return ExperimentResult("fusion", "Thread-block fusion", rows,
                            rendered, fidelity)


EXPERIMENTS["ep_vs_lp"] = ep_vs_lp
EXPERIMENTS["fusion"] = fusion_ablation


def recovery_cost(scale: str = "small") -> ExperimentResult:
    """Extension: what does LP's rare case actually cost?

    LP's bargain (Section II-A): fast normal execution, slower crash
    recovery. This experiment characterizes the recovery bill — the
    always-paid validation sweep plus re-execution proportional to what
    was lost — as a function of the crash point, and shows how the
    cache size (the volume of not-yet-persisted data) sets how much a
    late crash loses.
    """
    from repro.core.recovery import RecoveryManager
    from repro.core.runtime import LPRuntime
    from repro.gpu.device import Device
    from repro.nvm.crash import CrashPlan
    from repro.workloads.tmm import TMMWorkload

    def run(after_fraction: float, cache_lines: int):
        device = Device(cache_capacity_lines=cache_lines)
        work = TMMWorkload(scale=scale)
        kernel = work.setup(device)
        lp_kernel = LPRuntime(device, LPConfig.paper_best()).instrument(
            kernel
        )
        n_blocks = kernel.launch_config().n_blocks
        after = int(round(after_fraction * n_blocks))
        device.launch(lp_kernel,
                      crash_plan=CrashPlan(after_blocks=after, seed=11))
        manager = RecoveryManager(device, lp_kernel)
        report = manager.recover()
        work.verify(device)
        validation = (report.initial.launch.total_cycles
                      + (report.final.launch.total_cycles
                         if report.final else 0.0))
        reexec = sum(lr.total_cycles for lr in report.recovery_launches)
        return {
            "crash_at": after_fraction,
            "cache_lines": cache_lines,
            "n_blocks": n_blocks,
            "failed": report.initial.n_failed,
            "validation_cycles": validation,
            "reexecution_cycles": reexec,
        }

    rows = [run(f, 16) for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
    rows += [run(1.0, cache) for cache in (4, 64, 100000)]

    sweep = rows[:5]
    fidelity = {
        # The validation sweep is paid regardless of the crash point.
        "validation_always_paid": all(
            r["validation_cycles"] > 0 for r in rows
        ),
        # Earlier crashes lose more blocks, hence more re-execution.
        "earlier_crash_costs_more_reexecution": (
            sweep[0]["reexecution_cycles"]
            >= sweep[-1]["reexecution_cycles"]
        ),
        "later_crash_fails_fewer_regions": (
            sweep[0]["failed"] > sweep[-1]["failed"]
        ),
        # A huge cache means a late crash still loses everything dirty;
        # a tiny cache evicted (persisted) almost all of it.
        "bigger_cache_loses_more": (
            rows[-1]["failed"] >= rows[5]["failed"]
        ),
    }
    rendered = render_table(
        "Extension: LP recovery cost (TMM, crash-point & cache sweep)",
        ["crash point", "cache lines", "failed regions",
         "validation cycles", "re-execution cycles"],
        [[f"{r['crash_at']:.0%} of grid", fmt_count(r["cache_lines"]),
          f"{r['failed']}/{r['n_blocks']}",
          f"{r['validation_cycles']:,.0f}",
          f"{r['reexecution_cycles']:,.0f}"] for r in rows],
        note="eager recovery = one validation sweep (same shape as the "
             "kernel) + re-execution of failed regions; the cache "
             "capacity bounds how much work a crash can strand "
             "un-persisted, which is what periodic checkpointing "
             "exploits (SS IV-A)",
    )
    return ExperimentResult("recovery_cost", "Recovery-cost profile",
                            rows, rendered, fidelity)


EXPERIMENTS["recovery_cost"] = recovery_cost


def scaling_sweep() -> ExperimentResult:
    """Extension: the paper's thesis as one curve — overhead vs grid size.

    Sweeps a synthetic benchmark (fixed per-block work, SAD-like
    64-thread blocks) from 64 to 131 072 thread blocks and reports each
    design's overhead. The hash tables and (catastrophically) the
    lock-based variants deteriorate with scale; the checksum global
    array stays flat — "scalable and fast", the title's claim.
    """
    from repro.bench.profiles import BenchProfile, INST

    variants = {
        "global_array": LPConfig.paper_best(),
        "quad": LPConfig.naive_quadratic(),
        "cuckoo": LPConfig.naive_cuckoo(),
        "quad_lock": LPConfig.naive_quadratic().with_(
            locks=LockMode.LOCK_BASED
        ),
    }
    #: Per-block runtime held constant: more blocks = more total work,
    #: the way a bigger input scales a real grid.
    per_block_cycles = 40.0

    rows = []
    for n_blocks in (64, 512, 4096, 16384, 65536, 131072):
        # With 2 560 blocks resident at a time, runtime is one wave's
        # latency until the grid exceeds residency, then scales 1:1.
        baseline = per_block_cycles * max(n_blocks, 2560)
        profile = BenchProfile(
            name=f"synthetic-{n_blocks}",
            n_blocks=n_blocks,
            threads_per_block=64,
            stores_per_thread=1.0,
            store_bytes=4,
            baseline_cycles=baseline,
            bottleneck=INST,
            lp_dilation=0.01,
        )
        row = {"blocks": n_blocks}
        for label, config in variants.items():
            est = estimate(profile, config)
            row[label] = est.overhead
        rows.append(row)

    first, last = rows[0], rows[-1]
    fidelity = {
        # The global array's overhead is scale-invariant (within noise).
        "global_array_flat": last["global_array"]
        < 2.0 * max(first["global_array"], 0.005),
        "hash_tables_deteriorate": last["quad"] > 10 * first["quad"] + 0.05,
        "locks_catastrophic_at_scale": last["quad_lock"] > 100.0,
        "global_array_always_best": all(
            r["global_array"] <= min(r["quad"], r["cuckoo"],
                                     r["quad_lock"]) + 1e-9
            for r in rows
        ),
    }
    rendered = render_table(
        "Extension: overhead vs grid size (synthetic, 64-thread blocks)",
        ["blocks", "global array", "quad", "cuckoo", "quad+lock"],
        [[fmt_count(r["blocks"]), fmt_pct(r["global_array"]),
          fmt_pct(r["quad"]), fmt_pct(r["cuckoo"]),
          fmt_pct(r["quad_lock"])] for r in rows],
        note="fixed per-block work; scaling the grid scales the total "
             "runtime 1:1 past full residency, so any superlinear "
             "insertion cost surfaces as growing overhead — except for "
             "the global array",
    )
    rendered += "\n\n" + render_bars(
        "Overhead at 131,072 blocks (clipped at 100%)",
        {label: {"": rows[-1][label]} for label in variants},
        clip=1.0,
    )
    return ExperimentResult("scaling", "Scalability sweep", rows,
                            rendered, fidelity)


EXPERIMENTS["scaling"] = scaling_sweep
