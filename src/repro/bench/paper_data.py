"""Every number the paper's evaluation reports, transcribed.

Used by the experiment registry to print paper-vs-measured rows and by
EXPERIMENTS.md. Units:

* overheads are fractions (``0.081`` = 8.1 %),
* slowdowns are multiplicative (``1.07`` = 1.07x),
* collision counts are raw.

Transcription notes: Table III prints MRI-GRIDDING's block count as
"6536", inconsistent with the text's "65,536 in MRI-GRIDDING"; we use
65 536. Its cuckoo lock-based TPACF cell prints "0.02x", an apparent
typo for 1.02x. Table III's SAD lock-free quad slowdown (2.51x) also
disagrees with Table IV's quad+shfl overhead for SAD (51.23 %); both
values are kept where their tables are reproduced.
"""

from __future__ import annotations

#: Paper benchmark order (rows of every table).
BENCHES = (
    "tmm", "tpacf", "mri-gridding", "spmv",
    "sad", "histo", "cutcp", "mri-q",
)

#: Table I — bottleneck classification.
TABLE1_BOTTLENECK = {
    "tmm": "inst", "tpacf": "inst", "mri-gridding": "inst",
    "spmv": "bw", "sad": "bw", "histo": "bw",
    "cutcp": "inst", "mri-q": "inst",
}

#: Figure 5 — naive LP overhead with parallel reduction, lock-free.
FIG5_QUAD = {
    "tmm": 0.081, "tpacf": 0.015, "mri-gridding": 2.166, "spmv": 0.221,
    "sad": 0.5123, "histo": 0.0454, "cutcp": 0.0796, "mri-q": 0.0801,
}
FIG5_CUCKOO = {
    "tmm": 0.0725, "tpacf": 0.0133, "mri-gridding": 0.4567,
    "spmv": 0.1178, "sad": 2.3279, "histo": 0.2773, "cutcp": 0.1316,
    "mri-q": 0.0606,
}
FIG5_GEOMEAN = {"quad": 0.294, "cuckoo": 0.317}

#: Table II — hash-table collision counts.
TABLE2_COLLISIONS = {
    "tmm": {"quad": 60443, "cuckoo": 38951},
    "tpacf": {"quad": 532, "cuckoo": 483},
    "mri-gridding": {"quad": 172978, "cuckoo": 26351},
    "spmv": {"quad": 57, "cuckoo": 39},
    "sad": {"quad": 31971, "cuckoo": 44566},
    "histo": {"quad": 26, "cuckoo": 54},
    "cutcp": {"quad": 550, "cuckoo": 562},
    "mri-q": {"quad": 120, "cuckoo": 112},
}

#: §IV-D-2 — MRI-GRIDDING with collisions removed.
COLLISION_ABLATION = {"cuckoo": 0.001, "quad": 0.008}

#: §IV-D-3 — overheads without atomic instructions.
ATOMIC_ABLATION = {"cuckoo": 0.419, "quad_slowdown_at_least": 16.0}

#: Table III — lock-based vs lock-free slowdowns + block counts.
TABLE3_SLOWDOWN = {
    "tmm": {"quad_free": 1.07, "quad_lock": 1.70,
            "cuckoo_free": 1.07, "cuckoo_lock": 4.04, "blocks": 16384},
    "tpacf": {"quad_free": 1.01, "quad_lock": 1.02,
              "cuckoo_free": 1.01, "cuckoo_lock": 1.02, "blocks": 512},
    "mri-gridding": {"quad_free": 3.19, "quad_lock": 6332.0,
                     "cuckoo_free": 1.46, "cuckoo_lock": 1868.09,
                     "blocks": 65536},
    "spmv": {"quad_free": 1.22, "quad_lock": 23.78,
             "cuckoo_free": 1.12, "cuckoo_lock": 18.85, "blocks": 1536},
    "sad": {"quad_free": 2.51, "quad_lock": 4491.87,
            "cuckoo_free": 3.33, "cuckoo_lock": 9162.23, "blocks": 128640},
    "histo": {"quad_free": 1.05, "quad_lock": 1.30,
              "cuckoo_free": 1.28, "cuckoo_lock": 1.48, "blocks": 42},
    "cutcp": {"quad_free": 1.08, "quad_lock": 32.31,
              "cuckoo_free": 1.13, "cuckoo_lock": 50.73, "blocks": 128},
    "mri-q": {"quad_free": 1.08, "quad_lock": 5.50,
              "cuckoo_free": 1.06, "cuckoo_lock": 4.88, "blocks": 1024},
}
TABLE3_GEOMEAN = {
    "quad_free": 1.33, "quad_lock": 36.62,
    "cuckoo_free": 1.35, "cuckoo_lock": 31.73,
}

#: Table IV — with vs without parallel (shuffle) reduction.
TABLE4_REDUCTION = {
    "tmm": {"quad_shfl": 0.081, "quad_no": 0.154,
            "cuckoo_shfl": 0.0725, "cuckoo_no": 0.1365},
    "tpacf": {"quad_shfl": 0.015, "quad_no": 0.026,
              "cuckoo_shfl": 0.0133, "cuckoo_no": 0.0189},
    "mri-gridding": {"quad_shfl": 2.166, "quad_no": 2.241,
                     "cuckoo_shfl": 0.4567, "cuckoo_no": 0.5032},
    "spmv": {"quad_shfl": 0.221, "quad_no": 4.376,
             "cuckoo_shfl": 0.1178, "cuckoo_no": 4.3118},
    "sad": {"quad_shfl": 0.5123, "quad_no": 0.8634,
            "cuckoo_shfl": 2.3279, "cuckoo_no": 2.4213},
    "histo": {"quad_shfl": 0.0454, "quad_no": 0.097,
              "cuckoo_shfl": 0.2773, "cuckoo_no": 0.4581},
    "cutcp": {"quad_shfl": 0.0796, "quad_no": 0.0901,
              "cuckoo_shfl": 0.1316, "cuckoo_no": 0.1478},
    "mri-q": {"quad_shfl": 0.0801, "quad_no": 0.0978,
              "cuckoo_shfl": 0.0606, "cuckoo_no": 0.0803},
}
TABLE4_GEOMEAN = {
    "quad_shfl": 0.294, "quad_no": 0.633,
    "cuckoo_shfl": 0.317, "cuckoo_no": 0.658,
}

#: Table V — the final design (array + shuffle): time and space.
TABLE5_ARRAY_SHUFFLE = {
    "tmm": {"time": 0.062, "space": 0.002},
    "tpacf": {"time": 0.010, "space": 0.0002},
    "mri-gridding": {"time": 0.025, "space": 0.0082},
    "spmv": {"time": 0.016, "space": 0.0002},
    "sad": {"time": 0.006, "space": 0.1227},
    "histo": {"time": 0.006, "space": 0.0001},
    "cutcp": {"time": 0.021, "space": 0.0002},
    "mri-q": {"time": 0.027, "space": 0.0025},
}
TABLE5_GEOMEAN = {"time": 0.021, "space": 0.0163}

#: §VII-2 — multiple checksums on TMM with quadratic probing.
MULTI_CHECKSUM_TMM = {"parity": 0.076, "modular": 0.077, "both": 0.081}

#: §VII-3 — NVM write increase (GPGPU-sim, Titan V, NVM timings).
WRITE_AMPLIFICATION = {"spmv": 0.005, "tmm": 0.022}  # SAD: in between
WRITE_AMP_RANGE = (0.005, 0.022)

#: §VII-4 — MEGA-KV operation overheads (16K-record batches).
MEGAKV_OVERHEAD = {"search": 0.034, "delete": 0.052, "insert": 0.021}

#: §IV-B — checksum false-negative rates under random error injection.
FNR_SINGLE_32BIT = 2e-9       # modular or Adler-32 alone
FNR_COMBINED = 1e-12          # modular + parity together
