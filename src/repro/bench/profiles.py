"""Paper-scale benchmark profiles for the analytic overhead estimates.

Functional runs use scaled-down instances (Python executes every
store); the paper's *overheads*, however, depend on paper-scale
structure — most importantly the thread-block counts of Table III
(42 … 128 640) and each benchmark's bottleneck class (Table I). A
:class:`BenchProfile` captures that structure:

* ``n_blocks`` / ``threads_per_block`` — the paper's launch geometry
  (Table III gives the block counts; block sizes follow the standard
  Parboil/TMM configurations);
* ``stores_per_thread`` — how many protected stores each thread issues
  (sets the checksum-update cost);
* ``baseline_cycles`` — the end-to-end baseline kernel time. This is a
  **calibrated anchor**: it is chosen so the paper's final design
  (global array + shuffle, Table V) lands at the paper's measured
  overhead for that benchmark. Everything else — Figure 5, Tables
  II-IV, the ablations — is then a *prediction* of the cost model with
  no further per-benchmark tuning, which is what EXPERIMENTS.md
  compares against the paper.
* ``memory_fraction`` / ``compute_fraction`` — how close each resource
  runs to being the bottleneck (exactly one of them is 1.0), encoding
  Table I's instruction-throughput vs bandwidth classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LPConfig
from repro.gpu.costs import CostModel, Tally

#: Bottleneck labels from Table I.
INST = "inst"
BANDWIDTH = "bw"


@dataclass(frozen=True)
class BenchProfile:
    """Paper-scale structure of one benchmark."""

    name: str
    #: Thread blocks at paper scale (Table III's last column).
    n_blocks: int
    threads_per_block: int
    #: Protected stores per thread per kernel.
    stores_per_thread: float
    #: Bytes per protected store value.
    store_bytes: int
    #: End-to-end baseline time in cycles — a realistic estimate of the
    #: paper-scale kernel's V100 runtime (set per benchmark below).
    baseline_cycles: float
    #: Bottleneck class from Table I.
    bottleneck: str
    #: Fraction of ``baseline_cycles`` each resource is busy.
    memory_fraction: float = 0.7
    compute_fraction: float = 0.7
    #: Calibrated occupancy-dilation anchor: the fraction by which LP
    #: instrumentation dilutes the dominant pipe (register pressure,
    #: scheduling), solved so the paper-best design reproduces Table V.
    lp_dilation: float = 0.0

    def __post_init__(self) -> None:
        if self.bottleneck not in (INST, BANDWIDTH):
            raise ValueError(f"unknown bottleneck {self.bottleneck!r}")

    @property
    def total_protected_stores(self) -> float:
        """Protected store count across the launch."""
        return self.n_blocks * self.threads_per_block * self.stores_per_thread

    @property
    def protected_data_bytes(self) -> float:
        """Bytes of LP-protected output data."""
        return self.total_protected_stores * self.store_bytes

    def baseline_tally(self, model: CostModel) -> Tally:
        """Synthesize the baseline launch tally from the anchor.

        The dominant resource runs for exactly ``baseline_cycles``; the
        other runs at its fraction. LP variants then *add* to this
        tally and the cost model recomputes the total.
        """
        spec = model.spec
        if self.bottleneck == BANDWIDTH:
            mem_cycles = self.baseline_cycles * 1.0
            compute_cycles = self.baseline_cycles * self.compute_fraction
        else:
            compute_cycles = self.baseline_cycles * 1.0
            mem_cycles = self.baseline_cycles * self.memory_fraction

        lanes = min(spec.total_lanes,
                    self.n_blocks * self.threads_per_block)
        tally = Tally(
            n_blocks=self.n_blocks,
            threads_per_block=self.threads_per_block,
        )
        tally.alu_ops = compute_cycles * lanes
        bytes_total = mem_cycles * model.nvm.bytes_per_cycle(spec)
        # Reads dominate most kernels; protected stores set the writes.
        writes = min(self.protected_data_bytes, bytes_total * 0.5)
        tally.global_write_bytes = writes
        tally.global_read_bytes = bytes_total - writes
        return tally


def _calibrated(name, n_blocks, threads, stores, store_bytes, bottleneck,
                baseline_cycles, target_ga_overhead) -> BenchProfile:
    """Build a profile whose dilation anchors Table V's overhead.

    With the baseline fixed at a realistic runtime, the occupancy
    dilation is the remaining free parameter; a short fixed-point
    iteration solves for the value at which the paper-best design
    (global array + shuffle + both checksums) reproduces the paper's
    Table V overhead under the default cost model.
    """
    from repro.bench import harness  # imported late: avoids a cycle

    config = LPConfig.paper_best()
    model = CostModel()

    def profile_at(dilation: float) -> BenchProfile:
        return BenchProfile(
            name=name,
            n_blocks=n_blocks,
            threads_per_block=threads,
            stores_per_thread=stores,
            store_bytes=store_bytes,
            baseline_cycles=baseline_cycles,
            bottleneck=bottleneck,
            lp_dilation=dilation,
        )

    dilation = 0.0
    for _ in range(12):
        overhead = harness.estimate(
            profile_at(dilation), config, model
        ).overhead
        dilation = max(0.0, dilation + (target_ga_overhead - overhead))
    return profile_at(dilation)


# ---------------------------------------------------------------------------
# The eight paper benchmarks (block counts from Table III; block sizes
# from the standard TMM / Parboil configurations; Table V anchors).
# ---------------------------------------------------------------------------

def build_profiles() -> dict[str, BenchProfile]:
    """Construct the calibrated paper-scale profile set.

    Block counts come from Table III; block sizes from the standard
    TMM / Parboil launch configurations; baselines are realistic
    V100-scale runtimes (e.g. TMM 4096³ ≈ 14 ms ≈ 1.9e7 cycles, TPACF
    is a long-running O(n²) sweep, SAD/MRI-GRIDDING/SPMV are
    sub-millisecond kernels); the final column is Table V's measured
    overhead of the paper's final design, which calibrates each
    profile's occupancy dilation.
    """
    spec = [
        # name, blocks, threads, st/thr, B, bottleneck, base cyc, TableV
        # (stores/thread chosen so the checksum-table space overhead
        # matches Table V's space column: SAD's tiny per-block output
        # makes it the space-overhead outlier at 12 %.)
        ("tmm", 16384, 1024, 1.0, 4, INST, 1.9e7, 0.062),
        ("tpacf", 512, 256, 2.0, 8, INST, 2.8e8, 0.010),
        ("mri-gridding", 65536, 64, 4.0, 4, INST, 1.55e6, 0.025),
        ("spmv", 1536, 192, 8.0, 4, BANDWIDTH, 4.0e5, 0.016),
        ("sad", 128640, 64, 0.5, 4, BANDWIDTH, 4.2e6, 0.006),
        ("histo", 42, 512, 2.0, 4, BANDWIDTH, 2.0e5, 0.006),
        ("cutcp", 128, 128, 4.0, 4, INST, 8.0e5, 0.021),
        ("mri-q", 1024, 256, 2.0, 4, INST, 1.0e6, 0.027),
    ]
    return {
        row[0]: _calibrated(*row[:7], target_ga_overhead=row[7])
        for row in spec
    }


#: The calibrated profile set, keyed by paper benchmark name.
PROFILES: dict[str, BenchProfile] = build_profiles()
