"""Fast host-side simulation of checksum-table insertion at paper scale.

Table II's collision counts (and the insertion-cost terms of Figure 5
and Tables III-IV) require inserting the paper-scale key sets — up to
SAD's 128 640 block ids — into the hash tables. Running those through
the full functional device (line tracking, atomic accounting) would be
needlessly slow for a statistic that only depends on the probing logic,
so this module re-implements *exactly* the probe/eviction walks of
:mod:`repro.core.tables` on host arrays.

Fidelity is pinned by tests: for equal (keys, seeds, capacity) the
counts here must equal the functional tables' ``TableStats``.
Results are memoized per (kind, n_keys, options).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LPConfig, TableKind
from repro.core.tables.base import mix64, pow2_ceil
from repro.core.tables.cuckoo import DEFAULT_MAX_CHAIN, MAX_REHASH_ATTEMPTS
from repro.errors import RehashLimitError, TableFullError

#: uint64 empty sentinel as a Python int (host arrays use -1 via object
#: comparison-free int64 space; we use -1 in int64 arrays).
_EMPTY = -1

#: Default hash seeds, mirrored from the table classes.
QUAD_SEED = 0x9E3779B9
CUCKOO_SEED = 0x2545F491


@dataclass(frozen=True)
class InsertSim:
    """Aggregate insertion statistics of one simulated table fill."""

    kind: TableKind
    n_keys: int
    capacity: int
    probes: int
    collisions: int
    rehashes: int
    max_chain: int

    @property
    def load_factor(self) -> float:
        """Final occupancy."""
        return self.n_keys / self.capacity

    @property
    def collisions_per_insert(self) -> float:
        """Average extra probes per insertion."""
        return self.collisions / max(self.n_keys, 1)


def simulate_quadratic(
    n_keys: int,
    target_load_factor: float = 0.70,
    seed: int = QUAD_SEED,
    perfect_hash: bool = False,
) -> InsertSim:
    """Replay :class:`~repro.core.tables.quadratic.QuadraticTable`."""
    if perfect_hash:
        capacity = pow2_ceil(n_keys)
    else:
        capacity = pow2_ceil(int(np.ceil(n_keys / target_load_factor)))
    slots = np.full(capacity, _EMPTY, dtype=np.int64)

    probes = collisions = max_chain = 0
    for key in range(n_keys):
        home = key % capacity if perfect_hash else mix64(key, seed) % capacity
        placed = False
        chain = 0
        for i in range(capacity + 1):
            idx = (home + i * i) % capacity
            probes += 1
            if slots[idx] == _EMPTY:
                slots[idx] = key
                placed = True
                break
            collisions += 1
            chain += 1
        if not placed:
            for idx in range(capacity):
                probes += 1
                if slots[idx] == _EMPTY:
                    slots[idx] = key
                    placed = True
                    break
                collisions += 1
                chain += 1
        if not placed:
            raise TableFullError(f"quadratic sim full at key {key}")
        max_chain = max(max_chain, chain + 1)

    return InsertSim(TableKind.QUADRATIC, n_keys, capacity,
                     probes, collisions, 0, max_chain)


def simulate_cuckoo(
    n_keys: int,
    target_load_factor: float = 0.45,
    seed: int = CUCKOO_SEED,
    max_chain: int = DEFAULT_MAX_CHAIN,
    perfect_hash: bool = False,
) -> InsertSim:
    """Replay :class:`~repro.core.tables.cuckoo.CuckooTable`."""
    if perfect_hash:
        per_table = pow2_ceil(n_keys)
    else:
        per_table = pow2_ceil(
            int(np.ceil(n_keys / (2 * target_load_factor)))
        )
    tables = [
        np.full(per_table, _EMPTY, dtype=np.int64),
        np.full(per_table, _EMPTY, dtype=np.int64),
    ]
    seeds = [seed, seed ^ 0x6A09E667F3BCC909]
    stats = {"probes": 0, "collisions": 0, "rehashes": 0, "max_chain": 0}

    def index(t: int, key: int) -> int:
        if perfect_hash:
            return key % per_table
        return mix64(key, seeds[t]) % per_table

    def insert(key: int, depth: int) -> None:
        # (The functional table's refresh-in-place check never fires
        # for unique block ids, so it contributes no probes here.)
        cur = key
        table = 0
        chain = 0
        while chain <= max_chain:
            idx = index(table, cur)
            old = tables[table][idx]
            tables[table][idx] = cur
            stats["probes"] += 1
            if old == _EMPTY:
                stats["max_chain"] = max(stats["max_chain"], chain + 1)
                return
            stats["collisions"] += 1
            cur = int(old)
            table ^= 1
            chain += 1
        rehash(depth)
        insert(cur, depth + 1)

    def rehash(depth: int) -> None:
        if depth >= MAX_REHASH_ATTEMPTS:
            raise RehashLimitError("cuckoo sim rehashed too many times")
        stats["rehashes"] += 1
        entries: list[int] = []
        for t in (0, 1):
            live = tables[t][tables[t] != _EMPTY]
            entries.extend(int(k) for k in live)
            tables[t][:] = _EMPTY
        seeds[0] = mix64(seeds[0], 0xD1B54A32D192ED03 + depth)
        seeds[1] = mix64(seeds[1], 0xD1B54A32D192ED03 + depth)
        for k in entries:
            insert(k, depth + 1)

    for key in range(n_keys):
        insert(key, 0)

    return InsertSim(TableKind.CUCKOO, n_keys, 2 * per_table,
                     stats["probes"], stats["collisions"],
                     stats["rehashes"], stats["max_chain"])


_CACHE: dict[tuple, InsertSim] = {}


def simulate_insertions(
    config: LPConfig, n_keys: int, perfect_hash: bool = False
) -> InsertSim:
    """Insertion statistics for ``config.table`` at ``n_keys`` keys.

    Memoized; the global array is collision-free by construction and
    returns a trivial record without simulation.
    """
    key = (config.table, n_keys, perfect_hash,
           round(config.quad_target_load_factor, 4),
           round(config.cuckoo_target_load_factor, 4))
    if key in _CACHE:
        return _CACHE[key]
    if config.table is TableKind.QUADRATIC:
        sim = simulate_quadratic(
            n_keys, config.quad_target_load_factor, perfect_hash=perfect_hash
        )
    elif config.table is TableKind.CUCKOO:
        sim = simulate_cuckoo(
            n_keys, config.cuckoo_target_load_factor,
            perfect_hash=perfect_hash,
        )
    else:
        sim = InsertSim(TableKind.GLOBAL_ARRAY, n_keys, n_keys,
                        n_keys, 0, 0, 1)
    _CACHE[key] = sim
    return sim
