"""Data model of the ``#pragma nvm`` directive compiler.

The paper proposes two directives (Section VI):

* ``#pragma nvm lpcuda_init(checksum_tab_id, nelems, selem)`` — host
  side, before a kernel launch: declares and sizes a checksum table.
* ``#pragma nvm lpcuda_checksum(checksum_type, checksum_tab_id, key1,
  ...)`` — kernel side, immediately before the statement whose stored
  value must be checksum-protected.

The compiler parses these out of CUDA-like source text
(:mod:`repro.compiler.parser`), slices the store-address computation
(:mod:`repro.compiler.slicing`), and emits the instrumented kernel plus
the check-and-recovery kernel (:mod:`repro.compiler.transform`,
:mod:`repro.compiler.recovery_gen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DirectiveSemanticError

#: Checksum-type tokens accepted by ``lpcuda_checksum`` (Section VI):
#: ``+`` modular, ``^`` parity.
CHECKSUM_TYPE_TOKENS = {"+": "modular", "^": "parity"}


@dataclass(frozen=True)
class InitDirective:
    """One ``lpcuda_init`` occurrence (host code)."""

    table: str
    nelems_expr: str
    selem_expr: str
    line_no: int

    def __post_init__(self) -> None:
        if not self.table.isidentifier():
            raise DirectiveSemanticError(
                f"line {self.line_no}: checksum table name {self.table!r} "
                "is not an identifier"
            )


@dataclass(frozen=True)
class ChecksumDirective:
    """One ``lpcuda_checksum`` occurrence (kernel code)."""

    checksum_types: tuple[str, ...]
    table: str
    keys: tuple[str, ...]
    line_no: int
    #: The annotated statement (the store the directive protects).
    target_statement: str = ""

    def __post_init__(self) -> None:
        for tok in self.checksum_types:
            if tok not in CHECKSUM_TYPE_TOKENS:
                raise DirectiveSemanticError(
                    f"line {self.line_no}: unknown checksum type {tok!r}; "
                    f"expected one of {sorted(CHECKSUM_TYPE_TOKENS)}"
                )
        if not self.keys:
            raise DirectiveSemanticError(
                f"line {self.line_no}: lpcuda_checksum needs at least one key"
            )

    @property
    def checksum_names(self) -> tuple[str, ...]:
        """Human names of the requested checksum kinds."""
        return tuple(CHECKSUM_TYPE_TOKENS[t] for t in self.checksum_types)


@dataclass
class StoreTarget:
    """The left-hand side of a protected store statement."""

    #: Full LHS text, e.g. ``C[c + wB * ty + tx]``.
    lhs: str
    #: Base array identifier, e.g. ``C``.
    array: str
    #: Index expression, e.g. ``c + wB * ty + tx``.
    index_expr: str
    #: RHS of the assignment (the stored value), e.g. ``Csub``.
    value_expr: str


@dataclass
class KernelSource:
    """A parsed ``__global__`` kernel definition."""

    name: str
    #: Parameter list text, e.g. ``float *C, float *A, int wA``.
    params: str
    #: Parameter names in order.
    param_names: tuple[str, ...]
    #: Body lines (without the enclosing braces), original indentation.
    body: list[str] = field(default_factory=list)
    #: First line number of the body in the original source.
    body_start_line: int = 0
    #: Checksum directives found inside this kernel.
    checksums: list[ChecksumDirective] = field(default_factory=list)


@dataclass
class ProgramSource:
    """A parsed CUDA-like translation unit."""

    lines: list[str]
    inits: list[InitDirective] = field(default_factory=list)
    kernels: list[KernelSource] = field(default_factory=list)

    def kernel(self, name: str) -> KernelSource:
        """Look up a kernel by name."""
        for k in self.kernels:
            if k.name == name:
                return k
        raise DirectiveSemanticError(f"no kernel named {name!r}")

    def init_for(self, table: str) -> InitDirective:
        """The ``lpcuda_init`` that declared a table."""
        for ini in self.inits:
            if ini.table == table:
                return ini
        raise DirectiveSemanticError(
            f"checksum table {table!r} was never declared with lpcuda_init"
        )


@dataclass
class CompiledProgram:
    """Everything the directive compiler emits for one program."""

    host_code: str
    kernel_code: str
    recovery_code: str
    inits: list[InitDirective]
    checksums: list[ChecksumDirective]
