"""Executable twin of the directive compiler: a Python kernel DSL.

The CUDA-text path (:mod:`repro.compiler.transform`) demonstrates the
*source transformation*; this module provides the same two-directive
programming experience for kernels that actually run on the simulator:

* :func:`kernel_from_function` turns a plain per-block function into a
  :class:`~repro.gpu.kernel.Kernel`, declaring which buffers LP
  protects (the role of ``lpcuda_checksum``'s placement);
* :func:`lazy_persistent` attaches LP to it with one call, sizing the
  checksum table from the grid (the role of ``lpcuda_init``).

Example
-------

>>> from repro import Device, LPConfig
>>> from repro.compiler.pydsl import kernel_from_function, lazy_persistent
>>> import numpy as np
>>> @kernel_from_function(grid=(4, 1), block=(32, 1), protected=("out",))
... def double_it(ctx):
...     idx = ctx.block_id * ctx.n_threads + ctx.tid
...     ctx.st("out", idx, ctx.ld("inp", idx) * 2)
>>> device = Device()
>>> _ = device.alloc("inp", (128,), np.float32,
...                  init=np.arange(128, dtype=np.float32))
>>> _ = device.alloc("out", (128,), np.float32)
>>> lp_kernel = lazy_persistent(device, double_it)
>>> _ = device.launch(lp_kernel)
>>> bool((device.memory["out"].array == np.arange(128) * 2).all())
True
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import LPConfig
from repro.core.runtime import LazyPersistentKernel, LPRuntime
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig


class FunctionKernel(Kernel):
    """A kernel defined by a single per-block function."""

    def __init__(
        self,
        fn: Callable[[BlockContext], None],
        config: LaunchConfig,
        protected: tuple[str, ...],
        name: str | None = None,
        idempotent: bool = True,
        recover_fn: Callable[[BlockContext], None] | None = None,
        validate_fn: Callable[[BlockContext], None] | None = None,
    ) -> None:
        self._fn = fn
        self._config = config
        self.protected_buffers = tuple(protected)
        self.name = name or fn.__name__
        self.idempotent = idempotent
        self._recover_fn = recover_fn
        self._validate_fn = validate_fn

    def launch_config(self) -> LaunchConfig:
        return self._config

    def run_block(self, ctx: BlockContext) -> None:
        self._fn(ctx)

    def validate_block(self, ctx: BlockContext) -> None:
        if self._validate_fn is not None:
            self._validate_fn(ctx)
        else:
            super().validate_block(ctx)

    def recover_block(self, ctx: BlockContext) -> None:
        if self._recover_fn is not None:
            self._recover_fn(ctx)
        else:
            super().recover_block(ctx)


def kernel_from_function(
    grid: tuple[int, int],
    block: tuple[int, int],
    protected: tuple[str, ...],
    name: str | None = None,
    idempotent: bool = True,
):
    """Decorator: build a :class:`FunctionKernel` from a block function.

    The decorated function receives a
    :class:`~repro.gpu.kernel.BlockContext` and computes one thread
    block. ``protected`` names the output buffers Lazy Persistency
    covers — the Python analogue of placing ``lpcuda_checksum`` before
    the kernel's persistent stores.
    """

    def wrap(fn: Callable[[BlockContext], None]) -> FunctionKernel:
        return FunctionKernel(
            fn,
            LaunchConfig(grid=grid, block=block),
            protected=protected,
            name=name or fn.__name__,
            idempotent=idempotent,
        )

    return wrap


def lazy_persistent(
    device: Device,
    kernel: Kernel,
    config: LPConfig | None = None,
    table_name: str | None = None,
) -> LazyPersistentKernel:
    """Attach Lazy Persistency to a kernel (the ``lpcuda_init`` analogue).

    Sizes and allocates the checksum table from the kernel's grid
    (``nelems = grid.x * grid.y``) and wraps the kernel with the LP
    runtime.
    """
    runtime = LPRuntime(device, config or LPConfig.paper_best())
    return runtime.instrument(kernel, table_name=table_name)
