"""Program slicing of store-address computations.

To generate the check-and-recovery kernel (Listing 7), the compiler
must reproduce — inside the recovery kernel — exactly the statements
that compute the *pointer* of each protected store ("the compiler
exploits a program slice that is used for the pointer calculation",
Section VI). This module implements that slice over simple C
statements: given the index expression of a store LHS, it walks the
kernel body backwards collecting the assignments that (transitively)
define the identifiers the expression uses.

Built-in CUDA identifiers (``threadIdx``/``blockIdx``/... ) and kernel
parameters are free variables of the slice: they need no defining
statement.
"""

from __future__ import annotations

import re

from repro.compiler.model import KernelSource, StoreTarget
from repro.errors import SliceError

#: Identifiers that are implicitly defined in every CUDA kernel.
CUDA_BUILTINS = frozenset(
    {
        "threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize",
        "x", "y", "z",
    }
)

# Identifiers must not start inside a numeric literal: the lookbehind
# keeps suffixes of constants like ``1.0f`` or ``0xFF`` from leaking.
_IDENT_RE = re.compile(r"(?<![\w.])[A-Za-z_]\w*")
_DECL_ASSIGN_RE = re.compile(
    r"^\s*(?:(?:unsigned|signed|const|static)\s+)*"
    r"(?:(?:int|float|double|long|short|char|size_t|auto)\s+)?"
    r"([A-Za-z_]\w*)\s*=\s*(.+?);\s*$"
)


def parse_store_target(statement: str) -> StoreTarget:
    """Split ``A[expr] = value;`` into its parts."""
    stmt = statement.strip()
    m = re.match(r"^([A-Za-z_]\w*)\s*\[(.+?)\]\s*=\s*(.+?);?\s*$", stmt)
    if m is None:
        raise SliceError(
            f"cannot parse protected store statement: {statement!r}; "
            "expected the form 'array[index] = value;'"
        )
    array, index_expr, value_expr = m.group(1), m.group(2), m.group(3)
    return StoreTarget(
        lhs=f"{array}[{index_expr}]",
        array=array,
        index_expr=index_expr,
        value_expr=value_expr,
    )


def identifiers(expr: str) -> set[str]:
    """All identifiers appearing in a C expression."""
    return set(_IDENT_RE.findall(expr))


def statement_definition(line: str) -> tuple[str, str] | None:
    """If ``line`` defines a scalar, return ``(name, rhs)``."""
    stripped = line.strip()
    if stripped.startswith(("#", "//", "if", "for", "while", "return")):
        return None
    m = _DECL_ASSIGN_RE.match(stripped)
    if m is None:
        return None
    return m.group(1), m.group(2)


def slice_for_index(kernel: KernelSource, target: StoreTarget) -> list[str]:
    """Statements computing ``target``'s index, in execution order.

    Walks the kernel body backwards from the protected store, keeping
    every assignment whose LHS is (transitively) needed by the index
    expression. Free variables must be CUDA builtins or kernel
    parameters; anything else means the slice escapes what the
    directive compiler supports.
    """
    needed = identifiers(target.index_expr)
    free_ok = CUDA_BUILTINS | set(kernel.param_names)

    # Find the store's position in the body.
    store_pos = None
    for j, line in enumerate(kernel.body):
        if target.lhs.replace(" ", "") in line.replace(" ", ""):
            store_pos = j
            break
    if store_pos is None:
        store_pos = len(kernel.body)

    kept: list[str] = []
    for j in range(store_pos - 1, -1, -1):
        definition = statement_definition(kernel.body[j])
        if definition is None:
            continue
        name, rhs = definition
        if name in needed:
            kept.append(kernel.body[j].strip())
            needed.discard(name)
            needed |= identifiers(rhs)

    unresolved = {
        n for n in needed
        if n not in free_ok
        and not n.isdigit()
        # ALL_CAPS identifiers are macro constants (e.g. BLOCK_SIZE):
        # compile-time free variables of the slice.
        and not (n.isupper() and len(n) > 1)
    }
    # Numeric literals starting with a digit never match the identifier
    # regex, so anything left over is a real unknown.
    if unresolved:
        raise SliceError(
            f"store index of {target.lhs!r} depends on identifiers the "
            f"slice cannot resolve: {sorted(unresolved)}"
        )
    kept.reverse()
    return kept
