"""Idempotence analysis of LP regions (Section IV-A).

"Usually a thread block is idempotent, hence the recovery function is
trivially identical to the original kernel function. Such idempotency
can be statically identified using compiler."

Two analyses are provided:

* :func:`analyze_kernel_source` — the static, compiler-side check over
  CUDA-like source: a region is idempotent when no array is both read
  and written (re-execution would then consume its own output) and no
  written array is updated through an atomic or compound assignment
  (re-execution would accumulate twice).
* :func:`check_idempotent_dynamic` — the simulator-side oracle: run a
  block twice back to back and compare the protected outputs. Used to
  validate the static verdicts and to classify kernels the static
  analysis cannot see through.

The static analysis is conservative: it may flag an idempotent kernel
as unknown (e.g. when a read and a write to the same array never alias
dynamically), never the reverse — exactly the safe direction for
generating default recovery functions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.model import KernelSource
from repro.gpu.kernel import Kernel

_ARRAY_WRITE_RE = re.compile(
    r"(?<![\w.])([A-Za-z_]\w*)\s*\[[^\]]*\]\s*(\+=|-=|\*=|/=|\|=|&=|\^=|=)(?!=)"
)
_ARRAY_REF_RE = re.compile(r"(?<![\w.])([A-Za-z_]\w*)\s*\[")
_ATOMIC_RE = re.compile(r"(?<![\w.])atomic\w*\s*\(\s*&?\s*([A-Za-z_]\w*)")


@dataclass
class IdempotenceReport:
    """Verdict of the static analysis over one kernel."""

    kernel_name: str
    idempotent: bool
    #: Human-readable reasons when not (or not provably) idempotent.
    hazards: list[str] = field(default_factory=list)
    written_arrays: set[str] = field(default_factory=set)
    read_arrays: set[str] = field(default_factory=set)


def analyze_kernel_source(kernel: KernelSource) -> IdempotenceReport:
    """Statically classify a parsed kernel's re-execution safety."""
    written: set[str] = set()
    read: set[str] = set()
    hazards: list[str] = []

    for line in kernel.body:
        stmt = line.strip()
        if stmt.startswith(("#", "//")):
            continue
        write_spans = []
        for m in _ARRAY_WRITE_RE.finditer(stmt):
            array, op = m.group(1), m.group(2)
            written.add(array)
            write_spans.append(m.span())
            if op != "=":
                hazards.append(
                    f"compound update '{array}[...] {op}' accumulates "
                    "on re-execution"
                )
        for m in _ATOMIC_RE.finditer(stmt):
            written.add(m.group(1))
            hazards.append(
                f"atomic read-modify-write on '{m.group(1)}' accumulates "
                "on re-execution"
            )
        for m in _ARRAY_REF_RE.finditer(stmt):
            # Skip the reference that *is* the plain write target.
            if any(lo <= m.start() < hi for lo, hi in write_spans):
                continue
            read.add(m.group(1))

    overlap = written & read
    for array in sorted(overlap):
        hazards.append(
            f"array '{array}' is both read and written; re-execution "
            "would consume its own output"
        )
    return IdempotenceReport(
        kernel_name=kernel.name,
        idempotent=not hazards,
        hazards=hazards,
        written_arrays=written,
        read_arrays=read,
    )


def check_idempotent_dynamic(
    kernel: Kernel,
    setup,
    blocks: list[int] | None = None,
) -> bool:
    """Run each block twice on a fresh device; outputs must not move.

    ``setup`` is a zero-argument callable returning a freshly prepared
    :class:`~repro.gpu.device.Device` whose buffers are allocated for
    ``kernel`` (a workload's ``setup`` wrapped in a lambda). A kernel
    passes when, for every tested block, executing it a second time
    leaves every protected buffer bit-identical.
    """
    n_blocks = kernel.launch_config().n_blocks
    test_blocks = blocks if blocks is not None else list(range(n_blocks))
    for block in test_blocks:
        device = setup()
        device.launch(kernel, block_ids=[block])
        snapshot = {
            name: device.memory[name].array.copy()
            for name in kernel.protected_buffers
        }
        device.launch(kernel, block_ids=[block])
        for name, before in snapshot.items():
            if not np.array_equal(device.memory[name].array, before):
                return False
    return True
