"""Idempotence analysis of LP regions (Section IV-A).

"Usually a thread block is idempotent, hence the recovery function is
trivially identical to the original kernel function. Such idempotency
can be statically identified using compiler."

Three analyses are provided:

* :func:`analyze_kernel_source` — the static, compiler-side check over
  CUDA-like source, built on a real statement scanner
  (:func:`scan_statement`) that tracks per-statement read / write /
  accumulate sets with proper bracket matching: a region is idempotent
  when no array is both read and written (re-execution would then
  consume its own output) and no written array is updated through an
  atomic or compound assignment (re-execution would accumulate twice).
* :func:`analyze_kernel_source_regex` — the original single-regex
  heuristic, kept as a documented fallback. It has known blind spots
  (multi-dimensional ``a[i][j]`` targets, nested brackets in
  subscripts, parenthesized atomic operands) that the scanner fixes;
  the regression tests pin the previously misclassified cases.
* :func:`check_idempotent_dynamic` — the simulator-side oracle: run a
  block twice back to back and compare the protected outputs. Used to
  validate the static verdicts and to classify kernels the static
  analysis cannot see through.

The static analysis is conservative: it may flag an idempotent kernel
as unknown (e.g. when a read and a write to the same array never alias
dynamically), never the reverse — exactly the safe direction for
generating default recovery functions. The richer cross-checking
machinery lives in :mod:`repro.analysis.oracle`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.model import KernelSource
from repro.gpu.kernel import Kernel

_ARRAY_WRITE_RE = re.compile(
    r"(?<![\w.])([A-Za-z_]\w*)\s*\[[^\]]*\]\s*(\+=|-=|\*=|/=|\|=|&=|\^=|=)(?!=)"
)
_ARRAY_REF_RE = re.compile(r"(?<![\w.])([A-Za-z_]\w*)\s*\[")
_ATOMIC_RE = re.compile(r"(?<![\w.])atomic\w*\s*\(\s*&?\s*([A-Za-z_]\w*)")

#: Compound/assignment operators checked longest-first so ``<<=`` is not
#: misread as ``<`` + ``<=``.
_ASSIGN_OPS = ("<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "=")
#: Characters that, immediately before a bare ``=``, make it a
#: comparison or part of another operator rather than an assignment.
_NOT_ASSIGN_PREFIX = "=!<>+-*/%&|^"


@dataclass
class StatementEffects:
    """Read/write/atomic sets of one C-like statement."""

    #: ``(array, operator)`` for each array-element assignment.
    writes: list[tuple[str, str]] = field(default_factory=list)
    #: Base arrays referenced (subscripted) without being assigned.
    reads: list[str] = field(default_factory=list)
    #: ``(atomic_function, target_array)`` for each atomic call.
    atomics: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class IdempotenceReport:
    """Verdict of the static analysis over one kernel."""

    kernel_name: str
    idempotent: bool
    #: Human-readable reasons when not (or not provably) idempotent.
    hazards: list[str] = field(default_factory=list)
    written_arrays: set[str] = field(default_factory=set)
    read_arrays: set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# Statement scanner
# ---------------------------------------------------------------------------

def _strip_noncode(stmt: str) -> str:
    """Blank out comments and string/char literal contents."""
    out: list[str] = []
    i, n = 0, len(stmt)
    while i < n:
        ch = stmt[i]
        if ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and stmt[i] != quote:
                out.append(" ")
                i += 2 if stmt[i] == "\\" else 1
            i += 1
            out.append(" ")
            continue
        if ch == "/" and i + 1 < n and stmt[i + 1] == "/":
            break
        if ch == "/" and i + 1 < n and stmt[i + 1] == "*":
            end = stmt.find("*/", i + 2)
            if end < 0:
                break
            out.append(" " * (end + 2 - i))
            i = end + 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _skip_spaces(s: str, i: int) -> int:
    while i < len(s) and s[i] in " \t":
        i += 1
    return i


def _match_bracket(s: str, i: int) -> int:
    """Index just past the ``]`` matching the ``[`` at ``i`` (or len)."""
    depth = 0
    while i < len(s):
        if s[i] == "[":
            depth += 1
        elif s[i] == "]":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(s)


def _assignment_op_at(s: str, i: int) -> str | None:
    """The assignment operator starting at ``i``, if any."""
    for op in _ASSIGN_OPS:
        if s.startswith(op, i):
            # `a[i] == b` / `a[i] <= b` are comparisons, not writes.
            if op == "=" and s.startswith("==", i):
                return None
            return op
    return None


def _atomic_target(arg: str) -> str | None:
    """Base array of an atomic call's first operand.

    Handles ``&tab[h]``, ``& tab [h]``, ``&(bins[i])`` and plain
    pointer arithmetic like ``arr + i``.
    """
    text = arg.strip()
    while text and text[0] in "&( \t":
        text = text[1:].strip()
    m = re.match(r"([A-Za-z_]\w*)", text)
    return m.group(1) if m else None


def _first_call_arg(s: str, open_paren: int) -> str:
    """Text of the first argument of the call opening at ``open_paren``."""
    depth = 0
    start = open_paren + 1
    for i in range(open_paren, len(s)):
        ch = s[i]
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth == 0:
                return s[start:i]
        elif ch == "," and depth == 1:
            return s[start:i]
    return s[start:]


def scan_statement(stmt: str) -> StatementEffects:
    """Scan one statement for array reads, writes, and atomic updates.

    Unlike the legacy regexes, the scanner brace-matches subscripts, so
    multi-dimensional targets (``a[i][j] = v``), nested subscripts
    (``y[idx[i]] += 1``) and parenthesized atomic operands
    (``atomicAdd(&(bins[i]), 1)``) all classify correctly.
    """
    eff = StatementEffects()
    s = _strip_noncode(stmt)
    n = len(s)
    i = 0
    while i < n:
        ch = s[i]
        if not (ch.isalpha() or ch == "_"):
            i += 1
            continue
        j = i
        while j < n and (s[j].isalnum() or s[j] == "_"):
            j += 1
        ident = s[i:j]
        prev = s[i - 1] if i > 0 else ""
        if prev == "." or prev.isdigit():
            # Member access (``grid.x``) or a numeric-literal suffix.
            i = j
            continue
        k = _skip_spaces(s, j)
        if ident.startswith("atomic") and k < n and s[k] == "(":
            target = _atomic_target(_first_call_arg(s, k))
            if target is not None:
                eff.atomics.append((ident, target))
            i = j
            continue
        if k < n and s[k] == "[":
            # Consume every consecutive subscript group (``[i][j]``...).
            end = k
            while end < n and s[end] == "[":
                end = _skip_spaces(s, _match_bracket(s, end))
            op = _assignment_op_at(s, end)
            if op is not None:
                eff.writes.append((ident, op))
            else:
                eff.reads.append(ident)
            i = j  # keep scanning inside the subscripts for reads
            continue
        i = j
    return eff


# ---------------------------------------------------------------------------
# Kernel-level analyses
# ---------------------------------------------------------------------------

def analyze_kernel_source(kernel: KernelSource) -> IdempotenceReport:
    """Statically classify a parsed kernel's re-execution safety.

    Builds the kernel's read / write / accumulate sets with
    :func:`scan_statement` and applies the Section IV-A criteria: a
    compound or atomic update accumulates on re-execution; an array
    that is both read and written consumes its own output.
    """
    written: set[str] = set()
    read: set[str] = set()
    hazards: list[str] = []

    for line in kernel.body:
        stmt = line.strip()
        if stmt.startswith(("#", "//")):
            continue
        eff = scan_statement(stmt)
        for array, op in eff.writes:
            written.add(array)
            if op != "=":
                hazards.append(
                    f"compound update '{array}[...] {op}' accumulates "
                    "on re-execution"
                )
        for _func, array in eff.atomics:
            written.add(array)
            hazards.append(
                f"atomic read-modify-write on '{array}' accumulates "
                "on re-execution"
            )
        # The scanner classifies the write's own LHS occurrence as a
        # write (never a read), so every recorded read is a real one.
        read.update(eff.reads)

    overlap = written & read
    for array in sorted(overlap):
        hazards.append(
            f"array '{array}' is both read and written; re-execution "
            "would consume its own output"
        )
    return IdempotenceReport(
        kernel_name=kernel.name,
        idempotent=not hazards,
        hazards=hazards,
        written_arrays=written,
        read_arrays=read,
    )


def analyze_kernel_source_regex(kernel: KernelSource) -> IdempotenceReport:
    """The legacy regex heuristic, kept as a fallback.

    Known blind spots (all fixed by :func:`analyze_kernel_source` and
    pinned by regression tests): multi-dimensional write targets
    (``a[i][j] = v`` is missed entirely), nested brackets in subscripts
    (``y[idx[i]] += 1`` loses the compound write), and atomic operands
    wrapped in parentheses (``atomicAdd(&(bins[i]), 1)``).
    """
    written: set[str] = set()
    read: set[str] = set()
    hazards: list[str] = []

    for line in kernel.body:
        stmt = line.strip()
        if stmt.startswith(("#", "//")):
            continue
        write_spans = []
        for m in _ARRAY_WRITE_RE.finditer(stmt):
            array, op = m.group(1), m.group(2)
            written.add(array)
            write_spans.append(m.span())
            if op != "=":
                hazards.append(
                    f"compound update '{array}[...] {op}' accumulates "
                    "on re-execution"
                )
        for m in _ATOMIC_RE.finditer(stmt):
            written.add(m.group(1))
            hazards.append(
                f"atomic read-modify-write on '{m.group(1)}' accumulates "
                "on re-execution"
            )
        for m in _ARRAY_REF_RE.finditer(stmt):
            # Skip the reference that *is* the plain write target.
            if any(lo <= m.start() < hi for lo, hi in write_spans):
                continue
            read.add(m.group(1))

    overlap = written & read
    for array in sorted(overlap):
        hazards.append(
            f"array '{array}' is both read and written; re-execution "
            "would consume its own output"
        )
    return IdempotenceReport(
        kernel_name=kernel.name,
        idempotent=not hazards,
        hazards=hazards,
        written_arrays=written,
        read_arrays=read,
    )


def check_idempotent_dynamic(
    kernel: Kernel,
    setup,
    blocks: list[int] | None = None,
) -> bool:
    """Run each block twice on a fresh device; outputs must not move.

    ``setup`` is a zero-argument callable returning a freshly prepared
    :class:`~repro.gpu.device.Device` whose buffers are allocated for
    ``kernel`` (a workload's ``setup`` wrapped in a lambda). A kernel
    passes when, for every tested block, executing it a second time
    leaves every protected buffer bit-identical.
    """
    n_blocks = kernel.launch_config().n_blocks
    test_blocks = blocks if blocks is not None else list(range(n_blocks))
    for block in test_blocks:
        device = setup()
        device.launch(kernel, block_ids=[block])
        snapshot = {
            name: device.memory[name].array.copy()
            for name in kernel.protected_buffers
        }
        device.launch(kernel, block_ids=[block])
        for name, before in snapshot.items():
            if not np.array_equal(device.memory[name].array, before):
                return False
    return True
