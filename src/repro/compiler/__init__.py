"""Directive-based programming support (Section VI).

Two entry points:

* :func:`compile_program` — the source-to-source path: parse ``#pragma
  nvm`` directives out of CUDA-like text and emit instrumented host
  code, instrumented kernels, and check-and-recovery kernels.
* :mod:`repro.compiler.pydsl` — the executable path: the same
  two-directive programming model for kernels running on the simulator.
"""

from repro.compiler.idempotence import (
    IdempotenceReport,
    analyze_kernel_source,
    check_idempotent_dynamic,
)
from repro.compiler.model import (
    CHECKSUM_TYPE_TOKENS,
    ChecksumDirective,
    CompiledProgram,
    InitDirective,
    KernelSource,
    ProgramSource,
    StoreTarget,
)
from repro.compiler.parser import parse_pragma, parse_program, split_args
from repro.compiler.pydsl import (
    FunctionKernel,
    kernel_from_function,
    lazy_persistent,
)
from repro.compiler.recovery_gen import (
    generate_recovery_function,
    generate_recovery_kernel,
    recovery_kernel_name,
)
from repro.compiler.slicing import parse_store_target, slice_for_index
from repro.compiler.transform import (
    compile_program,
    emit_host_code,
    emit_instrumented_kernel,
)

__all__ = [
    "CHECKSUM_TYPE_TOKENS",
    "IdempotenceReport",
    "analyze_kernel_source",
    "check_idempotent_dynamic",
    "ChecksumDirective",
    "CompiledProgram",
    "FunctionKernel",
    "InitDirective",
    "KernelSource",
    "ProgramSource",
    "StoreTarget",
    "compile_program",
    "emit_host_code",
    "emit_instrumented_kernel",
    "generate_recovery_function",
    "generate_recovery_kernel",
    "kernel_from_function",
    "lazy_persistent",
    "parse_pragma",
    "parse_program",
    "parse_store_target",
    "recovery_kernel_name",
    "slice_for_index",
    "split_args",
]
