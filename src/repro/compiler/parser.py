"""Parsing of ``#pragma nvm`` directives and CUDA-like kernel sources.

This is a directive-focused parser, not a C compiler: it understands

* the two ``#pragma nvm`` directive forms,
* ``__global__`` kernel definitions (name, parameter list, body), and
* simple C statements (declarations/assignments) well enough to slice
  store-address computations.

Unsupported constructs in a kernel body are passed through untouched —
exactly the behaviour the paper requires of older compilers ("simply
ignore them") inverted: *we* only touch what the directives point at.
"""

from __future__ import annotations

import re

from repro.compiler.model import (
    ChecksumDirective,
    InitDirective,
    KernelSource,
    ProgramSource,
)
from repro.errors import DirectiveSyntaxError

_PRAGMA_RE = re.compile(r"^\s*#pragma\s+nvm\s+(\w+)\s*\((.*)\)\s*$")
_KERNEL_RE = re.compile(r"__global__\s+\w+[\w\s\*]*?\b(\w+)\s*\(")


def split_args(arg_text: str) -> list[str]:
    """Split a directive argument list on top-level commas.

    Respects parentheses and quotes, so ``lpcuda_init(tab, grid.x *
    grid.y, 1)`` and ``lpcuda_checksum("+", tab, blockIdx.x)`` both
    split correctly.
    """
    args: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for ch in arg_text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise DirectiveSyntaxError(
                    f"unbalanced parentheses in arguments: {arg_text!r}"
                )
            current.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    if quote is not None or depth != 0:
        raise DirectiveSyntaxError(
            f"unterminated quote/parenthesis in arguments: {arg_text!r}"
        )
    return args


def _strip_quotes(tok: str) -> str:
    if len(tok) >= 2 and tok[0] == tok[-1] and tok[0] in "\"'":
        return tok[1:-1]
    return tok


def parse_pragma(line: str, line_no: int):
    """Parse one source line; return a directive object or ``None``."""
    m = _PRAGMA_RE.match(line)
    if m is None:
        return None
    name, raw_args = m.group(1), m.group(2)
    args = split_args(raw_args)
    if name == "lpcuda_init":
        if len(args) != 3:
            raise DirectiveSyntaxError(
                f"line {line_no}: lpcuda_init takes 3 arguments "
                f"(table, nelems, selem), got {len(args)}"
            )
        return InitDirective(
            table=args[0], nelems_expr=args[1], selem_expr=args[2],
            line_no=line_no,
        )
    if name == "lpcuda_checksum":
        if len(args) < 3:
            raise DirectiveSyntaxError(
                f"line {line_no}: lpcuda_checksum takes at least 3 "
                f"arguments (type, table, key1, ...), got {len(args)}"
            )
        # The type argument may request several simultaneous checksums
        # as "+^" (modular and parity together, the paper's
        # recommendation); each character is one type token.
        type_arg = _strip_quotes(args[0])
        types = tuple(type_arg) if type_arg else ()
        return ChecksumDirective(
            checksum_types=types,
            table=args[1],
            keys=tuple(args[2:]),
            line_no=line_no,
        )
    raise DirectiveSyntaxError(
        f"line {line_no}: unknown nvm directive {name!r}"
    )


def _extract_param_names(params: str) -> tuple[str, ...]:
    names = []
    for piece in split_args(params):
        piece = piece.replace("*", " ").strip()
        if not piece:
            continue
        names.append(piece.split()[-1])
    return tuple(names)


def parse_program(source: str) -> ProgramSource:
    """Parse a CUDA-like translation unit into a :class:`ProgramSource`.

    Kernel bodies are captured by brace matching; ``lpcuda_checksum``
    directives are attached to their enclosing kernel, together with
    the statement on the following line (the protected store).
    """
    lines = source.splitlines()
    program = ProgramSource(lines=lines)

    i = 0
    while i < len(lines):
        line = lines[i]
        directive = parse_pragma(line, i + 1)
        if isinstance(directive, InitDirective):
            program.inits.append(directive)
            i += 1
            continue
        if isinstance(directive, ChecksumDirective):
            # Kernel-side; handled again during kernel body scan below.
            i += 1
            continue

        m = _KERNEL_RE.search(line)
        if m:
            kernel, i = _parse_kernel(lines, i, m.group(1))
            program.kernels.append(kernel)
            continue
        i += 1
    return program


def _parse_kernel(lines: list[str], start: int, name: str) -> tuple[KernelSource, int]:
    # Collect the parameter list (may span lines) up to the opening '{'.
    header = []
    i = start
    while i < len(lines) and "{" not in lines[i]:
        header.append(lines[i])
        i += 1
    if i >= len(lines):
        raise DirectiveSyntaxError(f"kernel {name!r}: no body found")
    header.append(lines[i][:lines[i].index("{")])
    header_text = "\n".join(header)
    p_open = header_text.index("(")
    depth = 0
    p_close = -1
    for pos in range(p_open, len(header_text)):
        if header_text[pos] == "(":
            depth += 1
        elif header_text[pos] == ")":
            depth -= 1
            if depth == 0:
                p_close = pos
                break
    if p_close < 0:
        raise DirectiveSyntaxError(f"kernel {name!r}: unbalanced parameters")
    params = " ".join(header_text[p_open + 1:p_close].split())

    # Brace-match the body.
    body: list[str] = []
    depth = 0
    body_start = i + 1
    rest_of_line = lines[i][lines[i].index("{"):]
    depth += rest_of_line.count("{") - rest_of_line.count("}")
    i += 1
    while i < len(lines) and depth > 0:
        depth += lines[i].count("{") - lines[i].count("}")
        if depth > 0:
            body.append(lines[i])
        i += 1

    kernel = KernelSource(
        name=name,
        params=params,
        param_names=_extract_param_names(params),
        body=body,
        body_start_line=body_start + 1,
    )

    # Attach checksum directives (and their target statements).
    for j, bline in enumerate(kernel.body):
        directive = parse_pragma(bline, kernel.body_start_line + j)
        if isinstance(directive, ChecksumDirective):
            target = ""
            if j + 1 < len(kernel.body):
                target = kernel.body[j + 1].strip()
            kernel.checksums.append(
                ChecksumDirective(
                    checksum_types=directive.checksum_types,
                    table=directive.table,
                    keys=directive.keys,
                    line_no=directive.line_no,
                    target_statement=target,
                )
            )
    return kernel, i
