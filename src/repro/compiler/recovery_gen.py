"""Generation of check-and-recovery kernels (the paper's Listing 7).

For each protected store, the recovery kernel:

1. re-executes the *program slice* that computes the store's pointer
   (``c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;`` etc.),
2. fetches the value memory holds there and validates it against the
   checksum table using the directive's keys,
3. on failure, invokes the recovery function generated from the
   original kernel body (for idempotent regions, the kernel itself).

The kernel has the same thread dimensions as the original, as Section
IV-A specifies.
"""

from __future__ import annotations

from repro.compiler.model import ChecksumDirective, KernelSource
from repro.compiler.slicing import parse_store_target, slice_for_index


def recovery_kernel_name(kernel_name: str) -> str:
    """Name of the generated check-and-recovery kernel (``cr`` prefix)."""
    return f"cr{kernel_name[0].upper()}{kernel_name[1:]}"


def generate_recovery_kernel(
    kernel: KernelSource, directive: ChecksumDirective
) -> str:
    """Emit the check-and-recovery kernel for one protected store."""
    target = parse_store_target(directive.target_statement)
    slice_stmts = slice_for_index(kernel, target)
    keys = ", ".join(directive.keys)
    args = ", ".join(kernel.param_names)

    lines = [
        f"__global__ void {recovery_kernel_name(kernel.name)}"
        f"({kernel.params}) {{",
    ]
    lines += [f"    {stmt}" for stmt in slice_stmts]
    lines += [
        f"    if (!lpcuda_validate({target.lhs}, {directive.table}, "
        f"{keys})) {{",
        f"        recovery_{kernel.name}({args});",
        "    }",
        "}",
    ]
    return "\n".join(lines)


def generate_recovery_function(kernel: KernelSource) -> str:
    """Emit the default recovery function: re-run the region's body.

    Valid for idempotent regions ("usually a thread block is
    idempotent, hence the recovery function is trivially identical to
    the original kernel function", Section IV-A). Non-idempotent
    kernels must supply their own.
    """
    lines = [
        f"__device__ void recovery_{kernel.name}({kernel.params}) {{",
        "    /* idempotent region: recovery re-executes the block */",
    ]
    lines += [line for line in kernel.body
              if not line.strip().startswith("#pragma nvm")]
    lines.append("}")
    return "\n".join(lines)
