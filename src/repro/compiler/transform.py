"""Source-to-source instrumentation driven by the nvm directives.

Given CUDA-like source annotated with ``lpcuda_init`` /
``lpcuda_checksum``, emits:

* **host code** — the init pragma becomes a runtime call allocating the
  checksum table (Listing 5's transformation);
* **kernel code** — each annotated kernel gains per-thread checksum
  registers, an update before every protected store, and a block-level
  reduce-and-insert epilogue (the generated equivalent of Listings 2-4);
* **recovery code** — a check-and-recovery kernel per protected store
  (Listing 7), via :mod:`repro.compiler.recovery_gen`.

The emitted text targets a small runtime API (``lpcuda_*`` functions)
rather than raw CUDA, mirroring how the paper's directive support
lowers to runtime calls; the semantics of that API are exactly what
:mod:`repro.core.runtime` implements executably.
"""

from __future__ import annotations

from repro.compiler.model import (
    CompiledProgram,
    KernelSource,
    ProgramSource,
)
from repro.compiler.parser import parse_pragma, parse_program
from repro.compiler.recovery_gen import generate_recovery_kernel
from repro.errors import DirectiveSemanticError

#: Per-lane checksum register declaration emitted at kernel entry.
_PROLOGUE = "unsigned long long __lp_cs[{n}] = {{{zeros}}};  /* LP checksums */"

_UPDATE_OPS = {"+": "+=", "^": "^="}
_REDUCE_FUNCS = {"+": "__lp_block_reduce_add", "^": "__lp_block_reduce_xor"}


def compile_program(source: str) -> CompiledProgram:
    """Run the full directive-compiler pipeline over a source string."""
    program = parse_program(source)
    _check_tables_declared(program)
    host = emit_host_code(program)
    kernels = "\n\n".join(
        emit_instrumented_kernel(k) for k in program.kernels
    )
    recovery = "\n\n".join(
        generate_recovery_kernel(k, d)
        for k in program.kernels
        for d in k.checksums
    )
    all_checksums = [d for k in program.kernels for d in k.checksums]
    return CompiledProgram(
        host_code=host,
        kernel_code=kernels,
        recovery_code=recovery,
        inits=list(program.inits),
        checksums=all_checksums,
    )


def _check_tables_declared(program: ProgramSource) -> None:
    declared = {ini.table for ini in program.inits}
    for kernel in program.kernels:
        for d in kernel.checksums:
            if d.table not in declared:
                raise DirectiveSemanticError(
                    f"line {d.line_no}: checksum table {d.table!r} used in "
                    f"kernel {kernel.name!r} but never declared with "
                    "lpcuda_init"
                )


# ---------------------------------------------------------------------------
# Host side
# ---------------------------------------------------------------------------

def emit_host_code(program: ProgramSource) -> str:
    """Replace host-side pragmas with runtime calls, pass the rest through."""
    out: list[str] = []
    for i, line in enumerate(program.lines):
        directive = parse_pragma(line, i + 1)
        if directive is None or directive.__class__.__name__ != "InitDirective":
            # Kernel-side pragmas are handled by the kernel emitter;
            # drop them from host output only if this line is inside no
            # kernel — the simple rule "host output = original text with
            # init pragmas lowered" keeps the diff minimal.
            out.append(line)
            continue
        indent = line[: len(line) - len(line.lstrip())]
        out.append(
            f"{indent}lpcuda_table_t {directive.table} = "
            f"lpcuda_runtime_init({directive.nelems_expr}, "
            f"{directive.selem_expr});"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Kernel side
# ---------------------------------------------------------------------------

def emit_instrumented_kernel(kernel: KernelSource) -> str:
    """Emit one kernel with LP instrumentation woven in.

    Kernels without checksum directives are emitted unchanged.
    """
    header = f"__global__ void {kernel.name}({kernel.params}) {{"
    if not kernel.checksums:
        return "\n".join([header, *kernel.body, "}"])

    types = _lane_types(kernel)
    lane_of = {tok: i for i, tok in enumerate(types)}

    body: list[str] = []
    body.append(
        "    "
        + _PROLOGUE.format(n=len(types), zeros=", ".join("0" * 1 for _ in types))
    )

    pending = {id(d): d for d in kernel.checksums}
    i = 0
    while i < len(kernel.body):
        line = kernel.body[i]
        directive = parse_pragma(line, 0)
        if directive is not None and directive.__class__.__name__ == "ChecksumDirective":
            # The next line is the protected store; emit updates first.
            matching = next(
                (d for d in kernel.checksums
                 if d.target_statement == kernel.body[i + 1].strip()),
                None,
            ) if i + 1 < len(kernel.body) else None
            store_line = kernel.body[i + 1] if i + 1 < len(kernel.body) else ""
            indent = store_line[: len(store_line) - len(store_line.lstrip())]
            if matching is not None:
                from repro.compiler.slicing import parse_store_target

                target = parse_store_target(matching.target_statement)
                for tok in matching.checksum_types:
                    body.append(
                        f"{indent}__lp_cs[{lane_of[tok]}] "
                        f"{_UPDATE_OPS[tok]} "
                        f"__lp_ordered_bits({target.value_expr});"
                    )
                pending.pop(id(matching), None)
            body.append(store_line)
            i += 2
            continue
        body.append(line)
        i += 1

    body.append("")
    body.append("    /* --- Lazy Persistency epilogue (generated) --- */")
    for tok in types:
        body.append(
            f"    __lp_cs[{lane_of[tok]}] = "
            f"{_REDUCE_FUNCS[tok]}(__lp_cs[{lane_of[tok]}]);"
        )
    body.append("    if (threadIdx.x == 0 && threadIdx.y == 0) {")
    for d in kernel.checksums:
        keys = ", ".join(d.keys)
        body.append(
            f"        lpcuda_table_insert(&{d.table}, {keys}, __lp_cs);"
        )
    body.append("    }")
    return "\n".join([header, *body, "}"])


def _lane_types(kernel: KernelSource) -> tuple[str, ...]:
    """Distinct checksum-type tokens used by a kernel, in first-use order."""
    seen: list[str] = []
    for d in kernel.checksums:
        for tok in d.checksum_types:
            if tok not in seen:
                seen.append(tok)
    return tuple(seen)
