"""The ``serve`` crash scenario: SIGKILL the live daemon, keep the clients.

The workload-grid scenarios prove the *substrate* recovers; this one
proves the *service contract* holds: a daemon under live client load
is SIGKILLed from inside an armed write-back window (``writebacks:N``
fires during a window's drain, exactly like the grid children die),
the parent restarts it on the same heap, and the very same clients —
which have been reconnect-retrying the whole time — finish their
plans. Convergence then means:

* every write a client saw acked is observable afterwards (checked
  twice: read-your-writes during the run, and a full final sweep of
  every written key against the merged per-client expectations);
* every un-acked in-flight request was cleanly retryable (the clients
  literally retried them until acked — a hang or a lost retry fails
  the scenario's deadline);
* the restarted daemon reports a real resume (cold open → WAL replay →
  validate → recover) and keeps serving.

Clients get disjoint zipfian key partitions so "expected state" is
well-defined under concurrency: each key has exactly one writer, and
that writer is a strict request/response client (pipeline 1).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ChildStartupError, ChildTimeoutError
from repro.harness.crashproc import _child_env, _kill_group
from repro.harness.tmpdir import ManagedTmpdir
from repro.service.loadgen import LoadConfig, run_load
from repro.service.protocol import ServiceClient


class _Daemon:
    """One spawned ``python -m repro serve`` child in its own session."""

    def __init__(self, tmp: ManagedTmpdir, tag: str, heap: Path,
                 *, socket_path: str, shards: int, engine: str,
                 capacity: int, cache_lines: int, max_batch: int,
                 max_wait_ms: float, kill_trigger: str | None,
                 telemetry: str | None, stats_path: Path | None) -> None:
        # Both generations bind the same socket path — that is what the
        # clients' reconnect loop points at.
        self.socket_path = socket_path
        self.ready = tmp.file(f"{tag}.ready")
        self.log = tmp.file(f"{tag}.log")
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--heap", str(heap),
            "--socket", self.socket_path,
            "--engine", engine,
            "--capacity", str(capacity),
            "--cache-lines", str(cache_lines),
            "--max-batch", str(max_batch),
            "--max-wait-ms", str(max_wait_ms),
            "--ready-file", str(self.ready),
        ]
        if shards:
            cmd += ["--shards", str(shards)]
        if kill_trigger:
            cmd += ["--kill-trigger", kill_trigger]
        if telemetry:
            cmd += ["--telemetry", telemetry,
                    "--telemetry-interval", "0.1"]
        if stats_path is not None:
            cmd += ["--stats", str(stats_path)]
        self.proc = subprocess.Popen(
            cmd,
            stdout=open(self.log, "w"),
            stderr=subprocess.STDOUT,
            env=_child_env(tmp.path),
            start_new_session=True,
        )

    def wait_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while not self.ready.exists():
            if self.proc.poll() is not None:
                raise ChildStartupError(
                    f"daemon died before ready (rc={self.proc.returncode});"
                    f" log:\n{self.log.read_text()}"
                )
            if time.monotonic() > deadline:
                _kill_group(self.proc)
                raise ChildTimeoutError(
                    f"daemon never became ready within {timeout}s"
                )
            time.sleep(0.01)

    def wait_killed(self, timeout: float) -> int:
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            _kill_group(self.proc)
            raise ChildTimeoutError(
                f"daemon outlived its kill trigger ({timeout}s); "
                f"log:\n{self.log.read_text()}"
            ) from None

    def kill(self) -> None:
        _kill_group(self.proc)


def _journal_armed(heap: Path, shards: int) -> bool:
    """Whether the SIGKILL left a torn-write journal armed (read-only)."""
    from repro.nvm.inspect import inspect_path

    report = inspect_path(heap)
    if shards:
        return bool(report.armed_shards())
    return bool(report.journal.armed)


def run_serve_scenario(
    *,
    shards: int = 0,
    seed: int = 0,
    engine: str = "serial",
    clients: int = 3,
    requests_per_client: int = 200,
    key_space: int = 96,
    kill_trigger: str = "writebacks:150",
    capacity: int = 8192,
    cache_lines: int = 64,
    max_batch: int = 64,
    max_wait_ms: float = 4.0,
    timeout: float = 180.0,
    telemetry_path: str | None = None,
    artifacts_dir: str | None = None,
    progress=None,
) -> dict:
    """Kill the daemon mid-batch under live load; prove resume."""

    def say(label: str) -> None:
        if progress is not None:
            progress(label)

    report: dict = {
        "scenario": "serve",
        "shards": shards,
        "engine": engine,
        "kill_trigger": kill_trigger,
        "clients": clients,
        "requests_per_client": requests_per_client,
    }
    with ManagedTmpdir(prefix="repro-serve-crash-") as tmp:
        heap = (tmp.file("serve.sharded/heap.lpnv") if shards
                else tmp.file("serve.heap.lpnv"))
        stats_path = tmp.file("resumed-stats.json")
        socket_path = str(tmp.file("serve.sock"))
        daemon_kw = dict(socket_path=socket_path, shards=shards,
                         engine=engine, capacity=capacity,
                         cache_lines=cache_lines, max_batch=max_batch,
                         max_wait_ms=max_wait_ms)

        say(f"starting daemon (trigger {kill_trigger})")
        live = _Daemon(tmp, "live", heap, kill_trigger=kill_trigger,
                       telemetry=telemetry_path, stats_path=None,
                       **daemon_kw)
        live.wait_ready(timeout)

        # Clients run through the kill: strict request/response on
        # disjoint key partitions, reconnect-and-retry-until-acked,
        # read-your-writes verified on every GET.
        load_cfg = LoadConfig(
            clients=clients,
            requests_per_client=requests_per_client,
            key_space=key_space,
            seed=seed,
            pipeline=1,
            partition_keys=True,
            retry_until_acked=True,
            verify=True,
            reconnect_wait_s=timeout,
            timeout=30.0,
        )

        import threading

        load_out: dict = {}

        def _drive() -> None:
            load_out["report"] = run_load(live.socket_path, load_cfg,
                                          deadline_s=timeout)

        say("driving load")
        loader = threading.Thread(target=_drive, daemon=True)
        loader.start()

        rc = live.wait_killed(timeout)
        report["kill_rc"] = rc
        report["killed_by_sigkill"] = rc == -signal.SIGKILL
        say(f"daemon died (rc={rc}); inspecting heap before restart")
        # Decode the post-kill image read-only while the clients spin
        # on reconnect: the writebacks trigger dies inside commit(), so
        # the journal must still be armed.
        report["journal_armed_at_kill"] = _journal_armed(heap, shards)
        if artifacts_dir is not None:
            import shutil

            dest = Path(artifacts_dir)
            dest.mkdir(parents=True, exist_ok=True)
            if shards:
                shutil.copytree(heap.parent, dest / "serve.sharded",
                                dirs_exist_ok=True)
            else:
                shutil.copy2(heap, dest / heap.name)
            reqlog = heap.with_name(heap.name + ".reqlog")
            if reqlog.exists():
                shutil.copy2(reqlog, dest / reqlog.name)

        say("restarting daemon on the same heap")
        resumed = _Daemon(
            tmp, "resumed", heap, kill_trigger=None,
            telemetry=f"{telemetry_path}.resumed" if telemetry_path
            else None,
            stats_path=stats_path, **daemon_kw)
        # The clients reconnect to the same socket path by themselves.
        resumed.wait_ready(timeout)

        loader.join(timeout=timeout)
        if loader.is_alive():
            resumed.kill()
            raise ChildTimeoutError(
                f"load generator did not finish within {timeout}s")
        load = load_out["report"]
        failures = [c.failure for c in load.clients if c.failure]
        mismatches = [m for c in load.clients
                      for m in c.verify_mismatches]

        # Final sweep: every key any client ever wrote must hold the
        # last acked value (or be gone, for an acked delete).
        say("verifying final state against acked writes")
        expected = load.expected_state()
        sweep_mismatches = []
        with ServiceClient(live.socket_path).connect(
                retry_for=30.0) as check:
            resume_stats = check.stats()
            for key, want in sorted(expected.items()):
                got = check.get(key)
                if got != want:
                    sweep_mismatches.append(
                        {"key": key, "want": want, "got": got})
            check.shutdown()
        resumed.proc.wait(timeout=timeout)

        report.update({
            "load": load.to_dict(),
            "client_failures": failures,
            "acked_writes_checked": len(expected),
            "read_your_writes_mismatches": mismatches[:10],
            "final_sweep_mismatches": sweep_mismatches[:10],
            "resume": resume_stats["resume"],
            "resumed_exit_rc": resumed.proc.returncode,
            "converged": (
                rc == -signal.SIGKILL
                and not failures
                and not mismatches
                and not sweep_mismatches
                and load.reconnects > 0
                and resume_stats["resume"]["resumed"]
                and resumed.proc.returncode == 0
            ),
        })
    return report


def render_serve_text(report: dict) -> str:
    """Human-readable summary of a serve-scenario report."""
    load = report.get("load", {})
    lines = [
        "serve crash scenario "
        + ("CONVERGED" if report.get("converged") else "FAILED"),
        f"  kill: rc={report.get('kill_rc')} "
        f"(trigger {report.get('kill_trigger')}), journal armed at "
        f"kill: {report.get('journal_armed_at_kill')}",
        f"  load: {load.get('acked')} acked over "
        f"{load.get('clients')} client(s), {load.get('reconnects')} "
        f"reconnect(s), {load.get('resent')} resent, "
        f"{load.get('shed')} shed",
        f"  resume: {report.get('resume')}",
        f"  verified {report.get('acked_writes_checked')} acked "
        f"write(s); mismatches: "
        f"{len(report.get('final_sweep_mismatches', []))} final, "
        f"{len(report.get('read_your_writes_mismatches', []))} "
        "read-your-writes",
    ]
    if report.get("client_failures"):
        lines.append(f"  client failures: {report['client_failures']}")
    return "\n".join(lines)


__all__ = ["run_serve_scenario", "render_serve_text"]


if __name__ == "__main__":  # debug entry
    out = run_serve_scenario(progress=lambda s: print(f"serve: {s}",
                                                      flush=True))
    print(render_serve_text(out))
    raise SystemExit(0 if out["converged"] else 1)
