"""Crash-kill scenarios: the kill → reopen → recover → re-kill loop.

One scenario *cell* proves end-to-end durability for one (workload,
engine, LP config) combination:

1. **kill round 0** — a child process runs the forward launch against a
   fresh mapped heap and is SIGKILLed by its trigger mid-launch.
2. **measure** — the parent reopens the heap file cold
   (:meth:`MappedShadow.open`), rebuilds the device deterministically,
   adopts the persisted images, and runs a validation pass: the failed
   blocks are what the crash *actually* lost, and the journal reports
   any torn write-back.
3. **kill rounds 1..k-1** — a fresh child reopens the heap and runs the
   recovery pipeline, and is killed again mid-recovery; the measure
   step repeats. Recovery progress persists across its own death —
   each round's failed set can only shrink.
4. **final** — the parent itself recovers in-process (same pluggable
   engine), drains, and verifies both the volatile output and the
   persisted NVM image against the workload's crash-free reference.

:func:`run_grid` drives cells across workloads × engines × configs and
builds the JSON report consumed by ``python -m repro crash-test`` and
the CI smoke job: per-round blocks lost, blocks recovered, torn lines,
and rounds to convergence.

With ``shards > 0`` every cell runs against a sharded heap
(:class:`~repro.nvm.sharded.ShardedShadow`): the launch round becomes a
*shard-kill* round (the child dies inside one shard's armed journal
window while the other shards stay clean), measurement adds the
per-shard torn split, and the offline inspector decodes the manifest
plus every shard file.
"""

from __future__ import annotations

import json
import shutil
import zlib
from pathlib import Path

from repro.errors import HarnessError
from repro.harness.crashproc import (
    DEFAULT_TIMEOUT,
    ChildSpec,
    build_run,
    parse_trigger,
    run_child,
)
from repro.harness.tmpdir import ManagedTmpdir
from repro.obs import current as _recorder

#: Grid defaults: two workloads with different store shapes (regular
#: row-per-block SPMV, strided tile-output TMM), every engine, the
#: paper-best table.
DEFAULT_WORKLOADS = ("spmv", "tmm")
DEFAULT_ENGINES = ("serial", "parallel", "batched")
DEFAULT_CONFIGS = ("global-array",)
#: Small write-back cache so the eviction trickle (and therefore kill
#: triggers and real data loss) starts early even at small scale.
DEFAULT_CACHE_LINES = 4
DEFAULT_TRIGGER = "writebacks:6"


def _open_heap(spec: ChildSpec):
    """Parent-side cold open matching the spec's heap kind."""
    from repro.nvm.mapped import MappedShadow
    from repro.nvm.sharded import ShardedShadow

    if spec.shards > 0:
        return ShardedShadow.open(spec.heap_path)
    return MappedShadow.open(spec.heap_path)


def _measure(spec: ChildSpec) -> dict:
    """Reopen the heap cold and take stock: torn lines, failed blocks."""
    from repro.core.recovery import RecoveryManager

    heap = _open_heap(spec)
    try:
        torn_lines = heap.torn.n_lines if heap.torn is not None else 0
        torn_by_buffer = heap.torn_by_buffer()
        device, _work, lp_kernel = build_run(spec)
        heap.adopt(device.memory)
        report = RecoveryManager(device, lp_kernel).validate()
        measured = {
            "torn_lines": torn_lines,
            "torn_by_buffer": torn_by_buffer,
            "buffers": sorted(heap.entries),
            "blocks_failed": report.n_failed,
            "missing_checksums": len(report.missing_checksums),
        }
        if spec.shards > 0:
            measured["torn_by_shard"] = {
                str(k): torn.n_lines
                for k, torn in sorted(heap.torn_by_shard.items())
            }
        return measured
    finally:
        heap.close()


def _inspect_round(spec: ChildSpec) -> dict:
    """Offline inspector's view of the post-kill heap.

    Must run *before* :func:`_measure`: the cold reopen clears armed
    journals as a side effect, and the whole point of the offline
    inspector is to decode the file(s) exactly as the SIGKILL left
    them. For a sharded heap the manifest is decoded with every shard,
    and per-shard torn windows are merged the same way the live reopen
    merges them.
    """
    from repro.nvm.inspect import inspect_heap, inspect_sharded

    if spec.shards > 0:
        report = inspect_sharded(spec.heap_path)
        merged = report.merged_torn()
        return {
            "armed": bool(report.armed_shards()),
            "mode": "+".join(report.shards[k].torn.mode
                             for k in report.armed_shards()) or "EMPTY",
            "torn_lines": merged["torn_lines"],
            "torn_by_buffer": merged["torn_by_buffer"],
            "buffers": sorted(
                e.name for shard in report.shards for e in shard.entries),
            "shards_armed": report.armed_shards(),
            "torn_by_shard": {
                str(k): report.shards[k].torn.n_lines
                for k in report.armed_shards()
            },
        }
    report = inspect_heap(spec.heap_path)
    return {
        "armed": report.torn.armed,
        "mode": report.torn.mode,
        "torn_lines": report.torn.n_lines,
        "torn_by_buffer": dict(report.torn.by_buffer),
        "buffers": sorted(e.name for e in report.entries),
    }


def _inspect_consistent(inspected: dict, measured: dict) -> bool:
    """Does the read-only inspector agree with the reopen path?

    The two decode the same on-disk structures through entirely
    different code paths (cold ``ACCESS_READ`` map vs. the live
    reopen); any disagreement on the journal's armed state, the
    torn-line attribution, the per-shard split, or the directory is a
    format bug.
    """
    return (
        inspected["armed"] == (measured["torn_lines"] > 0)
        and inspected["torn_lines"] == measured["torn_lines"]
        and inspected["torn_by_buffer"] == measured["torn_by_buffer"]
        and inspected["buffers"] == measured["buffers"]
        and inspected.get("torn_by_shard", {})
        == measured.get("torn_by_shard", {})
    )


def _final_recover(spec: ChildSpec) -> dict:
    """Parent-side convergence: recover in-process, drain, verify."""
    from repro.core.recovery import RecoveryManager
    from repro.errors import RecoveryError

    heap = _open_heap(spec)
    try:
        device, work, lp_kernel = build_run(spec)
        heap.adopt(device.memory)
        try:
            report = RecoveryManager(device, lp_kernel).recover()
        except RecoveryError as exc:
            return {"converged": False, "error": str(exc),
                    "verified": False, "verified_persisted": False,
                    "blocks_recovered": 0, "recovery_launches": 0}
        device.drain()
        return {
            "converged": report.recovered,
            "blocks_recovered": len(report.recovered_blocks),
            "recovery_launches": len(report.recovery_launches),
            "verified": work.matches(device),
            "verified_persisted": work.matches(device, persisted=True),
            "forensics": None if report.forensics is None
            else report.forensics.to_dict(),
        }
    finally:
        heap.close()


def _round_trigger(
    trigger: str, kill_seed: int | None, round_no: int,
    workload: str, engine: str, config: str,
) -> str:
    """The trigger one kill round uses.

    Without ``kill_seed`` every round kills at the same fixed
    threshold. With it, count-based thresholds are drawn from a
    deterministic per-(cell, round) stream — the base threshold bounds
    the draw at twice its value — so one seed reproduces a whole
    family of kill points exactly (``walltime`` triggers are left
    untouched: wall-clock kills are not reproducible anyway).
    """
    import numpy as np

    kind, value = parse_trigger(trigger)
    if kill_seed is None or kind == "walltime":
        return trigger
    cell_key = zlib.crc32(f"{workload}/{engine}/{config}".encode())
    rng = np.random.default_rng([kill_seed, round_no, cell_key])
    threshold = int(rng.integers(1, max(2, 2 * int(value)) + 1))
    return f"{kind}:{threshold}"


def run_cell(
    workload: str,
    engine: str,
    config: str,
    scale: str = "small",
    seed: int = 0,
    kill_rounds: int = 2,
    trigger: str = DEFAULT_TRIGGER,
    jobs: int | None = None,
    cache_lines: int = DEFAULT_CACHE_LINES,
    timeout: float = DEFAULT_TIMEOUT,
    keep_tmp: bool = False,
    kill_seed: int | None = None,
    trace_dir=None,
    artifacts_dir=None,
    shards: int = 0,
) -> dict:
    """Run the full kill loop for one grid cell; returns its report.

    With ``trace_dir`` every child round streams its flight recorder
    to ``<dir>/<workload>-<engine>-<config>-roundN-<phase>.trace.jsonl``
    (the trace survives the SIGKILL up to the kill instant). With
    ``artifacts_dir`` the heap file is copied there — armed journal and
    all — after the last kill round, before the parent's in-process
    recovery cleans it, so ``repro inspect`` can be run on it later.

    With ``shards > 0`` the cell runs against an N-shard
    :class:`~repro.nvm.sharded.ShardedShadow` and the launch round
    becomes the **shard-kill round**: a count-based write-back trigger
    is rewritten to ``shardwb*`` so the SIGKILL lands inside exactly
    one shard's armed journal window while the other shards' committed
    write-backs stay clean — the containment the cell then proves by
    converging bit-exactly. Sharded artifacts land in a
    ``<cell>.sharded/`` subdirectory (manifest + every shard file,
    names preserved so the manifest stays openable).
    """
    parse_trigger(trigger)  # fail fast on bad input
    if kill_rounds < 1:
        raise HarnessError(f"kill_rounds must be >= 1, got {kill_rounds}")
    rec = _recorder()
    rounds: list[dict] = []
    cell_tag = f"{workload}-{engine}-{config}"
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    with ManagedTmpdir(keep=keep_tmp) as tmp, rec.trace.span(
        "harness.cell", cat="harness", track="harness",
        workload=workload, engine=engine, config=config,
        shards=shards,
    ):
        base = dict(
            workload=workload, scale=scale, seed=seed, config=config,
            engine=engine, jobs=jobs, cache_lines=cache_lines,
            heap_path=str(tmp.file("heap.lpnv")),
            ready_path=str(tmp.file("ready")),
            shards=shards,
        )
        for round_no in range(kill_rounds):
            phase = "launch" if round_no == 0 else "recover"
            round_trigger = _round_trigger(
                trigger, kill_seed, round_no, workload, engine, config
            )
            if shards > 0 and phase == "launch":
                kind, value = parse_trigger(round_trigger)
                if kind == "writebacks":
                    # The shard-kill round: die inside one shard's
                    # armed journal window instead of the heap-wide
                    # write-back count.
                    round_trigger = f"shardwb*:{int(value)}"
            trace_path = None if trace_dir is None else str(
                trace_dir / f"{cell_tag}-round{round_no}-{phase}"
                ".trace.jsonl"
            )
            spec = ChildSpec(phase=phase, trigger=round_trigger,
                             trace_path=trace_path, **base)
            outcome = run_child(spec, tmp, timeout=timeout)
            if artifacts_dir is not None:
                # Snapshot the raw post-kill image (armed journal and
                # all) before _measure's reopen disarms it; the last
                # round's snapshot is the cell's artifact.
                artifacts_dir = Path(artifacts_dir)
                if shards > 0:
                    cell_dir = artifacts_dir / f"{cell_tag}.sharded"
                    cell_dir.mkdir(parents=True, exist_ok=True)
                    heap_path = Path(base["heap_path"])
                    shutil.copyfile(heap_path,
                                    cell_dir / heap_path.name)
                    for k in range(shards):
                        shard_file = heap_path.with_name(
                            f"{heap_path.name}.shard{k}")
                        shutil.copyfile(shard_file,
                                        cell_dir / shard_file.name)
                else:
                    artifacts_dir.mkdir(parents=True, exist_ok=True)
                    shutil.copyfile(
                        base["heap_path"],
                        artifacts_dir / f"{cell_tag}.heap.lpnv")
            # Cold-inspect the heap *before* _measure reopens it —
            # open() disarms the journal, the inspector must see the
            # exact post-SIGKILL bytes.
            inspected = _inspect_round(spec)
            measured = _measure(spec)
            rounds.append({
                "phase": phase,
                "trigger": round_trigger,
                "killed": outcome.killed,
                "returncode": outcome.returncode,
                "spawn_attempts": outcome.attempts,
                "inspect": inspected,
                "inspect_consistent":
                    _inspect_consistent(inspected, measured),
                **measured,
            })
            if rec.metrics.active:
                rec.metrics.inc("harness.rounds", phase=phase,
                                workload=workload, engine=engine)
            if rec.sampler is not None:
                # Round boundary: flush a telemetry sample so the time
                # series shows per-round progress even for short cells.
                rec.sampler.sample()
            if outcome.completed and measured["blocks_failed"] == 0:
                # The child outran its trigger and left a fully
                # consistent heap; further kill rounds would be no-ops.
                break
        final = _final_recover(
            ChildSpec(phase="recover", trigger=None, **base)
        )
    return {
        "workload": workload,
        "engine": engine,
        "config": config,
        "shards": shards,
        "rounds": rounds,
        "final": final,
        #: Process generations from first kill to a verified state.
        "rounds_to_convergence": len(rounds) + 1,
        "ok": bool(final["converged"] and final["verified"]
                   and final["verified_persisted"]
                   and all(r["inspect_consistent"] for r in rounds)),
    }


def run_grid(
    workloads=DEFAULT_WORKLOADS,
    engines=DEFAULT_ENGINES,
    configs=DEFAULT_CONFIGS,
    scale: str = "small",
    seed: int = 0,
    kill_rounds: int = 2,
    trigger: str = DEFAULT_TRIGGER,
    jobs: int | None = None,
    cache_lines: int = DEFAULT_CACHE_LINES,
    timeout: float = DEFAULT_TIMEOUT,
    progress=None,
    kill_seed: int | None = None,
    trace_dir=None,
    artifacts_dir=None,
    shards: int = 0,
) -> dict:
    """Run every cell of the grid; returns the full JSON-able report."""
    cells = []
    for workload in workloads:
        for engine in engines:
            for config in configs:
                if progress is not None:
                    progress(f"{workload} × {engine} × {config}")
                cells.append(run_cell(
                    workload, engine, config, scale=scale, seed=seed,
                    kill_rounds=kill_rounds, trigger=trigger, jobs=jobs,
                    cache_lines=cache_lines, timeout=timeout,
                    kill_seed=kill_seed, trace_dir=trace_dir,
                    artifacts_dir=artifacts_dir, shards=shards,
                ))
    return {
        "suite": "crash-test",
        "scale": scale,
        "seed": seed,
        "kill_seed": kill_seed,
        "trigger": trigger,
        "kill_rounds": kill_rounds,
        "cache_lines": cache_lines,
        "shards": shards,
        "cells": cells,
        "converged": all(cell["ok"] for cell in cells),
    }


def write_report(report: dict, path) -> None:
    """Write the grid report as pretty JSON."""
    with open(Path(path), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def render_text(report: dict) -> str:
    """Human-readable summary table of a grid report."""
    lines = [
        f"crash-test: trigger {report['trigger']}, "
        f"{report['kill_rounds']} kill round(s), "
        f"scale {report['scale']}",
        f"{'workload':10s} {'engine':9s} {'config':13s} "
        f"{'kills':>5s} {'torn':>5s} {'lost':>5s} {'recov':>6s} "
        f"{'rounds':>6s}  status",
    ]
    for cell in report["cells"]:
        kills = sum(1 for r in cell["rounds"] if r["killed"])
        torn = sum(r["torn_lines"] for r in cell["rounds"])
        lost = cell["rounds"][0]["blocks_failed"] if cell["rounds"] else 0
        lines.append(
            f"{cell['workload']:10s} {cell['engine']:9s} "
            f"{cell['config']:13s} {kills:5d} {torn:5d} {lost:5d} "
            f"{cell['final'].get('blocks_recovered', 0):6d} "
            f"{cell['rounds_to_convergence']:6d}  "
            + ("ok" if cell["ok"] else "FAILED")
        )
    lines.append(
        "all cells converged and verified."
        if report["converged"] else "SOME CELLS FAILED."
    )
    return "\n".join(lines)
