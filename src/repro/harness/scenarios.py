"""Crash-kill scenarios: the kill → reopen → recover → re-kill loop.

One scenario *cell* proves end-to-end durability for one (workload,
engine, LP config) combination:

1. **kill round 0** — a child process runs the forward launch against a
   fresh mapped heap and is SIGKILLed by its trigger mid-launch.
2. **measure** — the parent reopens the heap file cold
   (:meth:`MappedShadow.open`), rebuilds the device deterministically,
   adopts the persisted images, and runs a validation pass: the failed
   blocks are what the crash *actually* lost, and the journal reports
   any torn write-back.
3. **kill rounds 1..k-1** — a fresh child reopens the heap and runs the
   recovery pipeline, and is killed again mid-recovery; the measure
   step repeats. Recovery progress persists across its own death —
   each round's failed set can only shrink.
4. **final** — the parent itself recovers in-process (same pluggable
   engine), drains, and verifies both the volatile output and the
   persisted NVM image against the workload's crash-free reference.

:func:`run_grid` drives cells across workloads × engines × configs and
builds the JSON report consumed by ``python -m repro crash-test`` and
the CI smoke job: per-round blocks lost, blocks recovered, torn lines,
and rounds to convergence.
"""

from __future__ import annotations

import json
import shutil
import zlib
from pathlib import Path

from repro.errors import HarnessError
from repro.harness.crashproc import (
    DEFAULT_TIMEOUT,
    ChildSpec,
    build_run,
    parse_trigger,
    run_child,
)
from repro.harness.tmpdir import ManagedTmpdir
from repro.obs import current as _recorder

#: Grid defaults: two workloads with different store shapes (regular
#: row-per-block SPMV, strided tile-output TMM), every engine, the
#: paper-best table.
DEFAULT_WORKLOADS = ("spmv", "tmm")
DEFAULT_ENGINES = ("serial", "parallel", "batched")
DEFAULT_CONFIGS = ("global-array",)
#: Small write-back cache so the eviction trickle (and therefore kill
#: triggers and real data loss) starts early even at small scale.
DEFAULT_CACHE_LINES = 4
DEFAULT_TRIGGER = "writebacks:6"


def _measure(spec: ChildSpec) -> dict:
    """Reopen the heap cold and take stock: torn lines, failed blocks."""
    from repro.core.recovery import RecoveryManager
    from repro.nvm.mapped import MappedShadow

    heap = MappedShadow.open(spec.heap_path)
    try:
        torn_lines = heap.torn.n_lines if heap.torn is not None else 0
        torn_by_buffer = heap.torn_by_buffer()
        device, _work, lp_kernel = build_run(spec)
        heap.adopt(device.memory)
        report = RecoveryManager(device, lp_kernel).validate()
        return {
            "torn_lines": torn_lines,
            "torn_by_buffer": torn_by_buffer,
            "buffers": sorted(heap.entries),
            "blocks_failed": report.n_failed,
            "missing_checksums": len(report.missing_checksums),
        }
    finally:
        heap.close()


def _inspect_round(spec: ChildSpec) -> dict:
    """Offline inspector's view of the post-kill heap.

    Must run *before* :func:`_measure`: :meth:`MappedShadow.open`
    clears the armed journal as a side effect, and the whole point of
    the cold inspector is to decode the file exactly as the SIGKILL
    left it.
    """
    from repro.nvm.inspect import inspect_heap

    report = inspect_heap(spec.heap_path)
    return {
        "armed": report.torn.armed,
        "mode": report.torn.mode,
        "torn_lines": report.torn.n_lines,
        "torn_by_buffer": dict(report.torn.by_buffer),
        "buffers": sorted(e.name for e in report.entries),
    }


def _inspect_consistent(inspected: dict, measured: dict) -> bool:
    """Does the read-only inspector agree with the reopen path?

    The two decode the same on-disk structures through entirely
    different code paths (cold ``ACCESS_READ`` map vs. the live
    ``MappedShadow``); any disagreement on the journal's armed state,
    the torn-line attribution, or the directory is a format bug.
    """
    return (
        inspected["armed"] == (measured["torn_lines"] > 0)
        and inspected["torn_lines"] == measured["torn_lines"]
        and inspected["torn_by_buffer"] == measured["torn_by_buffer"]
        and inspected["buffers"] == measured["buffers"]
    )


def _final_recover(spec: ChildSpec) -> dict:
    """Parent-side convergence: recover in-process, drain, verify."""
    from repro.core.recovery import RecoveryManager
    from repro.errors import RecoveryError
    from repro.nvm.mapped import MappedShadow

    heap = MappedShadow.open(spec.heap_path)
    try:
        device, work, lp_kernel = build_run(spec)
        heap.adopt(device.memory)
        try:
            report = RecoveryManager(device, lp_kernel).recover()
        except RecoveryError as exc:
            return {"converged": False, "error": str(exc),
                    "verified": False, "verified_persisted": False,
                    "blocks_recovered": 0, "recovery_launches": 0}
        device.drain()
        return {
            "converged": report.recovered,
            "blocks_recovered": len(report.recovered_blocks),
            "recovery_launches": len(report.recovery_launches),
            "verified": work.matches(device),
            "verified_persisted": work.matches(device, persisted=True),
            "forensics": None if report.forensics is None
            else report.forensics.to_dict(),
        }
    finally:
        heap.close()


def _round_trigger(
    trigger: str, kill_seed: int | None, round_no: int,
    workload: str, engine: str, config: str,
) -> str:
    """The trigger one kill round uses.

    Without ``kill_seed`` every round kills at the same fixed
    threshold. With it, count-based thresholds are drawn from a
    deterministic per-(cell, round) stream — the base threshold bounds
    the draw at twice its value — so one seed reproduces a whole
    family of kill points exactly (``walltime`` triggers are left
    untouched: wall-clock kills are not reproducible anyway).
    """
    import numpy as np

    kind, value = parse_trigger(trigger)
    if kill_seed is None or kind == "walltime":
        return trigger
    cell_key = zlib.crc32(f"{workload}/{engine}/{config}".encode())
    rng = np.random.default_rng([kill_seed, round_no, cell_key])
    threshold = int(rng.integers(1, max(2, 2 * int(value)) + 1))
    return f"{kind}:{threshold}"


def run_cell(
    workload: str,
    engine: str,
    config: str,
    scale: str = "small",
    seed: int = 0,
    kill_rounds: int = 2,
    trigger: str = DEFAULT_TRIGGER,
    jobs: int | None = None,
    cache_lines: int = DEFAULT_CACHE_LINES,
    timeout: float = DEFAULT_TIMEOUT,
    keep_tmp: bool = False,
    kill_seed: int | None = None,
    trace_dir=None,
    artifacts_dir=None,
) -> dict:
    """Run the full kill loop for one grid cell; returns its report.

    With ``trace_dir`` every child round streams its flight recorder
    to ``<dir>/<workload>-<engine>-<config>-roundN-<phase>.trace.jsonl``
    (the trace survives the SIGKILL up to the kill instant). With
    ``artifacts_dir`` the heap file is copied there — armed journal and
    all — after the last kill round, before the parent's in-process
    recovery cleans it, so ``repro inspect`` can be run on it later.
    """
    parse_trigger(trigger)  # fail fast on bad input
    if kill_rounds < 1:
        raise HarnessError(f"kill_rounds must be >= 1, got {kill_rounds}")
    rec = _recorder()
    rounds: list[dict] = []
    cell_tag = f"{workload}-{engine}-{config}"
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    with ManagedTmpdir(keep=keep_tmp) as tmp, rec.trace.span(
        "harness.cell", cat="harness", track="harness",
        workload=workload, engine=engine, config=config,
    ):
        base = dict(
            workload=workload, scale=scale, seed=seed, config=config,
            engine=engine, jobs=jobs, cache_lines=cache_lines,
            heap_path=str(tmp.file("heap.lpnv")),
            ready_path=str(tmp.file("ready")),
        )
        for round_no in range(kill_rounds):
            phase = "launch" if round_no == 0 else "recover"
            round_trigger = _round_trigger(
                trigger, kill_seed, round_no, workload, engine, config
            )
            trace_path = None if trace_dir is None else str(
                trace_dir / f"{cell_tag}-round{round_no}-{phase}"
                ".trace.jsonl"
            )
            spec = ChildSpec(phase=phase, trigger=round_trigger,
                             trace_path=trace_path, **base)
            outcome = run_child(spec, tmp, timeout=timeout)
            if artifacts_dir is not None:
                # Snapshot the raw post-kill image (armed journal and
                # all) before _measure's reopen disarms it; the last
                # round's snapshot is the cell's artifact.
                artifacts_dir = Path(artifacts_dir)
                artifacts_dir.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(
                    base["heap_path"],
                    artifacts_dir / f"{cell_tag}.heap.lpnv")
            # Cold-inspect the heap *before* _measure reopens it —
            # open() disarms the journal, the inspector must see the
            # exact post-SIGKILL bytes.
            inspected = _inspect_round(spec)
            measured = _measure(spec)
            rounds.append({
                "phase": phase,
                "trigger": round_trigger,
                "killed": outcome.killed,
                "returncode": outcome.returncode,
                "spawn_attempts": outcome.attempts,
                "inspect": inspected,
                "inspect_consistent":
                    _inspect_consistent(inspected, measured),
                **measured,
            })
            if rec.metrics.active:
                rec.metrics.inc("harness.rounds", phase=phase,
                                workload=workload, engine=engine)
            if rec.sampler is not None:
                # Round boundary: flush a telemetry sample so the time
                # series shows per-round progress even for short cells.
                rec.sampler.sample()
            if outcome.completed and measured["blocks_failed"] == 0:
                # The child outran its trigger and left a fully
                # consistent heap; further kill rounds would be no-ops.
                break
        final = _final_recover(
            ChildSpec(phase="recover", trigger=None, **base)
        )
    return {
        "workload": workload,
        "engine": engine,
        "config": config,
        "rounds": rounds,
        "final": final,
        #: Process generations from first kill to a verified state.
        "rounds_to_convergence": len(rounds) + 1,
        "ok": bool(final["converged"] and final["verified"]
                   and final["verified_persisted"]
                   and all(r["inspect_consistent"] for r in rounds)),
    }


def run_grid(
    workloads=DEFAULT_WORKLOADS,
    engines=DEFAULT_ENGINES,
    configs=DEFAULT_CONFIGS,
    scale: str = "small",
    seed: int = 0,
    kill_rounds: int = 2,
    trigger: str = DEFAULT_TRIGGER,
    jobs: int | None = None,
    cache_lines: int = DEFAULT_CACHE_LINES,
    timeout: float = DEFAULT_TIMEOUT,
    progress=None,
    kill_seed: int | None = None,
    trace_dir=None,
    artifacts_dir=None,
) -> dict:
    """Run every cell of the grid; returns the full JSON-able report."""
    cells = []
    for workload in workloads:
        for engine in engines:
            for config in configs:
                if progress is not None:
                    progress(f"{workload} × {engine} × {config}")
                cells.append(run_cell(
                    workload, engine, config, scale=scale, seed=seed,
                    kill_rounds=kill_rounds, trigger=trigger, jobs=jobs,
                    cache_lines=cache_lines, timeout=timeout,
                    kill_seed=kill_seed, trace_dir=trace_dir,
                    artifacts_dir=artifacts_dir,
                ))
    return {
        "suite": "crash-test",
        "scale": scale,
        "seed": seed,
        "kill_seed": kill_seed,
        "trigger": trigger,
        "kill_rounds": kill_rounds,
        "cache_lines": cache_lines,
        "cells": cells,
        "converged": all(cell["ok"] for cell in cells),
    }


def write_report(report: dict, path) -> None:
    """Write the grid report as pretty JSON."""
    with open(Path(path), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def render_text(report: dict) -> str:
    """Human-readable summary table of a grid report."""
    lines = [
        f"crash-test: trigger {report['trigger']}, "
        f"{report['kill_rounds']} kill round(s), "
        f"scale {report['scale']}",
        f"{'workload':10s} {'engine':9s} {'config':13s} "
        f"{'kills':>5s} {'torn':>5s} {'lost':>5s} {'recov':>6s} "
        f"{'rounds':>6s}  status",
    ]
    for cell in report["cells"]:
        kills = sum(1 for r in cell["rounds"] if r["killed"])
        torn = sum(r["torn_lines"] for r in cell["rounds"])
        lost = cell["rounds"][0]["blocks_failed"] if cell["rounds"] else 0
        lines.append(
            f"{cell['workload']:10s} {cell['engine']:9s} "
            f"{cell['config']:13s} {kills:5d} {torn:5d} {lost:5d} "
            f"{cell['final'].get('blocks_recovered', 0):6d} "
            f"{cell['rounds_to_convergence']:6d}  "
            + ("ok" if cell["ok"] else "FAILED")
        )
    lines.append(
        "all cells converged and verified."
        if report["converged"] else "SOME CELLS FAILED."
    )
    return "\n".join(lines)
