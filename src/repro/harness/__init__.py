"""Out-of-process crash harness: real SIGKILLs against the durable heap.

Layers:

* :mod:`repro.harness.tmpdir` — managed temp directories so nothing a
  killed child created outlives the harness.
* :mod:`repro.harness.crashproc` — spawn a child running a launch (or a
  recovery) against an mmap-backed heap and SIGKILL its process group
  on a trigger; bounded retry/backoff around child startup.
* :mod:`repro.harness.scenarios` — the kill → reopen → validate →
  recover → re-kill loop over workloads × engines × configs, emitting
  the ``crash-test`` JSON report.
* :mod:`repro.harness.serve` — the KV-daemon scenario: SIGKILL the
  live server mid-batch under client load, restart it on the same
  heap, and prove every acked write survives
  (``repro crash-test --serve``).
"""

from repro.harness.crashproc import (
    ChildOutcome,
    ChildSpec,
    build_run,
    parse_trigger,
    run_child,
)
from repro.harness.scenarios import (
    render_text,
    run_cell,
    run_grid,
    write_report,
)
from repro.harness.serve import render_serve_text, run_serve_scenario
from repro.harness.tmpdir import ManagedTmpdir

__all__ = [
    "ChildOutcome",
    "ChildSpec",
    "ManagedTmpdir",
    "build_run",
    "parse_trigger",
    "render_serve_text",
    "render_text",
    "run_cell",
    "run_child",
    "run_grid",
    "run_serve_scenario",
    "write_report",
]
