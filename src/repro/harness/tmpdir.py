"""Managed temp directories: no harness artifact outlives the harness.

The crash harness exists to SIGKILL processes at the worst possible
moment, which is exactly how temp files get orphaned: a killed child
never runs its own cleanup, and a ``ParallelEngine`` pool inside that
child never tears down its workers' scratch space. The fix is
structural — every file the harness or its children create (heap
images, spec files, ready markers, engine temp files via ``TMPDIR``)
lives under one :class:`ManagedTmpdir` owned by the *parent*, removed
by context-manager exit and, as a backstop, by ``atexit``. Cleanup
therefore never depends on the process being killed having had a
chance to do anything.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from pathlib import Path


class ManagedTmpdir:
    """A temp directory with guaranteed (parent-side) removal.

    Usable as a context manager; an ``atexit`` hook covers the
    non-context uses and any exit path that skips ``__exit__``
    (``sys.exit`` inside a callback, an unhandled signal in the
    *parent* short of SIGKILL). ``keep=True`` disables removal for
    debugging killed-child state.
    """

    def __init__(self, prefix: str = "lp-harness-",
                 keep: bool = False) -> None:
        self.path = Path(tempfile.mkdtemp(prefix=prefix))
        self.keep = keep
        self._cleaned = False
        atexit.register(self.cleanup)

    def file(self, name: str) -> Path:
        """Path of a named file inside the directory."""
        return self.path / name

    def cleanup(self) -> None:
        """Remove the directory tree (idempotent, never raises)."""
        if self._cleaned:
            return
        self._cleaned = True
        atexit.unregister(self.cleanup)
        if not self.keep:
            shutil.rmtree(self.path, ignore_errors=True)

    def __enter__(self) -> "ManagedTmpdir":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "kept" if self.keep else (
            "cleaned" if self._cleaned else "live"
        )
        return f"ManagedTmpdir({str(self.path)!r}, {state})"
