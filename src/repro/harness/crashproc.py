"""Out-of-process crash injection: run a launch in a child, SIGKILL it.

Everything before this module simulated crashes politely, inside one
Python process. Here the failure is real: a **child process** runs a
workload launch against an mmap-backed heap
(:class:`~repro.nvm.mapped.MappedShadow`) and kills its own process
group — ``SIGKILL``, no handlers, no cleanup — when a trigger fires:

* ``writebacks:N`` — after the Nth cache line reaches the heap file
  (fires *inside* the write-back journal window, so the reopened heap
  shows a torn write);
* ``blocks:N`` — after N thread blocks' effects have landed (fires via
  the engines' block hook, journal clean);
* ``walltime:T`` — T seconds into the run (a timer thread; lands
  wherever it lands);
* ``shardwbK:N`` / ``shardwb*:N`` — sharded heaps only
  (``ChildSpec.shards > 0``): after the Nth cache line lands on shard
  ``K`` (or, with ``*``, on whichever shard reaches N first). Fires
  inside *that shard's* journal window, so the reopened sharded heap
  shows exactly one shard's journal armed while the others committed
  cleanly — the shard-containment kill.

The parent (:func:`run_child`) spawns the child in its **own session**
so the child's ``os.kill(0, SIGKILL)`` takes out any ``ParallelEngine``
pool workers with it — nothing survives to corrupt the next round.
Child startup (interpreter boot, imports, heap setup) is distinguished
from the run itself by a *ready marker* file: a child that dies before
the marker appears is retried with bounded backoff
(:class:`~repro.errors.ChildStartupError` once exhausted), while a
death after the marker is a result. All child artifacts — spec, heap,
marker, and anything the child's engine writes to ``TMPDIR`` — live in
the parent's :class:`~repro.harness.tmpdir.ManagedTmpdir`.

The child entry point is ``python -m repro.harness.crashproc
<spec.json>``; :class:`ChildSpec` is the wire format.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ChildStartupError, ChildTimeoutError, HarnessError
from repro.gpu import shm

#: Trigger kinds and whether their threshold is an int count.
TRIGGER_KINDS = ("writebacks", "blocks", "walltime")

#: Shard-kill trigger kind: ``shardwb<K>`` targets shard K's
#: write-back stream, ``shardwb*`` whichever shard fires first.
_SHARDWB_RE = re.compile(r"^shardwb(\d+|\*)$")

#: Default per-round child deadline. Generous: tiny-scale launches run
#: in well under a second; the deadline only catches hangs.
DEFAULT_TIMEOUT = 120.0


def parse_trigger(text: str) -> tuple[str, float]:
    """Parse ``kind:threshold`` into a validated (kind, value) pair.

    Shard-kill triggers keep their target in the kind itself —
    ``("shardwb2", 6.0)`` for ``"shardwb2:6"`` — so the pair stays a
    two-tuple for every caller; :func:`shardwb_target` decodes the
    shard index.
    """
    kind, sep, raw = text.partition(":")
    if not sep or (kind not in TRIGGER_KINDS
                   and not _SHARDWB_RE.match(kind)):
        raise HarnessError(
            f"bad trigger {text!r}; expected one of "
            + ", ".join(f"{k}:N" for k in TRIGGER_KINDS)
            + ", shardwbK:N or shardwb*:N"
        )
    try:
        value = float(raw)
    except ValueError:
        raise HarnessError(f"bad trigger threshold in {text!r}") from None
    if value <= 0 or (kind != "walltime" and value != int(value)):
        raise HarnessError(
            f"trigger {text!r} needs a positive "
            + ("duration" if kind == "walltime" else "integer count")
        )
    return kind, value


def shardwb_target(kind: str) -> int | None:
    """Shard index of a ``shardwb`` trigger kind (``None`` for ``*``).

    Raises :class:`~repro.errors.HarnessError` when ``kind`` is not a
    shard-kill trigger at all.
    """
    match = _SHARDWB_RE.match(kind)
    if not match:
        raise HarnessError(f"{kind!r} is not a shardwb trigger kind")
    target = match.group(1)
    return None if target == "*" else int(target)


@dataclass
class ChildSpec:
    """Everything a harness child needs to run one kill round."""

    workload: str
    scale: str
    seed: int
    config: str
    engine: str
    jobs: int | None
    cache_lines: int
    heap_path: str
    ready_path: str
    #: ``"launch"`` — fresh heap, forward launch; ``"recover"`` — reopen
    #: the heap cold, adopt, run validate+recover.
    phase: str
    #: ``kind:threshold`` per :func:`parse_trigger`, or ``None`` to run
    #: the phase to completion (the crash-free reference round).
    trigger: str | None
    #: When set, the child streams its flight-recorder events to this
    #: JSONL file, one line per event flushed as it happens — the trace
    #: survives the trigger's SIGKILL up to the kill instant.
    trace_path: str | None = None
    #: 0 — ``heap_path`` is a single :class:`MappedShadow` heap file
    #: (the pre-sharding wire format, so old specs stay decodable);
    #: N > 0 — ``heap_path`` is a shard manifest and the child runs
    #: against an N-shard :class:`~repro.nvm.sharded.ShardedShadow`.
    shards: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChildSpec":
        return cls(**json.loads(text))


@dataclass
class ChildOutcome:
    """How one child round ended, as seen from the parent."""

    returncode: int
    attempts: int
    stderr: str

    @property
    def killed(self) -> bool:
        """True when the round ended in the trigger's SIGKILL."""
        return self.returncode == -signal.SIGKILL

    @property
    def completed(self) -> bool:
        """True when the child outran its trigger and exited cleanly."""
        return self.returncode == 0


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------

def build_run(spec: ChildSpec, shadow=None):
    """Deterministic device + instrumented-kernel construction.

    Used by the child for the live run and by the parent to rebuild the
    *same memory layout* before adopting a reopened heap — workload
    setup and LP instrumentation allocate identically given identical
    parameters, which is what makes the adopt path sound.
    """
    import repro
    from repro.workloads import make_workload

    configs = {
        "global-array": repro.LPConfig.paper_best,
        "quadratic": repro.LPConfig.naive_quadratic,
        "cuckoo": repro.LPConfig.naive_cuckoo,
    }
    if spec.config not in configs:
        raise HarnessError(f"unknown LP config {spec.config!r}")
    engine = repro.make_engine(spec.engine, jobs=spec.jobs)
    device = repro.Device(cache_capacity_lines=spec.cache_lines,
                          engine=engine, shadow=shadow)
    work = make_workload(spec.workload, scale=spec.scale, seed=spec.seed)
    kernel = work.setup(device)
    lp_kernel = repro.LPRuntime(
        device, configs[spec.config]()
    ).instrument(kernel)
    return device, work, lp_kernel


def _die() -> None:
    """Kill the whole process group — the power failure."""
    os.kill(0, signal.SIGKILL)


def _install_trigger(spec: ChildSpec, device, heap) -> None:
    if spec.trigger is None:
        return
    kind, value = parse_trigger(spec.trigger)
    if kind == "writebacks":
        threshold = int(value)

        def on_writeback(cumulative_lines: int) -> None:
            if cumulative_lines >= threshold:
                _die()

        heap.writeback_listener = on_writeback
    elif _SHARDWB_RE.match(kind):
        threshold = int(value)
        target = shardwb_target(kind)
        shards = getattr(heap, "shards", None)
        if shards is None:
            raise HarnessError(
                f"trigger {spec.trigger!r} targets a shard, but the "
                "heap is not sharded (set shards > 0 in the spec)"
            )
        if target is not None and target >= len(shards):
            raise HarnessError(
                f"trigger {spec.trigger!r} targets shard {target}, but "
                f"the heap has only {len(shards)} shard(s)"
            )

        def on_shard_writeback(cumulative_lines: int) -> None:
            # Fires inside one shard's armed journal window; dying
            # here tears that shard while committed shards stay clean.
            if cumulative_lines >= threshold:
                _die()

        for k, shard in enumerate(shards):
            if target is None or k == target:
                shard.writeback_listener = on_shard_writeback
    elif kind == "blocks":
        threshold = int(value)

        def on_block(cumulative_blocks: int) -> None:
            if cumulative_blocks >= threshold:
                _die()

        device.block_hook = on_block
    else:  # walltime
        timer = threading.Timer(value, _die)
        timer.daemon = True
        timer.start()


def child_main(spec_path: str) -> int:
    """Entry point of the killed-on-purpose process."""
    from repro import obs
    from repro.core.recovery import RecoveryManager
    from repro.nvm.mapped import MappedShadow
    from repro.nvm.sharded import ShardedShadow

    spec = ChildSpec.from_json(Path(spec_path).read_text())
    if spec.trace_path is not None:
        # Install before the heap exists so heap create/open, adopt,
        # and every span up to the SIGKILL reach the file. JsonlSink
        # flushes per event; there is deliberately no uninstall — the
        # process is about to die anyway.
        obs.install(obs.Recorder(
            tracer=obs.Tracer(obs.JsonlSink(spec.trace_path))
        ))
    if spec.phase == "launch":
        if spec.shards > 0:
            heap = ShardedShadow.create(spec.heap_path,
                                        n_shards=spec.shards)
        else:
            heap = MappedShadow.create(spec.heap_path)
        device, work, lp_kernel = build_run(spec, shadow=heap)
    elif spec.phase == "recover":
        if spec.shards > 0:
            heap = ShardedShadow.open(spec.heap_path)
        else:
            heap = MappedShadow.open(spec.heap_path)
        device, work, lp_kernel = build_run(spec)
        heap.adopt(device.memory)
    else:
        raise HarnessError(f"unknown child phase {spec.phase!r}")

    _install_trigger(spec, device, heap)
    obs.current().trace.instant(
        "harness.child.ready", cat="harness", track="harness",
        phase=spec.phase, workload=spec.workload, engine=spec.engine,
        trigger=spec.trigger or "none",
    )
    # Setup is done; from here on a death is a result, not a flake.
    Path(spec.ready_path).touch()

    if spec.phase == "launch":
        device.launch(lp_kernel)
    else:
        RecoveryManager(device, lp_kernel).recover()
    device.drain()
    heap.close()
    return 0


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def _child_env(tmpdir: Path) -> dict[str, str]:
    """Child environment: importable ``repro``, temp files in ``tmpdir``."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing
        else src_root + os.pathsep + existing
    )
    # Engine pools and any tempfile use inside the child land in the
    # managed dir, so a SIGKILLed child leaks nothing the parent's
    # cleanup doesn't remove.
    env["TMPDIR"] = str(tmpdir)
    return env


def run_child(
    spec: ChildSpec,
    tmpdir,
    timeout: float = DEFAULT_TIMEOUT,
    startup_retries: int = 3,
    backoff: float = 0.25,
) -> ChildOutcome:
    """Run one child round, retrying startup failures with backoff.

    A child that dies (for any reason other than the trigger's SIGKILL)
    *before* touching its ready marker is treated as a startup flake
    and respawned, with the backoff doubling each attempt; after
    ``startup_retries`` extra attempts, :class:`ChildStartupError`.
    Once the marker exists, the child's fate is the round's result. A
    child that does neither within ``timeout`` has its process group
    killed and :class:`ChildTimeoutError` raised.
    """
    from repro.obs import current as _recorder

    spec_path = tmpdir.file(f"spec-{spec.phase}.json")
    ready = Path(spec.ready_path)
    attempts = 0
    delay = backoff
    rec = _recorder()
    while True:
        attempts += 1
        ready.unlink(missing_ok=True)
        spec_path.write_text(spec.to_json())
        with rec.trace.span(
            "harness.child", cat="harness", track="harness",
            phase=spec.phase, workload=spec.workload, engine=spec.engine,
            trigger=spec.trigger or "none", attempt=attempts,
        ):
            outcome = _run_once(spec_path, ready, tmpdir, timeout)
        if outcome is not None:
            # A SIGKILLed child (and its engine pool workers, killed
            # with the session) never ran its shared-memory atexit
            # sweep; reap any segments its dead pids left in /dev/shm.
            shm.reap_orphans()
            if rec.metrics.active and outcome.killed:
                rec.metrics.inc("harness.kill", phase=spec.phase,
                                workload=spec.workload,
                                engine=spec.engine)
            return ChildOutcome(outcome.returncode, attempts,
                                outcome.stderr)
        if attempts > startup_retries:
            raise ChildStartupError(
                f"harness child for {spec.workload}/{spec.engine} "
                f"({spec.phase}) died before ready "
                f"{attempts} times; giving up"
            )
        if rec.metrics.active:
            rec.metrics.inc("harness.startup_retries")
        time.sleep(delay)
        delay *= 2


def _run_once(spec_path: Path, ready: Path, tmpdir,
              timeout: float) -> ChildOutcome | None:
    """One spawn attempt; ``None`` means a pre-ready death (retry)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.crashproc", str(spec_path)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=_child_env(tmpdir.path),
        start_new_session=True,
    )
    deadline = time.monotonic() + timeout
    try:
        while not ready.exists():
            rc = proc.poll()
            if rc is not None:
                stderr = proc.stderr.read().decode(errors="replace")
                if rc == -signal.SIGKILL:
                    # Trigger fired before the marker hit disk — a
                    # result, not a startup failure.
                    return ChildOutcome(rc, 1, stderr)
                return None
            if time.monotonic() > deadline:
                _kill_group(proc)
                raise ChildTimeoutError(
                    f"harness child never became ready within {timeout}s"
                )
            time.sleep(0.005)
        remaining = max(0.1, deadline - time.monotonic())
        try:
            _, stderr_bytes = proc.communicate(timeout=remaining)
        except subprocess.TimeoutExpired:
            _kill_group(proc)
            proc.communicate()
            raise ChildTimeoutError(
                f"harness child still running after {timeout}s"
            ) from None
        return ChildOutcome(proc.returncode, 1,
                            stderr_bytes.decode(errors="replace"))
    finally:
        if proc.poll() is None:
            _kill_group(proc)
            proc.communicate()


def _kill_group(proc: subprocess.Popen) -> None:
    """SIGKILL the child's whole session (pool workers included)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: python -m repro.harness.crashproc <spec.json>",
              file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(child_main(sys.argv[1]))
