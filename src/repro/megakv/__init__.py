"""MEGA-KV: a batched GPU key-value store with Lazy Persistency.

The paper's real-world evaluation target (Section VII-4): a
device-resident bucketed hash index serving batched insert / search /
delete requests, each batch an LP-instrumented kernel.
"""

from repro.megakv.kernels import (
    KVDeleteKernel,
    KVInsertKernel,
    KVSearchKernel,
    alloc_results,
)
from repro.megakv.lp import BatchOutcome, KVBatchSession
from repro.megakv.store import BUCKET_WIDTH, EMPTY_SLOT, MegaKVStore, StoreStats

__all__ = [
    "BUCKET_WIDTH",
    "BatchOutcome",
    "EMPTY_SLOT",
    "KVBatchSession",
    "KVDeleteKernel",
    "KVInsertKernel",
    "KVSearchKernel",
    "MegaKVStore",
    "StoreStats",
    "alloc_results",
]
