"""A GPU-resident key-value store modeled on MEGA-KV (Section VII-4).

MEGA-KV serves in-memory key-value traffic by running the index on the
GPU: requests are batched on the host and each batch is processed by a
kernel. We reproduce that structure with a device-resident **bucketed
hash index** holding keys and values directly in (persistent NVM-backed)
device memory:

* the table is ``n_buckets`` buckets × ``BUCKET_WIDTH`` slots;
* a slot holds a ``uint64`` key (``0`` = empty) and a ``uint64`` value;
* insert/search/delete kernels (:mod:`repro.megakv.kernels`) process
  one batch each, one request per thread, blocks owning disjoint
  request slices.

Invariants the Lazy Persistency integration relies on (see
:mod:`repro.megakv.lp`):

* **keys and values are non-zero** — ``0`` is the empty sentinel *and*
  the identity of both checksum lanes (modular ``+`` and parity ``^``),
  which is what makes delete's "fold the cleared slot" protocol agree
  between normal execution, validation and recovery;
* keys within one batch are unique, so requests commute — blocks are
  associative LP regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tables.base import mix64
from repro.errors import TableFullError
from repro.gpu.device import Device
from repro.gpu.memory import Buffer

#: Slots per bucket (MEGA-KV uses wide buckets scanned linearly).
BUCKET_WIDTH = 8

#: Key/value word marking an empty slot.
EMPTY_SLOT = np.uint64(0)


@dataclass
class StoreStats:
    """Operation statistics of one store."""

    inserts: int = 0
    updates: int = 0
    searches: int = 0
    hits: int = 0
    deletes: int = 0
    removed: int = 0
    probe_slots: int = 0
    by_batch: list = field(default_factory=list)


class MegaKVStore:
    """Device-resident bucketed hash index with inline values."""

    def __init__(
        self,
        device: Device,
        capacity: int,
        name: str = "megakv",
        seed: int = 0x5851F42D,
    ) -> None:
        if capacity <= 0:
            raise TableFullError("store capacity must be positive")
        self.device = device
        self.name = name
        self.seed = seed
        # Size buckets for a <=12.5 % target load factor: with two
        # candidate buckets of width 8 that makes a doubly-full pair
        # (an insertion failure) astronomically unlikely.
        n_buckets = 1
        while n_buckets * BUCKET_WIDTH < 8 * capacity:
            n_buckets *= 2
        self.n_buckets = n_buckets
        self.n_slots = n_buckets * BUCKET_WIDTH
        self.stats = StoreStats()

        self.keys: Buffer = device.alloc(
            f"{name}_keys", (self.n_slots,), np.uint64, persistent=True
        )
        self.values: Buffer = device.alloc(
            f"{name}_vals", (self.n_slots,), np.uint64, persistent=True
        )

    # ------------------------------------------------------------------
    # Geometry — two candidate buckets per key (power-of-two choices),
    # as MEGA-KV's cuckoo-style index does; overflow of a single bucket
    # becomes astronomically unlikely at the sized load factor.
    # ------------------------------------------------------------------

    def bucket_of(self, key: int, choice: int = 0) -> int:
        """Bucket index of a key for candidate ``choice`` (0 or 1)."""
        seed = self.seed if choice == 0 else self.seed ^ 0x9E3779B97F4A7C15
        return mix64(int(key), seed) % self.n_buckets

    def bucket_slots(self, key: int) -> np.ndarray:
        """Flat slot indices of both candidate buckets of a key."""
        out = []
        for choice in (0, 1):
            b = self.bucket_of(key, choice)
            out.append(np.arange(b * BUCKET_WIDTH, (b + 1) * BUCKET_WIDTH))
        both = np.concatenate(out)
        # The two candidates may coincide; keep order, drop duplicates.
        _, first = np.unique(both, return_index=True)
        return both[np.sort(first)]

    # ------------------------------------------------------------------
    # Host-side (non-kernel) views, for tests and recovery checks
    # ------------------------------------------------------------------

    def host_search(self, key: int, persisted: bool = False) -> int | None:
        """Find a key from the host; returns its value or ``None``."""
        keys = self.keys.nvm_array if persisted else self.keys.array
        vals = self.values.nvm_array if persisted else self.values.array
        slots = self.bucket_slots(key)
        hit = np.flatnonzero(keys[slots] == np.uint64(key))
        if hit.size == 0:
            return None
        return int(vals[slots[int(hit[0])]])

    def contents(self, persisted: bool = False) -> dict[int, int]:
        """All live (key, value) pairs as a host dict."""
        keys = self.keys.nvm_array if persisted else self.keys.array
        vals = self.values.nvm_array if persisted else self.values.array
        live = np.flatnonzero(keys != EMPTY_SLOT)
        return {int(keys[i]): int(vals[i]) for i in live}

    @property
    def load_factor(self) -> float:
        """Occupied fraction of all slots (volatile view)."""
        occupied = int(np.count_nonzero(self.keys.array != EMPTY_SLOT))
        return occupied / self.n_slots
