"""Batched insert/search/delete kernels for the MEGA-KV store.

Each kernel processes one request batch: one request per thread, blocks
owning disjoint, contiguous request slices — the LP region layout of
Section VII-4.

Checksum protocol (shared with :mod:`repro.megakv.lp`): every kernel
folds, per request, exactly the words that must be durable for the
request to have "happened":

* **insert** — folds ``[key, value]`` by (re-)storing both the key and
  the value at the chosen slot. The key is stored even on the update
  path, so original execution, recovery re-execution and validation all
  fold the same words.
* **delete** — clears the slot by storing ``0``; ``0`` is the identity
  of both checksum lanes, so "the key is gone" folds identically
  whether the slot was cleared in this run (store of 0), had already
  been cleared (no fold), or is validated after persisting (key
  absent ⇒ nothing folded).
* **search** — read-only over the store; the per-request results buffer
  is the protected output, making it an ordinary idempotent LP region.

Validation overrides for insert/delete replay the *semantic effect*
(search the store for the key) rather than the mutation — the
application-specific validation the paper anticipates for
non-trivially-idempotent regions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.tables.base import mix64_array
from repro.errors import TableFullError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.megakv.store import BUCKET_WIDTH, EMPTY_SLOT, MegaKVStore

#: Seed perturbation selecting a key's second candidate bucket (must
#: match :meth:`~repro.megakv.store.MegaKVStore.bucket_of`).
_SECOND_CHOICE = 0x9E3779B97F4A7C15


class _BatchKernel(Kernel):
    """Shared plumbing: one thread per request, contiguous block slices."""

    #: Every MEGA-KV kernel mutates host-side ``store.stats`` inside
    #: ``run_block`` (and insert claims slots via ``atomic_cas``), so a
    #: forked worker's execution cannot be replayed faithfully. The
    #: in-process batched engine is fine — search opts back in below.
    parallel_safe = False

    def __init__(
        self,
        store: MegaKVStore,
        batch_keys: np.ndarray,
        threads_per_block: int = 64,
    ) -> None:
        self.store = store
        self.batch_keys = np.asarray(batch_keys, dtype=np.uint64)
        if np.any(self.batch_keys == EMPTY_SLOT):
            raise TableFullError("batch keys must be non-zero")
        self.threads = threads_per_block
        self.n_requests = self.batch_keys.size

    def launch_config(self) -> LaunchConfig:
        n_blocks = max(1, math.ceil(self.n_requests / self.threads))
        return LaunchConfig.linear(n_blocks, self.threads)

    def _slice(self, ctx: BlockContext) -> range:
        lo = ctx.block_id * self.threads
        hi = min(lo + self.threads, self.n_requests)
        return range(lo, hi)

    def _find(self, ctx: BlockContext, key: np.uint64) -> int | None:
        """Scan the key's bucket; returns the slot index or ``None``."""
        slots = self.store.bucket_slots(int(key))
        bucket_keys = ctx.ld(self.store.keys, slots)
        self.store.stats.probe_slots += slots.size
        hit = np.flatnonzero(bucket_keys == key)
        if hit.size == 0:
            return None
        return int(slots[int(hit[0])])


class KVInsertKernel(_BatchKernel):
    """SET: insert or update each (key, value) request."""

    name = "megakv-insert"
    idempotent = True
    #: lplint sees the atomic_cas claim and the bucket-scan read of the
    #: key array it also writes; re-execution nevertheless stores the
    #: same [key, value] words on every path (module docstring), and
    #: the dynamic oracle pins that (benchmarks/oracle_verdicts.json).
    lint_suppressions = {
        "LP002": "re-execution stores identical [key, value] words on "
                 "every path; idempotence pinned by the dynamic oracle "
                 "(benchmarks/oracle_verdicts.json)",
    }

    def __init__(
        self,
        store: MegaKVStore,
        batch_keys: np.ndarray,
        batch_values: np.ndarray,
        threads_per_block: int = 64,
    ) -> None:
        super().__init__(store, batch_keys, threads_per_block)
        self.batch_values = np.asarray(batch_values, dtype=np.uint64)
        if np.any(self.batch_values == EMPTY_SLOT):
            raise TableFullError("batch values must be non-zero")
        if self.batch_values.size != self.n_requests:
            raise TableFullError("keys and values must align")
        self.protected_buffers = (store.keys.name, store.values.name)

    def run_block(self, ctx: BlockContext) -> None:
        for i in self._slice(ctx):
            key = self.batch_keys[i]
            value = self.batch_values[i]
            slot = self._find(ctx, key)
            if slot is None:
                slot = self._claim(ctx, key)
                self.store.stats.inserts += 1
            else:
                self.store.stats.updates += 1
            # Store key AND value on both paths so every execution of
            # this request folds the same [key, value] words.
            ctx.st(self.store.keys, slot, key)
            ctx.st(self.store.values, slot, value)
            ctx.flops(4)

    def _claim(self, ctx: BlockContext, key: np.uint64) -> int:
        slots = self.store.bucket_slots(int(key))
        for s in slots:
            old = ctx.atomic_cas(self.store.keys, int(s), EMPTY_SLOT, key)
            if old == EMPTY_SLOT or old == key:
                return int(s)
        raise TableFullError(
            f"both candidate buckets of key {int(key)} are full "
            f"(load factor {self.store.load_factor:.2f})"
        )

    def validate_block(self, ctx: BlockContext) -> None:
        """Fold what the store *now holds* for each of my requests."""
        for i in self._slice(ctx):
            key = self.batch_keys[i]
            slot = self._find(ctx, key)
            if slot is None:
                continue  # lost insert: nothing folds, key-lane mismatch
            # VALIDATE-mode stores fold memory contents at these slots.
            ctx.st(self.store.keys, slot, key)
            ctx.st(self.store.values, slot, self.batch_values[i])


class KVDeleteKernel(_BatchKernel):
    """DELETE: remove each requested key (idempotent on absent keys)."""

    name = "megakv-delete"
    idempotent = True
    #: lplint sees the bucket scan reading the key array the delete
    #: also writes; clearing an already-cleared slot is a no-op, so
    #: re-execution is idempotent — pinned by the dynamic oracle.
    lint_suppressions = {
        "LP002": "clearing an already-cleared slot is a no-op; "
                 "idempotence pinned by the dynamic oracle "
                 "(benchmarks/oracle_verdicts.json)",
    }

    def __init__(
        self,
        store: MegaKVStore,
        batch_keys: np.ndarray,
        threads_per_block: int = 64,
    ) -> None:
        super().__init__(store, batch_keys, threads_per_block)
        self.protected_buffers = (store.keys.name, store.values.name)

    def run_block(self, ctx: BlockContext) -> None:
        for i in self._slice(ctx):
            key = self.batch_keys[i]
            slot = self._find(ctx, key)
            self.store.stats.deletes += 1
            if slot is None:
                continue
            self.store.stats.removed += 1
            # Clearing stores fold 0 — the identity of both checksum
            # lanes, by design (see module docstring).
            ctx.st(self.store.keys, slot, EMPTY_SLOT)
            ctx.st(self.store.values, slot, EMPTY_SLOT)
            ctx.flops(2)

    def validate_block(self, ctx: BlockContext) -> None:
        """A persisted delete folds nothing; a lost one folds the key."""
        for i in self._slice(ctx):
            key = self.batch_keys[i]
            slot = self._find(ctx, key)
            if slot is None:
                continue  # correctly gone
            ctx.st(self.store.keys, slot, EMPTY_SLOT)
            ctx.st(self.store.values, slot, EMPTY_SLOT)


class KVSearchKernel(_BatchKernel):
    """GET: look up each key, writing values to a results buffer.

    Misses write ``0`` (never a legal value). The results buffer is a
    block-disjoint protected output, so this is a plain idempotent LP
    region needing no custom validation.
    """

    name = "megakv-search"
    idempotent = True

    def __init__(
        self,
        store: MegaKVStore,
        batch_keys: np.ndarray,
        results_buffer: str,
        threads_per_block: int = 64,
    ) -> None:
        super().__init__(store, batch_keys, threads_per_block)
        self.results_buffer = results_buffer
        self.protected_buffers = (results_buffer,)

    def block_output_map(self, block_id: int):
        """Search results are a static, block-disjoint slice — the
        fast Listing-7 validation path applies."""
        lo = block_id * self.threads
        hi = min(lo + self.threads, self.n_requests)
        return {self.results_buffer: np.arange(lo, hi)}

    def run_block(self, ctx: BlockContext) -> None:
        for i in self._slice(ctx):
            key = self.batch_keys[i]
            slot = self._find(ctx, key)
            self.store.stats.searches += 1
            if slot is None:
                value = EMPTY_SLOT
            else:
                value = ctx.ld(self.store.values, slot)[0]
                self.store.stats.hits += 1
            ctx.st(self.results_buffer, i, value,
                   slots=np.asarray([i % ctx.n_threads]))
            ctx.flops(2)

    # -- batched execution ----------------------------------------------

    batchable = True

    def run_block_batch(self, bctx) -> None:
        """Whole-group probe: every request's two buckets in one pass.

        Reproduces ``run_block`` exactly: the first matching slot in
        bucket-candidate order wins (duplicated candidate buckets alias,
        so the earliest index is the same slot serial probing picks),
        read traffic counts the *deduplicated* probe width per request,
        and the ragged tail block is masked out.
        """
        T = self.threads
        req = bctx.block_ids[:, None] * T + np.arange(T)       # (B, T)
        mask = req < self.n_requests
        keys = self.batch_keys[np.where(mask, req, 0)]          # (B, T)

        n_buckets = np.uint64(self.store.n_buckets)
        b0 = (mix64_array(keys, self.store.seed)
              % n_buckets).astype(np.int64)
        b1 = (mix64_array(keys, self.store.seed ^ _SECOND_CHOICE)
              % n_buckets).astype(np.int64)
        offs = np.arange(BUCKET_WIDTH)
        slots = np.concatenate(
            [b0[..., None] * BUCKET_WIDTH + offs,
             b1[..., None] * BUCKET_WIDTH + offs],
            axis=-1,
        )                                                       # (B, T, 2W)
        # Serial probing deduplicates coinciding candidate buckets, so
        # its per-request read charge is one bucket wide in that case.
        probe_width = np.where(b0 == b1, BUCKET_WIDTH, 2 * BUCKET_WIDTH)
        total_probe = int(probe_width[mask].sum())
        self.store.stats.probe_slots += total_probe

        bucket_keys = bctx.ld(self.store.keys, slots,
                              charge_elements=total_probe)
        match = bucket_keys == keys[..., None]
        hit = match.any(axis=-1) & mask
        first = np.argmax(match, axis=-1)
        hit_slot = np.take_along_axis(
            slots, first[..., None], axis=-1
        )[..., 0]

        n_valid = int(np.count_nonzero(mask))
        n_hits = int(np.count_nonzero(hit))
        self.store.stats.searches += n_valid
        self.store.stats.hits += n_hits

        result = np.full(req.shape, EMPTY_SLOT, dtype=np.uint64)
        result[hit] = bctx.ld(self.store.values, hit_slot[hit])
        bctx.st(self.results_buffer, req, result,
                slots=np.arange(T), mask=mask)
        bctx.alu(2.0 * T * n_valid)


def alloc_results(device: Device, name: str, n_requests: int):
    """Allocate a persistent results buffer for a search batch."""
    return device.alloc(name, (n_requests,), np.uint64, persistent=True)
