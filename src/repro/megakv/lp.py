"""Lazy Persistency integration for the MEGA-KV store.

:class:`KVBatchSession` drives the store the way MEGA-KV's host side
does — batch in, kernel launch, batch out — with every batch running as
an LP-instrumented kernel.

Crash handling must respect LP's "arbitrarily old regions" caveat
(Section IV-A): a crash during batch N can also lose still-unevicted
effects of batches < N, so the session keeps every batch since the
last checkpoint in an *epoch* and, on a crash, recovers the whole
epoch oldest-first (re-execution order preserves last-writer-wins
across batches) before admitting new work. A successful recovery — or
an explicit :meth:`KVBatchSession.checkpoint` — drains the persistence
domain and closes the epoch. (A hypothesis model-based test caught
exactly the single-batch-recovery bug this design removes.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LPConfig
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.runtime import LazyPersistentKernel, LPRuntime
from repro.gpu.device import Device, LaunchResult
from repro.megakv.kernels import (
    KVDeleteKernel,
    KVInsertKernel,
    KVSearchKernel,
    alloc_results,
)
from repro.megakv.store import MegaKVStore
from repro.nvm.crash import CrashPlan
from repro.obs import current as _recorder


@dataclass
class BatchOutcome:
    """Result of one LP-protected batch."""

    op: str
    launch: LaunchResult
    lp_kernel: LazyPersistentKernel
    recovery: RecoveryReport | None = None
    results: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        """Whether this batch hit a crash (and was then recovered)."""
        return self.launch.crashed


class KVBatchSession:
    """Batched, crash-recoverable operation stream against one store."""

    def __init__(
        self,
        device: Device,
        store: MegaKVStore,
        config: LPConfig | None = None,
        threads_per_block: int = 64,
    ) -> None:
        self.device = device
        self.store = store
        self.config = config or LPConfig.paper_best()
        self.runtime = LPRuntime(device, self.config)
        self.threads = threads_per_block
        self._batch_counter = 0
        #: Batches since the last checkpoint, oldest first.
        self._epoch: list[LazyPersistentKernel] = []
        #: Result buffers of past search batches, freed at checkpoint
        #: (their contents were copied into the BatchOutcome).
        self._stale_result_buffers: list[str] = []

    @property
    def batch_counter(self) -> int:
        """Monotonic batch number; names the next batch's checksum table.

        The service request log records this (plus the allocator
        cursor) per window, so a restarted daemon can replay the
        window's table/results allocations under identical names and
        addresses before adopting the reopened heap.
        """
        return self._batch_counter

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def insert(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        crash_plan: CrashPlan | None = None,
    ) -> BatchOutcome:
        """SET a batch of (key, value) pairs."""
        kernel = KVInsertKernel(self.store, keys, values, self.threads)
        return self._run("insert", kernel, crash_plan)

    def delete(
        self, keys: np.ndarray, crash_plan: CrashPlan | None = None
    ) -> BatchOutcome:
        """DELETE a batch of keys."""
        kernel = KVDeleteKernel(self.store, keys, self.threads)
        return self._run("delete", kernel, crash_plan)

    def search(
        self, keys: np.ndarray, crash_plan: CrashPlan | None = None
    ) -> BatchOutcome:
        """GET a batch of keys; misses come back as 0."""
        results_name = f"{self.store.name}_results_{self._batch_counter}"
        alloc_results(self.device, results_name, np.asarray(keys).size)
        kernel = KVSearchKernel(self.store, keys, results_name, self.threads)
        outcome = self._run("search", kernel, crash_plan)
        outcome.results = self.device.memory[results_name].array.copy()
        self._stale_result_buffers.append(results_name)
        return outcome

    def mixed(
        self,
        ops: "list[tuple[str, np.ndarray] | tuple[str, np.ndarray, np.ndarray]]",
        crash_plans: dict[int, CrashPlan] | None = None,
    ) -> list[BatchOutcome]:
        """Run a mixed request stream, one batch per operation.

        ``ops`` is a list of ``("insert", keys, values)``,
        ``("search", keys)`` or ``("delete", keys)`` tuples — the
        paper's "insert, search & delete 16K recs" workload shape.
        ``crash_plans`` optionally injects a crash into the i-th batch;
        the session recovers each crashed batch before admitting the
        next, so the stream's semantics are crash-transparent.
        """
        crash_plans = crash_plans or {}
        outcomes: list[BatchOutcome] = []
        for i, op in enumerate(ops):
            plan = crash_plans.get(i)
            kind = op[0]
            if kind == "insert":
                outcomes.append(self.insert(op[1], op[2], crash_plan=plan))
            elif kind == "search":
                outcomes.append(self.search(op[1], crash_plan=plan))
            elif kind == "delete":
                outcomes.append(self.delete(op[1], crash_plan=plan))
            else:
                raise ValueError(f"unknown KV operation {kind!r}")
        return outcomes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Drain the persistence domain and close the batch epoch.

        Everything up to here is durable; a later crash can no longer
        require re-validating these batches, so their checksum tables
        (and already-copied search-result buffers) are released.
        Returns the lines the drain wrote.
        """
        rec = _recorder()
        with rec.trace.span("megakv.checkpoint", cat="megakv",
                            track="megakv", epoch_batches=len(self._epoch)):
            lines = self.device.drain()
            for kernel in self._epoch:
                kernel.table.free()
            self._epoch.clear()
            for name in self._stale_result_buffers:
                if name in self.device.memory:
                    self.device.free(name)
            self._stale_result_buffers.clear()
        if rec.metrics.active:
            rec.metrics.inc("megakv.checkpoints")
            rec.metrics.inc("megakv.checkpoint.lines", lines)
        return lines

    def _run(self, op, kernel, crash_plan) -> BatchOutcome:
        table_name = f"{kernel.name}_b{self._batch_counter}"
        batch_no = self._batch_counter
        self._batch_counter += 1
        rec = _recorder()
        lp_kernel = self.runtime.instrument(kernel, table_name=table_name)
        with rec.trace.span("megakv.batch", cat="megakv", track="megakv",
                            op=op, batch=batch_no):
            launch = self.device.launch(lp_kernel, crash_plan=crash_plan)
            outcome = BatchOutcome(op=op, launch=launch,
                                   lp_kernel=lp_kernel)
            if launch.crashed:
                # A crash may have lost effects of any batch in the open
                # epoch, not just the one in flight: recover
                # oldest-first, then checkpoint so the epoch starts
                # clean.
                if rec.metrics.active:
                    rec.metrics.inc("megakv.batch.crashes", op=op)
                self.device.restart()
                for old_kernel in self._epoch:
                    RecoveryManager(self.device, old_kernel).recover()
                outcome.recovery = RecoveryManager(
                    self.device, lp_kernel
                ).recover()
                self.checkpoint()
            else:
                self._epoch.append(lp_kernel)
        if rec.metrics.active:
            rec.metrics.inc("megakv.batches", op=op)
        return outcome
