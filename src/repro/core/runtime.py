"""The Lazy Persistency runtime: kernel instrumentation.

:class:`LazyPersistentKernel` wraps any simulator kernel with the LP
protocol of the paper's Listing 2:

1. at block start, reset per-thread checksum accumulators;
2. every protected store updates the accumulators (via the context's
   store interception and an :class:`~repro.core.region.LPRegionObserver`);
3. at block end, reduce the accumulators (shuffle or sequential,
   Listings 3-4) and insert the block's checksum into the checksum
   table, keyed by block id.

:class:`LPRuntime` is the host-side façade: given a device and an
:class:`~repro.core.config.LPConfig`, it sizes and allocates the
checksum table for a kernel (the ``lpcuda_init`` directive's job) and
returns the instrumented kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.checksum import ChecksumSet
from repro.core.config import LPConfig
from repro.core.reduction import (
    apply_reduction_tally,
    reduce_block,
    reduction_tally,
)
from repro.core.region import BatchRegionObserver, LPRegionObserver
from repro.core.tables import ChecksumTable, make_table
from repro.errors import ConfigError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig


class LazyPersistentKernel(Kernel):
    """A kernel wrapped with Lazy Persistency instrumentation.

    The wrapper preserves the inner kernel's launch shape and delegates
    the computation; it adds checksum accumulation, reduction and table
    insertion per block, plus the validation/recovery protocol used
    after a crash.
    """

    def __init__(
        self,
        inner: Kernel,
        config: LPConfig,
        table: ChecksumTable,
        charge_float_conversion: bool | None = None,
    ) -> None:
        if not inner.protected_buffers:
            raise ConfigError(
                f"kernel {inner.name!r} declares no protected buffers; "
                "nothing for Lazy Persistency to protect"
            )
        self.inner = inner
        self.config = config
        self.table = table
        self.cset = ChecksumSet(config.checksums)
        self.name = f"{inner.name}+lp[{config.describe()}]"
        self.protected_buffers = inner.protected_buffers
        self.idempotent = inner.idempotent
        self._protected = frozenset(inner.protected_buffers)
        if charge_float_conversion is None:
            charge_float_conversion = config.uses_float_conversion
        self._charge_conv = charge_float_conversion
        #: Block ids whose checksums failed the last validation launch.
        self.validation_failures: list[int] = []
        #: Blocks whose stored checksum was missing entirely.
        self.missing_checksums: list[int] = []
        #: Per-failed-block diagnosis from the last validation launch:
        #: ``{block_id: {"reason", "expected", "found"}}`` — the raw
        #: material :func:`repro.obs.forensics.diagnose` builds on.
        self.failure_details: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------

    def launch_config(self) -> LaunchConfig:
        return self.inner.launch_config()

    def run_block(self, ctx: BlockContext) -> None:
        observer = self._attach_observer(ctx)
        self.inner.run_block(ctx)
        self._seal_region(ctx, observer)

    # -- launch-engine integration --------------------------------------

    @property
    def parallel_safe(self) -> bool:
        """Safe iff the inner kernel is; table insertion is deferred to
        the parent process, so the table never runs in a worker."""
        return self.inner.parallel_safe

    @property
    def batchable(self) -> bool:
        """Batchable iff the inner kernel is and every checksum lane is
        commutative (the batched fold reorders value accumulation)."""
        return (
            self.inner.batchable and self.cset.commutative
        )

    def run_block_batch(self, bctx) -> None:
        """Vectorized LP protocol over a whole group of regions.

        The inner kernel's batched stores fold into one
        :class:`~repro.core.region.BatchRegionObserver`; the reduction
        is charged analytically via :func:`reduction_tally` (pinned by
        tests to equal the functional reduction's charges) and produces
        per-block lane values bit-identical to :func:`reduce_block`
        (exact commutative folds). Table insertions are deferred so the
        engine applies them in launch order — hash-table probe
        sequences depend on insertion history, so order matters there
        even though the checksums themselves commute.
        """
        lanes = self._batch_protocol(bctx, self.inner.run_block_batch)
        for row, block_id in enumerate(bctx.block_ids):
            bctx.defer_table_insert(int(block_id), lanes[row])

    def validate_block_batch(self, bctx) -> list:
        """Vectorized check phase: recompute every block's lanes at once.

        The inner kernel's batched validation pass (the padded
        output-map gather, or a full ``VALIDATE``-mode replay) folds
        memory's current contents into one batch observer; one
        ``reduce_lanes`` call then yields the whole group's recomputed
        checksums. Returns ``(block_id, lanes)`` outcome records for
        :meth:`merge_validation_outcomes` — the table compare happens
        grid-wide at merge time, not here.
        """
        lanes = self._batch_protocol(bctx, self.inner.validate_block_batch)
        return [
            (int(block_id), lanes[row])
            for row, block_id in enumerate(bctx.block_ids)
        ]

    def recover_block_batch(self, bctx) -> None:
        """Vectorized eager recovery: re-execute failed regions grouped.

        Identical to :meth:`run_block_batch` except the inner kernel
        re-executes through its batched recovery path; refreshed
        checksums are deferred for launch-order table insertion.
        """
        lanes = self._batch_protocol(bctx, self.inner.recover_block_batch)
        for row, block_id in enumerate(bctx.block_ids):
            bctx.defer_table_insert(int(block_id), lanes[row])

    def _batch_protocol(self, bctx, inner_pass) -> np.ndarray:
        """Run one batched inner pass under LP observation.

        Attaches the batch observer, runs ``inner_pass``, charges the
        analytic reduction cost and returns the group's per-block lane
        values (shape ``(n_blocks_in_batch, n_lanes)``).
        """
        observer = BatchRegionObserver(
            self.cset, bctx, self._protected,
            charge_float_conversion=self._charge_conv,
        )
        bctx.lp_observer = observer
        inner_pass(bctx)
        lanes = observer.state.reduce_lanes()
        n_comm = len(
            [f for f in self.cset.functions if not f.order_sensitive]
        )
        cost = reduction_tally(self.config.reduction, bctx.n_threads, n_comm)
        apply_reduction_tally(
            bctx.tally, cost, n_blocks=bctx.n_blocks_in_batch
        )
        return lanes

    def apply_table_insert(self, ctx: BlockContext, key: int,
                           lanes: np.ndarray) -> None:
        """Engine callback: apply one deferred checksum-table insert."""
        self.table.insert(ctx, key, lanes)

    def validate_block(self, ctx: BlockContext) -> tuple[int, np.ndarray]:
        """Recompute one block's region checksum from memory contents.

        Replays the block in ``VALIDATE`` mode: protected stores read
        memory's current contents into the checksum instead of writing.
        Returns the block's ``(block_id, recomputed_lanes)`` outcome
        record; the verdict (table compare, failure lists) is reached
        in :meth:`merge_validation_outcomes`, which the launch engine
        calls once with every block's record in block order. Keeping
        this method free of host-state mutation and table access is
        what lets all engines — including the process-pool one — run
        validation blocks concurrently.
        """
        if ctx.mode is not ExecMode.VALIDATE:
            raise ConfigError("validate_block requires a VALIDATE context")
        observer = self._attach_observer(ctx)
        self.inner.validate_block(ctx)
        lanes = reduce_block(observer.state, self.config.reduction, ctx)
        return (ctx.block_id, lanes)

    def merge_validation_outcomes(self, outcomes: list) -> None:
        """Grid-wide verdicts: one vectorized table compare for all blocks.

        ``outcomes`` holds every validated block's ``(block_id, lanes)``
        record. The stored checksums are fetched with one
        :meth:`~repro.core.tables.base.ChecksumTable.lookup_many` call
        (fancy-indexed or vectorized-probe, per table kind) and compared
        lane-wise in one step; failures land in the host-side lists in
        ascending block order, deterministically for every engine.
        Lookups are host-side and charge-free, so deferring them from
        the per-block pass to this merge is invisible to tallies and
        engine-invariant metrics alike.
        """
        records = sorted(
            (o for o in outcomes if o is not None), key=lambda o: o[0]
        )
        if not records:
            return
        keys = np.array([o[0] for o in records], dtype=np.int64)
        found_lanes = np.stack(
            [np.asarray(o[1], dtype=np.uint64) for o in records]
        )
        stored, present = self.table.lookup_many(keys)
        mismatch = present & ~np.all(stored == found_lanes, axis=1)
        for i in np.flatnonzero(~present | mismatch).tolist():
            block_id = int(keys[i])
            self.validation_failures.append(block_id)
            if present[i]:
                self.failure_details[block_id] = {
                    "reason": "lane-mismatch",
                    "expected": np.array(stored[i], copy=True),
                    "found": np.array(found_lanes[i], copy=True),
                }
            else:
                # "expected" is the table's reference checksum; "found"
                # is what the data in memory actually checksums to.
                self.missing_checksums.append(block_id)
                self.failure_details[block_id] = {
                    "reason": "missing-entry",
                    "expected": None,
                    "found": np.array(found_lanes[i], copy=True),
                }

    def recover_block(self, ctx: BlockContext) -> None:
        """Re-execute a failed region and refresh its checksum entry."""
        observer = self._attach_observer(ctx)
        self.inner.recover_block(ctx)
        self._seal_region(ctx, observer)

    # ------------------------------------------------------------------
    # Host-side helpers
    # ------------------------------------------------------------------

    def reset_validation(self) -> None:
        """Clear the failure lists before a validation launch."""
        self.validation_failures = []
        self.missing_checksums = []
        self.failure_details = {}

    @property
    def protected_data_bytes(self) -> int:
        """Bytes of protected output data (for the space-overhead metric)."""
        total = 0
        # The table and kernel share a memory; resolve via the table.
        for name in self.protected_buffers:
            total += self.table.memory[name].nbytes
        return total

    def space_overhead(self) -> float:
        """Checksum-table bytes relative to protected data (Table V)."""
        data = self.protected_data_bytes
        if data <= 0:
            raise ConfigError("no protected data to compare against")
        return self.table.space_bytes / data

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _attach_observer(self, ctx: BlockContext) -> LPRegionObserver:
        observer = LPRegionObserver(
            self.cset, ctx, self._protected,
            charge_float_conversion=self._charge_conv,
        )
        ctx.lp_observer = observer
        return observer

    def _seal_region(self, ctx: BlockContext, observer: LPRegionObserver) -> None:
        lanes = reduce_block(observer.state, self.config.reduction, ctx)
        deferral = getattr(ctx, "table_insert_deferral", None)
        if deferral is not None:
            # A launch engine applies insertions later, in block order
            # (hash-table probe sequences depend on insertion history).
            deferral(ctx.block_id, lanes)
        else:
            self.table.insert(ctx, ctx.block_id, lanes)


class LPRuntime:
    """Host-side LP orchestration bound to one device.

    The runtime plays the role of the paper's ``lpcuda_init`` runtime
    call: it knows the number of LP regions in advance (the grid's
    block count), sizes the checksum table accordingly, and hands back
    an instrumented kernel ready to launch.
    """

    def __init__(self, device: Device, config: LPConfig | None = None) -> None:
        self.device = device
        self.config = config or LPConfig.paper_best()
        self.cset = ChecksumSet(self.config.checksums)

    def instrument(
        self,
        kernel: Kernel,
        table_name: str | None = None,
        perfect_hash: bool = False,
    ) -> LazyPersistentKernel:
        """Wrap ``kernel`` with LP, allocating its checksum table."""
        n_keys = kernel.launch_config().n_blocks
        table = make_table(
            self.device.memory,
            table_name or kernel.name,
            n_keys,
            self.cset.n_lanes,
            self.config,
            cost_model=self.device.cost_model,
            perfect_hash=perfect_hash,
        )
        return LazyPersistentKernel(kernel, self.config, table)
