"""Checksum-table organizations for GPU Lazy Persistency.

Use :func:`make_table` to build the table an
:class:`~repro.core.config.LPConfig` asks for.
"""

from __future__ import annotations

from repro.core.config import LPConfig, TableKind
from repro.core.tables.base import (
    EMPTY_KEY,
    TABLE_BUFFER_PREFIX,
    ChecksumTable,
    TableStats,
    mix64,
    mix64_array,
    pow2_ceil,
)
from repro.core.tables.cuckoo import CuckooTable
from repro.core.tables.global_array import GlobalArrayTable
from repro.core.tables.locks import InsertionProtocol
from repro.core.tables.quadratic import QuadraticTable
from repro.errors import TableError
from repro.gpu.costs import CostModel
from repro.gpu.memory import GlobalMemory

__all__ = [
    "EMPTY_KEY",
    "TABLE_BUFFER_PREFIX",
    "ChecksumTable",
    "CuckooTable",
    "GlobalArrayTable",
    "InsertionProtocol",
    "QuadraticTable",
    "TableStats",
    "make_table",
    "mix64",
    "mix64_array",
    "pow2_ceil",
]


def make_table(
    memory: GlobalMemory,
    name: str,
    n_keys: int,
    n_lanes: int,
    config: LPConfig,
    cost_model: CostModel | None = None,
    perfect_hash: bool = False,
) -> ChecksumTable:
    """Instantiate the checksum table selected by ``config.table``.

    ``perfect_hash`` enables the Section IV-D-2 collision-free ablation
    on the hash-table kinds (it is meaningless for the global array,
    which is already collision-free).
    """
    if config.table is TableKind.QUADRATIC:
        return QuadraticTable(
            memory, name, n_keys, n_lanes, config, cost_model,
            perfect_hash=perfect_hash,
        )
    if config.table is TableKind.CUCKOO:
        return CuckooTable(
            memory, name, n_keys, n_lanes, config, cost_model,
            perfect_hash=perfect_hash,
        )
    if config.table is TableKind.GLOBAL_ARRAY:
        if perfect_hash:
            raise TableError(
                "perfect_hash is a hash-table ablation; the global array "
                "is already collision-free"
            )
        return GlobalArrayTable(
            memory, name, n_keys, n_lanes, config, cost_model
        )
    raise TableError(f"unknown table kind: {config.table}")
