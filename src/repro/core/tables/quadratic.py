"""Open-addressing checksum table with quadratic probing (Fig. 3 right).

On a collision at probe ``i``, the next candidate index adds ``i**2``
to the original hash — the paper's ``+1, +4, +9, ...`` walk. Slots are
claimed with ``atomicCAS`` (lock-free) so two blocks can never both win
the same empty slot.

Known limitations the paper calls out, both reproduced here:

* worst-case insertion time is unbounded in collisions (the stats track
  the longest chain);
* behaviour degrades past ~70 % load factor, hence the sizing policy
  targets :attr:`~repro.core.config.LPConfig.quad_target_load_factor`.

The ``perfect_hash`` flag implements the Section IV-D-2 ablation: the
first probed slot is always empty (hashing block ids identically into a
table of at least ``n_keys`` slots), isolating how much of the overhead
is collision-induced.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LPConfig, TableKind
from repro.core.tables.base import (
    EMPTY_KEY,
    ChecksumTable,
    mix64,
    mix64_array,
    pow2_ceil,
)
from repro.core.tables.locks import InsertionProtocol
from repro.errors import TableFullError
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import GlobalMemory


class QuadraticTable(ChecksumTable):
    """Quadratic-probing open-addressing checksum table."""

    kind = TableKind.QUADRATIC

    def __init__(
        self,
        memory: GlobalMemory,
        name: str,
        n_keys: int,
        n_lanes: int,
        config: LPConfig,
        cost_model: CostModel | None = None,
        seed: int = 0x9E3779B9,
        perfect_hash: bool = False,
    ) -> None:
        super().__init__(memory, name, n_keys, n_lanes, config, cost_model)
        self.perfect_hash = perfect_hash
        if perfect_hash:
            self.capacity = pow2_ceil(n_keys)
        else:
            self.capacity = pow2_ceil(
                int(np.ceil(n_keys / config.quad_target_load_factor))
            )
        self.seed = seed
        self._keys = self._alloc("keys", (self.capacity,), np.uint64,
                                 fill=EMPTY_KEY)
        # Lane words are initialized to the all-ones sentinel (the
        # paper's NaN-initialized checksums): if an entry's key line
        # persists but its lane line is lost in a crash, the stale
        # initialization must never masquerade as a valid checksum —
        # in particular not as the checksum of all-zero (also lost)
        # data, which a zero fill would.
        self._lanes = self._alloc("lanes", (self.capacity * n_lanes,),
                                  np.uint64, fill=EMPTY_KEY)
        self._protocol = InsertionProtocol(config, self.cost_model, n_keys)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _home_index(self, key: int) -> int:
        if self.perfect_hash:
            return int(key) % self.capacity
        return mix64(int(key), self.seed) % self.capacity

    def _probe_index(self, home: int, i: int) -> int:
        return (home + i * i) % self.capacity

    # ------------------------------------------------------------------
    # Device-side insertion
    # ------------------------------------------------------------------

    def insert(self, ctx: BlockContext, key: int, lanes: np.ndarray) -> None:
        marker = self._stats_marker()
        try:
            self._insert_impl(ctx, key, lanes)
        finally:
            self._publish_insert(marker)

    def _insert_impl(self, ctx: BlockContext, key: int,
                     lanes: np.ndarray) -> None:
        key64 = np.uint64(key)
        home = self._home_index(key)
        self.stats.inserts += 1

        collisions_this = 0
        for i in range(self.capacity + 1):
            idx = self._probe_index(home, i)
            old = self._protocol.claim_if_empty(
                ctx, self._keys, idx, EMPTY_KEY, key64
            )
            self.stats.probes += 1
            if old == EMPTY_KEY or old == key64:
                # Won an empty slot, or found our own entry (recovery
                # re-insertion): write/refresh the lane words.
                ctx.st(self._lanes, self._lane_slice(idx), lanes)
                self.stats.collisions += collisions_this
                self.stats.note_chain(collisions_this + 1)
                self._protocol.charge_lock(ctx, collisions_this + 1)
                return
            collisions_this += 1

        # With a power-of-two capacity the pure i**2 walk does not visit
        # every slot; fall back to a linear sweep so a non-full table
        # can never spuriously fail (the sweep is astronomically rare at
        # the configured load factor and still counts its collisions).
        for idx in range(self.capacity):
            old = self._protocol.claim_if_empty(
                ctx, self._keys, idx, EMPTY_KEY, key64
            )
            self.stats.probes += 1
            if old == EMPTY_KEY or old == key64:
                ctx.st(self._lanes, self._lane_slice(idx), lanes)
                self.stats.collisions += collisions_this
                self.stats.note_chain(collisions_this + 1)
                self._protocol.charge_lock(ctx, collisions_this + 1)
                return
            collisions_this += 1
        raise TableFullError(
            f"quadratic table {self.name!r} found no slot for key {key} "
            f"(capacity {self.capacity}, inserts {self.stats.inserts})"
        )

    # ------------------------------------------------------------------
    # Host-side lookup (recovery path, reads the persisted image)
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> np.ndarray | None:
        key64 = np.uint64(key)
        home = self._home_index(key)
        keys_img = self._keys.array
        lanes_img = self._lanes.array
        self.stats.lookups += 1
        hit_empty = False
        for i in range(self.capacity + 1):
            idx = self._probe_index(home, i)
            slot = keys_img[idx]
            if slot == key64:
                base = idx * self.n_lanes
                self._publish_lookup(found=True)
                return lanes_img[base:base + self.n_lanes].copy()
            if slot == EMPTY_KEY:
                hit_empty = True
                break
        if not hit_empty:
            # Mirror the insert path's linear fallback sweep.
            hits = np.flatnonzero(keys_img == key64)
            if hits.size:
                base = int(hits[0]) * self.n_lanes
                self._publish_lookup(found=True)
                return lanes_img[base:base + self.n_lanes].copy()
        self.stats.failed_lookups += 1
        self._publish_lookup(found=False)
        return None

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized probe walk: one probe step over all unresolved keys.

        The loop runs over probe *steps* (bounded by the longest chain
        actually present, rarely more than a handful at the configured
        load factor) while each step's slot reads, key compares and
        empty checks are whole-array operations. Keys that neither match
        nor hit an empty slot within the quadratic walk fall back to the
        same linear sweep the insert path uses.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        n = keys.size
        lanes = np.full((n, self.n_lanes), EMPTY_KEY, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return lanes, found
        keys64 = keys.astype(np.uint64)
        if self.perfect_hash:
            home = (keys64 % np.uint64(self.capacity)).astype(np.int64)
        else:
            home = (mix64_array(keys64, self.seed)
                    % np.uint64(self.capacity)).astype(np.int64)
        keys_img = self._keys.array
        lanes_img = self._lanes.array
        lane_off = np.arange(self.n_lanes)
        pending = np.arange(n)
        for i in range(self.capacity + 1):
            if pending.size == 0:
                break
            idx = (home[pending] + i * i) % self.capacity
            slot = keys_img[idx]
            is_key = slot == keys64[pending]
            if is_key.any():
                hit = pending[is_key]
                base = idx[is_key][:, None] * self.n_lanes + lane_off
                lanes[hit] = lanes_img[base]
                found[hit] = True
            # A key stops at its match or at the first empty slot —
            # exactly the scalar probe loop's exit conditions.
            pending = pending[~(is_key | (slot == EMPTY_KEY))]
        for j in pending.tolist():
            hits = np.flatnonzero(keys_img == keys64[j])
            if hits.size:
                base = int(hits[0]) * self.n_lanes
                lanes[j] = lanes_img[base:base + self.n_lanes]
                found[j] = True
        self.stats.lookups += n
        n_failed = int(n - np.count_nonzero(found))
        self.stats.failed_lookups += n_failed
        self._publish_lookup_many(n, n_failed)
        return lanes, found
