"""Two-table cuckoo-hashing checksum table (Fig. 4).

Each key has one candidate slot per table (``T1[H1(key)]`` and
``T2[H2(key)]``). Insertion claims its ``T1`` slot unconditionally with
``atomicExch``; if a victim key was evicted, the victim re-inserts into
the *other* table, and so on — the paper's step (1)-(4) walk. A chain
that exceeds the cycle bound triggers a **rehash**: new hash seeds,
both tables rebuilt (every reinsert's collisions are counted, so a
rehash is visibly expensive in the Table II statistics).

The paper's observations reproduced here:

* amortized-constant insertion, bounded lookups (exactly two probes);
* the load factor must stay under ~50 % combined, hence the sizing from
  :attr:`~repro.core.config.LPConfig.cuckoo_target_load_factor`;
* ``atomicExch`` (not CAS) suffices because the slot is overwritten
  whether or not it is occupied (Section IV-C-1).

``perfect_hash`` implements the Section IV-D-2 collision-free ablation,
as for the quadratic table.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LPConfig, TableKind
from repro.core.tables.base import (
    EMPTY_KEY,
    ChecksumTable,
    mix64,
    mix64_array,
    pow2_ceil,
)
from repro.core.tables.locks import InsertionProtocol
from repro.errors import RehashLimitError
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import GlobalMemory
from repro.obs import current as _recorder

#: Eviction-chain length that declares a cycle and forces a rehash.
DEFAULT_MAX_CHAIN = 48
#: Consecutive rehash attempts before giving up.
MAX_REHASH_ATTEMPTS = 16


class CuckooTable(ChecksumTable):
    """Standard two-table cuckoo hash for per-block checksums."""

    kind = TableKind.CUCKOO

    def __init__(
        self,
        memory: GlobalMemory,
        name: str,
        n_keys: int,
        n_lanes: int,
        config: LPConfig,
        cost_model: CostModel | None = None,
        seed: int = 0x2545F491,
        max_chain: int = DEFAULT_MAX_CHAIN,
        perfect_hash: bool = False,
    ) -> None:
        super().__init__(memory, name, n_keys, n_lanes, config, cost_model)
        self.perfect_hash = perfect_hash
        if perfect_hash:
            per_table = pow2_ceil(n_keys)
        else:
            # Combined load factor = n / (2 * per_table) <= target.
            per_table = pow2_ceil(
                int(np.ceil(n_keys / (2 * config.cuckoo_target_load_factor)))
            )
        self.per_table_capacity = per_table
        self.capacity = 2 * per_table
        self.max_chain = max_chain
        self._seeds = [seed, seed ^ 0x6A09E667F3BCC909]
        self._keys = [
            self._alloc("keys0", (per_table,), np.uint64, fill=EMPTY_KEY),
            self._alloc("keys1", (per_table,), np.uint64, fill=EMPTY_KEY),
        ]
        self._lanes = [
            self._alloc("lanes0", (per_table * n_lanes,), np.uint64,
                        fill=EMPTY_KEY),
            self._alloc("lanes1", (per_table * n_lanes,), np.uint64,
                        fill=EMPTY_KEY),
        ]
        self._protocol = InsertionProtocol(config, self.cost_model, n_keys)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _index(self, table: int, key: int) -> int:
        if self.perfect_hash:
            return int(key) % self.per_table_capacity
        return mix64(int(key), self._seeds[table]) % self.per_table_capacity

    # ------------------------------------------------------------------
    # Device-side insertion
    # ------------------------------------------------------------------

    def insert(self, ctx: BlockContext, key: int, lanes: np.ndarray) -> None:
        self.stats.inserts += 1
        marker = self._stats_marker()
        try:
            self._insert_inner(ctx, np.uint64(key),
                               np.asarray(lanes, dtype=np.uint64), depth=0)
        finally:
            # Rehash recursion goes through _insert_inner, so the whole
            # chain (evictions, rebuild reinserts) publishes as one
            # insert's delta here.
            self._publish_insert(marker)

    def _insert_inner(
        self, ctx: BlockContext, key: np.uint64, lanes: np.ndarray, depth: int
    ) -> None:
        # Recovery idempotence: refresh in place if the key is already
        # resident (two reads; lookups are cheap and bounded).
        for t in (0, 1):
            idx = self._index(t, int(key))
            if ctx.ld(self._keys[t], idx)[0] == key:
                ctx.st(self._lanes[t], self._lane_slice(idx), lanes)
                self._protocol.charge_lock(ctx, 1)
                return

        cur_key, cur_lanes = key, lanes
        table = 0
        chain = 0
        while chain <= self.max_chain:
            idx = self._index(table, int(cur_key))
            old_key = self._protocol.swap(ctx, self._keys[table], idx, cur_key)
            old_lanes = ctx.ld(self._lanes[table], self._lane_slice(idx))
            ctx.st(self._lanes[table], self._lane_slice(idx), cur_lanes)
            self.stats.probes += 1
            if old_key == EMPTY_KEY:
                self.stats.note_chain(chain + 1)
                self._protocol.charge_lock(ctx, chain + 1)
                return
            self.stats.collisions += 1
            cur_key, cur_lanes = old_key, old_lanes.copy()
            table ^= 1
            chain += 1

        # Cycle detected: rehash with fresh seeds and retry the orphan.
        self._protocol.charge_lock(ctx, chain)
        self._rehash(ctx, depth)
        self._insert_inner(ctx, cur_key, cur_lanes, depth + 1)

    def _rehash(self, ctx: BlockContext, depth: int) -> None:
        if depth >= MAX_REHASH_ATTEMPTS:
            raise RehashLimitError(
                f"cuckoo table {self.name!r} rehashed {depth} times "
                "without converging"
            )
        self.stats.rehashes += 1
        _recorder().trace.instant(
            "table.rehash", cat="table", track="table",
            table=self.kind.value, depth=depth,
        )
        entries: list[tuple[np.uint64, np.ndarray]] = []
        for t in (0, 1):
            keys = self._keys[t].array
            lanes = self._lanes[t].array
            occupied = np.flatnonzero(keys != EMPTY_KEY)
            for idx in occupied:
                base = int(idx) * self.n_lanes
                entries.append(
                    (np.uint64(keys[idx]),
                     lanes[base:base + self.n_lanes].copy())
                )
            # Clearing the tables is real device traffic.
            all_idx = np.arange(self.per_table_capacity)
            ctx.st(self._keys[t], all_idx, EMPTY_KEY)
            ctx.st(self._lanes[t], np.arange(lanes.size), EMPTY_KEY)

        self._seeds = [mix64(s, 0xD1B54A32D192ED03 + depth) for s in self._seeds]
        for old_key, old_lanes in entries:
            self._insert_inner(ctx, old_key, old_lanes, depth + 1)

    # ------------------------------------------------------------------
    # Host-side lookup (recovery path)
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> np.ndarray | None:
        key64 = np.uint64(key)
        self.stats.lookups += 1
        for t in (0, 1):
            idx = self._index(t, int(key))
            if self._keys[t].array[idx] == key64:
                base = idx * self.n_lanes
                self._publish_lookup(found=True)
                return self._lanes[t].array[base:base + self.n_lanes].copy()
        self.stats.failed_lookups += 1
        self._publish_lookup(found=False)
        return None

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized exactly-two-probe lookup over both tables.

        Probes table 0 for every key, then table 1 only for the keys
        table 0 missed — the same first-match preference as the scalar
        loop, which matters when a crash leaves a stale copy of a key
        in both tables.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        n = keys.size
        lanes = np.full((n, self.n_lanes), EMPTY_KEY, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return lanes, found
        keys64 = keys.astype(np.uint64)
        lane_off = np.arange(self.n_lanes)
        for t in (0, 1):
            pending = np.flatnonzero(~found)
            if pending.size == 0:
                break
            if self.perfect_hash:
                idx = (keys64[pending]
                       % np.uint64(self.per_table_capacity)).astype(np.int64)
            else:
                idx = (mix64_array(keys64[pending], self._seeds[t])
                       % np.uint64(self.per_table_capacity)).astype(np.int64)
            is_key = self._keys[t].array[idx] == keys64[pending]
            if is_key.any():
                hit = pending[is_key]
                base = idx[is_key][:, None] * self.n_lanes + lane_off
                lanes[hit] = self._lanes[t].array[base]
                found[hit] = True
        self.stats.lookups += n
        n_failed = int(n - np.count_nonzero(found))
        self.stats.failed_lookups += n_failed
        self._publish_lookup_many(n, n_failed)
        return lanes, found
