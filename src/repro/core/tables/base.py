"""Checksum-table interface, sizing policy, hashing and statistics.

A checksum table stores one entry per LP region (= thread block): the
region's key (its block id) and its checksum lane values. The table
itself lives in *persistent* device memory — its stores are just as
lazy as the data stores they protect, which is why LP needs no flush
instructions anywhere (Section II-A).

Three organizations are provided (Sections IV-C and V):

* :class:`~repro.core.tables.quadratic.QuadraticTable` — open
  addressing with quadratic probing, ``atomicCAS`` slot claims;
* :class:`~repro.core.tables.cuckoo.CuckooTable` — two-table cuckoo
  hashing, ``atomicExch`` eviction chains;
* :class:`~repro.core.tables.global_array.GlobalArrayTable` — the
  paper's contribution: a plain array indexed by block id. Collision-
  free, race-free, 100 % load factor.

Table buffers are named with the ``__lp_`` prefix so NVM write
statistics can attribute checksum traffic separately from application
data (the write-amplification study, Section VII-3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LPConfig, TableKind
from repro.errors import TableError
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import Buffer, GlobalMemory
from repro.obs import current as _recorder

#: Key sentinel for an empty slot. Block ids are far below 2**64 - 1.
EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Prefix of every table buffer name, for write-stats attribution.
TABLE_BUFFER_PREFIX = "__lp_"

_MASK64 = (1 << 64) - 1


def pow2_ceil(n: int) -> int:
    """Smallest power of two ≥ ``n`` (≥ 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def mix64(value: int, seed: int) -> int:
    """SplitMix64-style integer hash; full-period, well-distributed.

    Used as the hash function of both hash tables; ``seed`` selects a
    function from the family (cuckoo rehash picks fresh seeds).
    """
    x = (value + seed) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def mix64_array(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized :func:`mix64` over a uint64 array."""
    x = (values.astype(np.uint64) + np.uint64(seed & _MASK64))
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


@dataclass
class TableStats:
    """Insertion/lookup statistics of one checksum table."""

    inserts: int = 0
    #: Probes that found an occupied slot (the paper's Table II metric).
    collisions: int = 0
    #: Total slots examined across all insertions.
    probes: int = 0
    #: Cuckoo rehash events.
    rehashes: int = 0
    lookups: int = 0
    failed_lookups: int = 0
    #: Longest probe / eviction chain seen for a single insert.
    max_chain: int = 0

    def note_chain(self, length: int) -> None:
        """Record the chain length of one insert."""
        self.max_chain = max(self.max_chain, length)

    def to_dict(self) -> dict:
        """All counters as one JSON-serializable dict."""
        return {
            "inserts": self.inserts,
            "collisions": self.collisions,
            "probes": self.probes,
            "rehashes": self.rehashes,
            "lookups": self.lookups,
            "failed_lookups": self.failed_lookups,
            "max_chain": self.max_chain,
        }


class ChecksumTable(abc.ABC):
    """Device-resident checksum store for LP regions.

    Parameters
    ----------
    memory:
        The device global memory the table's buffers live in.
    name:
        Logical name; buffer names derive from it.
    n_keys:
        Number of regions (thread blocks) that will insert — known in
        advance, as the paper notes, which is what allows sizing the
        table to a safe load factor (or eliminating it entirely).
    n_lanes:
        Checksum words per entry.
    config:
        LP configuration (lock mode, atomic mode, load-factor targets).
    cost_model:
        Used for contention sub-models (lock convoys, emulated atomics).
    """

    kind: TableKind

    def __init__(
        self,
        memory: GlobalMemory,
        name: str,
        n_keys: int,
        n_lanes: int,
        config: LPConfig,
        cost_model: CostModel | None = None,
    ) -> None:
        if n_keys <= 0:
            raise TableError("a checksum table needs at least one key")
        if n_lanes <= 0:
            raise TableError("a checksum table needs at least one lane")
        self.memory = memory
        self.name = name
        self.n_keys = n_keys
        self.n_lanes = n_lanes
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.stats = TableStats()
        self._buffers: list[Buffer] = []

    # -- construction helpers -------------------------------------------

    def _alloc(self, suffix: str, shape, dtype=np.uint64, fill=None) -> Buffer:
        """Allocate one persistent table buffer (``__lp_`` namespaced)."""
        full = f"{TABLE_BUFFER_PREFIX}{self.name}_{suffix}"
        init = None
        if fill is not None:
            init = np.full(shape, fill, dtype=dtype)
        buf = self.memory.alloc(full, shape, dtype=dtype, persistent=True,
                                init=init)
        self._buffers.append(buf)
        return buf

    # -- abstract interface ----------------------------------------------

    @abc.abstractmethod
    def insert(self, ctx: BlockContext, key: int, lanes: np.ndarray) -> None:
        """Insert (or refresh) a region's checksum from inside a block.

        Runs on the device: all memory traffic, atomics and contention
        are charged to ``ctx``. Re-inserting an existing key overwrites
        its lanes — which is exactly what recovery re-execution needs.
        """

    @abc.abstractmethod
    def lookup(self, key: int) -> np.ndarray | None:
        """Host-side lookup during crash recovery.

        Reads the *post-crash* (persisted) image. Returns the lane
        values or ``None`` if the key is absent — absence means the
        checksum store itself did not persist, so the region must be
        recovered. Lookups are off the critical path (Section IV-C).
        """

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized host-side lookup of many keys at once.

        Returns ``(lanes, found)``: a ``(len(keys), n_lanes)`` uint64
        array of lane values and a boolean presence mask. Rows whose
        ``found`` entry is ``False`` hold unspecified lane values.

        Result, statistics and metric totals are exactly those of
        calling :meth:`lookup` once per key — the table does not change
        between lookups of a validation pass, so batching them is pure
        reordering. This default delegates per key; the concrete tables
        override it with fancy-indexed / vectorized-probe fast paths.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        lanes = np.zeros((keys.size, self.n_lanes), dtype=np.uint64)
        found = np.zeros(keys.size, dtype=bool)
        for i, key in enumerate(keys.tolist()):
            got = self.lookup(int(key))
            if got is not None:
                lanes[i] = got
                found[i] = True
        return lanes, found

    # -- flight-recorder publication ---------------------------------------
    #
    # Metrics are published as *deltas* of ``self.stats`` taken at the
    # public entry points, so internal recursion (a cuckoo rehash
    # re-inserting through ``_insert_inner``) aggregates into the one
    # triggering insert instead of double counting.

    def _stats_marker(self) -> tuple[int, int, int]:
        s = self.stats
        return (s.probes, s.collisions, s.rehashes)

    def _publish_insert(self, marker: tuple[int, int, int]) -> None:
        metrics = _recorder().metrics
        if not metrics.active:
            return
        s = self.stats
        label = self.kind.value
        metrics.inc("table.insert.count", table=label)
        if s.probes > marker[0]:
            metrics.inc("table.insert.probes", s.probes - marker[0],
                        table=label)
        if s.collisions > marker[1]:
            metrics.inc("table.insert.collisions",
                        s.collisions - marker[1], table=label)
        if s.rehashes > marker[2]:
            metrics.inc("table.rehashes", s.rehashes - marker[2],
                        table=label)

    def _publish_lookup(self, found: bool) -> None:
        metrics = _recorder().metrics
        if not metrics.active:
            return
        label = self.kind.value
        metrics.inc("table.lookup.count", table=label)
        if not found:
            metrics.inc("table.lookup.failed", table=label)

    def _publish_lookup_many(self, n: int, n_failed: int) -> None:
        """Batched counterpart of :meth:`_publish_lookup`.

        One increment per series with the whole batch's count, so the
        published totals are bit-identical to ``n`` scalar lookups —
        the engine-invariance contract for vectorized validation.
        """
        metrics = _recorder().metrics
        if not metrics.active or n <= 0:
            return
        label = self.kind.value
        metrics.inc("table.lookup.count", n, table=label)
        if n_failed:
            metrics.inc("table.lookup.failed", n_failed, table=label)

    # -- shared metrics ----------------------------------------------------

    @property
    def space_bytes(self) -> int:
        """Device memory footprint of the table (Table V's space column)."""
        return sum(buf.nbytes for buf in self._buffers)

    @property
    def buffer_names(self) -> list[str]:
        """Names of the table's device buffers."""
        return [buf.name for buf in self._buffers]

    def free(self) -> None:
        """Release the table's device buffers."""
        for buf in self._buffers:
            self.memory.free(buf.name)
        self._buffers.clear()

    # -- lane packing -------------------------------------------------------

    def _lane_slice(self, entry_index: int) -> np.ndarray:
        """Flat indices of an entry's lane words in a packed lane buffer."""
        base = entry_index * self.n_lanes
        return np.arange(base, base + self.n_lanes)
