"""The paper's hash-table-less checksum store (Section V).

Because each LP region *is* a thread block and every thread block has a
unique id, checksums can be stored in a plain array indexed by block
id. This removes every problem the hash tables fought:

* **no collisions** — each block owns exactly one entry;
* **no races** — no two blocks ever touch the same address, so no
  atomics and no locks;
* **100 % load factor** — the array has exactly ``n_keys`` entries, the
  minimum possible space (Table V's 1.63 % geomean space overhead).

An entry whose lane words are all the empty sentinel is "absent": the
block's checksum store never persisted, so the block must be recovered.
(The chance of a real checksum equaling the sentinel in every lane is
``2**-64`` per lane; the paper's NaN-initialized checksums make the
same trade.)
"""

from __future__ import annotations

import numpy as np

from repro.core.checksum import EMPTY_SENTINEL
from repro.core.config import LPConfig, TableKind
from repro.core.tables.base import ChecksumTable
from repro.errors import TableError
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import GlobalMemory


class GlobalArrayTable(ChecksumTable):
    """Checksum global array: one entry per thread block, direct index."""

    kind = TableKind.GLOBAL_ARRAY

    def __init__(
        self,
        memory: GlobalMemory,
        name: str,
        n_keys: int,
        n_lanes: int,
        config: LPConfig,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(memory, name, n_keys, n_lanes, config, cost_model)
        self.capacity = n_keys
        self._lanes = self._alloc(
            "lanes", (n_keys * n_lanes,), np.uint64, fill=EMPTY_SENTINEL
        )

    def insert(self, ctx: BlockContext, key: int, lanes: np.ndarray) -> None:
        """One plain store; no probe, no atomic, no lock."""
        self._check_key(key)
        marker = self._stats_marker()
        self.stats.inserts += 1
        self.stats.probes += 1
        ctx.st(self._lanes, self._lane_slice(int(key)), lanes)
        self._publish_insert(marker)

    def lookup(self, key: int) -> np.ndarray | None:
        self._check_key(key)
        self.stats.lookups += 1
        base = int(key) * self.n_lanes
        lanes = self._lanes.array[base:base + self.n_lanes].copy()
        if np.all(lanes == EMPTY_SENTINEL):
            self.stats.failed_lookups += 1
            self._publish_lookup(found=False)
            return None
        self._publish_lookup(found=True)
        return lanes

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fancy-indexed batch lookup: one gather, one sentinel compare."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return (np.zeros((0, self.n_lanes), dtype=np.uint64),
                    np.zeros(0, dtype=bool))
        if int(keys.min()) < 0 or int(keys.max()) >= self.capacity:
            raise TableError(
                f"block ids outside global array of {self.capacity}"
            )
        lanes = self._lanes.array.reshape(
            self.capacity, self.n_lanes
        )[keys].copy()
        found = ~np.all(lanes == EMPTY_SENTINEL, axis=1)
        self.stats.lookups += keys.size
        n_failed = int(keys.size - np.count_nonzero(found))
        self.stats.failed_lookups += n_failed
        self._publish_lookup_many(keys.size, n_failed)
        return lanes, found

    def _check_key(self, key: int) -> None:
        if not 0 <= int(key) < self.capacity:
            raise TableError(
                f"block id {key} outside global array of {self.capacity}"
            )
