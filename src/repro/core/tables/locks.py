"""Insertion concurrency protocols: locks vs lock-free, real vs emulated.

The hash tables express their slot operations through an
:class:`InsertionProtocol`, which routes them to:

* **hardware atomics** (``atomicCAS`` / ``atomicExch``) — the lock-free
  fast path the paper recommends;
* **emulated atomics** — plain load/compare/store and
  temporary-variable swap sequences (the Section IV-D-3 ablation).
  Functionally the simulator executes blocks one at a time, so the
  emulation stays correct; the *cost* reflects the dependent round
  trips and race-retry storms real concurrency would cause;
* **a table lock** — when :class:`~repro.core.config.LockMode` is
  ``LOCK_BASED``, each insert additionally pays a critical-section +
  convoy cost, which is what destroys scalability at high block counts
  (Table III).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AtomicMode, LockMode, LPConfig
from repro.gpu.costs import CostModel
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import Buffer


class InsertionProtocol:
    """Concurrency-control strategy for checksum-table insertion.

    Parameters
    ----------
    config:
        Supplies :class:`LockMode` and :class:`AtomicMode`.
    cost_model:
        Contention sub-models (convoy, emulated storms).
    population:
        Total number of inserters over the launch (= thread blocks);
        determines how many concurrent waiters contend.
    """

    def __init__(
        self, config: LPConfig, cost_model: CostModel, population: int
    ) -> None:
        self.config = config
        self.cost_model = cost_model
        self.population = max(1, population)

    # ------------------------------------------------------------------
    # Slot primitives
    # ------------------------------------------------------------------

    def claim_if_empty(
        self,
        ctx: BlockContext,
        keys: Buffer,
        index: int,
        empty: np.uint64,
        key: np.uint64,
    ) -> np.uint64:
        """CAS-style claim: write ``key`` iff the slot holds ``empty``.

        Returns the old value (CUDA ``atomicCAS`` semantics).
        """
        if self.config.atomics is AtomicMode.HARDWARE:
            return ctx.atomic_cas(keys, index, empty, key)
        # Emulated: read, compare, conditionally write — three dependent
        # global accesses, racing with every other inserter.
        old = ctx.ld(keys, index)[0]
        if old == empty:
            ctx.st(keys, index, key)
        ctx.add_serial_cycles(
            self.cost_model.emulated_cas_cycles(1, self.population)
        )
        return old

    def swap(
        self, ctx: BlockContext, keys: Buffer, index: int, key: np.uint64
    ) -> np.uint64:
        """Exchange-style swap: unconditionally write ``key``, return old."""
        if self.config.atomics is AtomicMode.HARDWARE:
            return ctx.atomic_exch(keys, index, key)
        old = ctx.ld(keys, index)[0]
        ctx.st(keys, index, key)
        ctx.add_serial_cycles(
            self.cost_model.emulated_swap_cycles(1, self.population)
        )
        return old

    # ------------------------------------------------------------------
    # Lock accounting
    # ------------------------------------------------------------------

    def charge_lock(self, ctx: BlockContext, chain_length: int) -> None:
        """Charge one insert's critical section if lock-based.

        ``chain_length`` (probes or evictions) lengthens the critical
        section: the lock is held while the whole chain executes.
        """
        if self.config.locks is not LockMode.LOCK_BASED:
            return
        cs_extra = chain_length * self.cost_model.spec.global_latency_cycles
        ctx.add_serial_cycles(
            self.cost_model.lock_convoy_cycles(
                1,
                cs_extra_cycles=cs_extra,
                population=self.population,
                threads_per_block=ctx.config.threads_per_block,
            )
        )
