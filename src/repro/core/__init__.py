"""Lazy Persistency core: checksums, reduction, tables, runtime, recovery."""
