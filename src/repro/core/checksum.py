"""Checksum functions protecting Lazy Persistency regions.

The paper (Section IV-B) considers three checksums over a region's
persistent store values:

* **modular** — values are summed (we sum the 64-bit *bit patterns*,
  keeping the fold exact and commutative; floating-point summation
  would be non-associative and break order-insensitive reduction);
* **parity** — values are XORed, after converting floating-point data
  to integers (Fig. 2: ``3.5`` → bits ``0x40600000`` → ``1080033280``);
* **Adler-32** — the zlib checksum, rejected by the paper as expensive;
  it is also order-*sensitive*, so it cannot use the parallel shuffle
  reduction and is provided for sequential mode and comparisons only.

A region is protected by a :class:`ChecksumSet` — one or more functions
evaluated simultaneously; the paper recommends modular + parity, which
drives the combined false-negative rate below one in a trillion.

All folds operate on ``uint64`` *lanes*. Store values of any dtype are
first normalized by :func:`to_lane_words`.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.config import ChecksumKind
from repro.errors import ConfigError

#: uint64 with all bits set; used as the "no checksum yet" sentinel in
#: checksum tables (the paper initializes checksums to NaN; an all-ones
#: word plays that role in the integer domain).
EMPTY_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


# ---------------------------------------------------------------------------
# Value normalization (Fig. 2)
# ---------------------------------------------------------------------------

def float_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret values' raw bits as unsigned integers, widened to u64.

    This is the paper's Fig. 2 conversion: the sign, exponent and
    mantissa bits of a float are concatenated into an integer
    (``3.5`` → ``1080033280``), so corruption of *any* field is visible
    to the parity checksum.

    The result may be a *view* of ``values`` (64-bit inputs take a
    zero-copy path): callers fold it immediately and must not mutate it.
    This function sits on the store-interception hot path — every
    protected store of every block passes through it — so it allocates
    only when a width or signedness conversion forces it to.
    """
    values = np.asarray(values)
    dtype = values.dtype
    if dtype == np.uint64:
        return values
    kind = dtype.kind
    if kind == "f":
        if dtype.itemsize == 4:
            return values.view(np.uint32).astype(np.uint64)
        if dtype.itemsize == 8:
            return values.view(np.uint64)
        raise ConfigError(f"unsupported float width: {dtype}")
    if kind in "iu":
        if dtype.itemsize == 8:
            return values.view(np.uint64)
        # astype already allocates; view reinterprets in place.
        return values.astype(np.int64).view(np.uint64)
    if kind == "b":
        return values.astype(np.uint64)
    raise ConfigError(f"cannot checksum dtype {dtype}")


def float_to_ordered_int(values: np.ndarray) -> np.ndarray:
    """Total-order-preserving float→integer mapping.

    Unlike :func:`float_bits`, this transform is *monotone*: comparing
    the resulting unsigned integers orders the floats. (Positive floats
    get their sign bit set; negative floats are bitwise complemented.)
    Useful where checksummed values double as sort keys; equivalent in
    error-detection power to the raw-bits conversion.
    """
    values = np.asarray(values)
    if values.dtype.kind != "f":
        raise ConfigError("ordered-int conversion applies to floats")
    if values.dtype.itemsize == 4:
        bits = values.view(np.uint32)
        sign = np.uint32(0x80000000)
        out = np.where(bits & sign, ~bits, bits | sign)
        return out.astype(np.uint64)
    if values.dtype.itemsize == 8:
        bits = values.view(np.uint64)
        sign = np.uint64(0x8000000000000000)
        return np.where(bits & sign, ~bits, bits | sign)
    raise ConfigError(f"unsupported float width: {values.dtype}")


def to_lane_words(values: np.ndarray) -> np.ndarray:
    """Normalize store values of any supported dtype to uint64 words."""
    return float_bits(values)


# ---------------------------------------------------------------------------
# Checksum functions
# ---------------------------------------------------------------------------

class ChecksumFunction(abc.ABC):
    """One checksum lane: identity, fold, and (maybe) parallel combine."""

    kind: ChecksumKind
    #: Identity element of the fold.
    identity: np.uint64 = np.uint64(0)
    #: ALU operations charged per protected store value.
    ops_per_update: int = 1
    #: Whether the fold result depends on value order.
    order_sensitive: bool = False

    @abc.abstractmethod
    def fold_at(self, acc: np.ndarray, slots: np.ndarray, words: np.ndarray) -> None:
        """Scatter-fold ``words`` into per-thread accumulators in place."""

    @abc.abstractmethod
    def fold_all(self, words: np.ndarray, start: np.uint64 | None = None) -> np.uint64:
        """Fold a flat word array into a single checksum."""

    @abc.abstractmethod
    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Commutative combiner used by reductions (elementwise)."""

    def fold_axis(self, acc: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fold an accumulator array along one axis (batched reduce).

        Only meaningful for commutative lanes; the result is bit-identical
        to running :meth:`fold_all` over each slice (the folds are exact
        integer operations, so order cannot matter).
        """
        raise ConfigError(f"{self.kind.value} has no axis fold")

    @property
    def reduce_op(self) -> str:
        """Warp-reduction op name (``"add"`` / ``"xor"``)."""
        raise ConfigError(f"{self.kind.value} has no parallel reduction")


class ModularChecksum(ChecksumFunction):
    """Sum of store-value words modulo 2**64."""

    kind = ChecksumKind.MODULAR
    ops_per_update = 1

    def fold_at(self, acc, slots, words):
        with np.errstate(over="ignore"):
            np.add.at(acc, slots, words)

    def fold_all(self, words, start=None):
        with np.errstate(over="ignore"):
            total = np.uint64(0) if start is None else np.uint64(start)
            return np.uint64(total + words.sum(dtype=np.uint64))

    def combine(self, a, b):
        with np.errstate(over="ignore"):
            return a + b

    def fold_axis(self, acc, axis=-1):
        with np.errstate(over="ignore"):
            return acc.sum(axis=axis, dtype=np.uint64)

    @property
    def reduce_op(self) -> str:
        return "add"


class ParityChecksum(ChecksumFunction):
    """XOR of store-value words (bit parity per position)."""

    kind = ChecksumKind.PARITY
    #: XOR plus the float→ordered-int conversion of each value.
    ops_per_update = 2

    def fold_at(self, acc, slots, words):
        np.bitwise_xor.at(acc, slots, words)

    def fold_all(self, words, start=None):
        total = np.uint64(0) if start is None else np.uint64(start)
        if words.size == 0:
            return total
        return np.uint64(total ^ np.bitwise_xor.reduce(words))

    def combine(self, a, b):
        return np.bitwise_xor(a, b)

    def fold_axis(self, acc, axis=-1):
        return np.bitwise_xor.reduce(acc, axis=axis)

    @property
    def reduce_op(self) -> str:
        return "xor"


class Adler32Checksum(ChecksumFunction):
    """zlib's Adler-32, folded over the little-endian bytes of words.

    Order-sensitive: the per-thread scatter-fold and parallel reduction
    are unavailable (matching why the paper drops it on GPUs). Use
    :meth:`fold_all` over a deterministic value order.
    """

    kind = ChecksumKind.ADLER32
    ops_per_update = 8
    order_sensitive = True

    def fold_at(self, acc, slots, words):
        raise ConfigError("Adler-32 is order-sensitive; no per-thread fold")

    def fold_all(self, words, start=None):
        state = 1 if start is None else int(start)
        data = np.ascontiguousarray(words, dtype="<u8").tobytes()
        return np.uint64(zlib.adler32(data, state))

    def combine(self, a, b):
        raise ConfigError("Adler-32 cannot be combined commutatively")


_FUNCTIONS: dict[ChecksumKind, type[ChecksumFunction]] = {
    ChecksumKind.MODULAR: ModularChecksum,
    ChecksumKind.PARITY: ParityChecksum,
    ChecksumKind.ADLER32: Adler32Checksum,
}


def make_function(kind: ChecksumKind) -> ChecksumFunction:
    """Instantiate the checksum function for a kind."""
    return _FUNCTIONS[kind]()


# ---------------------------------------------------------------------------
# Checksum sets and per-block state
# ---------------------------------------------------------------------------

class ChecksumSet:
    """The checksum lanes protecting each LP region."""

    def __init__(self, kinds: tuple[ChecksumKind, ...]) -> None:
        if not kinds:
            raise ConfigError("a ChecksumSet needs at least one kind")
        self.kinds = tuple(kinds)
        self.functions = tuple(make_function(k) for k in kinds)
        self.n_lanes = len(self.functions)

    @property
    def commutative(self) -> bool:
        """Whether every lane supports order-insensitive reduction."""
        return all(not f.order_sensitive for f in self.functions)

    @property
    def ops_per_update(self) -> int:
        """ALU ops charged per protected store value (all lanes)."""
        return sum(f.ops_per_update for f in self.functions)

    def new_block_state(self, n_threads: int) -> "BlockChecksumState":
        """Fresh accumulators for one LP region (one thread block)."""
        return BlockChecksumState(self, n_threads)

    def checksum_of(self, values: np.ndarray) -> np.ndarray:
        """Reference fold: lane values for a flat value array."""
        words = to_lane_words(np.asarray(values).reshape(-1))
        return np.array(
            [f.fold_all(words) for f in self.functions], dtype=np.uint64
        )

    def false_negative_bound(self) -> float:
        """Upper bound on the probability a corruption goes undetected.

        Modeled as independent uniform collisions per 64-bit lane
        (``2**-64`` each); the paper's corresponding 32-bit figures are
        ~``2e-9`` per checksum and ``1e-12`` combined.
        """
        return float(2.0 ** (-64 * self.n_lanes))


@dataclass
class BlockChecksumState:
    """Per-thread checksum accumulators for one LP region."""

    cset: ChecksumSet
    n_threads: int

    def __post_init__(self) -> None:
        commutative = [
            i for i, f in enumerate(self.cset.functions) if not f.order_sensitive
        ]
        self._comm_lane_pos = commutative
        self.per_thread = np.zeros(
            (self.n_threads, len(commutative)), dtype=np.uint64
        )
        # Order-sensitive lanes fold sequentially in store-issue order.
        self._seq_states: dict[int, np.uint64] = {
            i: np.uint64(1) if isinstance(f, Adler32Checksum) else f.identity
            for i, f in enumerate(self.cset.functions)
            if f.order_sensitive
        }
        #: Number of store values folded so far.
        self.n_values = 0

    @property
    def comm_lane_positions(self) -> list[int]:
        """Lane indices (into the ChecksumSet) with commutative folds."""
        return self._comm_lane_pos

    @property
    def seq_lane_states(self) -> dict[int, np.uint64]:
        """Current states of the order-sensitive lanes, by lane index."""
        return self._seq_states

    def update(self, values: np.ndarray, slots: np.ndarray) -> None:
        """Fold store values into the accumulators.

        ``slots`` assigns each value to the thread that issued it, which
        keeps the per-thread accumulators faithful to the GPU execution
        (each thread updates only its own registers, Listing 2).
        """
        words = to_lane_words(np.asarray(values).reshape(-1))
        slots = np.asarray(slots).reshape(-1)
        if words.shape != slots.shape:
            raise ConfigError("values and slots must align")
        for lane, pos in enumerate(self._comm_lane_pos):
            self.cset.functions[pos].fold_at(
                self.per_thread[:, lane], slots, words
            )
        for pos, state in self._seq_states.items():
            self._seq_states[pos] = self.cset.functions[pos].fold_all(
                words, start=state
            )
        self.n_values += words.size

    def lane_values_reference(self) -> np.ndarray:
        """Final lane values via a direct (non-reduction) fold.

        The reduction module must produce exactly these values; tests
        compare the two paths.
        """
        out = np.empty(self.cset.n_lanes, dtype=np.uint64)
        for lane, pos in enumerate(self._comm_lane_pos):
            out[pos] = self.cset.functions[pos].fold_all(
                self.per_thread[:, lane]
            )
        for pos, state in self._seq_states.items():
            out[pos] = state
        return out


class BatchChecksumState:
    """Per-thread accumulators for a *group* of LP regions at once.

    The vectorized counterpart of :class:`BlockChecksumState`: one extra
    leading axis indexes the thread block within the group, so a batched
    store covering many blocks folds with a single scatter per lane
    instead of one Python call per block. Because every commutative lane
    is an exact integer fold (modular ``+`` / ``^``), the resulting lane
    values are bit-identical to folding each block separately — which is
    what lets the batched launch engine share checksum semantics with
    the serial one.

    Order-sensitive lanes (Adler-32) cannot batch; constructing a batch
    state over a non-commutative :class:`ChecksumSet` is an error.
    """

    def __init__(self, cset: ChecksumSet, n_threads: int, n_blocks: int) -> None:
        if not cset.commutative:
            raise ConfigError(
                "batched checksum state requires commutative lanes only"
            )
        self.cset = cset
        self.n_threads = n_threads
        self.n_blocks = n_blocks
        # Flat (block*thread, lane) layout so a batched update is one
        # scatter with block-offset slots per lane.
        self._flat = np.zeros((n_blocks * n_threads, cset.n_lanes),
                              dtype=np.uint64)
        #: Store values folded so far across the whole group.
        self.n_values = 0

    def update(
        self,
        values: np.ndarray,
        slots: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Fold a batched store into the group's accumulators.

        ``values`` is shaped ``(n_blocks, ...)`` (leading axis = block
        within the group); ``slots`` broadcasts against it and assigns
        each element to its issuing thread. ``mask`` (same shape)
        silences elements of partially-filled blocks.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_blocks:
            raise ConfigError(
                f"batched values lead with {values.shape[0]} blocks, "
                f"state holds {self.n_blocks}"
            )
        words = to_lane_words(values)
        slots = np.broadcast_to(np.asarray(slots), words.shape)
        block_base = np.arange(self.n_blocks, dtype=np.intp) * self.n_threads
        flat_slots = block_base.reshape(
            (self.n_blocks,) + (1,) * (words.ndim - 1)
        ) + slots
        if mask is not None:
            mask = np.broadcast_to(np.asarray(mask, dtype=bool), words.shape)
            words = words[mask]
            flat_slots = flat_slots[mask]
        else:
            words = words.reshape(-1)
            flat_slots = flat_slots.reshape(-1)
        for lane, func in enumerate(self.cset.functions):
            func.fold_at(self._flat[:, lane], flat_slots, words)
        self.n_values += words.size

    def reduce_lanes(self) -> np.ndarray:
        """Final per-block lane values, shape ``(n_blocks, n_lanes)``.

        Bit-identical to running the serial block reduction on each
        block's :class:`BlockChecksumState` (exact commutative folds).
        """
        acc = self._flat.reshape(self.n_blocks, self.n_threads,
                                 self.cset.n_lanes)
        out = np.empty((self.n_blocks, self.cset.n_lanes), dtype=np.uint64)
        for lane, func in enumerate(self.cset.functions):
            out[:, lane] = func.fold_axis(acc[:, :, lane], axis=1)
        return out
