"""LP region state: the store observer attached to one thread block.

An LP region on the GPU is one thread block (Section IV-A). While the
block runs, every store to a *protected* buffer is intercepted by the
block's :class:`LPRegionObserver`, which folds the stored values into
per-thread checksum accumulators — the simulator's equivalent of the
``UpdateCheckSum(...)`` call the paper places after each persistent
store (Listing 1, line 12; Listing 2, lines 21-24).

The observer satisfies the :class:`~repro.gpu.kernel.StoreObserver`
protocol that :class:`~repro.gpu.kernel.BlockContext` consults on every
``st``.
"""

from __future__ import annotations

import numpy as np

from repro.core.checksum import BlockChecksumState, ChecksumSet
from repro.gpu.kernel import BlockContext


class LPRegionObserver:
    """Per-block checksum accumulation over protected stores.

    Parameters
    ----------
    cset:
        The checksum lanes protecting the region.
    ctx:
        The block's execution context; checksum-update ALU work is
        charged here (the per-store overhead of Section IV-B).
    protected:
        Buffer names whose stores the region protects.
    charge_float_conversion:
        Whether to charge the float→ordered-int conversion op on every
        update (the parity lane's Fig. 2 conversion). The functional
        conversion always happens; only its cost is configurable, so an
        integer-only kernel is not billed for it.
    """

    def __init__(
        self,
        cset: ChecksumSet,
        ctx: BlockContext,
        protected: frozenset[str],
        charge_float_conversion: bool = True,
    ) -> None:
        self._ctx = ctx
        self.protected = protected
        self.state: BlockChecksumState = cset.new_block_state(ctx.n_threads)
        self._ops_per_update = cset.ops_per_update
        if not charge_float_conversion:
            self._ops_per_update = max(1, self._ops_per_update - 1)

    def on_store(self, values: np.ndarray, slots: np.ndarray) -> None:
        """Fold one store's values into the region checksums."""
        values = np.asarray(values).reshape(-1)
        self._ctx.alu(values.size * self._ops_per_update)
        self.state.update(values, slots)

    @property
    def n_values(self) -> int:
        """Store values folded so far in this region."""
        return self.state.n_values
