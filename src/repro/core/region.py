"""LP region state: the store observer attached to one thread block.

An LP region on the GPU is one thread block (Section IV-A). While the
block runs, every store to a *protected* buffer is intercepted by the
block's :class:`LPRegionObserver`, which folds the stored values into
per-thread checksum accumulators — the simulator's equivalent of the
``UpdateCheckSum(...)`` call the paper places after each persistent
store (Listing 1, line 12; Listing 2, lines 21-24).

The observer satisfies the :class:`~repro.gpu.kernel.StoreObserver`
protocol that :class:`~repro.gpu.kernel.BlockContext` consults on every
``st``.
"""

from __future__ import annotations

import numpy as np

from repro.core.checksum import (
    BatchChecksumState,
    BlockChecksumState,
    ChecksumSet,
)
from repro.gpu.kernel import BlockContext


class LPRegionObserver:
    """Per-block checksum accumulation over protected stores.

    Parameters
    ----------
    cset:
        The checksum lanes protecting the region.
    ctx:
        The block's execution context; checksum-update ALU work is
        charged here (the per-store overhead of Section IV-B).
    protected:
        Buffer names whose stores the region protects.
    charge_float_conversion:
        Whether to charge the float→ordered-int conversion op on every
        update (the parity lane's Fig. 2 conversion). The functional
        conversion always happens; only its cost is configurable, so an
        integer-only kernel is not billed for it.
    """

    def __init__(
        self,
        cset: ChecksumSet,
        ctx: BlockContext,
        protected: frozenset[str],
        charge_float_conversion: bool = True,
    ) -> None:
        self._ctx = ctx
        self.protected = protected
        self.state: BlockChecksumState = cset.new_block_state(ctx.n_threads)
        self._ops_per_update = cset.ops_per_update
        if not charge_float_conversion:
            self._ops_per_update = max(1, self._ops_per_update - 1)

    def on_store(self, values: np.ndarray, slots: np.ndarray) -> None:
        """Fold one store's values into the region checksums."""
        values = np.asarray(values).reshape(-1)
        self._ctx.alu(values.size * self._ops_per_update)
        self.state.update(values, slots)

    @property
    def n_values(self) -> int:
        """Store values folded so far in this region."""
        return self.state.n_values


class BatchRegionObserver:
    """Checksum accumulation for a *group* of regions at once.

    The vectorized counterpart of :class:`LPRegionObserver`, attached to
    a :class:`~repro.gpu.batch.BatchBlockContext` by the LP wrapper's
    batched path: one :class:`~repro.core.checksum.BatchChecksumState`
    holds every block's per-thread accumulators, and a single batched
    store folds all of them with one scatter per lane. The checksum
    work charged per folded value is identical to the serial observer's,
    so group totals match per-block accumulation exactly.
    """

    def __init__(
        self,
        cset: ChecksumSet,
        bctx,
        protected: frozenset[str],
        charge_float_conversion: bool = True,
    ) -> None:
        self._ctx = bctx
        self.protected = protected
        self.state: BatchChecksumState = BatchChecksumState(
            cset, bctx.n_threads, bctx.n_blocks_in_batch
        )
        self._ops_per_update = cset.ops_per_update
        if not charge_float_conversion:
            self._ops_per_update = max(1, self._ops_per_update - 1)

    def on_store(
        self,
        values: np.ndarray,
        slots: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Fold one batched store into every covered region's checksums."""
        values = np.asarray(values)
        if mask is not None:
            n = int(np.count_nonzero(
                np.broadcast_to(np.asarray(mask, dtype=bool), values.shape)
            ))
        else:
            n = values.size
        self._ctx.alu(n * self._ops_per_update)
        self.state.update(values, slots, mask)

    @property
    def n_values(self) -> int:
        """Store values folded so far across the group."""
        return self.state.n_values
