"""Crash recovery: validation and eager re-execution of failed regions.

After a crash, the recovery kernel (same thread dimensions as the
original, Section IV-A) validates each thread block: it recomputes the
block's checksum from the data found in memory and compares it with the
checksum table. Blocks that fail — because data lines, checksum lines,
or both were lost — are re-executed by the recovery function (for
idempotent blocks, the original kernel itself).

The paper adopts **eager recovery**: recover immediately and
completely, guaranteeing forward progress; the expense is acceptable
because recovery is the rare case. :class:`RecoveryManager.recover`
implements that loop, including the re-validation pass that confirms a
consistent state, and keeps retrying (bounded) if a crash during
recovery is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import LazyPersistentKernel
from repro.errors import RecoveryError
from repro.gpu.device import Device, LaunchResult
from repro.gpu.kernel import ExecMode


@dataclass
class ValidationReport:
    """Outcome of one validation launch."""

    n_blocks: int
    failed_blocks: list[int]
    missing_checksums: list[int]
    launch: LaunchResult

    @property
    def n_failed(self) -> int:
        """Regions needing recovery."""
        return len(self.failed_blocks)

    @property
    def all_passed(self) -> bool:
        """True when every region's checksum validated."""
        return not self.failed_blocks


@dataclass
class RecoveryReport:
    """Outcome of a full eager-recovery cycle."""

    initial: ValidationReport
    recovered_blocks: list[int] = field(default_factory=list)
    final: ValidationReport | None = None
    recovery_launches: list[LaunchResult] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when the final validation passed everywhere."""
        return self.final is not None and self.final.all_passed

    @property
    def total_recovery_cycles(self) -> float:
        """Modeled cycles spent in validation + re-execution."""
        cycles = self.initial.launch.total_cycles
        cycles += sum(lr.total_cycles for lr in self.recovery_launches)
        if self.final is not None:
            cycles += self.final.launch.total_cycles
        return cycles


class RecoveryManager:
    """Drives post-crash validation and eager recovery for one kernel."""

    def __init__(self, device: Device, kernel: LazyPersistentKernel) -> None:
        self.device = device
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def validate(self, block_ids: list[int] | None = None) -> ValidationReport:
        """Launch the validation pass over all (or given) blocks."""
        self.kernel.reset_validation()
        launch = self.device.launch(
            self.kernel, block_ids=block_ids, mode=ExecMode.VALIDATE
        )
        return ValidationReport(
            n_blocks=len(launch.completed_blocks),
            failed_blocks=sorted(self.kernel.validation_failures),
            missing_checksums=sorted(self.kernel.missing_checksums),
            launch=launch,
        )

    def recover(self, max_rounds: int = 3) -> RecoveryReport:
        """Eager recovery: validate, re-execute failures, re-validate.

        Re-validation after re-execution confirms forward progress; a
        handful of rounds bounds pathological cases (e.g. fault
        injection racing recovery in tests). Raises
        :class:`~repro.errors.RecoveryError` if the state will not
        converge.
        """
        if self.device.crashed:
            self.device.restart()

        initial = self.validate()
        report = RecoveryReport(initial=initial)
        failed = initial.failed_blocks

        for _ in range(max_rounds):
            if not failed:
                break
            launch = self.device.launch(
                self.kernel, block_ids=failed, mode=ExecMode.RECOVER
            )
            report.recovery_launches.append(launch)
            report.recovered_blocks.extend(failed)
            check = self.validate(block_ids=failed)
            failed = check.failed_blocks

        report.final = self.validate()
        if not report.final.all_passed:
            raise RecoveryError(
                f"recovery of {self.kernel.name!r} did not converge; "
                f"{report.final.n_failed} regions still failing"
            )
        return report
