"""Crash recovery: validation and eager re-execution of failed regions.

After a crash, the recovery kernel (same thread dimensions as the
original, Section IV-A) validates each thread block: it recomputes the
block's checksum from the data found in memory and compares it with the
checksum table. Blocks that fail — because data lines, checksum lines,
or both were lost — are re-executed by the recovery function (for
idempotent blocks, the original kernel itself).

The paper adopts **eager recovery**: recover immediately and
completely, guaranteeing forward progress; the expense is acceptable
because recovery is the rare case. :class:`RecoveryManager.recover`
implements that loop, including the re-validation pass that confirms a
consistent state, and keeps retrying (bounded) if a crash during
recovery is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import LazyPersistentKernel
from repro.errors import RecoveryError
from repro.gpu.device import Device, LaunchResult
from repro.gpu.kernel import ExecMode
from repro.obs import current as _recorder
from repro.obs.forensics import ForensicsReport, diagnose


@dataclass
class ValidationReport:
    """Outcome of one validation launch."""

    #: Blocks the validation was asked to cover (the full grid, or the
    #: failed subset during a recovery round) — not the completed count,
    #: which can be smaller if the validation launch itself crashed.
    n_blocks: int
    failed_blocks: list[int]
    missing_checksums: list[int]
    launch: LaunchResult
    #: Raw per-block diagnosis (reason, expected/found lanes) captured
    #: from the kernel's validation pass; input to forensics.
    failure_details: dict[int, dict] = field(default_factory=dict)
    #: NVM shard this validation is attributed to — 0 for the single
    #: mapped (or in-memory) heap, the shard index when a sharded
    #: heap's per-shard pipeline validates one shard's blocks.
    shard_id: int = 0

    @property
    def n_failed(self) -> int:
        """Regions needing recovery."""
        return len(self.failed_blocks)

    @property
    def all_passed(self) -> bool:
        """True when every region's checksum validated."""
        return not self.failed_blocks


@dataclass
class RecoveryReport:
    """Outcome of a full eager-recovery cycle."""

    initial: ValidationReport
    recovered_blocks: list[int] = field(default_factory=list)
    final: ValidationReport | None = None
    recovery_launches: list[LaunchResult] = field(default_factory=list)
    #: Structured per-failed-block diagnosis of the initial validation
    #: (None when the initial validation passed everywhere).
    forensics: ForensicsReport | None = None

    @property
    def recovered(self) -> bool:
        """True when the final validation passed everywhere."""
        return self.final is not None and self.final.all_passed

    @property
    def total_recovery_cycles(self) -> float:
        """Modeled cycles spent in validation + re-execution."""
        cycles = self.initial.launch.total_cycles
        cycles += sum(lr.total_cycles for lr in self.recovery_launches)
        if self.final is not None:
            cycles += self.final.launch.total_cycles
        return cycles


class RecoveryManager:
    """Drives post-crash validation and eager recovery for one kernel."""

    def __init__(self, device: Device, kernel: LazyPersistentKernel) -> None:
        self.device = device
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def validate(self, block_ids: list[int] | None = None,
                 shard_id: int = 0) -> ValidationReport:
        """Launch the validation pass over all (or given) blocks.

        ``shard_id`` tags the report (and its forensics) with the NVM
        shard it covers; the default 0 keeps single-heap reports
        unchanged.
        """
        rec = _recorder()
        self.kernel.reset_validation()
        with rec.trace.span(
            "lp.phase.validate", cat="lp", track="lp",
            kernel=self.kernel.name,
            blocks=len(block_ids) if block_ids is not None else "all",
        ):
            launch = self.device.launch(
                self.kernel, block_ids=block_ids, mode=ExecMode.VALIDATE
            )
        # n_blocks is the grid size *requested* for validation, not the
        # completed count — a crash during a recovery-round validation
        # must not shrink the denominator.
        report = ValidationReport(
            n_blocks=launch.requested_blocks,
            failed_blocks=sorted(self.kernel.validation_failures),
            missing_checksums=sorted(self.kernel.missing_checksums),
            launch=launch,
            failure_details=dict(self.kernel.failure_details),
            shard_id=shard_id,
        )
        if rec.metrics.active:
            rec.metrics.inc("lp.validate.blocks", report.n_blocks)
            rec.metrics.inc("lp.validate.failed", report.n_failed)
            rec.metrics.inc("lp.validate.missing_entries",
                            len(report.missing_checksums))
        if rec.trace.enabled and report.failed_blocks:
            rec.trace.instant(
                "lp.validation.failed", cat="lp", track="lp",
                n_failed=report.n_failed,
                missing=len(report.missing_checksums),
            )
        return report

    def recover(self, max_rounds: int = 3) -> RecoveryReport:
        """Eager recovery: validate, re-execute failures, re-validate.

        Re-validation after re-execution confirms forward progress; a
        handful of rounds bounds pathological cases (e.g. fault
        injection racing recovery in tests). Raises
        :class:`~repro.errors.RecoveryError` if the state will not
        converge.
        """
        rec = _recorder()
        if self.device.crashed:
            self.device.restart()

        initial = self.validate()
        report = RecoveryReport(initial=initial)
        failed = initial.failed_blocks
        if failed:
            report.forensics = diagnose(self.kernel, initial, self.device)
            if rec.trace.enabled:
                for failure in report.forensics.failures:
                    rec.trace.instant(
                        "forensics.block", cat="forensics",
                        track="forensics", **failure.to_dict(),
                    )

        for _ in range(max_rounds):
            if not failed:
                break
            with rec.trace.span(
                "lp.phase.recover", cat="lp", track="lp",
                kernel=self.kernel.name, blocks=len(failed),
            ):
                launch = self.device.launch(
                    self.kernel, block_ids=failed, mode=ExecMode.RECOVER
                )
            if rec.metrics.active:
                rec.metrics.inc("lp.recover.blocks", len(failed))
                rec.metrics.inc("lp.recover.rounds")
            report.recovery_launches.append(launch)
            report.recovered_blocks.extend(failed)
            check = self.validate(block_ids=failed)
            failed = check.failed_blocks

        report.final = self.validate()
        if not report.final.all_passed:
            raise RecoveryError(
                f"recovery of {self.kernel.name!r} did not converge; "
                f"{report.final.n_failed} regions still failing"
            )
        return report
