"""Thread-block fusion: enlarging LP regions (Section IV-A).

The paper notes LP regions "can be enlarged if needed, e.g. through
thread block fusion": merging F consecutive thread blocks into one LP
region trades checksum-table pressure (F× fewer entries, F× fewer
insertions) against recovery granularity (a failed region re-executes
F blocks' work).

:class:`FusedKernel` implements the transformation generically: the
fused launch has ``ceil(N / F)`` blocks; each fused block executes its
F constituent blocks back to back *sharing one execution context*, so
an attached LP observer accumulates one checksum across the whole fused
region and the checksum table is sized to the fused grid automatically.
"""

from __future__ import annotations

import math

from repro.errors import LaunchError
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig


class _SubBlockContext:
    """A view of a fused context posing as one constituent block.

    Everything (memory, tally, shared memory, LP observer, EP
    interceptor) is shared with the parent context; only the block
    identity differs. Implemented by delegation so any future context
    capability is inherited automatically.
    """

    def __init__(self, parent: BlockContext, inner_config: LaunchConfig,
                 block_id: int) -> None:
        object.__setattr__(self, "_parent", parent)
        object.__setattr__(self, "config", inner_config)
        object.__setattr__(self, "block_id", block_id)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_parent"), name)

    def __setattr__(self, name, value):
        if name in ("config", "block_id"):
            object.__setattr__(self, name, value)
        else:
            setattr(object.__getattribute__(self, "_parent"), name, value)

    # Geometry helpers must use the *inner* identity.
    @property
    def n_threads(self) -> int:
        return self.config.threads_per_block

    @property
    def tid(self):
        import numpy as np

        return np.arange(self.n_threads)

    @property
    def block_xy(self):
        return self.config.block_coords(self.block_id)

    def thread_xy(self):
        import numpy as np

        bx = self.config.block[0]
        t = np.arange(self.n_threads)
        return t % bx, t // bx


class FusedKernel(Kernel):
    """``factor`` consecutive blocks of ``inner`` fused into one region."""

    def __init__(self, inner: Kernel, factor: int) -> None:
        if factor < 1:
            raise LaunchError("fusion factor must be >= 1")
        self.inner = inner
        self.factor = factor
        self._inner_config = inner.launch_config()
        self.name = f"{inner.name}*fuse{factor}"
        self.protected_buffers = inner.protected_buffers
        self.idempotent = inner.idempotent

    def launch_config(self) -> LaunchConfig:
        fused_blocks = math.ceil(self._inner_config.n_blocks / self.factor)
        return LaunchConfig.linear(
            fused_blocks, self._inner_config.threads_per_block
        )

    def _constituents(self, fused_id: int) -> range:
        lo = fused_id * self.factor
        hi = min(lo + self.factor, self._inner_config.n_blocks)
        return range(lo, hi)

    def block_output_map(self, block_id: int):
        """Union of the constituent blocks' store-address slices."""
        import numpy as np

        merged: dict[str, list] = {}
        for inner_id in self._constituents(block_id):
            sub_map = self.inner.block_output_map(inner_id)
            if sub_map is None:
                return None
            for name, idx in sub_map.items():
                merged.setdefault(name, []).append(idx)
        return {name: np.concatenate(parts)
                for name, parts in merged.items()}

    def run_block(self, ctx: BlockContext) -> None:
        for inner_id in self._constituents(ctx.block_id):
            sub = _SubBlockContext(ctx, self._inner_config, inner_id)
            self.inner.run_block(sub)

    def validate_block(self, ctx: BlockContext) -> None:
        for inner_id in self._constituents(ctx.block_id):
            sub = _SubBlockContext(ctx, self._inner_config, inner_id)
            self.inner.validate_block(sub)

    def recover_block(self, ctx: BlockContext) -> None:
        for inner_id in self._constituents(ctx.block_id):
            sub = _SubBlockContext(ctx, self._inner_config, inner_id)
            self.inner.recover_block(sub)


def fuse_blocks(kernel: Kernel, factor: int) -> Kernel:
    """Fuse ``factor`` consecutive thread blocks into one LP region.

    ``factor=1`` returns the kernel unchanged.
    """
    if factor == 1:
        return kernel
    return FusedKernel(kernel, factor)
