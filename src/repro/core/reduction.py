"""Block-level checksum reduction: parallel (shuffle) vs sequential.

Implements the paper's Listings 3-4. At the end of an LP region every
thread holds per-lane checksum accumulators; they must be combined into
one checksum per lane for the whole thread block.

* :func:`reduce_parallel` — the Kepler+ path: five ``shfl_down`` rounds
  reduce each warp register-to-register; warp leaders deposit partial
  results in a 32-entry shared array; warp 0 reduces those with another
  shuffle round. ``O(log N)`` steps, no global-memory traffic.
* :func:`reduce_sequential` — the ablation of Table IV: every thread
  stages its accumulators through shared *and global* memory, and a
  single thread folds them in ``O(N)``. The added global traffic is why
  bandwidth-bound benchmarks (SPMV, SAD, HISTO) suffer most.

Both paths produce bit-identical lane values (the lanes are commutative
folds), which the test suite asserts. :func:`reduction_tally` returns
the same operation counts analytically, for the paper-scale benchmark
profiles; a test pins it against the functional paths' actual charges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.checksum import BlockChecksumState
from repro.core.config import ReductionMode
from repro.errors import ConfigError
from repro.gpu.costs import Tally
from repro.gpu.kernel import BlockContext
from repro.gpu.warp import WARP_SIZE

#: Bytes per checksum lane value.
LANE_BYTES = 8


def reduce_block(
    state: BlockChecksumState,
    mode: ReductionMode,
    ctx: BlockContext | None = None,
) -> np.ndarray:
    """Reduce a region's per-thread accumulators to final lane values.

    When ``ctx`` is given, the reduction's work is charged to the
    block's tally through the context's real primitives (shuffles,
    shared traffic, syncthreads), so the cost emerges from execution
    rather than being asserted.
    """
    if mode is ReductionMode.PARALLEL_SHUFFLE:
        return reduce_parallel(state, ctx)
    if mode is ReductionMode.SEQUENTIAL_MEMORY:
        return reduce_sequential(state, ctx)
    raise ConfigError(f"unknown reduction mode: {mode}")


def reduce_parallel(
    state: BlockChecksumState, ctx: BlockContext | None = None
) -> np.ndarray:
    """Listing 3's ``blockReduceSum`` over every commutative lane."""
    if not state.cset.commutative:
        raise ConfigError(
            "parallel reduction requires commutative checksum lanes"
        )
    n_threads = state.n_threads
    n_warps = math.ceil(n_threads / WARP_SIZE)
    lanes_out = np.empty(state.cset.n_lanes, dtype=np.uint64)

    for lane, pos in enumerate(state.comm_lane_positions):
        func = state.cset.functions[pos]
        vals = state.per_thread[:, lane].copy()

        # Step 1: warp-level butterfly (Listing 4), all warps at once.
        vals = _warp_butterfly(vals, func, ctx)

        # Step 2: warp leaders deposit into a 32-entry shared array.
        leaders = np.arange(n_warps) * WARP_SIZE
        partials = np.zeros(WARP_SIZE, dtype=np.uint64)
        partials[:n_warps] = vals[leaders]
        if ctx is not None:
            shared = ctx.shared.alloc(f"__lp_red_{pos}", WARP_SIZE, np.uint64)
            ctx.shared.write(f"__lp_red_{pos}", slice(0, n_warps),
                             partials[:n_warps])
            ctx.syncthreads()
            partials = shared.copy()
            ctx.shared.traffic_bytes += n_warps * LANE_BYTES  # warp-0 reads

        # Step 3: warp 0 reduces the partials with one more butterfly.
        final = _warp_butterfly(partials, func, ctx)
        lanes_out[pos] = final[0]

    for pos, seq_state in state.seq_lane_states.items():
        lanes_out[pos] = seq_state
    return lanes_out


def reduce_sequential(
    state: BlockChecksumState, ctx: BlockContext | None = None
) -> np.ndarray:
    """Pre-Kepler reduction through shared and global memory.

    Each thread stages its accumulators out to memory; thread 0 walks
    them sequentially. Functionally equivalent to the parallel path.
    """
    n_threads = state.n_threads
    n_comm = len(state.comm_lane_positions)
    staged_bytes = n_threads * LANE_BYTES * n_comm

    if ctx is not None and n_comm:
        # Stage through shared memory (write by all, read by thread 0)
        # and through global memory, as the paper's no-shuffle variant
        # does; the global staging buffer is pure scratch.
        ctx.charge_shared(2 * staged_bytes)
        ctx.tally.global_write_bytes += staged_bytes
        ctx.tally.global_read_bytes += staged_bytes
        ctx.syncthreads()
        ctx.alu(n_threads * n_comm)  # thread 0's sequential folds

    lanes_out = np.empty(state.cset.n_lanes, dtype=np.uint64)
    for lane, pos in enumerate(state.comm_lane_positions):
        func = state.cset.functions[pos]
        acc = func.identity
        # Thread 0 folds every thread's accumulator, in thread order.
        acc = func.fold_all(state.per_thread[:, lane], start=acc)
        lanes_out[pos] = acc
    for pos, seq_state in state.seq_lane_states.items():
        lanes_out[pos] = seq_state
    return lanes_out


def _warp_butterfly(vals, func, ctx):
    """Five ``shfl_down`` rounds (Listing 4) over a thread vector.

    Matches CUDA's canonical ``val += __shfl_down_sync(...)`` idiom:
    lanes whose source falls off the warp receive their own value back
    and self-combine, which corrupts *their* registers but never
    propagates down to lane 0's result — exactly as on hardware.
    """
    offset = WARP_SIZE // 2
    while offset > 0:
        if ctx is not None:
            shifted = ctx.shfl_down(vals, offset)
            ctx.alu(vals.shape[0])  # the combine op per lane
        else:
            from repro.gpu.warp import shfl_down

            shifted = shfl_down(vals, offset)
        vals = func.combine(vals, shifted)
        offset //= 2
    return vals


# ---------------------------------------------------------------------------
# Analytic costs for the paper-scale profiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReductionCost:
    """Per-block operation counts of one reduction."""

    alu_ops: float
    shuffle_ops: float
    shared_bytes: float
    global_bytes: float
    syncthreads: float


def reduction_tally(
    mode: ReductionMode, n_threads: int, n_comm_lanes: int
) -> ReductionCost:
    """Operation counts one block's reduction generates.

    Mirrors exactly what :func:`reduce_parallel` /
    :func:`reduce_sequential` charge through a context; the agreement is
    pinned by a test so the analytic benchmark profiles cannot drift
    from the functional implementation.
    """
    if n_comm_lanes == 0:
        return ReductionCost(0.0, 0.0, 0.0, 0.0, 0.0)
    n_warps = math.ceil(n_threads / WARP_SIZE)
    steps = int(math.log2(WARP_SIZE))
    if mode is ReductionMode.PARALLEL_SHUFFLE:
        per_lane_shuffles = steps * n_threads + steps * WARP_SIZE
        per_lane_alu = per_lane_shuffles  # one combine per shuffle
        per_lane_shared = 2 * n_warps * LANE_BYTES
        return ReductionCost(
            alu_ops=float(n_comm_lanes * per_lane_alu),
            shuffle_ops=float(n_comm_lanes * per_lane_shuffles),
            shared_bytes=float(n_comm_lanes * per_lane_shared),
            global_bytes=0.0,
            syncthreads=float(n_comm_lanes),
        )
    if mode is ReductionMode.SEQUENTIAL_MEMORY:
        staged = n_threads * LANE_BYTES * n_comm_lanes
        return ReductionCost(
            alu_ops=float(n_threads * n_comm_lanes),
            shuffle_ops=0.0,
            shared_bytes=float(2 * staged),
            global_bytes=float(2 * staged),
            syncthreads=1.0,
        )
    raise ConfigError(f"unknown reduction mode: {mode}")


def apply_reduction_tally(tally: Tally, cost: ReductionCost, n_blocks: int = 1) -> None:
    """Add ``n_blocks`` blocks' worth of reduction cost to a tally."""
    tally.alu_ops += cost.alu_ops * n_blocks
    tally.shuffle_ops += cost.shuffle_ops * n_blocks
    tally.shared_bytes += cost.shared_bytes * n_blocks
    tally.global_read_bytes += cost.global_bytes / 2 * n_blocks
    tally.global_write_bytes += cost.global_bytes / 2 * n_blocks
    tally.syncthreads += cost.syncthreads * n_blocks
