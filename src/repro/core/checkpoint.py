"""Periodic checkpointing around Lazy Persistency (Section IV-A).

LP alone leaves one loose end: "validation and recovery may affect
arbitrarily old regions due to the lack of guarantee that old regions
persisted successfully. To avoid this, we can combine periodic
checkpointing or periodic whole-cache flushing. With such mechanisms,
only regions newer than the checkpoint need to be validated."

:class:`CheckpointManager` implements exactly that: it tracks the
LP-instrumented kernels launched since the last checkpoint; a
checkpoint is a whole-cache drain (every dirty line — data and checksum
tables alike — reaches NVM, so everything older is unconditionally
durable); crash recovery validates and re-executes only the
post-checkpoint epoch.

:func:`optimal_checkpoint_interval` provides the interval selection the
paper alludes to ("the interval period can be selected based on
probability of crashes and recovery time to achieve a certain MTBF or
availability target") via the classic Young/Daly first-order optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.runtime import LazyPersistentKernel
from repro.errors import RecoveryError
from repro.gpu.device import Device


@dataclass
class EpochRecord:
    """Recovery outcome for one kernel of the open epoch."""

    kernel_name: str
    report: RecoveryReport


class CheckpointManager:
    """Bounds LP's validation window with periodic whole-cache drains."""

    def __init__(self, device: Device) -> None:
        self.device = device
        #: Kernels launched since the last checkpoint, in launch order.
        self._epoch: list[LazyPersistentKernel] = []
        #: Completed checkpoints (drain events) so far.
        self.checkpoints_taken = 0
        #: NVM lines written by checkpoints (their cost).
        self.checkpoint_lines = 0

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def launch(self, kernel: LazyPersistentKernel, **launch_kwargs):
        """Launch an LP kernel inside the current epoch."""
        result = self.device.launch(kernel, **launch_kwargs)
        self._epoch.append(kernel)
        return result

    def checkpoint(self) -> int:
        """Drain the persistence domain and close the epoch.

        Everything launched before this point is now unconditionally
        durable and will never be validated again. Returns the number
        of lines the drain wrote (the checkpoint's cost).
        """
        lines = self.device.drain()
        self.checkpoints_taken += 1
        self.checkpoint_lines += lines
        self._epoch.clear()
        return lines

    @property
    def epoch_kernels(self) -> list[LazyPersistentKernel]:
        """Kernels whose regions a crash right now could affect."""
        return list(self._epoch)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> list[EpochRecord]:
        """Recover only the open epoch, oldest kernel first.

        Kernels are recovered in launch order so that a later kernel's
        inputs (a prior kernel's outputs) are consistent before its own
        regions re-execute. Pre-checkpoint state needs nothing — the
        drain made it durable.
        """
        if self.device.crashed:
            self.device.restart()
        records = []
        for kernel in self._epoch:
            manager = RecoveryManager(self.device, kernel)
            report = manager.recover()
            if not report.recovered:  # pragma: no cover - recover raises
                raise RecoveryError(f"epoch recovery failed at {kernel.name}")
            records.append(EpochRecord(kernel.name, report))
        return records


@dataclass(frozen=True)
class CheckpointPolicy:
    """Derived checkpointing parameters for an availability target."""

    interval_cycles: float
    checkpoint_cost_cycles: float
    mtbf_cycles: float
    expected_overhead: float

    @property
    def availability(self) -> float:
        """Fraction of time doing useful work under this policy."""
        return 1.0 / (1.0 + self.expected_overhead)


def optimal_checkpoint_interval(
    checkpoint_cost_cycles: float, mtbf_cycles: float
) -> CheckpointPolicy:
    """Young/Daly first-order optimal checkpoint interval.

    ``interval* = sqrt(2 * C * MTBF)``: the point where the amortized
    checkpoint cost (``C / interval``) equals the expected re-execution
    loss (``interval / (2 * MTBF)``). The expected overhead at the
    optimum is ``sqrt(2C/MTBF)`` to first order.
    """
    if checkpoint_cost_cycles <= 0 or mtbf_cycles <= 0:
        raise ValueError("checkpoint cost and MTBF must be positive")
    interval = math.sqrt(2.0 * checkpoint_cost_cycles * mtbf_cycles)
    overhead = (checkpoint_cost_cycles / interval
                + interval / (2.0 * mtbf_cycles))
    return CheckpointPolicy(
        interval_cycles=interval,
        checkpoint_cost_cycles=checkpoint_cost_cycles,
        mtbf_cycles=mtbf_cycles,
        expected_overhead=overhead,
    )
