"""Configuration of a Lazy Persistency (LP) deployment on the GPU.

This module defines the axes of the design space that the paper
characterizes (Section IV):

* which checksum function(s) protect each LP region
  (:class:`ChecksumKind`),
* how per-thread checksums are reduced to one value per thread block
  (:class:`ReductionMode` — ``shfl_down`` parallel reduction vs. a
  sequential reduction staged through shared/global memory),
* where the per-block checksums are stored (:class:`TableKind` —
  quadratic-probing hash table, cuckoo hash table, or the paper's
  hash-table-less *global array*),
* whether table insertion uses a lock or a lock-free atomic protocol
  (:class:`LockMode`), and
* whether the insertion primitives are real atomic instructions or the
  plain load/store emulation of the paper's ablation
  (:class:`AtomicMode`).

A fully-specified point in the design space is an :class:`LPConfig`.
The paper's final recommendation — global array + shuffle reduction +
lock-free + modular and parity checksums together — is available as
:func:`LPConfig.paper_best`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import ConfigError


class ChecksumKind(enum.Enum):
    """Checksum function protecting an LP region.

    The paper evaluates three candidates (Section IV-B):

    * ``MODULAR`` — store values are added modulo the word size.
    * ``PARITY``  — store values are XORed together; floating-point data
      is first converted to an *ordered integer* (Fig. 2).
    * ``ADLER32`` — the zlib checksum; rejected by the paper as too
      expensive, and additionally order-sensitive, so it cannot use the
      parallel reduction. It is kept for completeness and comparisons.
    """

    MODULAR = "modular"
    PARITY = "parity"
    ADLER32 = "adler32"

    @property
    def commutative(self) -> bool:
        """Whether the fold is order-insensitive (reducible in parallel)."""
        return self is not ChecksumKind.ADLER32


class ReductionMode(enum.Enum):
    """How per-thread checksums are combined into a per-block checksum.

    ``PARALLEL_SHUFFLE`` models the Kepler+ ``__shfl_down_sync`` warp
    reduction followed by a shared-memory stage (Listings 3-4): ``O(log
    N)`` steps, register-to-register, no global-memory traffic.

    ``SEQUENTIAL_MEMORY`` models the pre-Kepler approach the paper uses
    as its ablation (Table IV): every thread stages its checksum through
    shared and global memory and a single thread folds them in ``O(N)``,
    which adds memory traffic proportional to the block size.
    """

    PARALLEL_SHUFFLE = "shuffle"
    SEQUENTIAL_MEMORY = "sequential"


class TableKind(enum.Enum):
    """Organization of the per-block checksum store."""

    QUADRATIC = "quadratic"
    CUCKOO = "cuckoo"
    GLOBAL_ARRAY = "global_array"

    @property
    def is_hash_table(self) -> bool:
        """True for the collision-prone hash tables of Section IV-C."""
        return self is not TableKind.GLOBAL_ARRAY


class LockMode(enum.Enum):
    """Concurrency control for checksum-table insertion (Table III)."""

    LOCK_FREE = "lock_free"
    LOCK_BASED = "lock_based"


class AtomicMode(enum.Enum):
    """Whether insertions use hardware atomics (Section IV-D-3).

    ``EMULATED`` replaces ``atomicCAS``/``atomicExch`` with plain
    load-compare-store / temporary-variable-swap sequences, reproducing
    the paper's ablation in which overheads *increase* without atomics.
    """

    HARDWARE = "hardware"
    EMULATED = "emulated"


#: Checksum pairs recommended by the paper for a < 1e-12 false-negative
#: rate (Section IV-B).
PAPER_CHECKSUM_PAIR: tuple[ChecksumKind, ChecksumKind] = (
    ChecksumKind.MODULAR,
    ChecksumKind.PARITY,
)


@dataclass(frozen=True)
class LPConfig:
    """One point in the GPU Lazy Persistency design space.

    Parameters
    ----------
    checksums:
        Checksum functions computed simultaneously over every persistent
        store in a region. Each adds a *lane* to the reduction and a
        word to every table entry.
    table:
        Checksum-store organization.
    locks:
        Lock-based vs. lock-free insertion.
    reduction:
        Parallel (shuffle) vs. sequential (through-memory) reduction.
    atomics:
        Hardware atomics vs. the plain load/store emulation ablation.
    quad_target_load_factor:
        Sizing target for the quadratic-probing table. The paper notes
        quadratic probing degrades past ~70 % occupancy.
    cuckoo_target_load_factor:
        Combined (both tables) sizing target for cuckoo hashing; the
        paper keeps it under 50 %.
    ordered_int_parity:
        Convert floating-point store values to ordered integers before
        XOR (Fig. 2). Disabled only for integer-only kernels, where the
        conversion is a no-op anyway.
    """

    checksums: tuple[ChecksumKind, ...] = PAPER_CHECKSUM_PAIR
    table: TableKind = TableKind.GLOBAL_ARRAY
    locks: LockMode = LockMode.LOCK_FREE
    reduction: ReductionMode = ReductionMode.PARALLEL_SHUFFLE
    atomics: AtomicMode = AtomicMode.HARDWARE
    quad_target_load_factor: float = 0.70
    cuckoo_target_load_factor: float = 0.45
    ordered_int_parity: bool = True

    def __post_init__(self) -> None:
        if not self.checksums:
            raise ConfigError("LPConfig requires at least one checksum kind")
        if len(set(self.checksums)) != len(self.checksums):
            raise ConfigError(f"duplicate checksum kinds: {self.checksums}")
        if self.reduction is ReductionMode.PARALLEL_SHUFFLE:
            bad = [c for c in self.checksums if not c.commutative]
            if bad:
                raise ConfigError(
                    "parallel (shuffle) reduction requires commutative "
                    f"checksums; {bad[0].value} is order-sensitive"
                )
        if not 0.0 < self.quad_target_load_factor <= 1.0:
            raise ConfigError(
                f"quad_target_load_factor out of (0, 1]: "
                f"{self.quad_target_load_factor}"
            )
        if not 0.0 < self.cuckoo_target_load_factor <= 1.0:
            raise ConfigError(
                f"cuckoo_target_load_factor out of (0, 1]: "
                f"{self.cuckoo_target_load_factor}"
            )
        if self.table is TableKind.GLOBAL_ARRAY and (
            self.locks is LockMode.LOCK_BASED
            or self.atomics is AtomicMode.EMULATED
        ):
            raise ConfigError(
                "the global array is collision- and race-free; lock-based "
                "or emulated-atomic variants of it do not exist in the "
                "design space"
            )

    @property
    def n_lanes(self) -> int:
        """Number of simultaneous checksum words per region."""
        return len(self.checksums)

    @property
    def uses_float_conversion(self) -> bool:
        """Whether parity lanes require the float→ordered-int conversion."""
        return self.ordered_int_parity and ChecksumKind.PARITY in self.checksums

    def with_(self, **changes: object) -> "LPConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Named design points used throughout the paper's evaluation.
    # ------------------------------------------------------------------

    @classmethod
    def paper_best(cls) -> "LPConfig":
        """Table V's ``array+shuffle`` scheme: the paper's final design."""
        return cls()

    @classmethod
    def naive_quadratic(cls) -> "LPConfig":
        """Figure 5's ``Quad``: quadratic probing, lock-free, shuffle."""
        return cls(table=TableKind.QUADRATIC)

    @classmethod
    def naive_cuckoo(cls) -> "LPConfig":
        """Figure 5's ``Cuckoo``: cuckoo hashing, lock-free, shuffle."""
        return cls(table=TableKind.CUCKOO)

    @classmethod
    def design_space(cls) -> Iterator["LPConfig"]:
        """Iterate every valid (table, locks, reduction, atomics) corner.

        The global array admits only its lock-free hardware-atomic form,
        matching Section V's argument that it is race-free by
        construction.
        """
        for table in TableKind:
            for reduction in ReductionMode:
                if table is TableKind.GLOBAL_ARRAY:
                    yield cls(table=table, reduction=reduction)
                    continue
                for locks in LockMode:
                    for atomics in AtomicMode:
                        yield cls(
                            table=table,
                            locks=locks,
                            reduction=reduction,
                            atomics=atomics,
                        )

    def describe(self) -> str:
        """Short human-readable label, e.g. ``quadratic+shfl+lock-free``."""
        parts = [self.table.value]
        parts.append(
            "shfl"
            if self.reduction is ReductionMode.PARALLEL_SHUFFLE
            else "noshfl"
        )
        if self.table.is_hash_table:
            parts.append(
                "lock-free" if self.locks is LockMode.LOCK_FREE else "lock"
            )
            if self.atomics is AtomicMode.EMULATED:
                parts.append("noatomic")
        return "+".join(parts)
