"""Eager Persistency: the flush-and-fence baseline LP replaces.

An extension of the reproduction (the paper argues against EP
qualitatively; the simulator lets the comparison be measured). See
:mod:`repro.ep.runtime` for the protocol and the caveats.
"""

from repro.ep.log import COMMITTED, EP_BUFFER_PREFIX, IN_FLIGHT, UndoLog
from repro.ep.runtime import (
    EagerPersistentKernel,
    EPRecoveryManager,
    EPRecoveryReport,
    EPRuntime,
)

__all__ = [
    "COMMITTED",
    "EP_BUFFER_PREFIX",
    "EPRecoveryManager",
    "EPRecoveryReport",
    "EPRuntime",
    "EagerPersistentKernel",
    "IN_FLIGHT",
    "UndoLog",
]
