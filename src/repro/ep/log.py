"""Per-region undo logs for the Eager Persistency baseline.

Eager Persistency (EP) is what Lazy Persistency competes against
(Sections I-II): before a region's first store to each location, the
*old* value is appended to a persistent undo log, the log lines are
flushed (``clwb``) and a persist barrier orders them **before** the
data write. A region is durable once its data lines are flushed and its
commit flag persists; on a crash, uncommitted regions are rolled back
from their logs and re-executed.

The log is fixed-capacity per region (one slab per thread block):

* ``entries``: ``capacity`` records of ``(global byte address, old
  value bits)`` per block, both ``uint64``;
* ``cursors``: per-block entry counts;
* ``commits``: per-block flags (0 = in flight, 1 = committed).

All three buffers are persistent and flushed with the same discipline
the scheme imposes on data — that is the write amplification LP avoids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RecoveryError, TableError
from repro.gpu.kernel import BlockContext
from repro.gpu.memory import Buffer, GlobalMemory
from repro.obs import current as _recorder

#: Commit-flag values.
IN_FLIGHT = np.uint64(0)
COMMITTED = np.uint64(1)

#: Buffer-name prefix for write-amplification attribution.
EP_BUFFER_PREFIX = "__ep_"


class UndoLog:
    """Fixed-capacity per-block undo log in persistent device memory."""

    def __init__(
        self,
        memory: GlobalMemory,
        name: str,
        n_blocks: int,
        capacity_per_block: int,
    ) -> None:
        if n_blocks <= 0 or capacity_per_block <= 0:
            raise TableError("undo log needs positive geometry")
        self.memory = memory
        self.name = name
        self.n_blocks = n_blocks
        self.capacity = capacity_per_block
        self.entries: Buffer = memory.alloc(
            f"{EP_BUFFER_PREFIX}{name}_entries",
            (n_blocks * capacity_per_block * 2,),
            np.uint64,
            persistent=True,
        )
        self.cursors: Buffer = memory.alloc(
            f"{EP_BUFFER_PREFIX}{name}_cursors", (n_blocks,), np.uint64,
            persistent=True,
        )
        self.commits: Buffer = memory.alloc(
            f"{EP_BUFFER_PREFIX}{name}_commits", (n_blocks,), np.uint64,
            persistent=True,
        )

    # ------------------------------------------------------------------
    # Device-side operations (run inside a block, fully costed)
    # ------------------------------------------------------------------

    def append(
        self,
        ctx: BlockContext,
        buf: Buffer,
        flat_idx: np.ndarray,
    ) -> None:
        """Log the *current* values at ``flat_idx`` before they change.

        Writes the records, flushes their lines and the cursor line, and
        issues the persist barrier that orders the log before the
        upcoming data store — the EP choreography per store.
        """
        block = ctx.block_id
        flat_idx = np.atleast_1d(np.asarray(flat_idx))
        n = flat_idx.size
        cursor = int(self.cursors.array[block])
        if cursor + n > self.capacity:
            raise TableError(
                f"undo log of block {block} overflows: "
                f"{cursor}+{n} > {self.capacity}"
            )

        old_vals = ctx.ld(buf, flat_idx)
        addrs = (np.uint64(buf.base_addr)
                 + flat_idx.astype(np.uint64)
                 * np.uint64(buf.dtype.itemsize))
        words = _value_bits(old_vals)

        base = (block * self.capacity + cursor) * 2
        slot_idx = base + np.arange(n) * 2
        ctx.st(self.entries, slot_idx, addrs)
        ctx.st(self.entries, slot_idx + 1, words)
        ctx.st(self.cursors, block, np.uint64(cursor + n))

        ctx.clwb(self.entries, np.concatenate([slot_idx, slot_idx + 1]))
        ctx.clwb(self.cursors, block)
        ctx.persist_barrier()
        metrics = _recorder().metrics
        if metrics.active:
            metrics.inc("ep.log.appends")
            metrics.inc("ep.log.entries", n)

    def commit(self, ctx: BlockContext) -> None:
        """Mark the region durable (its data must be flushed already)."""
        ctx.st(self.commits, ctx.block_id, COMMITTED)
        ctx.clwb(self.commits, ctx.block_id)
        ctx.persist_barrier()
        metrics = _recorder().metrics
        if metrics.active:
            metrics.inc("ep.log.commits")

    def reset_block(self, ctx: BlockContext, block: int) -> None:
        """Clear a block's log (after rollback, before re-execution)."""
        ctx.st(self.cursors, block, IN_FLIGHT)
        ctx.st(self.commits, block, IN_FLIGHT)
        ctx.clwb(self.cursors, block)
        ctx.clwb(self.commits, block)
        ctx.persist_barrier()

    # ------------------------------------------------------------------
    # Host-side recovery operations (read the post-crash image)
    # ------------------------------------------------------------------

    def is_committed(self, block: int) -> bool:
        """Whether a region's commit flag persisted."""
        return bool(self.commits.array[block] == COMMITTED)

    def rollback(self, block: int) -> int:
        """Apply a block's undo records in reverse; returns the count.

        Idempotent: re-applying after a crash during rollback converges
        to the same pre-region state, because the log itself is only
        cleared after the rollback completes.
        """
        rec = _recorder()
        with rec.trace.span("ep.rollback", cat="ep", track="ep",
                            block=block):
            cursor = int(self.cursors.array[block])
            entries = self.entries.array
            undone = 0
            for i in range(cursor - 1, -1, -1):
                base = (block * self.capacity + i) * 2
                addr = int(entries[base])
                bits = np.uint64(entries[base + 1])
                self._write_element(addr, bits)
                undone += 1
        if rec.metrics.active and undone:
            rec.metrics.inc("ep.rollback.records", undone)
        return undone

    def _write_element(self, byte_addr: int, bits: np.uint64) -> None:
        line = byte_addr // self.memory.line_size
        buf = self.memory._buffer_of_line(line)
        offset = byte_addr - buf.base_addr
        if offset % buf.dtype.itemsize:
            raise RecoveryError(
                f"undo record address {byte_addr} misaligned for "
                f"{buf.name!r}"
            )
        element = offset // buf.dtype.itemsize
        raw = np.uint64(bits).tobytes()[: buf.dtype.itemsize]
        value = np.frombuffer(raw, dtype=buf.dtype)[0]
        # Recovery writes go through the persistence domain like any
        # other store (they too persist lazily unless flushed).
        self.memory.write(buf, np.asarray([element]),
                          np.asarray([value], dtype=buf.dtype))


def _value_bits(values: np.ndarray) -> np.ndarray:
    """Raw little-endian bits of any ≤8-byte dtype, widened to u64."""
    values = np.ascontiguousarray(values)
    itemsize = values.dtype.itemsize
    if itemsize > 8:
        raise TableError(f"cannot log {values.dtype} values")
    padded = np.zeros((values.size, 8), dtype=np.uint8)
    padded[:, :itemsize] = values.view(np.uint8).reshape(values.size,
                                                         itemsize)
    return padded.reshape(-1).view("<u8").copy()
