"""Eager Persistency (EP): the baseline Lazy Persistency replaces.

EP achieves crash recoverability with *persist instructions*: undo
logging, ``clwb`` cache-line write-backs, and persist barriers ordering
log before data before commit (Section II's description of
strict/epoch persistency schemes). The paper contrasts LP against EP
throughout — EP needs no recovery recomputation but pays during normal
execution: log writes (write amplification), flush-induced loss of
locality, and barrier stalls.

NOTE: this subsystem is an *extension* of the reproduction. The paper
itself notes GPUs lack flush/barrier instructions ("EP requires cache
line flush and durable barrier instructions which are not supported in
current GPUs", §IV) and cites CPU results for EP's 20-40 % slowdowns;
here the primitives exist in the simulator, so the comparison the
paper argues qualitatively can be measured: see the ``ep_vs_lp``
experiment.

Protocol per LP-region-equivalent (one thread block):

1. every protected store is preceded by an undo-log append of the old
   values, flushed and fenced (``UndoLog.append``);
2. at block end, the block's data lines are flushed and fenced;
3. the commit flag is written, flushed and fenced.

Crash recovery (:class:`EPRecoveryManager`): committed regions need
nothing; uncommitted regions are rolled back from their logs and
re-executed. No checksum validation pass is needed — that is EP's
advantage, bought with the normal-execution overheads above.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ep.log import UndoLog
from repro.errors import ConfigError
from repro.gpu.device import Device, LaunchResult
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.gpu.memory import Buffer


class _EPInterceptor:
    """Logs old values ahead of every protected store (undo logging)."""

    def __init__(self, log: UndoLog, protected: frozenset[str]) -> None:
        self.log = log
        self.protected = protected
        #: (buffer name -> list of index arrays) touched by this region,
        #: flushed together at region end.
        self.touched: dict[str, list[np.ndarray]] = {}

    def before_store(self, ctx: BlockContext, buf: Buffer,
                     idx: np.ndarray) -> None:
        self.log.append(ctx, buf, idx)
        self.touched.setdefault(buf.name, []).append(np.array(idx))


class EagerPersistentKernel(Kernel):
    """A kernel wrapped with undo-log Eager Persistency."""

    #: ``clwb`` flush counts depend on cache state shared across blocks,
    #: which a worker's snapshot cannot reproduce — EP blocks must run
    #: serially against the real persistence domain.
    parallel_safe = False

    def __init__(self, inner: Kernel, log: UndoLog) -> None:
        if not inner.protected_buffers:
            raise ConfigError(
                f"kernel {inner.name!r} declares no protected buffers"
            )
        self.inner = inner
        self.log = log
        self.name = f"{inner.name}+ep[undo-log]"
        self.protected_buffers = inner.protected_buffers
        self.idempotent = inner.idempotent
        self._protected = frozenset(inner.protected_buffers)

    def launch_config(self) -> LaunchConfig:
        return self.inner.launch_config()

    def run_block(self, ctx: BlockContext) -> None:
        interceptor = _EPInterceptor(self.log, self._protected)
        ctx.ep_interceptor = interceptor
        self.inner.run_block(ctx)

        # Flush the region's data, fence, then commit (flushed+fenced).
        for buf_name, idx_arrays in interceptor.touched.items():
            all_idx = np.unique(np.concatenate(idx_arrays))
            ctx.clwb(buf_name, all_idx)
        ctx.persist_barrier()
        self.log.commit(ctx)

    def recover_block(self, ctx: BlockContext) -> None:
        """Re-execute after the manager rolled the region back."""
        self.log.reset_block(ctx, ctx.block_id)
        self.run_block(ctx)


class EPRuntime:
    """Host-side EP orchestration: sizes the log and wraps kernels."""

    def __init__(self, device: Device,
                 log_capacity_per_block: int | None = None) -> None:
        self.device = device
        self.log_capacity = log_capacity_per_block

    def instrument(self, kernel: Kernel,
                   log_name: str | None = None) -> EagerPersistentKernel:
        """Wrap ``kernel`` with EP, allocating its undo log."""
        cfg = kernel.launch_config()
        capacity = self.log_capacity
        if capacity is None:
            # Generous default: four logged values per thread.
            capacity = 4 * cfg.threads_per_block
        log = UndoLog(
            self.device.memory,
            log_name or kernel.name,
            cfg.n_blocks,
            capacity,
        )
        return EagerPersistentKernel(kernel, log)


@dataclass
class EPRecoveryReport:
    """Outcome of one EP recovery pass."""

    uncommitted_blocks: list[int]
    undo_records_applied: int
    relaunch: LaunchResult | None = None
    rolled_back: list[int] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """EP recovery always converges once the relaunch completes."""
        return True


class EPRecoveryManager:
    """Rolls back and re-executes uncommitted EP regions after a crash."""

    def __init__(self, device: Device,
                 kernel: EagerPersistentKernel) -> None:
        self.device = device
        self.kernel = kernel

    def recover(self) -> EPRecoveryReport:
        """Undo-log recovery: no validation pass, no checksum math."""
        if self.device.crashed:
            self.device.restart()
        log = self.kernel.log
        n_blocks = self.kernel.launch_config().n_blocks
        uncommitted = [b for b in range(n_blocks)
                       if not log.is_committed(b)]
        undone = 0
        for block in uncommitted:
            undone += log.rollback(block)
        report = EPRecoveryReport(
            uncommitted_blocks=uncommitted,
            undo_records_applied=undone,
            rolled_back=list(uncommitted),
        )
        if uncommitted:
            report.relaunch = self.device.launch(
                self.kernel, block_ids=uncommitted, mode=ExecMode.RECOVER
            )
        return report
