"""Recovery forensics: *why* did a block fail validation?

Validation tells you *that* a block's checksum did not match; this
module reconstructs *why*, per failed block:

* was the table entry missing entirely (the checksum store's own lines
  were lost) or present with mismatched lanes (data lines were lost)?
* what lane values were expected vs. found?
* which protected buffer's lines did the crash lose in this block's
  output slice?

The diagnosis cross-references three artifacts that already exist after
a crash → validate cycle: the kernel's recorded failure details, the
device's last :class:`~repro.gpu.memory.CrashReport`, and the kernel's
``block_output_map`` store-address slice (Listing 7) mapped down to
cache lines. Everything is duck-typed so ``repro.obs`` stays a leaf
package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Failure taxonomy: the table had no entry for the block's key at all.
MISSING_ENTRY = "missing-entry"
#: The entry existed but its lane values disagreed with the recompute.
LANE_MISMATCH = "lane-mismatch"


def _hex_lanes(lanes) -> list[str] | None:
    """Lane words as hex strings (JSON keeps 64-bit values exact)."""
    if lanes is None:
        return None
    return [f"0x{int(v):016x}" for v in np.asarray(lanes).ravel()]


@dataclass
class BufferLoss:
    """Crash losses attributed to one protected buffer for one block."""

    buffer: str
    #: Lines of this block's output slice that the crash lost.
    lines_lost: int
    #: Total lines the block's output slice spans (0 when unknown).
    lines_in_slice: int
    #: True when the loss was computed from the block's exact
    #: store-address slice; False for the buffer-wide fallback used
    #: when the kernel provides no ``block_output_map``.
    exact: bool

    def to_dict(self) -> dict:
        return {
            "buffer": self.buffer,
            "lines_lost": self.lines_lost,
            "lines_in_slice": self.lines_in_slice,
            "exact": self.exact,
        }


@dataclass
class BlockForensics:
    """Structured diagnosis of one failed block."""

    block_id: int
    reason: str  # MISSING_ENTRY or LANE_MISMATCH
    expected_lanes: list[str] | None
    found_lanes: list[str] | None
    losses: list[BufferLoss] = field(default_factory=list)
    #: NVM shard the failing block's validation covered (0 for the
    #: single-heap case, so pre-sharding reports keep their shape).
    shard_id: int = 0

    def to_dict(self) -> dict:
        return {
            "block_id": self.block_id,
            "reason": self.reason,
            "expected_lanes": self.expected_lanes,
            "found_lanes": self.found_lanes,
            "losses": [loss.to_dict() for loss in self.losses],
            "shard_id": self.shard_id,
        }

    def render_text(self) -> str:
        head = f"block {self.block_id}: {self.reason}"
        if self.reason == LANE_MISMATCH:
            head += (f" (expected {self.expected_lanes}, "
                     f"found {self.found_lanes})")
        lines = [head]
        for loss in self.losses:
            qual = "exactly" if loss.exact else "somewhere in"
            lines.append(
                f"  lost {loss.lines_lost}/{loss.lines_in_slice or '?'} "
                f"lines {qual} {loss.buffer}"
            )
        return "\n".join(lines)


@dataclass
class ForensicsReport:
    """The full post-validation diagnosis of a crashed run."""

    kernel: str
    table: str
    n_blocks: int
    failures: list[BlockForensics]
    #: Lines the crash lost in checksum-table buffers (``__lp_`` space)
    #: vs. application data — the first split to look at: table losses
    #: produce missing entries, data losses produce lane mismatches.
    table_lines_lost: int = 0
    data_lines_lost: int = 0
    lost_by_buffer: dict[str, int] = field(default_factory=dict)
    #: NVM shard the diagnosed validation covered (0 for single-heap).
    shard_id: int = 0

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "table": self.table,
            "n_blocks": self.n_blocks,
            "n_failed": self.n_failed,
            "table_lines_lost": self.table_lines_lost,
            "data_lines_lost": self.data_lines_lost,
            "lost_by_buffer": dict(sorted(self.lost_by_buffer.items())),
            "failures": [f.to_dict() for f in self.failures],
            "shard_id": self.shard_id,
        }

    def render_text(self) -> str:
        lines = [
            f"forensics: {self.kernel} [{self.table}] — "
            f"{self.n_failed}/{self.n_blocks} blocks failed validation",
            f"crash lost {self.data_lines_lost} data lines, "
            f"{self.table_lines_lost} checksum-table lines",
        ]
        by_reason: dict[str, int] = {}
        for f in self.failures:
            by_reason[f.reason] = by_reason.get(f.reason, 0) + 1
        if by_reason:
            split = ", ".join(f"{n} {r}" for r, n in sorted(by_reason.items()))
            lines.append(f"failure split: {split}")
        lines.extend(f.render_text() for f in self.failures)
        return "\n".join(lines)


def _block_losses(kernel, block_id: int, memory, lost_lines: set[int],
                  lost_by_buffer: dict[str, int]) -> list[BufferLoss]:
    """Attribute lost lines to one block's protected output slice."""
    inner = getattr(kernel, "inner", kernel)
    output_map = inner.block_output_map(block_id)
    if output_map is None:
        # No store-address slice: the best available attribution is
        # buffer-wide — report every protected buffer that lost lines.
        return [
            BufferLoss(buffer=name, lines_lost=n, lines_in_slice=0,
                       exact=False)
            for name, n in sorted(lost_by_buffer.items())
            if name in set(kernel.protected_buffers) and n
        ]
    losses = []
    for name in sorted(output_map):
        buf = memory[name]
        slice_lines = buf.lines_for_indices(np.asarray(output_map[name]))
        hit = sum(1 for line in slice_lines.tolist() if line in lost_lines)
        if hit:
            losses.append(BufferLoss(
                buffer=name, lines_lost=hit,
                lines_in_slice=int(slice_lines.size), exact=True,
            ))
    return losses


def diagnose(kernel, validation, device,
             table_buffer_prefix: str = "__lp_") -> ForensicsReport:
    """Build the forensics report for one failed validation.

    Parameters are duck-typed: ``kernel`` is the instrumented
    (LazyPersistent) kernel whose ``failure_details`` the validation
    launch filled in; ``validation`` is the
    :class:`~repro.core.recovery.ValidationReport`; ``device`` supplies
    global memory and, if a crash preceded validation, its
    ``last_crash_report``.
    """
    crash = getattr(device, "last_crash_report", None)
    lost_lines = set(crash.lost_lines) if crash is not None else set()
    lost_by_buffer = dict(crash.lost_by_buffer) if crash is not None else {}

    details = getattr(kernel, "failure_details", {})
    failures = []
    for block_id in validation.failed_blocks:
        info = details.get(block_id, {})
        reason = info.get("reason", MISSING_ENTRY
                          if block_id in validation.missing_checksums
                          else LANE_MISMATCH)
        failures.append(BlockForensics(
            block_id=block_id,
            reason=reason,
            expected_lanes=_hex_lanes(info.get("expected")),
            found_lanes=_hex_lanes(info.get("found")),
            losses=_block_losses(kernel, block_id, device.memory,
                                 lost_lines, lost_by_buffer),
            shard_id=getattr(validation, "shard_id", 0),
        ))

    table_lost = sum(
        n for name, n in lost_by_buffer.items()
        if name.startswith(table_buffer_prefix)
    )
    kind = getattr(getattr(kernel, "table", None), "kind", None)
    return ForensicsReport(
        kernel=kernel.name,
        table=getattr(kind, "value", "unknown"),
        n_blocks=validation.n_blocks,
        failures=failures,
        table_lines_lost=table_lost,
        data_lines_lost=sum(lost_by_buffer.values()) - table_lost,
        lost_by_buffer=lost_by_buffer,
        shard_id=getattr(validation, "shard_id", 0),
    )
