"""Sampling telemetry: the metrics registry as ring-buffered time series.

The flight recorder's :class:`~repro.obs.metrics.MetricsRegistry` is a
run-final artifact — one snapshot when the run ends. Long-running
consumers (the planned MegaKV service daemon, adaptive persistency-model
selection, a human watching a crash-test grind) need the *trajectory*:
counters as rates, gauges over time, histogram quantiles per window.

:class:`TelemetrySampler` periodically snapshots a registry into a
bounded ring of :class:`TelemetrySample` records, each holding the raw
counters, per-second rates against the previous sample, gauges, and
histogram summaries (with the p50/p95/p99 estimates the log-bucketed
:class:`~repro.obs.metrics.HistogramSummary` provides). Samples can
stream to a JSONL file — one flushed line each, so a SIGKILLed process
leaves every completed sample readable (`repro watch` tails exactly
this file) — and any sample renders to Prometheus text-exposition
format via :func:`to_prometheus`, linted dependency-free by
:func:`lint_prometheus`.

Sampling can be driven two ways, composable:

* a background daemon thread (:meth:`start` / :meth:`stop`), for live
  `repro run --telemetry`;
* explicit :meth:`sample` calls at known-good instants — the crash
  harness flushes one sample per round, so the series brackets every
  kill.

The sampler never locks the registry: the hot path stays lock-free,
and the sampler retries the (rare) snapshot that races a dict resize.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Default ring capacity: 10 minutes of 1 s samples.
DEFAULT_CAPACITY = 600

#: Attempts at snapshotting a registry that is being mutated.
_SNAPSHOT_RETRIES = 8


@dataclass
class TelemetrySample:
    """One instant of the registry, with rates vs the previous sample."""

    seq: int
    #: Seconds since the sampler was created.
    t: float
    #: Seconds since the previous sample (``None`` for the first).
    dt: float | None
    counters: dict[str, float]
    #: Per-second counter deltas vs the previous sample (absent series
    #: count from 0). Empty for the first sample — there is no window.
    rates: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t,
            "dt": self.dt,
            "counters": dict(self.counters),
            "rates": dict(self.rates),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class TelemetrySampler:
    """Periodic registry snapshots into a bounded time-series ring.

    ``gauge_providers`` are callables invoked (with the registry) right
    before each snapshot — the hook for state that is only observable
    by walking something (e.g. the shm segment registry) rather than
    pushed at an event site.
    """

    def __init__(self, metrics, interval: float = 1.0,
                 capacity: int = DEFAULT_CAPACITY,
                 jsonl_path: str | Path | None = None,
                 gauge_providers=(), clock=time.monotonic) -> None:
        self.metrics = metrics
        self.interval = float(interval)
        self.samples: deque[TelemetrySample] = deque(maxlen=capacity)
        self.gauge_providers = list(gauge_providers)
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._prev: TelemetrySample | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._jsonl_path = Path(jsonl_path) if jsonl_path else None
        self._jsonl = open(self._jsonl_path, "w") if self._jsonl_path \
            else None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _snapshot(self) -> dict:
        """Registry snapshot, retried across concurrent mutation."""
        for _ in range(_SNAPSHOT_RETRIES - 1):
            try:
                return self.metrics.snapshot()
            except RuntimeError:
                # the run thread resized a series dict mid-iteration;
                # the next try sees a consistent state
                continue
        return self.metrics.snapshot()

    def sample(self) -> TelemetrySample:
        """Take one sample now (thread-safe; callable from anywhere)."""
        with self._lock:
            for provider in self.gauge_providers:
                provider(self.metrics)
            snap = self._snapshot()
            now = self._clock() - self._epoch
            prev = self._prev
            rates: dict[str, float] = {}
            dt = None
            if prev is not None:
                dt = now - prev.t
                if dt > 0:
                    for key, value in snap["counters"].items():
                        delta = value - prev.counters.get(key, 0.0)
                        if delta:
                            rates[key] = delta / dt
            sample = TelemetrySample(
                seq=self._seq, t=now, dt=dt,
                counters=snap["counters"], rates=rates,
                gauges=snap["gauges"], histograms=snap["histograms"],
            )
            self._seq += 1
            self._prev = sample
            self.samples.append(sample)
            if self._jsonl is not None:
                self._jsonl.write(json.dumps(sample.to_dict()) + "\n")
                self._jsonl.flush()
            return sample

    def latest(self) -> TelemetrySample | None:
        return self.samples[-1] if self.samples else None

    def series(self, kind: str, name: str) -> list[tuple[float, float]]:
        """One series' trajectory: ``[(t, value), ...]``.

        ``kind`` is ``"counters"``, ``"rates"`` or ``"gauges"``; absent
        samples are skipped.
        """
        out = []
        for s in self.samples:
            store = getattr(s, kind)
            if name in store:
                out.append((s.t, store[name]))
        return out

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Start the daemon sampling thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry", daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread; by default flush one last sample."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample()

    def close(self) -> None:
        self.stop(final_sample=False)
        if self._jsonl is not None and not self._jsonl.closed:
            self._jsonl.close()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
        self.close()


def read_telemetry_jsonl(path: str | Path) -> list[dict]:
    """Load a sampler's JSONL stream (tolerating a torn final line)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                # a SIGKILL can tear the in-flight line; every earlier
                # line was flushed whole
                continue
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _split_series(key: str) -> tuple[str, dict[str, str]]:
    """``name{k=v,...}`` series key -> (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = {}
    for pair in inner.rstrip("}").split(","):
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _prom_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_SANITIZE.sub("_", name) + suffix


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None
                 = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_SANITIZE.sub("_", k)}="{v}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot (or sample) in text-exposition format.

    Accepts either a raw ``MetricsRegistry.snapshot()`` dict or a
    :class:`TelemetrySample` ``to_dict()``. Counters become
    ``repro_<name>_total`` counter families, gauges plain gauges, and
    histogram summaries Prometheus *summaries* (quantile-labelled
    samples plus ``_sum``/``_count``). Metric names are sanitized to
    the Prometheus grammar; series labels carry over.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(family: str, kind: str) -> None:
        if family not in typed:
            lines.append(f"# TYPE {family} {kind}")
            typed.add(family)

    for key in sorted(snapshot.get("counters", {})):
        name, labels = _split_series(key)
        family = _prom_name(name, "_total")
        emit_type(family, "counter")
        lines.append(f"{family}{_prom_labels(labels)} "
                     f"{_format_value(snapshot['counters'][key])}")

    for key in sorted(snapshot.get("gauges", {})):
        name, labels = _split_series(key)
        family = _prom_name(name)
        emit_type(family, "gauge")
        lines.append(f"{family}{_prom_labels(labels)} "
                     f"{_format_value(snapshot['gauges'][key])}")

    for key in sorted(snapshot.get("histograms", {})):
        name, labels = _split_series(key)
        hist = snapshot["histograms"][key]
        family = _prom_name(name)
        emit_type(family, "summary")
        for q, pkey in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if pkey in hist:
                qlabels = _prom_labels(labels, {"quantile": q})
                lines.append(f"{family}{qlabels} "
                             f"{_format_value(hist[pkey])}")
        lines.append(f"{family}_sum{_prom_labels(labels)} "
                     f"{_format_value(hist['sum'])}")
        lines.append(f"{family}_count{_prom_labels(labels)} "
                     f"{_format_value(hist['count'])}")

    return "\n".join(lines) + "\n" if lines else ""


_PROM_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|summary|histogram|untyped)$"
)
_PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)"
    r"( [0-9]+)?$"
)


def lint_prometheus(text: str) -> list[str]:
    """Line-level lint of text-exposition output; returns problems.

    Dependency-free on purpose (no ``prometheus_client`` in CI): checks
    line grammar, that every sample belongs to a ``# TYPE``-declared
    family, and that summary ``quantile`` labels are numbers in [0, 1].
    An empty list means the text parses clean.
    """
    problems: list[str] = []
    families: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = _PROM_TYPE_RE.match(line)
                if not m:
                    problems.append(f"line {lineno}: malformed TYPE line")
                    continue
                name, kind = m.group(1), m.group(2)
                if name in families:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name}")
                families[name] = kind
            # other comments (HELP, plain) are legal and unchecked
            continue
        m = _PROM_SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = m.group(1)
        base = name
        for suffix in ("_total", "_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                base = name[:-len(suffix)]
                break
        if base not in families and name not in families:
            problems.append(
                f"line {lineno}: sample {name} has no preceding TYPE")
            continue
        labels = m.group(2) or ""
        qm = re.search(r'quantile="([^"]*)"', labels)
        if qm:
            try:
                q = float(qm.group(1))
            except ValueError:
                q = -1.0
            if not 0.0 <= q <= 1.0:
                problems.append(
                    f"line {lineno}: quantile {qm.group(1)!r} outside "
                    "[0, 1]")
    return problems


# ----------------------------------------------------------------------
# Live view rendering (`repro watch`)
# ----------------------------------------------------------------------

def render_sample(sample: dict, top: int = 12) -> str:
    """Human one-screen rendering of one JSONL telemetry sample."""
    lines = [
        f"sample #{sample.get('seq', '?')}  "
        f"t={sample.get('t', 0.0):.2f}s"
        + (f"  dt={sample['dt']:.2f}s" if sample.get("dt") else ""),
    ]
    rates = sample.get("rates", {})
    if rates:
        lines.append("  rates (/s):")
        ranked = sorted(rates.items(), key=lambda kv: -abs(kv[1]))
        for key, value in ranked[:top]:
            lines.append(f"    {key:<56} {value:12.1f}")
    gauges = sample.get("gauges", {})
    if gauges:
        lines.append("  gauges:")
        for key in sorted(gauges)[:top]:
            lines.append(f"    {key:<56} {gauges[key]:12.3f}")
    hists = sample.get("histograms", {})
    if hists:
        lines.append("  histograms:")
        for key in sorted(hists)[:top]:
            h = hists[key]
            lines.append(
                f"    {key:<44} n={h.get('count', 0):<7} "
                f"p50={h.get('p50', 0.0):.3g} "
                f"p95={h.get('p95', 0.0):.3g} "
                f"p99={h.get('p99', 0.0):.3g}"
            )
    if not (rates or gauges or hists):
        lines.append("  (no activity yet)")
    return "\n".join(lines)
