"""Metrics registry for the flight recorder (`repro.obs`).

One registry of counters, gauges and histograms with *stable names* and
labels, replacing the pattern where every layer invents its own stats
object and every consumer hand-copies fields. Instrumented layers call
``inc``/``set_gauge``/``observe`` at the authoritative event site (a
line written back, a table probe colliding, a block completing); the
registry is then queryable as one JSON-serializable snapshot.

Naming convention
-----------------

``<layer>.<event>[.<unit>]`` with labels in braces, e.g.::

    nvm.writeback.lines{buffer=spmv_y,reason=eviction}
    table.insert.collisions{table=quadratic}
    engine.blocks.completed{engine=serial}

The full registry is documented in ``docs/observability.md``.

Engine invariance
-----------------

Launch engines are bit-identical on memory, write statistics and table
contents (``tests/gpu/test_engines.py``), so every *commutative*
counter must also be bit-identical across engines. The exemptions —
counters that legitimately depend on scheduling or wall clock — are
pinned here in :data:`ORDER_SENSITIVE_PREFIXES` and enforced through
:func:`commutative_view`, which is what the invariance tests compare.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Metric-name prefixes exempt from cross-engine bit-identity:
#:
#: * ``time.`` — wall-clock observations; never deterministic.
#: * ``engine.scheduling.`` — how an engine carved the launch into
#:   chunks/groups is the engine's own business (serial has no chunks).
#: * ``engine.shm.`` — shared-memory pool bookkeeping (segment bytes,
#:   worker busy fractions); only the parallel engine emits it.
#: * ``engine.slots.`` — slot-array merge timing; wall clock, and only
#:   the parallel engine's pooled path has slots at all.
#: * ``service.window.ms`` — the KV daemon's per-window wall clock.
#:
#: Everything else must match across serial/parallel/batched engines.
ORDER_SENSITIVE_PREFIXES = ("time.", "engine.scheduling.",
                            "engine.shm.", "engine.slots.",
                            "service.window.ms")

#: Labels whose *values* are identity, not semantics: the ``engine``
#: label names which engine ran the launch, and differs by construction
#: across an invariance comparison. :func:`commutative_view` normalizes
#: them to ``*``.
IDENTITY_LABELS = ("engine",)


def format_name(name: str, labels: dict) -> str:
    """Canonical ``name{k=v,...}`` series key with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


#: Geometric growth factor of the histogram buckets. Each bucket spans
#: an 8 % value range, so a quantile estimate is within ~4 % of the
#: true value (the bucket's geometric midpoint is reported).
BUCKET_BASE = 1.08

_LOG_BASE = math.log(BUCKET_BASE)


def _bucket_index(magnitude: float) -> int:
    """Log-spaced bucket id of a positive magnitude."""
    return math.floor(math.log(magnitude) / _LOG_BASE)


def _bucket_midpoint(index: int) -> float:
    """Geometric midpoint of bucket ``index`` — the reported estimate."""
    return BUCKET_BASE ** (index + 0.5)


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram series.

    Beyond count/sum/min/max/mean, observations land in log-spaced
    buckets (8 % relative width, constant memory in the value range)
    so :meth:`quantile` can estimate p50/p95/p99 without retaining the
    samples. Signed values are handled by keeping separate magnitude
    stores for negative, zero and positive observations.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    _zeros: int = 0
    _pos: dict[int, int] = field(default_factory=dict)
    _neg: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            idx = _bucket_index(value)
            self._pos[idx] = self._pos.get(idx, 0) + 1
        elif value < 0.0:
            idx = _bucket_index(-value)
            self._neg[idx] = self._neg.get(idx, 0) + 1
        else:
            self._zeros += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from the buckets.

        Walks the cumulative distribution — negative buckets from the
        most negative magnitude down, then zeros, then positive buckets
        up — and returns the owning bucket's geometric midpoint,
        clipped to the exact observed [min, max]. Empty summaries
        estimate 0.0.
        """
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0.0
        for idx in sorted(self._neg, reverse=True):
            seen += self._neg[idx]
            if seen > rank:
                return self._clip(-_bucket_midpoint(idx))
        seen += self._zeros
        if seen > rank:
            return self._clip(0.0)
        for idx in sorted(self._pos):
            seen += self._pos[idx]
            if seen > rank:
                return self._clip(_bucket_midpoint(idx))
        return self.maximum

    def _clip(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class NullMetrics:
    """The zero-cost default registry: drops everything."""

    active = False

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def snapshot(self) -> dict:
        """An empty snapshot (nothing was recorded)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}


class MetricsRegistry:
    """Live counters/gauges/histograms keyed by ``name{labels}``."""

    active = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a monotonic counter series."""
        key = format_name(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time gauge series."""
        self._gauges[format_name(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        key = format_name(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramSummary()
        hist.observe(value)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of one counter series (0.0 if never touched)."""
        return self._counters.get(format_name(name, labels), 0.0)

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serializable dict.

        Series are sorted by name, so two snapshots of identical
        recordings are identical objects (and identical JSON).
        """
        return {
            "counters": {k: self._counters[k]
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }


def _normalize_series(key: str) -> str:
    """Rewrite identity-label values to ``*`` in a series key."""
    if "{" not in key:
        return key
    name, _, inner = key.partition("{")
    labels = []
    for pair in inner.rstrip("}").split(","):
        k, _, v = pair.partition("=")
        labels.append(f"{k}=*" if k in IDENTITY_LABELS else f"{k}={v}")
    return f"{name}{{{','.join(labels)}}}"


def commutative_view(snapshot: dict) -> dict[str, float]:
    """The engine-invariant projection of a metrics snapshot.

    Returns the counter series that must be bit-identical across launch
    engines: order-sensitive prefixes (:data:`ORDER_SENSITIVE_PREFIXES`)
    are dropped, identity labels (:data:`IDENTITY_LABELS`) normalized.
    Gauges and histograms are excluded wholesale — gauges are
    point-in-time and histograms record wall-clock shapes.
    """
    out: dict[str, float] = {}
    for key, value in snapshot.get("counters", {}).items():
        if key.startswith(ORDER_SENSITIVE_PREFIXES):
            continue
        norm = _normalize_series(key)
        out[norm] = out.get(norm, 0.0) + value
    return dict(sorted(out.items()))


def diff_counters(before: dict, after: dict) -> dict[str, float]:
    """Counter deltas between two snapshots (series absent before = 0)."""
    prev = before.get("counters", {})
    out = {}
    for key, value in after.get("counters", {}).items():
        delta = value - prev.get(key, 0.0)
        if delta:
            out[key] = delta
    return dict(sorted(out.items()))
