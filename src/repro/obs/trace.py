"""Span/event tracing for the flight recorder (`repro.obs`).

The tracing API is deliberately tiny: a :class:`Tracer` owns a sink and
hands out *spans* (timed intervals) and *instants* (point events). The
default sink is :class:`NullSink`, whose ``enabled`` flag lets every
instrumentation site short-circuit before building any event — with
tracing off, the cost of an instrumented hot path is one attribute
check.

Events follow the Chrome trace-event format (the JSON flavour Perfetto
and ``chrome://tracing`` load directly): ``X`` complete events for
spans, ``i`` instants, ``C`` counters, and ``M`` metadata naming the
tracks. One whole crash → validate → recover → verify run exports as a
single loadable timeline via :func:`export_chrome_trace`.

Tracks (rendered as separate rows) are logical layers of the runtime,
not OS threads — the simulator is single-threaded; what the timeline
should separate is *which subsystem* time was spent in.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Logical track name -> Chrome trace ``tid``. Unknown tracks are
#: assigned ids after the last reserved one, in first-use order.
TRACKS = {
    "host": 0,
    "device": 1,
    "engine": 2,
    "lp": 3,
    "nvm": 4,
    "table": 5,
    "ep": 6,
    "megakv": 7,
    "forensics": 8,
    "harness": 9,
}

#: ``pid`` used for every event (one simulated device per trace).
TRACE_PID = 1


@dataclass
class TraceEvent:
    """One Chrome-trace event (a span, instant, counter or metadata)."""

    name: str
    cat: str
    ph: str
    ts: float
    pid: int = TRACE_PID
    tid: int = 0
    dur: float | None = None
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """The event as a Chrome trace-event JSON object."""
        out = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": round(self.ts, 3),
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = round(self.dur, 3)
        if self.ph == "i":
            out["s"] = "t"  # thread-scoped instant
        if self.args:
            out["args"] = self.args
        return out


class NullSink:
    """The zero-cost default: drops everything, reports itself disabled."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass


class MemorySink:
    """Collects events in memory for later export."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams events to a JSONL file, one flushed line per event.

    Built for processes that die by SIGKILL: a :class:`MemorySink`
    inside a harness child loses everything when the kill trigger
    fires, whereas every event this sink has emitted is already in the
    OS page cache (``flush()`` after each line) and survives the kill.
    The cost is a write syscall per event — this is a forensics sink
    for crash children, not a hot-path default.

    Lines are :meth:`TraceEvent.to_json` objects; :func:`read_jsonl_trace`
    loads them back.
    """

    enabled = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "w")

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_json()) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_jsonl_trace(path: str | Path) -> list[dict]:
    """Load a :class:`JsonlSink` file (tolerating a torn final line)."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                # a SIGKILL can tear the last line mid-write
                continue
    return events


class _Span:
    """Context manager measuring one span; emits on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._now()
        if exc_type is not None:
            self._args = dict(self._args, error=exc_type.__name__)
        self._tracer.sink.emit(TraceEvent(
            name=self._name, cat=self._cat, ph="X", ts=self._start,
            tid=self._tid, dur=end - self._start, args=self._args,
        ))


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans and instants; forwards events to one sink.

    Timestamps are wall-clock microseconds relative to the tracer's
    construction (Chrome traces are in microseconds).
    """

    def __init__(self, sink: NullSink | MemorySink | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self._epoch = time.perf_counter()
        self._extra_tracks: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Whether events are being recorded at all."""
        return self.sink.enabled

    def _now(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _tid(self, track: str) -> int:
        tid = TRACKS.get(track)
        if tid is not None:
            return tid
        tid = self._extra_tracks.get(track)
        if tid is None:
            tid = len(TRACKS) + len(self._extra_tracks)
            self._extra_tracks[track] = tid
        return tid

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "run", track: str = "host",
             **args):
        """A timed interval: ``with tracer.span("device.launch", ...):``.

        Returns a shared no-op context manager when disabled, so spans
        on hot-ish paths cost one flag check.
        """
        if not self.sink.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, self._tid(track), args)

    def instant(self, name: str, cat: str = "run", track: str = "host",
                **args) -> None:
        """A point event (e.g. a crash, a rehash, a forensics record)."""
        if not self.sink.enabled:
            return
        self.sink.emit(TraceEvent(
            name=name, cat=cat, ph="i", ts=self._now(),
            tid=self._tid(track), args=args,
        ))

    def counter(self, name: str, track: str = "host", **values) -> None:
        """A counter sample (rendered as a stacked area chart)."""
        if not self.sink.enabled:
            return
        self.sink.emit(TraceEvent(
            name=name, cat="counter", ph="C", ts=self._now(),
            tid=self._tid(track), args=values,
        ))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def all_tracks(self) -> dict[str, int]:
        """Every track this tracer can have emitted on."""
        out = dict(TRACKS)
        out.update(self._extra_tracks)
        return out


def export_chrome_trace(tracer: Tracer, extra: dict | None = None) -> dict:
    """Render a tracer's recorded events as a Chrome/Perfetto trace dict.

    Raises :class:`ValueError` for tracers without a recording sink
    (there is nothing to export from a :class:`NullSink`).
    """
    sink = tracer.sink
    if not isinstance(sink, MemorySink):
        raise ValueError(
            "export needs a recording sink (MemorySink); the tracer has "
            f"{type(sink).__name__}"
        )
    events: list[dict] = [
        {
            "name": "process_name", "cat": "__metadata", "ph": "M",
            "ts": 0, "pid": TRACE_PID, "tid": 0,
            "args": {"name": "repro LP runtime"},
        },
    ]
    for track, tid in sorted(tracer.all_tracks().items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "ts": 0, "pid": TRACE_PID, "tid": tid, "args": {"name": track},
        })
    events.extend(ev.to_json() for ev in sink.events)
    out = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if extra:
        out["otherData"] = extra
    return out


def write_chrome_trace(path: str | Path, tracer: Tracer,
                       extra: dict | None = None) -> Path:
    """Export a tracer's events to a Chrome-trace JSON file."""
    path = Path(path)
    path.write_text(json.dumps(export_chrome_trace(tracer, extra=extra),
                               indent=1) + "\n")
    return path
