"""``repro.obs`` — the flight recorder: tracing, metrics, forensics.

The runtime's observability layer has three pillars:

* :mod:`repro.obs.trace` — span/event tracing with Chrome-trace/Perfetto
  export, so one crash → validate → recover → verify run is a single
  loadable timeline.
* :mod:`repro.obs.metrics` — one registry of counters/gauges/histograms
  with stable names, replacing per-layer ad-hoc stats plumbing.
* :mod:`repro.obs.forensics` — structured per-block diagnosis when
  validation fails: missing entry vs. lane mismatch, expected vs. found
  lanes, which protected lines were lost.

Instrumented layers reach the recorder through :func:`current`, which
returns the installed :class:`Recorder` — by default one whose tracer
has a :class:`~repro.obs.trace.NullSink` and whose metrics are
:class:`~repro.obs.metrics.NullMetrics`, so every instrumentation site
costs one flag check when observability is off. Turn it on with::

    from repro import obs

    with obs.recording() as rec:
        device.launch(kernel)
        rec.write_trace("out.trace.json")
        snapshot = rec.metrics_snapshot()

This package is a *leaf*: it imports nothing from the rest of ``repro``
(forensics is duck-typed), so any layer — memory, tables, engines — can
import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.obs.forensics import BlockForensics, ForensicsReport, diagnose
from repro.obs.metrics import (
    IDENTITY_LABELS,
    ORDER_SENSITIVE_PREFIXES,
    MetricsRegistry,
    NullMetrics,
    commutative_view,
    diff_counters,
    format_name,
)
from repro.obs.schema import SchemaValidationError, load_schema, validate
from repro.obs.telemetry import (
    TelemetrySampler,
    TelemetrySample,
    lint_prometheus,
    read_telemetry_jsonl,
    render_sample,
    to_prometheus,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    export_chrome_trace,
    read_jsonl_trace,
    write_chrome_trace,
)

__all__ = [
    "BlockForensics",
    "ForensicsReport",
    "IDENTITY_LABELS",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullMetrics",
    "NullSink",
    "ORDER_SENSITIVE_PREFIXES",
    "Recorder",
    "SchemaValidationError",
    "TelemetrySample",
    "TelemetrySampler",
    "Tracer",
    "commutative_view",
    "current",
    "diagnose",
    "diff_counters",
    "export_chrome_trace",
    "format_name",
    "install",
    "lint_prometheus",
    "load_schema",
    "read_jsonl_trace",
    "read_telemetry_jsonl",
    "recording",
    "render_sample",
    "to_prometheus",
    "validate",
    "write_chrome_trace",
]


class Recorder:
    """One tracer plus one metrics registry — the flight recorder."""

    def __init__(self, tracer: Tracer | None = None,
                 metrics=None) -> None:
        self.trace = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else NullMetrics()
        #: Optional :class:`~repro.obs.telemetry.TelemetrySampler`
        #: attached by the CLI/harness; instrumentation never touches
        #: it, but checkpoints (e.g. a harness round boundary) call
        #: ``rec.sampler.sample()`` when one is present.
        self.sampler: TelemetrySampler | None = None

    @property
    def active(self) -> bool:
        """True when at least one pillar is recording."""
        return self.trace.enabled or self.metrics.active

    def metrics_snapshot(self) -> dict:
        """The metrics registry as one JSON-serializable snapshot."""
        return self.metrics.snapshot()

    def write_trace(self, path, **extra) -> Path:
        """Export the recorded trace as a Chrome-trace JSON file."""
        return write_chrome_trace(path, self.trace, extra=extra or None)


#: The zero-cost default recorder: null sink, null metrics.
NULL_RECORDER = Recorder()

_current: Recorder = NULL_RECORDER


def current() -> Recorder:
    """The recorder instrumentation sites report to right now."""
    return _current


def install(recorder: Recorder | None) -> Recorder:
    """Install a recorder globally; returns the previous one.

    Pass ``None`` to restore the null recorder. Prefer the
    :func:`recording` context manager, which restores automatically.
    """
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(trace: bool = True, metrics: bool = True):
    """Record everything inside the ``with`` block.

    Builds a live :class:`Recorder` (memory-sink tracer and/or metrics
    registry per the flags), installs it, and restores the previous
    recorder on exit — exception-safe, nestable.
    """
    recorder = Recorder(
        tracer=Tracer(MemorySink()) if trace else Tracer(),
        metrics=MetricsRegistry() if metrics else NullMetrics(),
    )
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
