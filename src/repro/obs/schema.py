"""Minimal JSON-Schema validation for the flight recorder's artifacts.

The trace and forensics exports are contracts: CI uploads them as
artifacts and downstream tooling (Perfetto, the profile CLI, tests)
loads them blind. The schemas are committed under
``src/repro/obs/schemas/`` and every export is validated against them
in the test suite.

The validator implements exactly the JSON-Schema subset those schemas
use (``type``, ``properties``, ``required``, ``items``, ``enum``,
``additionalProperties``, ``minimum``, ``oneOf``) so the check runs in
the dependency-free CI environment — no ``jsonschema`` install needed.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_DIR = Path(__file__).resolve().parent / "schemas"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaValidationError(ValueError):
    """An instance does not conform to its schema."""


def load_schema(name: str) -> dict:
    """Load a committed schema by file name (e.g. ``chrome_trace``)."""
    path = SCHEMA_DIR / f"{name}.schema.json"
    return json.loads(path.read_text())


def _type_ok(value, type_name: str) -> bool:
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    expected = _TYPES.get(type_name)
    if expected is None:
        raise SchemaValidationError(f"schema uses unsupported type {type_name!r}")
    return isinstance(value, expected)


def validate(instance, schema: dict, path: str = "$") -> None:
    """Validate ``instance`` against ``schema``; raise on the first error."""
    if "oneOf" in schema:
        errors = []
        for i, sub in enumerate(schema["oneOf"]):
            try:
                validate(instance, sub, path)
                break
            except SchemaValidationError as exc:
                errors.append(f"[{i}] {exc}")
        else:
            raise SchemaValidationError(
                f"{path}: matched no oneOf branch: {'; '.join(errors)}"
            )
        return

    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(instance, t) for t in types):
            raise SchemaValidationError(
                f"{path}: expected {stype}, got {type(instance).__name__}"
            )

    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaValidationError(
            f"{path}: {instance!r} not in enum {schema['enum']}"
        )

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        raise SchemaValidationError(
            f"{path}: {instance} below minimum {schema['minimum']}"
        )

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaValidationError(f"{path}: missing key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                validate(value, props[key], f"{path}.{key}")
            elif extra is False:
                raise SchemaValidationError(
                    f"{path}: unexpected key {key!r}"
                )
            elif isinstance(extra, dict):
                validate(value, extra, f"{path}.{key}")

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]")
