"""Per-block shared memory (``__shared__`` arrays).

Shared memory is on-chip scratch visible to all threads of one block.
It is volatile and block-private: allocations exist only for the
lifetime of one block's execution, which the simulator models by giving
every :class:`~repro.gpu.kernel.BlockContext` a fresh
:class:`SharedMemory`.

Traffic through shared memory is tallied separately from global-memory
traffic; it matters for the sequential-reduction ablation (Table IV),
where checksums are staged through shared/global memory instead of
registers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError


class SharedMemory:
    """Named scratch arrays shared by the threads of one block."""

    def __init__(self, capacity_bytes: int = 96 * 1024) -> None:
        self.capacity_bytes = capacity_bytes
        self._arrays: dict[str, np.ndarray] = {}
        self._used_bytes = 0
        #: Bytes moved in/out of shared memory (reads + writes).
        self.traffic_bytes = 0

    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float32,
    ) -> np.ndarray:
        """Declare a ``__shared__`` array; idempotent per name.

        Returns the existing array when called again with the same name
        (a kernel may "declare" it once per helper function, as CUDA
        static shared memory does).
        """
        if name in self._arrays:
            return self._arrays[name]
        if isinstance(shape, int):
            shape = (shape,)
        arr = np.zeros(shape, dtype=dtype)
        if self._used_bytes + arr.nbytes > self.capacity_bytes:
            raise AllocationError(
                f"shared memory overflow: {name!r} needs {arr.nbytes} B, "
                f"{self.capacity_bytes - self._used_bytes} B free"
            )
        self._used_bytes += arr.nbytes
        self._arrays[name] = arr
        return arr

    def read(self, name: str, idx: np.ndarray | slice) -> np.ndarray:
        """Load from a shared array, counting traffic."""
        arr = self._get(name)
        out = arr[idx]
        self.traffic_bytes += np.asarray(out).nbytes
        return out

    def write(self, name: str, idx: np.ndarray | slice, values: np.ndarray) -> None:
        """Store to a shared array, counting traffic."""
        arr = self._get(name)
        arr[idx] = values
        self.traffic_bytes += np.asarray(arr[idx]).nbytes

    def raw(self, name: str) -> np.ndarray:
        """Direct (untallied) view, for code that self-accounts traffic."""
        return self._get(name)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used_bytes

    def _get(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise AllocationError(f"no shared array named {name!r}") from None
