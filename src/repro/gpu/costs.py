"""Analytic cost model converting operation tallies into device cycles.

The simulator is *functionally* exact (every store, checksum and table
probe really happens) but timing is computed analytically from aggregate
tallies, in the spirit of a first-order GPU performance model:

``kernel time = max(compute, global memory, shared memory)
               + atomic serialization + dependent/serial latency``

The model's purpose is to reproduce the *mechanisms* behind the paper's
relative results (DESIGN.md section 5):

* **Bandwidth vs. instruction bottlenecks.** ``max(compute, memory)``
  reproduces Table I's classification, and makes the sequential
  (through-memory) reduction hurt bandwidth-bound kernels most
  (Table IV).
* **Same-address atomic serialization.** Atomics to one address are
  spaced :attr:`~repro.gpu.spec.GPUSpec.same_address_atomic_interval_cycles`
  apart, which (together with collision counts measured by actually
  running the hash tables) produces Figure 5's hash-table overheads.
* **Lock convoys.** Lock-based insertion serializes critical sections
  and generates spin traffic proportional to the number of concurrent
  waiters, exploding with thread-block count (Table III).
* **Emulated (non-atomic) primitives.** Replacing ``atomicCAS`` /
  ``atomicExch`` with plain load/store sequences turns each probe into
  dependent global round trips plus race-retry storms (Section IV-D-3).

Every coefficient lives in :class:`CostCoefficients` so the calibration
is explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.gpu.spec import GPUSpec, NVMSpec


@dataclass
class Tally:
    """Aggregate operation counts for one kernel launch.

    Produced either by the functional simulator (:mod:`repro.gpu.device`)
    while executing blocks, or analytically by the paper-scale workload
    profiles (:mod:`repro.bench.profiles`). All counts are totals across
    the whole launch, in units of *thread-level* operations or bytes.
    """

    n_blocks: int = 0
    threads_per_block: int = 0
    #: Simple ALU operations (adds, multiplies, compares, conversions).
    alu_ops: float = 0.0
    #: Warp-shuffle operations (register-to-register exchange).
    shuffle_ops: float = 0.0
    #: Bytes moved to/from global (NVM-backed) memory.
    global_read_bytes: float = 0.0
    global_write_bytes: float = 0.0
    #: Bytes moved through on-chip shared memory.
    shared_bytes: float = 0.0
    #: Atomic operations issued (to any address).
    atomic_ops: float = 0.0
    #: Largest number of atomics hitting one single address.
    atomic_hot_max: float = 0.0
    #: Serialized cycles that cannot overlap anything (lock critical
    #: sections, dependent-latency chains divided by their concurrency).
    serial_cycles: float = 0.0
    #: ``__syncthreads()`` executions (per block, summed over blocks).
    syncthreads: float = 0.0

    def merge(self, other: "Tally") -> None:
        """Accumulate ``other`` into ``self`` (hot max uses ``max``)."""
        self.n_blocks = max(self.n_blocks, other.n_blocks)
        self.threads_per_block = max(
            self.threads_per_block, other.threads_per_block
        )
        self.alu_ops += other.alu_ops
        self.shuffle_ops += other.shuffle_ops
        self.global_read_bytes += other.global_read_bytes
        self.global_write_bytes += other.global_write_bytes
        self.shared_bytes += other.shared_bytes
        self.atomic_ops += other.atomic_ops
        self.atomic_hot_max = max(self.atomic_hot_max, other.atomic_hot_max)
        self.serial_cycles += other.serial_cycles
        self.syncthreads += other.syncthreads

    def copy(self) -> "Tally":
        """Return an independent copy."""
        out = Tally()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name))
        return out

    def absorb_atomics(self, unit) -> None:
        """Take the launch's atomic totals from its ``AtomicUnit``.

        Called once at an engine's terminal execution site (engines own
        the tally's lifecycle; the device no longer hand-copies these
        fields). Assignment, not accumulation, so an engine that falls
        back through serial execution absorbs exactly once.
        """
        self.atomic_ops = float(unit.total_ops)
        self.atomic_hot_max = float(unit.hot_max)

    def to_dict(self) -> dict:
        """All counters as one JSON-serializable dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def global_bytes(self) -> float:
        """Total global-memory traffic in bytes."""
        return self.global_read_bytes + self.global_write_bytes

    @property
    def total_threads(self) -> int:
        """Threads across the launch."""
        return self.n_blocks * self.threads_per_block


@dataclass(frozen=True)
class CostCoefficients:
    """Tunable calibration constants of the cost model.

    These are the only free parameters; everything else derives from the
    hardware spec. Defaults were calibrated so the paper-scale profiles
    land in the bands the paper reports (see EXPERIMENTS.md).
    """

    #: Cycles charged per ``__syncthreads()`` per resident block wave.
    sync_cycles: float = 30.0
    #: Spin-storm coefficient of the lock convoy: per insert, the
    #: serialized cost grows as ``coeff * waiters**1.5`` — waiters both
    #: queue (linear) and saturate the atomic unit with spin retries
    #: that delay the holder (the extra sqrt factor). GPU spin locks
    #: have no fair scheduling, so the holder competes with its own
    #: waiters for issue slots.
    lock_contention_coeff: float = 0.25
    #: Critical-section base length in cycles (acquire + release).
    lock_cs_base_cycles: float = 300.0
    #: Serialized service cost of one *colliding* probe at the checksum
    #: table's contended region during the insertion burst (a failed
    #: ``atomicCAS`` re-probes, ping-pongs the line, and retries).
    #: Demand beyond what hides under the kernel's own runtime
    #: serializes at this rate. First-touch probes of empty slots are
    #: nearly free (the Section IV-D-2 collision-removal ablation shows
    #: overheads collapse once collisions are gone), so only collisions
    #: are charged.
    table_region_interval_cycles: float = 128.0
    #: Relative cost of a colliding ``atomicExch`` (cuckoo) vs a failed
    #: ``atomicCAS`` (quadratic): the exchange always makes progress,
    #: so its collision costs less serialization.
    cuckoo_exch_factor: float = 0.75
    #: Shared-memory read latency, exposed when one thread sequentially
    #: folds a whole block's staged checksums (the no-shuffle ablation).
    shared_read_latency_cycles: float = 4.0
    #: Demand multiplier of an emulated (non-atomic) swap relative to
    #: the hardware ``atomicExch``: a load plus a store hold the
    #: contended region twice as long.
    emulated_swap_factor: float = 2.0
    #: Race-retry storm factor for emulated compare-and-swap: each
    #: colliding probe is retried ``1 + waiters *
    #: emulated_cas_storm_coeff`` times — racing blocks observe stale
    #: slots and re-probe, and nothing arbitrates, so the storm grows
    #: with residency (the mechanism behind Section IV-D-3's ">16x"
    #: for quadratic probing).
    emulated_cas_storm_coeff: float = 0.35


@dataclass(frozen=True)
class TimeBreakdown:
    """Cycle counts per bottleneck category for one launch."""

    compute_cycles: float
    memory_cycles: float
    shared_cycles: float
    atomic_cycles: float
    serial_cycles: float
    sync_cycles: float

    @property
    def overlapped_cycles(self) -> float:
        """The pipelined portion: bounded by the slowest resource."""
        return max(self.compute_cycles, self.memory_cycles, self.shared_cycles)

    @property
    def total_cycles(self) -> float:
        """End-to-end kernel time in cycles."""
        return (
            self.overlapped_cycles
            + self.atomic_cycles
            + self.serial_cycles
            + self.sync_cycles
        )

    @property
    def bottleneck(self) -> str:
        """Name of the dominant overlapped resource."""
        pairs = (
            ("compute", self.compute_cycles),
            ("memory", self.memory_cycles),
            ("shared", self.shared_cycles),
        )
        return max(pairs, key=lambda p: p[1])[0]

    def overhead_vs(self, baseline: "TimeBreakdown") -> float:
        """Fractional slowdown of ``self`` relative to ``baseline``.

        Returns e.g. ``0.021`` for a 2.1 % overhead.
        """
        if baseline.total_cycles <= 0:
            raise ValueError("baseline has non-positive total time")
        return self.total_cycles / baseline.total_cycles - 1.0

    def slowdown_vs(self, baseline: "TimeBreakdown") -> float:
        """Multiplicative slowdown (``1.0`` means equal time)."""
        return 1.0 + self.overhead_vs(baseline)

    def to_dict(self) -> dict:
        """Per-resource cycles plus derived totals, JSON-serializable."""
        return {
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "shared_cycles": self.shared_cycles,
            "atomic_cycles": self.atomic_cycles,
            "serial_cycles": self.serial_cycles,
            "sync_cycles": self.sync_cycles,
            "overlapped_cycles": self.overlapped_cycles,
            "total_cycles": self.total_cycles,
            "bottleneck": self.bottleneck,
        }


@dataclass
class CostModel:
    """Turns a :class:`Tally` into a :class:`TimeBreakdown`.

    Parameters
    ----------
    spec:
        GPU hardware parameters.
    nvm:
        NVM timing; controls the effective memory bandwidth and adds
        write latency pressure for NVM-bound launches.
    coeff:
        Calibration constants.
    """

    spec: GPUSpec = field(default_factory=GPUSpec.v100)
    nvm: NVMSpec = field(default_factory=NVMSpec.dram_like)
    coeff: CostCoefficients = field(default_factory=CostCoefficients)

    # ------------------------------------------------------------------
    # Primary entry point
    # ------------------------------------------------------------------

    def time_of(self, tally: Tally) -> TimeBreakdown:
        """Compute the launch time breakdown for an operation tally."""
        concurrency = self._concurrency(tally)

        lanes = self._effective_lanes(tally)
        compute = (tally.alu_ops + tally.shuffle_ops) / lanes

        mem_bpc = self.nvm.bytes_per_cycle(self.spec)
        memory = tally.global_bytes / mem_bpc

        shared = tally.shared_bytes / self.spec.shared_bytes_per_cycle

        atomic = (
            tally.atomic_ops / self.spec.atomic_throughput_per_cycle
            + tally.atomic_hot_max
            * self.spec.same_address_atomic_interval_cycles
        )

        sync = tally.syncthreads * self.coeff.sync_cycles / concurrency

        return TimeBreakdown(
            compute_cycles=compute,
            memory_cycles=memory,
            shared_cycles=shared,
            atomic_cycles=atomic,
            serial_cycles=tally.serial_cycles,
            sync_cycles=sync,
        )

    # ------------------------------------------------------------------
    # Contention sub-models, used by the checksum tables when they
    # account their insertion work into a tally.
    # ------------------------------------------------------------------

    def concurrent_waiters(
        self, n_blocks: int, threads_per_block: int | None = None
    ) -> int:
        """Thread blocks simultaneously contending for one resource."""
        bound = self.spec.concurrent_blocks(threads_per_block)
        return max(1, min(n_blocks, bound))

    def lock_convoy_cycles(
        self,
        n_inserts: int,
        cs_extra_cycles: float = 0.0,
        population: int | None = None,
        threads_per_block: int | None = None,
    ) -> float:
        """Serialized cycles for ``n_inserts`` lock-protected insertions.

        Critical sections execute one at a time, and the resident
        waiters spin against the lock word, both queueing and starving
        the holder of issue slots — per insert the cost is
        ``cs + coeff * waiters**1.5``. With tiny blocks the waiter pool
        is the full residency (2 560 blocks), which is the mechanism
        behind Table III's 1 000x-plus blow-ups on SAD and
        MRI-GRIDDING, while TMM's 1 024-thread blocks cap residency at
        160 and stay within a small multiple of baseline.

        ``population`` is the total number of inserters contending over
        the launch (defaults to ``n_inserts``); tables charging costs
        per insert pass ``n_inserts=1`` with the launch's block count
        as the population.
        """
        if n_inserts <= 0:
            return 0.0
        waiters = self.concurrent_waiters(
            population or n_inserts, threads_per_block
        )
        cs = self.coeff.lock_cs_base_cycles + cs_extra_cycles
        storm = self.coeff.lock_contention_coeff * waiters ** 1.5
        return n_inserts * (cs + storm)

    def emulated_cas_cycles(
        self,
        n_collisions: int,
        population: int,
        threads_per_block: int | None = None,
        slack_cycles: float = 0.0,
    ) -> float:
        """Serialized cycles for quadratic probing without ``atomicCAS``.

        Each colliding probe becomes a dependent load-compare-store
        sequence on the contended table region, and racing blocks
        observe stale slots and re-probe — a retry storm that scales
        with residency. Demand that fits under the kernel's own runtime
        (``slack_cycles``) hides; the excess serializes. This is the
        Section IV-D-3 ablation that turns quadratic probing into a
        >16x slowdown.
        """
        if n_collisions <= 0:
            return 0.0
        waiters = self.concurrent_waiters(max(population, 1),
                                          threads_per_block)
        retries = 1.0 + waiters * self.coeff.emulated_cas_storm_coeff
        demand = (
            n_collisions
            * retries
            * self.coeff.table_region_interval_cycles
        )
        return max(0.0, demand - slack_cycles)

    def emulated_swap_cycles(
        self,
        n_collisions: int,
        population: int,
        threads_per_block: int | None = None,
        slack_cycles: float = 0.0,
    ) -> float:
        """Serialized cycles for cuckoo eviction without ``atomicExch``.

        A temporary-variable swap holds the contended region for two
        dependent accesses instead of one atomic — a doubling of the
        insertion demand, without the CAS retry storm (the exchange
        always makes progress). The paper measures the milder 41.9 %
        geomean for this variant.
        """
        if n_collisions <= 0:
            return 0.0
        demand = (
            n_collisions
            * self.coeff.cuckoo_exch_factor
            * self.coeff.emulated_swap_factor
            * self.coeff.table_region_interval_cycles
        )
        return max(0.0, demand - slack_cycles)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _concurrency(self, tally: Tally) -> int:
        return max(1, min(tally.n_blocks, self.spec.max_concurrent_blocks))

    def _effective_lanes(self, tally: Tally) -> float:
        """ALU lanes usable given the launch's occupancy."""
        live_threads = max(tally.total_threads, 1)
        return float(min(self.spec.total_lanes, live_threads))
