"""Hardware specifications for the simulated GPU and its NVM memory.

Two preset configurations mirror the paper's testbeds:

* :func:`GPUSpec.v100` — the NVIDIA Tesla V100 used for the timing
  characterization (Section III-A).
* :func:`NVMSpec.paper_nvm` — the NVM timing the paper dials into
  GPGPU-sim for the write-amplification study (Section VII-3):
  326.4 GB/s bandwidth, 160 ns read and 480 ns write latency.

All timing in the simulator is expressed in *device cycles*; the specs
provide the conversions (bytes per cycle, latencies in cycles).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static parameters of the simulated GPU.

    The cost model (:mod:`repro.gpu.costs`) consumes these to convert
    aggregate operation/byte counts into cycles. Only parameters that
    influence the paper's *relative* results are modeled; see DESIGN.md
    section 5.
    """

    name: str = "V100"
    #: Number of streaming multiprocessors.
    sm_count: int = 80
    #: Threads per warp (fixed at 32 on all NVIDIA architectures).
    warp_size: int = 32
    #: Simple-ALU lanes per SM (FP32/INT32 cores usable per cycle).
    lanes_per_sm: int = 64
    #: Core clock in GHz; used only to convert external bandwidths.
    clock_ghz: float = 1.38
    #: Device-memory bandwidth in GB/s (HBM2 on V100).
    mem_bw_gbps: float = 900.0
    #: Shared-memory bandwidth per SM in bytes per cycle.
    shared_bw_bytes_per_cycle_per_sm: int = 128
    #: Round-trip latency of a global-memory access in cycles. Used for
    #: *dependent* accesses that cannot be pipelined (lock spins,
    #: emulated-atomic read-modify-write sequences).
    global_latency_cycles: int = 450
    #: Latency of one atomic operation at the L2 atomic units.
    atomic_latency_cycles: int = 380
    #: Device-wide atomic throughput to *distinct* addresses (ops/cycle).
    atomic_throughput_per_cycle: float = 8.0
    #: Minimum spacing between atomics that target the *same* address
    #: (they serialize at the L2 atomic unit).
    same_address_atomic_interval_cycles: int = 32
    #: Maximum resident thread blocks per SM (occupancy cap).
    max_blocks_per_sm: int = 32
    #: Maximum resident threads per SM (the other occupancy cap; large
    #: blocks reduce how many blocks an SM can host concurrently).
    max_threads_per_sm: int = 2048
    #: Cache-line / memory-sector size in bytes.
    line_size: int = 128
    #: L2 capacity in bytes (bounds the volume of not-yet-persisted data).
    l2_bytes: int = 6 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.warp_size <= 0 or self.lanes_per_sm <= 0:
            raise ValueError("GPUSpec core counts must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")

    @property
    def total_lanes(self) -> int:
        """ALU lanes across the whole device."""
        return self.sm_count * self.lanes_per_sm

    @property
    def mem_bytes_per_cycle(self) -> float:
        """Device-memory bandwidth expressed per core cycle."""
        return self.mem_bw_gbps / self.clock_ghz

    @property
    def shared_bytes_per_cycle(self) -> float:
        """Aggregate shared-memory bandwidth per cycle."""
        return float(self.shared_bw_bytes_per_cycle_per_sm * self.sm_count)

    @property
    def max_concurrent_blocks(self) -> int:
        """Upper bound on simultaneously resident thread blocks."""
        return self.sm_count * self.max_blocks_per_sm

    def concurrent_blocks(self, threads_per_block: int | None = None) -> int:
        """Resident-block bound given a block size.

        Occupancy is limited both by the per-SM block cap and by the
        per-SM thread capacity: 1024-thread blocks fit only 2 per SM,
        64-thread blocks fit the full 32. This is why TMM's huge blocks
        see far less insertion contention than SAD's tiny ones at the
        same grid scale.
        """
        per_sm = self.max_blocks_per_sm
        if threads_per_block:
            per_sm = min(per_sm,
                         max(1, self.max_threads_per_sm // threads_per_block))
        return self.sm_count * per_sm

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at the core clock."""
        return cycles / (self.clock_ghz * 1e3)

    @classmethod
    def v100(cls) -> "GPUSpec":
        """The paper's characterization platform (Section III-A)."""
        return cls()

    @classmethod
    def titan_v(cls) -> "GPUSpec":
        """Volta Titan V, the GPGPU-sim model of Section VII-3."""
        return cls(name="TitanV", sm_count=80, mem_bw_gbps=652.8)


@dataclass(frozen=True)
class NVMSpec:
    """Non-volatile memory timing attached behind the GPU caches.

    ``None`` for :attr:`bw_gbps` means the memory system keeps the DRAM
    bandwidth of the GPU spec (the paper's V100 runs are DRAM-based and
    interpreted as relative overheads; Section III-A).
    """

    #: Sustained NVM bandwidth in GB/s, or ``None`` to inherit DRAM's.
    bw_gbps: float | None = None
    #: Read latency in nanoseconds.
    read_ns: float = 160.0
    #: Write latency in nanoseconds.
    write_ns: float = 480.0

    def __post_init__(self) -> None:
        if self.bw_gbps is not None and self.bw_gbps <= 0:
            raise ValueError("bw_gbps must be positive or None")
        if self.read_ns < 0 or self.write_ns < 0:
            raise ValueError("latencies must be non-negative")

    def bytes_per_cycle(self, spec: GPUSpec) -> float:
        """Effective memory bandwidth per device cycle under this NVM."""
        bw = self.bw_gbps if self.bw_gbps is not None else spec.mem_bw_gbps
        return bw / spec.clock_ghz

    def write_latency_cycles(self, spec: GPUSpec) -> float:
        """NVM write latency in device cycles."""
        return self.write_ns * spec.clock_ghz

    def read_latency_cycles(self, spec: GPUSpec) -> float:
        """NVM read latency in device cycles."""
        return self.read_ns * spec.clock_ghz

    @classmethod
    def dram_like(cls) -> "NVMSpec":
        """DRAM-speed persistence domain (the V100 testbed stand-in)."""
        return cls(bw_gbps=None, read_ns=0.0, write_ns=0.0)

    @classmethod
    def paper_nvm(cls) -> "NVMSpec":
        """Section VII-3's GPGPU-sim NVM model."""
        return cls(bw_gbps=326.4, read_ns=160.0, write_ns=480.0)
