"""Kernel abstraction and per-block execution context.

A :class:`Kernel` is the simulator's unit of GPU work: it declares a
:class:`LaunchConfig` (grid × block dimensions) and a ``run_block``
method that executes **one thread block**, vectorized across that
block's threads with numpy (axis 0 = thread index, in lane order).

The :class:`BlockContext` handed to ``run_block`` is the only legal way
to touch device state. It provides:

* global loads/stores (``ld``/``st``) with byte accounting and — when a
  Lazy Persistency observer is attached — checksum interception of
  persistent stores;
* shared memory, ``__syncthreads``, warp shuffles;
* atomics via the launch's :class:`~repro.gpu.atomics.AtomicUnit`;
* explicit ALU-work accounting (``alu``/``flops``), since the simulator
  does not interpret instructions.

Execution modes (:class:`ExecMode`) implement the LP recovery protocol:
in ``VALIDATE`` mode a replayed block does *not* write persistent data;
instead each intercepted store reads what memory *currently holds* at
the target addresses and feeds it to the checksum observer — exactly
the check phase of the paper's check-and-recovery kernel (Listing 7).
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import DeviceError, LaunchError, UnrecoverableRegionError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.costs import Tally
from repro.gpu.memory import Buffer, GlobalMemory
from repro.gpu.shared import SharedMemory
from repro.gpu.warp import WARP_SIZE, shfl_down, shfl_xor


@dataclass(frozen=True)
class LaunchConfig:
    """Grid and block dimensions of one kernel launch.

    Dimensions follow CUDA's ``(x, y)`` convention; omit ``y`` for 1-D
    launches. Thread blocks are numbered row-major: block id =
    ``by * grid_x + bx``.
    """

    grid: tuple[int, int] = (1, 1)
    block: tuple[int, int] = (32, 1)

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.grid + self.block):
            raise LaunchError(f"non-positive launch dimension: {self}")

    @classmethod
    def linear(cls, n_blocks: int, threads_per_block: int) -> "LaunchConfig":
        """A 1-D launch."""
        return cls(grid=(n_blocks, 1), block=(threads_per_block, 1))

    @property
    def n_blocks(self) -> int:
        """Total thread blocks in the grid."""
        return self.grid[0] * self.grid[1]

    @property
    def threads_per_block(self) -> int:
        """Threads in each block."""
        return self.block[0] * self.block[1]

    @property
    def n_warps_per_block(self) -> int:
        """Warps per block (final warp may be partial)."""
        return math.ceil(self.threads_per_block / WARP_SIZE)

    def block_coords(self, block_id: int) -> tuple[int, int]:
        """``(bx, by)`` of a flat block id."""
        if not 0 <= block_id < self.n_blocks:
            raise LaunchError(f"block id {block_id} outside grid {self.grid}")
        return block_id % self.grid[0], block_id // self.grid[0]


class ExecMode(enum.Enum):
    """What a block execution is for."""

    #: Normal forward execution: stores write memory.
    NORMAL = "normal"
    #: Post-crash validation replay: persistent stores are suppressed
    #: and the observer sees memory's current contents instead.
    VALIDATE = "validate"
    #: Crash recovery of a failed region: ``recover_block`` re-executes
    #: it with normal store semantics.
    RECOVER = "recover"


class StoreObserver(Protocol):
    """Interface the LP runtime plugs into a context (duck-typed)."""

    #: Names of the buffers whose stores are checksum-protected.
    protected: frozenset[str]

    def on_store(self, values: np.ndarray, slots: np.ndarray) -> None:
        """Fold ``values`` into per-thread checksums at ``slots``."""


class BlockContext:
    """Execution context of one thread block."""

    def __init__(
        self,
        memory: GlobalMemory,
        atomics: AtomicUnit,
        config: LaunchConfig,
        block_id: int,
        mode: ExecMode = ExecMode.NORMAL,
        fence_latency_cycles: float = 660.0,
        fence_concurrency: int = 1,
    ) -> None:
        self.memory = memory
        self.atomics = atomics
        self.config = config
        self.block_id = block_id
        self.mode = mode
        self.shared = SharedMemory()
        self.tally = Tally(
            n_blocks=config.n_blocks,
            threads_per_block=config.threads_per_block,
        )
        #: Optional Lazy Persistency hook; set by the LP kernel wrapper.
        self.lp_observer: StoreObserver | None = None
        #: Optional Eager Persistency hook (logging before stores); set
        #: by the EP kernel wrapper. Must expose ``protected`` and
        #: ``before_store(ctx, buf, idx)``.
        self.ep_interceptor = None
        #: Optional checksum-table-insert deferral hook, set by launch
        #: engines that apply table insertions in a later deterministic
        #: pass (see :mod:`repro.gpu.engine`). When not ``None``, LP
        #: kernel wrappers call ``table_insert_deferral(key, lanes)`` at
        #: region end instead of inserting into the table directly.
        self.table_insert_deferral = None
        # Persist-barrier cost parameters (set by the device per launch).
        self._fence_latency = fence_latency_cycles
        self._fence_concurrency = max(1, fence_concurrency)
        self._pending_flush_lines = 0

    # ------------------------------------------------------------------
    # Thread geometry
    # ------------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        """Threads in this block."""
        return self.config.threads_per_block

    @property
    def tid(self) -> np.ndarray:
        """Flat thread indices ``[0, n_threads)``."""
        return np.arange(self.n_threads)

    @property
    def block_xy(self) -> tuple[int, int]:
        """``(blockIdx.x, blockIdx.y)``."""
        return self.config.block_coords(self.block_id)

    def thread_xy(self) -> tuple[np.ndarray, np.ndarray]:
        """``(threadIdx.x, threadIdx.y)`` vectors for a 2-D block."""
        bx = self.config.block[0]
        t = self.tid
        return t % bx, t // bx

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------

    def buffer(self, buf: Buffer | str) -> Buffer:
        """Resolve a buffer handle or name."""
        return self.memory[buf] if isinstance(buf, str) else buf

    def ld(self, buf: Buffer | str, idx: np.ndarray | int) -> np.ndarray:
        """Global load; counts read traffic."""
        buf = self.buffer(buf)
        idx = np.atleast_1d(np.asarray(idx))
        self.tally.global_read_bytes += idx.size * buf.dtype.itemsize
        return self.memory.read(buf, idx)

    def st(
        self,
        buf: Buffer | str,
        idx: np.ndarray | int,
        values: np.ndarray | float | int,
        slots: np.ndarray | None = None,
    ) -> None:
        """Global store; counts write traffic and drives LP hooks.

        ``slots`` optionally names the thread that issued each element
        (defaults to position order); the LP observer uses it to keep
        true per-thread checksum accumulators for the reduction.
        """
        buf = self.buffer(buf)
        idx = np.atleast_1d(np.asarray(idx))
        vals = np.broadcast_to(np.asarray(values, dtype=buf.dtype), idx.shape)
        self.tally.global_write_bytes += idx.size * buf.dtype.itemsize

        observer = self.lp_observer
        observed = observer is not None and buf.name in observer.protected

        if self.mode is ExecMode.VALIDATE:
            if buf.persistent:
                if observed:
                    in_memory = self.memory.read(buf, idx)
                    observer.on_store(in_memory, self._slots(slots, idx))
                return  # persistent writes are suppressed during replay
            self.memory.write(buf, idx, vals)
            return

        interceptor = self.ep_interceptor
        if (interceptor is not None and buf.persistent
                and buf.name in interceptor.protected):
            interceptor.before_store(self, buf, idx)

        self.memory.write(buf, idx, vals)
        if observed:
            observer.on_store(vals, self._slots(slots, idx))

    def _slots(self, slots: np.ndarray | None, idx: np.ndarray) -> np.ndarray:
        if slots is not None:
            return np.atleast_1d(np.asarray(slots))
        return np.arange(idx.size) % self.n_threads

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------

    def _guard_persistent_atomic(self, buf: Buffer) -> None:
        if self.mode is ExecMode.VALIDATE and buf.persistent:
            raise DeviceError(
                "atomic to persistent buffer during VALIDATE replay; "
                "kernels that accumulate into persistent data must "
                "override validate_block()"
            )

    def atomic_cas(self, buf: Buffer | str, index: int, compare, value):
        """``atomicCAS`` on one element; returns the old value."""
        buf = self.buffer(buf)
        self._guard_persistent_atomic(buf)
        self.tally.global_write_bytes += buf.dtype.itemsize
        return self.atomics.cas(buf, index, compare, value)

    def atomic_exch(self, buf: Buffer | str, index: int, value):
        """``atomicExch`` on one element; returns the old value."""
        buf = self.buffer(buf)
        self._guard_persistent_atomic(buf)
        self.tally.global_write_bytes += buf.dtype.itemsize
        return self.atomics.exch(buf, index, value)

    def atomic_add(self, buf: Buffer | str, idx: np.ndarray, values: np.ndarray) -> None:
        """``atomicAdd`` across threads."""
        buf = self.buffer(buf)
        self._guard_persistent_atomic(buf)
        idx = np.atleast_1d(np.asarray(idx))
        self.tally.global_write_bytes += idx.size * buf.dtype.itemsize
        self.atomics.add(buf, idx, values)

    def atomic_max(self, buf: Buffer | str, idx: np.ndarray, values: np.ndarray) -> None:
        """``atomicMax`` across threads."""
        buf = self.buffer(buf)
        self._guard_persistent_atomic(buf)
        idx = np.atleast_1d(np.asarray(idx))
        self.tally.global_write_bytes += idx.size * buf.dtype.itemsize
        self.atomics.max_(buf, idx, values)

    # ------------------------------------------------------------------
    # Eager Persistency primitives (clwb / persist barrier)
    # ------------------------------------------------------------------

    def clwb(self, buf: Buffer | str, idx: np.ndarray | int) -> int:
        """Explicit cache-line write-back of the lines under ``idx``.

        The Eager Persistency primitive LP never needs. Returns how many
        lines were actually written to NVM; their persistence is only
        guaranteed after the next :meth:`persist_barrier`.
        """
        buf = self.buffer(buf)
        idx = np.atleast_1d(np.asarray(idx))
        flushed = self.memory.flush(buf, idx)
        self.tally.alu_ops += max(1, flushed)  # flush-issue instructions
        self._pending_flush_lines += flushed
        return flushed

    def persist_barrier(self) -> None:
        """``sfence``-style barrier: stall until pending flushes persist.

        The stall exposes the NVM write latency (plus per-line drain
        time) on the block's critical path; the charge is amortized by
        the launch's resident-block concurrency, mirroring how real
        fences overlap across blocks but not within one.
        """
        pending = self._pending_flush_lines
        stall = self._fence_latency + pending * 8.0
        self.tally.serial_cycles += stall / self._fence_concurrency
        self._pending_flush_lines = 0

    # ------------------------------------------------------------------
    # Intra-block primitives
    # ------------------------------------------------------------------

    def syncthreads(self) -> None:
        """Block-wide barrier (a no-op functionally; costed)."""
        self.tally.syncthreads += 1

    def shfl_down(self, values: np.ndarray, offset: int) -> np.ndarray:
        """Warp shuffle-down across this block's thread vector."""
        self.tally.shuffle_ops += np.asarray(values).shape[0]
        return shfl_down(values, offset)

    def shfl_xor(self, values: np.ndarray, lane_mask: int) -> np.ndarray:
        """Warp shuffle-xor across this block's thread vector."""
        self.tally.shuffle_ops += np.asarray(values).shape[0]
        return shfl_xor(values, lane_mask)

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------

    def alu(self, n_ops: float) -> None:
        """Charge ``n_ops`` thread-level ALU operations."""
        self.tally.alu_ops += n_ops

    def flops(self, per_thread: float, active_threads: int | None = None) -> None:
        """Charge floating-point work, ``per_thread`` ops per thread."""
        n = self.n_threads if active_threads is None else active_threads
        self.tally.alu_ops += per_thread * n

    def add_serial_cycles(self, cycles: float) -> None:
        """Charge cycles that serialize against the whole device.

        Used by lock-based and emulated-atomic table insertion, whose
        contention costs are computed by the cost model's sub-models.
        """
        self.tally.serial_cycles += cycles

    def charge_shared(self, nbytes: float) -> None:
        """Charge shared-memory traffic accounted outside ``self.shared``."""
        self.tally.shared_bytes += nbytes

    def finalize_tally(self) -> Tally:
        """Fold shared-memory traffic into the tally and return it."""
        self.tally.shared_bytes += self.shared.traffic_bytes
        self.shared.traffic_bytes = 0
        return self.tally


class Kernel(abc.ABC):
    """One GPU kernel: a launch shape plus per-block behaviour.

    Subclasses set:

    * :attr:`name` — stable identifier used in reports.
    * :attr:`protected_buffers` — names of output buffers that Lazy
      Persistency protects (the kernel's persistent stores).
    * :attr:`idempotent` — whether re-running a block reproduces its
      output (true for all the paper's Parboil-style kernels once
      outputs are block-disjoint; the default recovery simply re-runs
      the block, as Section IV-A describes).
    """

    name: str = "kernel"
    protected_buffers: tuple[str, ...] = ()
    idempotent: bool = True
    #: Whether block execution is safe to replicate in a worker process
    #: and replay from an operation log (see ``ParallelEngine``). A
    #: kernel must opt *out* when a block's behaviour depends on state
    #: the log cannot capture: host-side mutation (statistics objects),
    #: or read-modify-write control flow through ``atomic_cas`` /
    #: ``atomic_exch`` whose results depend on other blocks.
    parallel_safe: bool = True
    #: Whether :meth:`run_block_batch` is implemented (``BatchedEngine``).
    batchable: bool = False

    @abc.abstractmethod
    def launch_config(self) -> LaunchConfig:
        """Grid/block dimensions for this kernel."""

    @abc.abstractmethod
    def run_block(self, ctx: BlockContext) -> None:
        """Execute one thread block."""

    def run_block_batch(self, ctx) -> None:
        """Execute a homogeneous group of blocks in one vectorized pass.

        ``ctx`` is a :class:`~repro.gpu.batch.BatchBlockContext` whose
        leading axis indexes the block within the group. Only called by
        the batched launch engine and only when :attr:`batchable` is
        true; must issue exactly the loads, stores and work charges its
        blocks would issue under :meth:`run_block`, so that the batched
        launch is bit-identical to the serial one.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} does not implement batched execution"
        )

    def apply_table_insert(self, ctx: BlockContext, key: int,
                           lanes: "np.ndarray") -> None:
        """Apply one deferred checksum-table insertion (engine callback).

        Only kernels that defer table insertions (the LP wrapper)
        override this; a plain kernel never defers anything.
        """
        raise LaunchError(
            f"kernel {self.name!r} deferred a table insert it cannot apply"
        )

    def block_output_map(self, block_id: int) -> "dict[str, np.ndarray] | None":
        """Flat indices of this block's protected stores, per buffer.

        This is the *program slice* of the block's store addresses
        (Section VI / Listing 7): when a kernel can compute where it
        stores without computing what, validation can fetch and fold
        those locations directly instead of replaying the whole block.
        Return ``None`` (the default) to fall back to full replay.

        The map must cover exactly the elements the block stores
        (each once), in any order — the checksum lanes are commutative.
        """
        return None

    def validate_block(self, ctx: BlockContext) -> object | None:
        """Replay a block for checksum validation (``VALIDATE`` mode).

        If :meth:`block_output_map` provides the store-address slice,
        only those locations are fetched (the cheap Listing-7 path);
        otherwise ``run_block`` is replayed with persistent writes
        suppressed and memory contents fed to the checksum observer.

        May return a per-block *outcome record* (any picklable value);
        the launch engine collects every block's record — in the
        launch's block order — and hands the list to
        :meth:`merge_validation_outcomes` once the grid is done. Plain
        kernels return ``None``; the LP wrapper returns the block's
        recomputed checksum lanes.
        """
        output_map = self.block_output_map(ctx.block_id)
        if output_map is None:
            self.run_block(ctx)
            return None
        for buf_name in sorted(output_map):
            idx = output_map[buf_name]
            # In VALIDATE mode ``st`` folds what memory holds at ``idx``
            # (the written values are ignored), which is exactly the
            # check phase of the generated recovery kernel.
            ctx.st(buf_name, idx, 0)
        return None

    def validate_block_batch(self, bctx) -> list:
        """Vectorized validation of a whole block group.

        Default strategy: when every block in the group exposes a
        :meth:`block_output_map` over the same buffer set, the maps are
        padded into one ``(n_blocks, max_len)`` index array per buffer
        (ragged tails masked) and fetched with a single batched store
        interception per buffer — the grid-wide Listing-7 pass.
        Otherwise the group replays through :meth:`run_block_batch` in
        ``VALIDATE`` mode. Returns the per-block outcome records (one
        entry per block, ``None`` for plain kernels).
        """
        maps = [self.block_output_map(int(b)) for b in bctx.block_ids]
        names = sorted(maps[0]) if maps[0] is not None else None
        uniform = names is not None and all(
            m is not None and sorted(m) == names for m in maps[1:]
        )
        if not uniform:
            self.run_block_batch(bctx)
            return [None] * bctx.n_blocks_in_batch
        for name in names:
            rows = [np.asarray(m[name]).reshape(-1) for m in maps]
            max_len = max(r.size for r in rows)
            idx = np.zeros((len(rows), max_len), dtype=np.int64)
            mask = np.zeros((len(rows), max_len), dtype=bool)
            for row, r in enumerate(rows):
                idx[row, :r.size] = r
                mask[row, :r.size] = True
            # Masked charge and default slots reproduce the serial
            # per-block ``ctx.st(name, map, 0)`` calls exactly: each
            # row folds its first ``len(map)`` elements with
            # ``arange % n_threads`` slots.
            bctx.st(name, idx, 0, mask=None if mask.all() else mask)
        return [None] * bctx.n_blocks_in_batch

    def merge_validation_outcomes(self, outcomes: list) -> None:
        """Merge per-block validation outcome records, in block order.

        Called once by the launch engine at the end of a ``VALIDATE``
        launch with every block's :meth:`validate_block` /
        :meth:`validate_block_batch` return value. Plain kernels keep
        no validation state, so the default does nothing; the LP
        wrapper overrides this with the vectorized checksum-table
        compare.
        """

    def recover_block(self, ctx: BlockContext) -> None:
        """Re-execute a failed block during crash recovery.

        Idempotent kernels re-run as-is; others must override with an
        application-specific recovery function (Section IV-A).
        """
        if not self.idempotent:
            raise UnrecoverableRegionError(
                f"kernel {self.name!r} is not idempotent and provides no "
                "recovery function"
            )
        self.run_block(ctx)

    def recover_block_batch(self, bctx) -> None:
        """Re-execute a group of failed blocks in one vectorized pass.

        The batched counterpart of :meth:`recover_block`: idempotent
        kernels re-run through :meth:`run_block_batch`; others must
        provide their own recovery function.
        """
        if not self.idempotent:
            raise UnrecoverableRegionError(
                f"kernel {self.name!r} is not idempotent and provides no "
                "recovery function"
            )
        self.run_block_batch(bctx)
