"""Write-back cache model for the NVM persistence domain.

Lazy Persistency's defining property is that stores are **not** flushed:
they sit in volatile caches and reach NVM whenever eviction happens to
write them back, possibly long after — and possibly never, if a crash
intervenes. This module models exactly that property and nothing more:
a bounded set of *dirty lines* with least-recently-written eviction.

The cache is a metadata-only model: line *contents* live in the buffers
of :class:`~repro.gpu.memory.GlobalMemory`; the cache just decides which
lines' contents are still volatile.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable


class WriteBackCache:
    """Tracks dirty cache lines and evicts the least recently written.

    Parameters
    ----------
    capacity_lines:
        Maximum number of dirty lines held on chip at once. When a write
        pushes the dirty set past this bound, the oldest lines are
        evicted (returned to the caller, which writes them back to NVM).
        ``0`` models a write-through system where every store persists
        immediately.
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 0:
            raise ValueError("capacity_lines must be non-negative")
        self.capacity_lines = capacity_lines
        self._dirty: OrderedDict[int, None] = OrderedDict()
        #: Total lines evicted over the cache's lifetime.
        self.evictions = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def touch_write(self, line_ids: Iterable[int]) -> list[int]:
        """Mark lines dirty; return the lines evicted to make room.

        Re-writing an already-dirty line refreshes its recency (it was
        just produced again, so it is the youngest data on chip).
        """
        dirty = self._dirty
        for lid in line_ids:
            if lid in dirty:
                dirty.move_to_end(lid)
            else:
                dirty[lid] = None
        evicted: list[int] = []
        while len(dirty) > self.capacity_lines:
            lid, _ = dirty.popitem(last=False)
            evicted.append(lid)
        self.evictions += len(evicted)
        return evicted

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def drain(self) -> list[int]:
        """Evict every dirty line (a full write-back, e.g. at shutdown)."""
        out = list(self._dirty.keys())
        self._dirty.clear()
        self.evictions += len(out)
        return out

    def drop_all(self) -> list[int]:
        """Discard all dirty lines without writing them back (a crash).

        Returns the lost line ids so callers can report what was lost.
        """
        out = list(self._dirty.keys())
        self._dirty.clear()
        return out

    def evict_specific(self, line_ids: Iterable[int]) -> list[int]:
        """Force-evict specific lines if dirty; return those evicted.

        Used by crash plans that persist a random subset of dirty lines
        before the failure (lines that happened to be written back just
        in time).
        """
        out = []
        for lid in line_ids:
            if lid in self._dirty:
                del self._dirty[lid]
                out.append(lid)
        self.evictions += len(out)
        return out

    def discard(self, line_ids: Iterable[int]) -> list[int]:
        """Drop specific lines without writing them back; return dropped.

        Used when a buffer is freed: its dirty lines no longer have a
        home and must not be written back.
        """
        out = []
        for lid in line_ids:
            if lid in self._dirty:
                del self._dirty[lid]
                out.append(lid)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dirty_lines(self) -> list[int]:
        """Dirty line ids, oldest first."""
        return list(self._dirty.keys())

    @property
    def n_dirty(self) -> int:
        """Number of currently dirty lines."""
        return len(self._dirty)

    def is_dirty(self, line_id: int) -> bool:
        """Whether a line is currently volatile-only."""
        return line_id in self._dirty

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteBackCache(capacity={self.capacity_lines}, "
            f"dirty={self.n_dirty}, evictions={self.evictions})"
        )
