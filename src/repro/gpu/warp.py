"""Warp-level register exchange primitives (``__shfl_*_sync``).

Starting with Kepler, threads of a warp can exchange register values
directly, without a round trip through shared memory. The paper's
parallel checksum reduction (Listings 3-4, Fig. 1) is built on
``__shfl_down_sync``; this module emulates those primitives over
*thread vectors* — numpy arrays whose axis 0 enumerates the threads of
a block in lane order.

Functional semantics follow CUDA: for ``shfl_down(v, offset)``, lane
``i`` receives lane ``i + offset``'s value if that lane exists in the
warp, otherwise it keeps its own value.
"""

from __future__ import annotations

import math

import numpy as np

#: Threads per warp on every NVIDIA architecture the paper considers.
WARP_SIZE = 32


def _as_warps(values: np.ndarray, warp_size: int) -> np.ndarray:
    """View a thread vector as ``(n_warps, warp_size)``, padding with 0.

    A block whose size is not a warp multiple gets a partial final warp;
    CUDA masks those lanes out, which padding with zeros emulates for
    the reductions used here (0 is the identity of both ``+`` and
    ``^``).
    """
    values = np.asarray(values)
    n = values.shape[0]
    n_warps = math.ceil(n / warp_size)
    if n_warps * warp_size != n:
        pad = np.zeros((n_warps * warp_size - n,) + values.shape[1:],
                       dtype=values.dtype)
        values = np.concatenate([values, pad], axis=0)
    return values.reshape((n_warps, warp_size) + values.shape[1:])


def shfl_down(values: np.ndarray, offset: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """``__shfl_down_sync``: lane ``i`` reads lane ``i + offset``.

    Lanes whose source would fall outside the warp keep their own value
    (matching the CUDA semantics with a full mask).
    """
    if offset < 0:
        raise ValueError("offset must be non-negative")
    values = np.asarray(values)
    n = values.shape[0]
    warps = _as_warps(values, warp_size).copy()
    if offset and offset < warp_size:
        warps[:, : warp_size - offset] = warps[:, offset:]
    return warps.reshape((-1,) + values.shape[1:])[:n]


def shfl_xor(values: np.ndarray, lane_mask: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """``__shfl_xor_sync``: lane ``i`` reads lane ``i ^ lane_mask``."""
    if not 0 <= lane_mask < warp_size:
        raise ValueError("lane_mask must be within the warp")
    values = np.asarray(values)
    n = values.shape[0]
    warps = _as_warps(values, warp_size)
    lanes = np.arange(warp_size)
    out = warps[:, lanes ^ lane_mask]
    return out.reshape((-1,) + values.shape[1:])[:n]


def warp_reduce(
    values: np.ndarray,
    op: str = "add",
    warp_size: int = WARP_SIZE,
) -> tuple[np.ndarray, int]:
    """Butterfly-reduce each warp with ``shfl_down`` (Listing 4).

    Returns ``(reduced, n_steps)`` where ``reduced`` has one entry per
    warp (the value lane 0 holds after the reduction) and ``n_steps`` is
    the number of shuffle rounds executed — ``log2(warp_size)``, the
    paper's ``O(log N)`` claim.

    ``op`` is ``"add"`` (modular checksum) or ``"xor"`` (parity).
    """
    combine = _combiner(op)
    values = np.asarray(values)
    n = values.shape[0]
    warps = _as_warps(values, warp_size).copy()

    n_steps = 0
    offset = warp_size // 2
    while offset > 0:
        shifted = np.zeros_like(warps)
        shifted[:, : warp_size - offset] = warps[:, offset:]
        # Lanes with no source keep their value; but those lanes never
        # contribute to lane 0's result, so combining with 0/identity
        # via the zero padding is equivalent and simpler.
        warps[:, : warp_size - offset] = combine(
            warps[:, : warp_size - offset], shifted[:, : warp_size - offset]
        )
        offset //= 2
        n_steps += 1

    n_warps = math.ceil(n / warp_size)
    return warps[:, 0].copy()[:n_warps], n_steps


def lane_ids(n_threads: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Lane index of every thread in a block."""
    return np.arange(n_threads) % warp_size


def warp_ids(n_threads: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Warp index of every thread in a block."""
    return np.arange(n_threads) // warp_size


def _combiner(op: str):
    if op == "add":
        return lambda a, b: a + b
    if op == "xor":
        return np.bitwise_xor
    raise ValueError(f"unsupported warp reduction op: {op!r}")
