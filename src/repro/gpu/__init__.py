"""Simulated SIMT GPU substrate: memory, cache, warps, kernels, device.

Block execution is pluggable: :mod:`repro.gpu.engine` provides the
serial, process-parallel and batched (vectorized-group) launch engines,
all bit-identical in results.
"""

from repro.gpu.engine import (
    BatchedEngine,
    LaunchEngine,
    LaunchPlan,
    ParallelEngine,
    SerialEngine,
    make_engine,
)

__all__ = [
    "BatchedEngine",
    "LaunchEngine",
    "LaunchPlan",
    "ParallelEngine",
    "SerialEngine",
    "make_engine",
]
