"""Simulated SIMT GPU substrate: memory, cache, warps, kernels, device."""
